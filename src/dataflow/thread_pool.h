#ifndef GRADOOP_DATAFLOW_THREAD_POOL_H_
#define GRADOOP_DATAFLOW_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace gradoop::dataflow {

// Fixed-size worker pool used to execute dataset partitions in parallel on
// the host machine. Real parallelism is an implementation detail; the
// simulated cluster time never depends on it.
class ThreadPool {
 public:
  // Timing of one completed pool task, handed to the task hook. The task
  // index is the partition index of the batch, i.e. the simulated worker
  // that owns the partition.
  struct TaskTiming {
    const char* label = nullptr;  // stage label of the batch
    int task_index = 0;
    std::chrono::steady_clock::time_point begin;
    std::chrono::steady_clock::time_point end;
  };
  // Invoked after each task of a labelled batch finishes, on the thread
  // that ran the task. Must be cheap and thread-safe.
  using TaskHook = std::function<void(const TaskTiming&)>;

  // num_threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Tasks submitted but not yet finished. 0 whenever no RunAndWait is in
  // flight — the cancellation audit asserts this after an unwound query
  // to prove no partition task leaked past its batch.
  int pending_tasks() const;

  // Installs (or, with nullptr, removes) the per-task tracing hook. Not
  // called concurrently with RunAndWait; each batch snapshots the hook
  // once at submission.
  void set_task_hook(TaskHook hook);

  // Runs tasks(0..n-1) on the pool and blocks until all complete. Tasks
  // must not themselves call RunAndWait on the same pool. When `label`
  // is non-null and a task hook is installed, every task is timed and
  // reported to the hook (the telemetry path); a null label keeps the
  // task untraced.
  void RunAndWait(int n, const std::function<void(int)>& task,
                  const char* label = nullptr);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  mutable common::Mutex mu_{common::LockRank::kDataflow,
                            "dataflow.thread_pool"};
  // condition_variable_any waits directly on the annotated Mutex; the
  // plain std::condition_variable only accepts std::unique_lock.
  std::condition_variable_any work_ready_;
  std::condition_variable_any batch_done_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  int pending_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  TaskHook task_hook_ GUARDED_BY(mu_);
};

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_THREAD_POOL_H_
