#ifndef GRADOOP_DATAFLOW_THREAD_POOL_H_
#define GRADOOP_DATAFLOW_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace gradoop::dataflow {

// Fixed-size worker pool used to execute dataset partitions in parallel on
// the host machine. Real parallelism is an implementation detail; the
// simulated cluster time never depends on it.
class ThreadPool {
 public:
  // num_threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Runs tasks(0..n-1) on the pool and blocks until all complete. Tasks
  // must not themselves call RunAndWait on the same pool.
  void RunAndWait(int n, const std::function<void(int)>& task);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  common::Mutex mu_;
  // condition_variable_any waits directly on the annotated Mutex; the
  // plain std::condition_variable only accepts std::unique_lock.
  std::condition_variable_any work_ready_;
  std::condition_variable_any batch_done_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  int pending_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_THREAD_POOL_H_
