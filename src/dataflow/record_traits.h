#ifndef GRADOOP_DATAFLOW_RECORD_TRAITS_H_
#define GRADOOP_DATAFLOW_RECORD_TRAITS_H_

#include <cstddef>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace gradoop::dataflow {

// Concept: a record type that knows its own wire size. Graph elements and
// embeddings implement SerializedSize() so that shuffle-byte accounting
// reflects their true variable-length encoding.
template <typename T>
concept SelfSizingRecord = requires(const T& t) {
  { t.SerializedSize() } -> std::convertible_to<size_t>;
};

template <typename T>
size_t RecordBytes(const T& v);
template <typename A, typename B>
size_t RecordBytes(const std::pair<A, B>& v);
template <typename T>
size_t RecordBytes(const std::vector<T>& v);

// Returns the number of bytes record `v` occupies on the wire when shuffled
// between workers. Falls back to sizeof(T) for flat PODs.
template <typename T>
size_t RecordBytes(const T& v) {
  if constexpr (SelfSizingRecord<T>) {
    return v.SerializedSize();
  } else if constexpr (std::is_same_v<T, std::string>) {
    return sizeof(uint32_t) + v.size();
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "non-trivial record types must provide SerializedSize()");
    return sizeof(T);
  }
}

template <typename A, typename B>
size_t RecordBytes(const std::pair<A, B>& v) {
  return RecordBytes(v.first) + RecordBytes(v.second);
}

template <typename T>
size_t RecordBytes(const std::vector<T>& v) {
  size_t total = sizeof(uint32_t);
  for (const T& e : v) total += RecordBytes(e);
  return total;
}

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_RECORD_TRAITS_H_
