#ifndef GRADOOP_DATAFLOW_EXECUTION_CONTEXT_H_
#define GRADOOP_DATAFLOW_EXECUTION_CONTEXT_H_

#include <memory>
#include <string>

#include "common/cancellation.h"
#include "dataflow/cluster_config.h"
#include "dataflow/cost_model.h"
#include "dataflow/memory_accountant.h"
#include "dataflow/thread_pool.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/query_log.h"
#include "telemetry/tracer.h"

namespace gradoop::dataflow {

// Shared runtime state of one dataflow "job": the simulated cluster shape,
// the host thread pool that actually executes partitions, and the cost
// tracker accumulating simulated distributed time. All datasets of a job
// share one context (analogous to Flink's ExecutionEnvironment).
//
// The context also owns the telemetry surface (metrics registry + span
// tracer), default-off: with telemetry disabled every instrumentation
// site in the engine is a single relaxed bool load and the runtime does
// no clock reads, locking or allocation on behalf of observability.
class ExecutionContext {
 public:
  explicit ExecutionContext(ClusterConfig config = ClusterConfig())
      : config_(config), pool_(config.host_threads) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  const ClusterConfig& config() const { return config_; }
  int num_workers() const { return config_.num_workers; }
  CostTracker& tracker() { return tracker_; }
  const CostTracker& tracker() const { return tracker_; }
  ThreadPool& pool() { return pool_; }

  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  // Per-query allocation accounting, default-off (a disabled accountant
  // costs one bool load per site). Enabled by the engine around a query;
  // driver-thread only — see memory_accountant.h.
  MemoryAccountant& accountant() { return accountant_; }
  const MemoryAccountant& accountant() const { return accountant_; }

  // Per-query cooperative cancellation. Kernel loops poll it at the
  // checkpoints the interruptibility analysis claims; the engine arms a
  // deadline / exposes a Cancel() handle and resets it per query.
  // Default-off cost is one relaxed load per checkpoint.
  common::CancellationToken& cancellation() { return cancellation_; }
  const common::CancellationToken& cancellation() const {
    return cancellation_;
  }

  // Retained query history and the structured JSONL query log. The
  // engine records into both after each execution, but only while
  // telemetry is enabled — so with telemetry off neither costs anything
  // beyond the usual relaxed enabled() load.
  telemetry::FlightRecorder& flight_recorder() { return flight_recorder_; }
  const telemetry::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }
  telemetry::QueryLog& query_log() { return query_log_; }
  const telemetry::QueryLog& query_log() const { return query_log_; }

  // Turns on metrics + tracing and hooks the thread pool so every
  // labelled partition task becomes a "task" span (worker id = partition
  // index, thread id = host thread). Not thread-safe against concurrent
  // dataset execution — enable before running a query.
  void EnableTelemetry() {
    telemetry_.Enable();
    pool_.set_task_hook([this](const ThreadPool::TaskTiming& timing) {
      if (!telemetry_.enabled()) return;
      telemetry::Tracer& tracer = telemetry_.tracer();
      const double begin_us = tracer.ToMicros(timing.begin);
      const double end_us = tracer.ToMicros(timing.end);
      tracer.AddSpan(timing.label != nullptr ? timing.label : "task",
                     telemetry::kCategoryTask, begin_us, end_us,
                     timing.task_index);
      telemetry_.metrics().Observe("task.wall_us", end_us - begin_us);
      telemetry_.metrics().AddCounter("task.count", 1);
    });
  }

  void DisableTelemetry() {
    telemetry_.Disable();
    pool_.set_task_hook(nullptr);
  }

 private:
  ClusterConfig config_;
  CostTracker tracker_;
  ThreadPool pool_;
  telemetry::Telemetry telemetry_;
  MemoryAccountant accountant_;
  common::CancellationToken cancellation_;
  telemetry::FlightRecorder flight_recorder_;
  telemetry::QueryLog query_log_;
};

using ExecutionContextPtr = std::shared_ptr<ExecutionContext>;

inline ExecutionContextPtr MakeContext(ClusterConfig config = ClusterConfig()) {
  return std::make_shared<ExecutionContext>(config);
}

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_EXECUTION_CONTEXT_H_
