#ifndef GRADOOP_DATAFLOW_EXECUTION_CONTEXT_H_
#define GRADOOP_DATAFLOW_EXECUTION_CONTEXT_H_

#include <memory>

#include "dataflow/cluster_config.h"
#include "dataflow/cost_model.h"
#include "dataflow/thread_pool.h"

namespace gradoop::dataflow {

// Shared runtime state of one dataflow "job": the simulated cluster shape,
// the host thread pool that actually executes partitions, and the cost
// tracker accumulating simulated distributed time. All datasets of a job
// share one context (analogous to Flink's ExecutionEnvironment).
class ExecutionContext {
 public:
  explicit ExecutionContext(ClusterConfig config = ClusterConfig())
      : config_(config), pool_(config.host_threads) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  const ClusterConfig& config() const { return config_; }
  int num_workers() const { return config_.num_workers; }
  CostTracker& tracker() { return tracker_; }
  const CostTracker& tracker() const { return tracker_; }
  ThreadPool& pool() { return pool_; }

 private:
  ClusterConfig config_;
  CostTracker tracker_;
  ThreadPool pool_;
};

using ExecutionContextPtr = std::shared_ptr<ExecutionContext>;

inline ExecutionContextPtr MakeContext(ClusterConfig config = ClusterConfig()) {
  return std::make_shared<ExecutionContext>(config);
}

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_EXECUTION_CONTEXT_H_
