#ifndef GRADOOP_DATAFLOW_MEMORY_ACCOUNTANT_H_
#define GRADOOP_DATAFLOW_MEMORY_ACCOUNTANT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gradoop::dataflow {

// Modeled per-row overhead of a per-worker join build table
// (unordered_multimap node, key copy, record pointer, bucket share).
// Charged by Dataset::HashJoin when accounting is on; the static analysis
// (query/exec/memory_bound.h) prices build tables with the same constant
// so estimate and measurement stay in one currency.
inline constexpr uint64_t kHashTableEntryBytes = 64;

// Per-query allocation accounting for the simulated dataflow: datasets
// charge the serialized bytes of materialized intermediates (operator
// outputs, shuffle staging, join build tables) and release them when the
// owning kernel returns. The engine enables it per query
// (CypherEngine::set_account_memory) and reads the totals into the
// memory.bytes.peak / memory.bytes.current telemetry gauges; the
// GRADOOP_AUDIT_MEMORY runtime audit compares the per-operator peaks it
// records against the static MemoryBound claims.
//
// DRIVER-THREAD ONLY: every Charge/Release site runs on the thread that
// drives the query (operators execute sequentially; Dataset methods
// charge before/after dispatching partition work to the pool, never from
// inside it). That discipline is what lets the counters be plain
// integers — no atomics, no lock — and is why frames strictly nest.
//
// Frames measure subtree-relative peaks: PhysicalOperator::Execute pushes
// a frame on entry and pops on exit; the frame's high-water mark minus
// its entry level is the subtree's own resident peak, unpolluted by
// whatever older siblings already held when it started. Child frames fold
// their high into the parent's, mirroring the static lifetime-interval
// fold of query/exec/memory_bound.h.
class MemoryAccountant {
 public:
  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
    frames_.clear();
  }

  // Global counters across the whole query.
  uint64_t current_bytes() const { return current_; }
  uint64_t peak_bytes() const { return peak_; }

  // Open frames. 0 between queries; the cancellation audit asserts an
  // unwound query popped every frame it pushed.
  size_t frame_depth() const { return frames_.size(); }

  void Charge(uint64_t bytes) {
    if (!enabled_) return;
    current_ += bytes;
    peak_ = std::max(peak_, current_);
    if (!frames_.empty()) {
      frames_.back().high = std::max(frames_.back().high, current_);
    }
  }

  void Release(uint64_t bytes) {
    if (!enabled_) return;
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  void PushFrame() {
    if (!enabled_) return;
    frames_.push_back({current_, current_});
  }

  // Returns the frame's relative peak (high-water mark minus the level at
  // entry) and folds its high into the enclosing frame.
  uint64_t PopFrame() {
    if (!enabled_ || frames_.empty()) return 0;
    const Frame frame = frames_.back();
    frames_.pop_back();
    if (!frames_.empty()) {
      frames_.back().high = std::max(frames_.back().high, frame.high);
    }
    return frame.high - frame.entry;
  }

 private:
  struct Frame {
    uint64_t entry = 0;  // current_ when the frame opened
    uint64_t high = 0;   // max current_ observed while open
  };

  bool enabled_ = false;
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
  std::vector<Frame> frames_;
};

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_MEMORY_ACCOUNTANT_H_
