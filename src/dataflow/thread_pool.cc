#include "dataflow/thread_pool.h"

#include <algorithm>

namespace gradoop::dataflow {

using common::MutexLock;

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::set_task_hook(TaskHook hook) {
  MutexLock lock(mu_);
  task_hook_ = std::move(hook);
}

int ThreadPool::pending_tasks() const {
  MutexLock lock(mu_);
  return pending_;
}

void ThreadPool::RunAndWait(int n, const std::function<void(int)>& task,
                            const char* label) {
  if (n <= 0) return;
  // Snapshot the hook once per batch; tasks reference this copy, which
  // outlives them (RunAndWait blocks until the batch drains).
  TaskHook hook;
  if (label != nullptr) {
    MutexLock lock(mu_);
    hook = task_hook_;
  }
  const auto invoke = [&task, &hook, label](int i) {
    if (hook) {
      TaskTiming timing;
      timing.label = label;
      timing.task_index = i;
      timing.begin = std::chrono::steady_clock::now();
      task(i);
      timing.end = std::chrono::steady_clock::now();
      hook(timing);
    } else {
      task(i);
    }
  };
  if (n == 1) {
    invoke(0);
    return;
  }
  {
    MutexLock lock(mu_);
    pending_ += n;
    for (int i = 0; i < n; ++i) {
      queue_.push([&invoke, i] { invoke(i); });
    }
  }
  work_ready_.notify_all();
  // Explicit wait loops (not the predicate-lambda overload): the lambda
  // would read guarded fields from a context the thread-safety analysis
  // cannot see the lock in. wait_for releases and reacquires mu_; the
  // bounded wait is the pool-side cancellation checkpoint — a wedged
  // task can never park the driver forever without a periodic wakeup
  // that a watchdog or deadline layer can observe (CC008).
  MutexLock lock(mu_);
  while (pending_ != 0) {
    batch_done_.wait_for(mu_, std::chrono::milliseconds(50));
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      // Bounded idle wait, same CC008 discipline as the batch wait: a
      // missed notify degrades to a 50ms hiccup instead of a hang.
      while (!shutdown_ && queue_.empty()) {
        work_ready_.wait_for(mu_, std::chrono::milliseconds(50));
      }
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) batch_done_.notify_all();
    }
  }
}

}  // namespace gradoop::dataflow
