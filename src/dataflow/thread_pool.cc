#include "dataflow/thread_pool.h"

#include <algorithm>

namespace gradoop::dataflow {

using common::MutexLock;

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunAndWait(int n, const std::function<void(int)>& task) {
  if (n <= 0) return;
  if (n == 1) {
    task(0);
    return;
  }
  {
    MutexLock lock(mu_);
    pending_ += n;
    for (int i = 0; i < n; ++i) {
      queue_.push([&task, i] { task(i); });
    }
  }
  work_ready_.notify_all();
  // Explicit wait loops (not the predicate-lambda overload): the lambda
  // would read guarded fields from a context the thread-safety analysis
  // cannot see the lock in. wait() releases and reacquires mu_.
  MutexLock lock(mu_);
  while (pending_ != 0) batch_done_.wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_ready_.wait(mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) batch_done_.notify_all();
    }
  }
}

}  // namespace gradoop::dataflow
