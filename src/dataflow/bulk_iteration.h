#ifndef GRADOOP_DATAFLOW_BULK_ITERATION_H_
#define GRADOOP_DATAFLOW_BULK_ITERATION_H_

#include <functional>

#include "dataflow/dataset.h"

namespace gradoop::dataflow {

// Flink-style bulk iteration: repeatedly applies `body` to the working set
// until `max_iterations` supersteps have run or the working set is empty.
// `body(working, iteration)` returns the next working set. `collect` is
// invoked after each superstep and may union results out of the loop (the
// paper's ExpandEmbeddings emits valid paths once the lower bound is
// reached, §3.1).
template <typename T>
Dataset<T> BulkIterate(
    Dataset<T> initial, int max_iterations,
    const std::function<Dataset<T>(const Dataset<T>&, int)>& body,
    const std::function<void(const Dataset<T>&, int)>& collect) {
  Dataset<T> working = std::move(initial);
  for (int it = 1; it <= max_iterations; ++it) {
    uint64_t n = 0;
    for (int p = 0; p < working.num_partitions(); ++p) {
      n += working.partition(p).size();
    }
    if (n == 0) break;  // no more valid paths: terminate early
    working = body(working, it);
    collect(working, it);
  }
  return working;
}

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_BULK_ITERATION_H_
