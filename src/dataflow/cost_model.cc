#include "dataflow/cost_model.h"

#include <algorithm>

namespace gradoop::dataflow {

void CostTracker::AddStage(const StageCost& cost) {
  common::MutexLock lock(mu_);
  stages_.push_back(cost);
  simulated_sec_ += cost.TotalSeconds();
}

void CostTracker::AddNetworkBytes(uint64_t bytes) {
  common::MutexLock lock(mu_);
  network_bytes_ += bytes;
}

void CostTracker::AddSpilledBytes(uint64_t bytes) {
  common::MutexLock lock(mu_);
  spilled_bytes_ += bytes;
}

void CostTracker::AddRecords(uint64_t records) {
  common::MutexLock lock(mu_);
  total_records_ += records;
}

double CostTracker::SimulatedSeconds() const {
  common::MutexLock lock(mu_);
  return simulated_sec_;
}

uint64_t CostTracker::NetworkBytes() const {
  common::MutexLock lock(mu_);
  return network_bytes_;
}

uint64_t CostTracker::SpilledBytes() const {
  common::MutexLock lock(mu_);
  return spilled_bytes_;
}

uint64_t CostTracker::TotalRecords() const {
  common::MutexLock lock(mu_);
  return total_records_;
}

int CostTracker::NumStages() const {
  common::MutexLock lock(mu_);
  return static_cast<int>(stages_.size());
}

std::vector<StageCost> CostTracker::Stages() const {
  common::MutexLock lock(mu_);
  return stages_;
}

void CostTracker::Reset() {
  common::MutexLock lock(mu_);
  stages_.clear();
  simulated_sec_ = 0.0;
  network_bytes_ = 0;
  spilled_bytes_ = 0;
  total_records_ = 0;
}

double ShuffleSeconds(const std::vector<uint64_t>& out_bytes,
                      const std::vector<uint64_t>& in_bytes,
                      const ClusterConfig& config) {
  double worst = 0.0;
  const size_t n = std::max(out_bytes.size(), in_bytes.size());
  for (size_t w = 0; w < n; ++w) {
    const double out = w < out_bytes.size()
                           ? static_cast<double>(out_bytes[w])
                           : 0.0;
    const double in =
        w < in_bytes.size() ? static_cast<double>(in_bytes[w]) : 0.0;
    // Full-duplex NIC: send and receive overlap; the slower direction
    // bounds the worker.
    worst = std::max(worst, std::max(out, in) / config.network_bytes_per_sec);
  }
  return worst;
}

double SpillSeconds(const std::vector<uint64_t>& state_bytes,
                    const std::vector<uint64_t>& state_records,
                    const ClusterConfig& config, uint64_t* spilled_bytes) {
  double worst = 0.0;
  uint64_t total_spilled = 0;
  for (size_t w = 0; w < state_bytes.size(); ++w) {
    const uint64_t bytes = state_bytes[w];
    if (bytes <= config.worker_memory_bytes) continue;
    const uint64_t excess = bytes - config.worker_memory_bytes;
    total_spilled += excess;
    // One write plus one read pass over the spilled bytes...
    double seconds =
        2.0 * static_cast<double>(excess) / config.disk_bytes_per_sec;
    // ...and serialization + deserialization of the spilled records
    // (proportional share of the worker's state records).
    if (w < state_records.size() && bytes > 0) {
      const double spilled_records =
          static_cast<double>(state_records[w]) *
          (static_cast<double>(excess) / static_cast<double>(bytes));
      seconds += 2.0 * spilled_records * config.seconds_per_record;
    }
    worst = std::max(worst, seconds);
  }
  if (spilled_bytes != nullptr) *spilled_bytes = total_spilled;
  return worst;
}

}  // namespace gradoop::dataflow
