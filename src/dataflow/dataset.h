#ifndef GRADOOP_DATAFLOW_DATASET_H_
#define GRADOOP_DATAFLOW_DATASET_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dataflow/execution_context.h"
#include "dataflow/partitioning_audit.h"
#include "dataflow/record_traits.h"

namespace gradoop::dataflow {

// Physical join strategy, mirroring Flink's optimizer choice between
// repartitioning both inputs and broadcasting the build side.
enum class JoinStrategy {
  kRepartition,  // hash-partition both sides on the join key
  kBroadcast,    // replicate the (small) right side to every worker
};

// Compile-time claims handed to HashJoin by the partitioning analysis
// (query/exec/partitioning.h): a flagged side is provably already
// hash-partitioned on the join key, so its shuffle is adopted in place —
// zero bytes enter the exchange and zero network time is charged. The
// claims are trusted here; VerifyCompiledPlan re-derives them statically
// and GRADOOP_AUDIT_PARTITIONING re-hashes every record at runtime.
struct JoinShuffleHints {
  bool left_prepartitioned = false;
  bool right_prepartitioned = false;
};

// Per-partition state a ZipPartitions callback built transiently (its
// hash table, for a join): priced by the spill model and charged to the
// memory accountant exactly like HashJoin's build side.
struct ZipPartitionStats {
  uint64_t state_bytes = 0;
  uint64_t state_records = 0;
};

// A distributed dataset: `num_workers` partitions, partition i owned by
// simulated worker i. Transformations execute eagerly on the host thread
// pool and charge the simulated cluster cost model of the shared
// ExecutionContext (compute = max over workers, shuffle = bytes over the
// simulated network, spills when per-worker state exceeds its memory
// budget).
//
// Dataset values are cheap shared handles; transformations return new
// datasets and never mutate their input.
template <typename T>
class Dataset {
 public:
  using Partitions = std::vector<std::vector<T>>;

  Dataset() = default;

  Dataset(ExecutionContextPtr ctx, std::shared_ptr<Partitions> partitions)
      : ctx_(std::move(ctx)), partitions_(std::move(partitions)) {
    assert(partitions_->size() ==
           static_cast<size_t>(ctx_->num_workers()));
  }

  // Distributes `data` over the workers round-robin (the balanced layout
  // a parallel source produces; contiguous chunks would concentrate
  // whole label blocks of a generated file on single workers). Charges
  // one read stage.
  static Dataset FromVector(ExecutionContextPtr ctx, std::vector<T> data) {
    const int p = ctx->num_workers();
    auto parts = std::make_shared<Partitions>(p);
    const size_t n = data.size();
    for (int i = 0; i < p; ++i) (*parts)[i].reserve(n / p + 1);
    for (size_t i = 0; i < n; ++i) {
      (*parts)[i % p].push_back(std::move(data[i]));
    }
    Dataset ds(std::move(ctx), std::move(parts));
    ds.ChargeNarrowStage("Source", ds.CountLocal(), ds.CountLocal());
    return ds;
  }

  // Creates an empty dataset with the context's partition count.
  static Dataset Empty(ExecutionContextPtr ctx) {
    auto parts = std::make_shared<Partitions>(ctx->num_workers());
    return Dataset(std::move(ctx), std::move(parts));
  }

  const ExecutionContextPtr& context() const { return ctx_; }
  int num_partitions() const { return static_cast<int>(partitions_->size()); }
  const std::vector<T>& partition(int i) const { return (*partitions_)[i]; }
  bool valid() const { return ctx_ != nullptr; }

  // Total number of records. Charges one aggregation stage (counting is a
  // job in Flink, and the paper's reported runtimes include the count).
  uint64_t Count() const {
    const uint64_t n = CountLocal();
    ChargeNarrowStage("Count", n, 0);
    return n;
  }

  // Gathers all records to the driver (test/sink use only). The gather
  // moves every remote partition over the network.
  std::vector<T> Collect() const {
    std::vector<T> out;
    std::vector<uint64_t> out_bytes(num_partitions(), 0);
    for (int i = 0; i < num_partitions(); ++i) {
      // cancellation: driver-side gather of an already-materialized result;
      // every producing kernel upstream polled, and sinks run post-query.
      for (const T& rec : (*partitions_)[i]) {
        if (i != 0) out_bytes[i] += RecordBytes(rec);
        out.push_back(rec);
      }
    }
    std::vector<uint64_t> in_bytes(num_partitions(), 0);
    for (int i = 1; i < num_partitions(); ++i) in_bytes[0] += out_bytes[i];
    StageCost cost;
    cost.label = "Collect";
    cost.network_sec = ShuffleSeconds(out_bytes, in_bytes, ctx_->config());
    cost.latency_sec = ctx_->config().stage_latency_sec;
    ctx_->tracker().AddStage(cost);
    uint64_t total = 0;
    for (uint64_t b : out_bytes) total += b;
    ctx_->tracker().AddNetworkBytes(total);
    return out;
  }

  // Element-wise transformation (narrow, no shuffle).
  template <typename F>
  auto Map(F fn, const char* label = "Map") const {
    using U = std::decay_t<std::invoke_result_t<F, const T&>>;
    auto out = std::make_shared<typename Dataset<U>::Partitions>(
        num_partitions());
    std::vector<uint64_t> in_counts(num_partitions(), 0);
    common::CancellationToken& cancel = ctx_->cancellation();
    RunPerPartition(label, [&](int p) {
      const auto& src = (*partitions_)[p];
      auto& dst = (*out)[p];
      dst.reserve(src.size());
      for (const T& rec : src) {
        if (cancel.CheckCancelled()) break;
        dst.push_back(fn(rec));
      }
      in_counts[p] = src.size();
    });
    ChargePerPartition(label, in_counts, in_counts);
    return Dataset<U>(ctx_, std::move(out));
  }

  // One-to-many transformation; `fn(record, &out)` may emit zero or more
  // records. This is the paper's FlatMap used to fuse
  // Select -> Project -> Transform into a single stage (§3.1).
  template <typename U, typename F>
  Dataset<U> FlatMap(F fn, const char* label = "FlatMap") const {
    auto out = std::make_shared<typename Dataset<U>::Partitions>(
        num_partitions());
    std::vector<uint64_t> in_counts(num_partitions(), 0);
    std::vector<uint64_t> out_counts(num_partitions(), 0);
    common::CancellationToken& cancel = ctx_->cancellation();
    RunPerPartition(label, [&](int p) {
      const auto& src = (*partitions_)[p];
      auto& dst = (*out)[p];
      for (const T& rec : src) {
        if (cancel.CheckCancelled()) break;
        fn(rec, &dst);
      }
      in_counts[p] = src.size();
      out_counts[p] = dst.size();
    });
    ChargePerPartition(label, in_counts, out_counts);
    return Dataset<U>(ctx_, std::move(out));
  }

  // Partition-wise transformation (narrow): `fn(partition_index, records,
  // &out)` sees one whole partition. Used when outputs need
  // partition-deterministic identifiers.
  template <typename U, typename F>
  Dataset<U> MapPartition(F fn, const char* label = "MapPartition") const {
    auto out = std::make_shared<typename Dataset<U>::Partitions>(
        num_partitions());
    std::vector<uint64_t> in_counts(num_partitions(), 0);
    std::vector<uint64_t> out_counts(num_partitions(), 0);
    RunPerPartition(label, [&](int p) {
      const auto& src = (*partitions_)[p];
      fn(p, src, &(*out)[p]);
      in_counts[p] = src.size();
      out_counts[p] = (*out)[p].size();
    });
    ChargePerPartition(label, in_counts, out_counts);
    return Dataset<U>(ctx_, std::move(out));
  }

  // Keeps records satisfying `pred` (narrow).
  template <typename P>
  Dataset<T> Filter(P pred, const char* label = "Filter") const {
    auto out = std::make_shared<Partitions>(num_partitions());
    std::vector<uint64_t> in_counts(num_partitions(), 0);
    std::vector<uint64_t> out_counts(num_partitions(), 0);
    common::CancellationToken& cancel = ctx_->cancellation();
    RunPerPartition(label, [&](int p) {
      const auto& src = (*partitions_)[p];
      auto& dst = (*out)[p];
      for (const T& rec : src) {
        if (cancel.CheckCancelled()) break;
        if (pred(rec)) dst.push_back(rec);
      }
      in_counts[p] = src.size();
      out_counts[p] = dst.size();
    });
    ChargePerPartition(label, in_counts, out_counts);
    return Dataset<T>(ctx_, std::move(out));
  }

  // Partition-wise concatenation (narrow; Flink's union is not a shuffle).
  Dataset<T> Union(const Dataset<T>& other) const {
    assert(num_partitions() == other.num_partitions());
    auto out = std::make_shared<Partitions>(num_partitions());
    for (int p = 0; p < num_partitions(); ++p) {
      auto& dst = (*out)[p];
      dst = (*partitions_)[p];
      dst.insert(dst.end(), other.partition(p).begin(),
                 other.partition(p).end());
    }
    // Union is free in Flink (pure stream merge) — no stage charged.
    return Dataset<T>(ctx_, std::move(out));
  }

  // Hash-partitions records so that equal keys land on the same worker.
  // `key(rec)` must return an unsigned integral or hashable key.
  template <typename KeyFn>
  Dataset<T> RepartitionByKey(KeyFn key,
                              const char* label = "Repartition") const {
    auto out = std::make_shared<Partitions>(num_partitions());
    ShuffleInto(key, *partitions_, out.get(), label);
    return Dataset<T>(ctx_, std::move(out));
  }

  // Removes records with duplicate keys (shuffle + per-partition dedup).
  template <typename KeyFn>
  Dataset<T> Distinct(KeyFn key, const char* label = "Distinct") const {
    Dataset<T> shuffled = RepartitionByKey(key, label);
    const uint64_t staged_bytes = ChargeTransient(shuffled);
    using K = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    auto out = std::make_shared<Partitions>(num_partitions());
    std::vector<uint64_t> in_counts(num_partitions(), 0);
    std::vector<uint64_t> out_counts(num_partitions(), 0);
    common::CancellationToken& cancel = ctx_->cancellation();
    RunPerPartition("DistinctLocal", [&](int p) {
      const auto& src = shuffled.partition(p);
      auto& dst = (*out)[p];
      std::unordered_map<K, bool> seen;
      seen.reserve(src.size());
      for (const T& rec : src) {
        if (cancel.CheckCancelled()) break;
        if (seen.emplace(key(rec), true).second) dst.push_back(rec);
      }
      in_counts[p] = src.size();
      out_counts[p] = dst.size();
    });
    ChargePerPartition("DistinctLocal", in_counts, out_counts);
    ctx_->accountant().Release(staged_bytes);
    return Dataset<T>(ctx_, std::move(out));
  }

  // Groups by key and folds each group with `reducer(acc, rec)`; the
  // accumulator is initialized from `init(rec)` on the group's first
  // record. Returns (key, accumulator) pairs.
  template <typename KeyFn, typename Init, typename Reducer>
  auto ReduceByKey(KeyFn key, Init init, Reducer reducer,
                   const char* label = "ReduceByKey") const {
    using K = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    using A = std::decay_t<std::invoke_result_t<Init, const T&>>;
    Dataset<T> shuffled = RepartitionByKey(key, label);
    const uint64_t staged_bytes = ChargeTransient(shuffled);
    using OutT = std::pair<K, A>;
    auto out =
        std::make_shared<typename Dataset<OutT>::Partitions>(num_partitions());
    std::vector<uint64_t> in_counts(num_partitions(), 0);
    std::vector<uint64_t> out_counts(num_partitions(), 0);
    common::CancellationToken& cancel = ctx_->cancellation();
    RunPerPartition("ReduceLocal", [&](int p) {
      const auto& src = shuffled.partition(p);
      std::unordered_map<K, A> groups;
      for (const T& rec : src) {
        if (cancel.CheckCancelled()) break;
        auto it = groups.find(key(rec));
        if (it == groups.end()) {
          groups.emplace(key(rec), init(rec));
        } else {
          it->second = reducer(std::move(it->second), rec);
        }
      }
      auto& dst = (*out)[p];
      dst.reserve(groups.size());
      for (auto& [k, acc] : groups) dst.emplace_back(k, std::move(acc));
      in_counts[p] = src.size();
      out_counts[p] = dst.size();
    });
    ChargePerPartition("ReduceLocal", in_counts, out_counts);
    ctx_->accountant().Release(staged_bytes);
    return Dataset<OutT>(ctx_, std::move(out));
  }

  // Equi-join with `right`; `joiner(l, r, &out)` may emit zero or more
  // records, which implements Flink's FlatJoin — the paper uses it so that
  // morphism-violating join results are dropped inside the join (§3.1).
  //
  // kRepartition hash-partitions both sides on the key; kBroadcast
  // replicates the right side to all workers (right should be small). The
  // right side is always the build side of the per-worker hash table.
  template <typename Out, typename U, typename KeyL, typename KeyR,
            typename Joiner>
  Dataset<Out> HashJoin(const Dataset<U>& right, KeyL key_left, KeyR key_right,
                        Joiner joiner,
                        JoinStrategy strategy = JoinStrategy::kRepartition,
                        const char* label = "Join",
                        JoinShuffleHints hints = {}) const {
    using K = std::decay_t<std::invoke_result_t<KeyL, const T&>>;
    static_assert(
        std::is_same_v<K, std::decay_t<std::invoke_result_t<KeyR, const U&>>>,
        "join key types must match");

    const int p = num_partitions();
    auto out = std::make_shared<typename Dataset<Out>::Partitions>(p);

    // Phase 1: distribute both inputs.
    typename Dataset<T>::Partitions left_parts;
    typename Dataset<U>::Partitions right_parts;
    if (strategy == JoinStrategy::kRepartition) {
      if (hints.left_prepartitioned) {
        AdoptPrepartitioned(key_left, *partitions_, &left_parts, label);
      } else {
        left_parts.resize(p);
        ShuffleInto(key_left, *partitions_, &left_parts, label);
      }
      if (hints.right_prepartitioned) {
        AdoptPrepartitioned(key_right, *right.partitions_, &right_parts,
                            label);
      } else {
        right_parts.resize(p);
        ShuffleIntoOther(key_right, right, &right_parts, label);
      }
    } else {
      left_parts = *partitions_;  // stays in place
      const bool traced = ctx_->telemetry().enabled();
      const double span_begin_us =
          traced ? ctx_->telemetry().tracer().NowMicros() : 0.0;
      // Broadcast: every worker receives the full right side.
      std::vector<U> all_right;
      for (int i = 0; i < p; ++i) {
        all_right.insert(all_right.end(), right.partition(i).begin(),
                         right.partition(i).end());
      }
      right_parts.assign(p, all_right);
      // Network: worker w sends its right-partition to the (p-1) others
      // and receives everyone else's.
      std::vector<uint64_t> out_bytes(p, 0), in_bytes(p, 0);
      uint64_t total_bytes = 0;
      for (int i = 0; i < p; ++i) {
        uint64_t b = 0;
        // cancellation: cost-model byte walk over the staged build side;
        // the build/probe loops below poll once per record.
        for (const U& rec : right.partition(i)) b += RecordBytes(rec);
        out_bytes[i] = b * (p - 1);
        total_bytes += b;
      }
      for (int i = 0; i < p; ++i) {
        uint64_t own = 0;
        // cancellation: cost-model byte walk (see above).
        for (const U& rec : right.partition(i)) own += RecordBytes(rec);
        in_bytes[i] = total_bytes - own;
      }
      StageCost bc;
      bc.label = std::string(label) + "/Broadcast";
      bc.network_sec = ShuffleSeconds(out_bytes, in_bytes, ctx_->config());
      bc.latency_sec = ctx_->config().stage_latency_sec;
      ctx_->tracker().AddStage(bc);
      uint64_t moved = 0;
      for (uint64_t b : out_bytes) moved += b;
      ctx_->tracker().AddNetworkBytes(moved);
      // Every build-side record enters the broadcast exchange once, just
      // like a record entering a repartition shuffle (ShuffleInto counts
      // its inputs the same way) — without this the per-operator record
      // accounting was asymmetric between the two join strategies.
      ctx_->tracker().AddRecords(static_cast<uint64_t>(all_right.size()));
      if (traced) {
        telemetry::Telemetry& tel = ctx_->telemetry();
        tel.tracer().AddSpan(bc.label, telemetry::kCategoryStage,
                             span_begin_us, tel.tracer().NowMicros(),
                             /*worker=*/-1,
                             {{"bytes", static_cast<double>(moved)}});
        tel.metrics().AddCounter("shuffle.count", 1);
        // A broadcast never exchanges locally: every byte entering it is
        // sent to the (p-1) other workers, so both counters equal moved.
        tel.metrics().AddCounter("shuffle.bytes", moved);
        tel.metrics().AddCounter("shuffle.bytes.remote", moved);
      }
    }

    // Memory accounting (driver thread; see memory_accountant.h): the
    // staged join-side copies exist from here until this call returns.
    // Charges model the stage's state in the same currency as the static
    // analysis — serialized record bytes plus a fixed per-table-entry
    // overhead — rather than tracing host allocations.
    MemoryAccountant& accountant = ctx_->accountant();
    uint64_t staged_bytes = 0;
    if (accountant.enabled()) {
      // cancellation: accounting byte walk over staged inputs; only runs
      // with memory accounting on, and the join loops below poll.
      for (const auto& part : left_parts) {
        for (const T& rec : part) staged_bytes += RecordBytes(rec);
      }
      for (const auto& part : right_parts) {
        for (const U& rec : part) staged_bytes += RecordBytes(rec);
      }
      accountant.Charge(staged_bytes);
    }

    // Phase 2: per-worker build + probe.
    std::vector<uint64_t> work(p, 0);
    std::vector<uint64_t> out_counts(p, 0);
    std::vector<uint64_t> state_bytes(p, 0);
    std::vector<uint64_t> state_records(p, 0);
    const std::string build_probe_label = std::string(label) + "/BuildProbe";
    common::CancellationToken& cancel = ctx_->cancellation();
    RunPerPartition(build_probe_label.c_str(), [&](int part) {
      const auto& lsrc = left_parts[part];
      const auto& rsrc = right_parts[part];
      std::unordered_multimap<K, const U*> table;
      table.reserve(rsrc.size());
      uint64_t bytes = 0;
      for (const U& rec : rsrc) {
        if (cancel.CheckCancelled()) break;
        table.emplace(key_right(rec), &rec);
        bytes += RecordBytes(rec);
      }
      auto& dst = (*out)[part];
      for (const T& lrec : lsrc) {
        if (cancel.CheckCancelled()) break;
        auto [it, end] = table.equal_range(key_left(lrec));
        // cancellation: matches of one probe row; outer loop polls per row.
        for (; it != end; ++it) joiner(lrec, *it->second, &dst);
      }
      work[part] = lsrc.size() + rsrc.size();
      out_counts[part] = dst.size();
      state_bytes[part] = bytes;
      state_records[part] = rsrc.size();
    });

    // Compute + spill accounting for the build/probe stage.
    const auto& cfg = ctx_->config();
    StageCost cost;
    cost.label = std::string(label) + "/BuildProbe";
    uint64_t total_in = 0, total_out = 0;
    double worst = 0.0;
    for (int i = 0; i < p; ++i) {
      worst = std::max(worst, static_cast<double>(work[i] + out_counts[i]) *
                                  cfg.seconds_per_record);
      total_in += work[i];
      total_out += out_counts[i];
    }
    cost.compute_sec = worst;
    uint64_t spilled = 0;
    cost.spill_sec = SpillSeconds(state_bytes, state_records, cfg, &spilled);
    cost.latency_sec = cfg.stage_latency_sec;
    ctx_->tracker().AddStage(cost);
    ctx_->tracker().AddRecords(total_in + total_out);
    ctx_->tracker().AddSpilledBytes(spilled);
    if (accountant.enabled()) {
      // The per-worker hash tables held one entry per build row; charging
      // after the stage still registers the momentary high in the peak.
      uint64_t table_entries = 0;
      for (const uint64_t n : state_records) table_entries += n;
      const uint64_t table_bytes = table_entries * kHashTableEntryBytes;
      accountant.Charge(table_bytes);
      accountant.Release(staged_bytes + table_bytes);
    }
    if (ctx_->telemetry().enabled()) {
      auto& metrics = ctx_->telemetry().metrics();
      metrics.AddCounter("stage.count", 1);
      metrics.AddCounter("stage.records_in", total_in);
      if (spilled > 0) metrics.AddCounter("spill.bytes", spilled);
      for (const uint64_t n : work) {
        metrics.Observe("stage.partition_records", static_cast<double>(n));
      }
    }
    return Dataset<Out>(ctx_, std::move(out));
  }

  // Key-directed exchange where the caller splits each record into
  // per-target fragments: `splitter(record, source_partition, &frags)`
  // appends (target, fragment) pairs. The columnar batch engine scatters
  // through this — the fragments are sub-batches holding only the
  // selected rows routed to each worker, so a filtered batch never
  // serializes its dead rows into the exchange. Accounting mirrors
  // ShuffleInto: every fragment enters the exchange, only fragments
  // landing on a different worker are billed as network traffic, and the
  // shuffle.* telemetry counters cover the fragment bytes.
  template <typename Splitter>
  Dataset<T> ScatterShuffle(Splitter splitter,
                            const char* label = "Scatter") const {
    const bool traced = ctx_->telemetry().enabled();
    const double span_begin_us =
        traced ? ctx_->telemetry().tracer().NowMicros() : 0.0;
    const int p = num_partitions();
    auto out = std::make_shared<Partitions>(p);
    std::vector<uint64_t> out_bytes(p, 0), in_bytes(p, 0);
    std::vector<uint64_t> in_counts(p, 0);
    uint64_t moved = 0;
    uint64_t exchanged = 0;
    std::vector<std::pair<int, T>> frags;
    common::CancellationToken& cancel = ctx_->cancellation();
    for (int i = 0; i < p; ++i) {
      in_counts[i] = (*partitions_)[i].size();
      for (const T& rec : (*partitions_)[i]) {
        if (cancel.CheckCancelled()) break;
        frags.clear();
        splitter(rec, i, &frags);
        for (auto& [target, frag] : frags) {
          assert(target >= 0 && target < p);
          const uint64_t b = (traced || target != i) ? RecordBytes(frag) : 0;
          if (traced) exchanged += b;
          if (target != i) {
            out_bytes[i] += b;
            in_bytes[target] += b;
            moved += b;
          }
          (*out)[target].push_back(std::move(frag));
        }
      }
    }
    const auto& cfg = ctx_->config();
    StageCost cost;
    cost.label = std::string(label) + "/Shuffle";
    double worst = 0.0;
    for (int i = 0; i < p; ++i) {
      worst = std::max(
          worst, static_cast<double>(in_counts[i]) * cfg.seconds_per_record);
    }
    cost.compute_sec = worst;
    cost.network_sec = ShuffleSeconds(out_bytes, in_bytes, cfg);
    cost.latency_sec = cfg.stage_latency_sec;
    ctx_->tracker().AddStage(cost);
    ctx_->tracker().AddNetworkBytes(moved);
    uint64_t total = 0;
    for (uint64_t n : in_counts) total += n;
    ctx_->tracker().AddRecords(total);
    if (traced) {
      telemetry::Telemetry& tel = ctx_->telemetry();
      tel.tracer().AddSpan(
          cost.label, telemetry::kCategoryStage, span_begin_us,
          tel.tracer().NowMicros(), /*worker=*/-1,
          {{"bytes", static_cast<double>(exchanged)},
           {"remote_bytes", static_cast<double>(moved)},
           {"records", static_cast<double>(total)}});
      tel.metrics().AddCounter("shuffle.count", 1);
      tel.metrics().AddCounter("shuffle.bytes", exchanged);
      tel.metrics().AddCounter("shuffle.bytes.remote", moved);
    }
    return Dataset<T>(ctx_, std::move(out));
  }

  // Every worker receives every record — the standalone counterpart of
  // the broadcast exchange HashJoin's kBroadcast strategy performs
  // inline, with identical network accounting and telemetry. The batch
  // join kernels broadcast whole column batches through this.
  Dataset<T> Replicate(const char* label = "Replicate") const {
    const int p = num_partitions();
    const bool traced = ctx_->telemetry().enabled();
    const double span_begin_us =
        traced ? ctx_->telemetry().tracer().NowMicros() : 0.0;
    std::vector<T> all;
    for (int i = 0; i < p; ++i) {
      all.insert(all.end(), (*partitions_)[i].begin(),
                 (*partitions_)[i].end());
    }
    auto out = std::make_shared<Partitions>();
    out->assign(p, all);
    // Network: worker w sends its partition to the (p-1) others and
    // receives everyone else's (the HashJoin broadcast formula).
    std::vector<uint64_t> out_bytes(p, 0), in_bytes(p, 0);
    uint64_t total_bytes = 0;
    for (int i = 0; i < p; ++i) {
      uint64_t b = 0;
      // cancellation: cost-model byte walk; the consuming kernel polls.
      for (const T& rec : (*partitions_)[i]) b += RecordBytes(rec);
      out_bytes[i] = b * (p - 1);
      total_bytes += b;
    }
    for (int i = 0; i < p; ++i) {
      uint64_t own = 0;
      // cancellation: cost-model byte walk (see above).
      for (const T& rec : (*partitions_)[i]) own += RecordBytes(rec);
      in_bytes[i] = total_bytes - own;
    }
    StageCost bc;
    bc.label = std::string(label) + "/Broadcast";
    bc.network_sec = ShuffleSeconds(out_bytes, in_bytes, ctx_->config());
    bc.latency_sec = ctx_->config().stage_latency_sec;
    ctx_->tracker().AddStage(bc);
    uint64_t moved = 0;
    for (uint64_t b : out_bytes) moved += b;
    ctx_->tracker().AddNetworkBytes(moved);
    ctx_->tracker().AddRecords(static_cast<uint64_t>(all.size()));
    if (traced) {
      telemetry::Telemetry& tel = ctx_->telemetry();
      tel.tracer().AddSpan(bc.label, telemetry::kCategoryStage,
                           span_begin_us, tel.tracer().NowMicros(),
                           /*worker=*/-1,
                           {{"bytes", static_cast<double>(moved)}});
      tel.metrics().AddCounter("shuffle.count", 1);
      tel.metrics().AddCounter("shuffle.bytes", moved);
      tel.metrics().AddCounter("shuffle.bytes.remote", moved);
    }
    return Dataset<T>(ctx_, std::move(out));
  }

  // Narrow binary per-partition transform over co-partitioned datasets —
  // the build+probe phase of a join whose exchange already ran.
  // `fn(partition, left_records, right_records, &out, &stats)` reports
  // the transient state it built (hash-table bytes and entries) through
  // `stats`, so the stage is priced exactly like HashJoin's BuildProbe:
  // both staged inputs charge the accountant for the stage's duration,
  // the spill model sees the per-partition state, and the table entries
  // charge kHashTableEntryBytes each before everything releases.
  template <typename Out, typename U, typename F>
  Dataset<Out> ZipPartitions(const Dataset<U>& right, F fn,
                             const char* label = "Zip") const {
    const int p = num_partitions();
    assert(p == right.num_partitions());
    auto out = std::make_shared<typename Dataset<Out>::Partitions>(p);
    MemoryAccountant& accountant = ctx_->accountant();
    uint64_t staged_bytes = 0;
    if (accountant.enabled()) {
      for (int i = 0; i < p; ++i) {
        // cancellation: accounting byte walk; the zip callback's kernel
        // loops poll once per record.
        for (const T& rec : (*partitions_)[i]) {
          staged_bytes += RecordBytes(rec);
        }
        // cancellation: accounting byte walk (see above).
        for (const U& rec : right.partition(i)) {
          staged_bytes += RecordBytes(rec);
        }
      }
      accountant.Charge(staged_bytes);
    }
    std::vector<uint64_t> work(p, 0);
    std::vector<uint64_t> out_counts(p, 0);
    std::vector<uint64_t> state_bytes(p, 0);
    std::vector<uint64_t> state_records(p, 0);
    const std::string stage_label = std::string(label) + "/BuildProbe";
    RunPerPartition(stage_label.c_str(), [&](int part) {
      ZipPartitionStats st;
      fn(part, (*partitions_)[part], right.partition(part), &(*out)[part],
         &st);
      work[part] = (*partitions_)[part].size() + right.partition(part).size();
      out_counts[part] = (*out)[part].size();
      state_bytes[part] = st.state_bytes;
      state_records[part] = st.state_records;
    });
    const auto& cfg = ctx_->config();
    StageCost cost;
    cost.label = stage_label;
    uint64_t total_in = 0, total_out = 0;
    double worst = 0.0;
    for (int i = 0; i < p; ++i) {
      worst = std::max(worst, static_cast<double>(work[i] + out_counts[i]) *
                                  cfg.seconds_per_record);
      total_in += work[i];
      total_out += out_counts[i];
    }
    cost.compute_sec = worst;
    uint64_t spilled = 0;
    cost.spill_sec = SpillSeconds(state_bytes, state_records, cfg, &spilled);
    cost.latency_sec = cfg.stage_latency_sec;
    ctx_->tracker().AddStage(cost);
    ctx_->tracker().AddRecords(total_in + total_out);
    ctx_->tracker().AddSpilledBytes(spilled);
    if (accountant.enabled()) {
      uint64_t table_entries = 0;
      for (const uint64_t n : state_records) table_entries += n;
      const uint64_t table_bytes = table_entries * kHashTableEntryBytes;
      accountant.Charge(table_bytes);
      accountant.Release(staged_bytes + table_bytes);
    }
    if (ctx_->telemetry().enabled()) {
      auto& metrics = ctx_->telemetry().metrics();
      metrics.AddCounter("stage.count", 1);
      metrics.AddCounter("stage.records_in", total_in);
      if (spilled > 0) metrics.AddCounter("spill.bytes", spilled);
      for (const uint64_t n : work) {
        metrics.Observe("stage.partition_records", static_cast<double>(n));
      }
    }
    return Dataset<Out>(ctx_, std::move(out));
  }

 private:
  template <typename>
  friend class Dataset;

  uint64_t CountLocal() const {
    uint64_t n = 0;
    // cancellation: O(partitions) size walk, no per-record work.
    for (const auto& part : *partitions_) n += part.size();
    return n;
  }

  // Charges the serialized bytes of a shuffled intermediate to the memory
  // accountant and returns them so the caller can Release on completion.
  // Returns 0 (and reads nothing) when accounting is off.
  template <typename U>
  uint64_t ChargeTransient(const Dataset<U>& staged) const {
    MemoryAccountant& accountant = ctx_->accountant();
    if (!accountant.enabled()) return 0;
    uint64_t bytes = 0;
    for (int i = 0; i < staged.num_partitions(); ++i) {
      // cancellation: accounting byte walk; the consuming kernel polls.
      for (const U& rec : staged.partition(i)) bytes += RecordBytes(rec);
    }
    accountant.Charge(bytes);
    return bytes;
  }

  // Runs fn(p) for each partition index on the host pool. The label only
  // feeds the telemetry task hook; with telemetry disabled no hook is
  // installed and the label is never read.
  void RunPerPartition(const char* label,
                       const std::function<void(int)>& fn) const {
    ctx_->pool().RunAndWait(num_partitions(), fn, label);
  }

  // Charges a narrow stage where every worker processed `per worker` share
  // of `in_records` uniformly (used when per-partition counts are equal or
  // unknown).
  void ChargeNarrowStage(const char* label, uint64_t in_records,
                         uint64_t out_records) const {
    const auto& cfg = ctx_->config();
    StageCost cost;
    cost.label = label;
    const double per_worker =
        static_cast<double>(in_records + out_records) / ctx_->num_workers();
    cost.compute_sec = per_worker * cfg.seconds_per_record;
    cost.latency_sec = cfg.stage_latency_sec;
    ctx_->tracker().AddStage(cost);
    ctx_->tracker().AddRecords(in_records);
    if (ctx_->telemetry().enabled()) {
      auto& metrics = ctx_->telemetry().metrics();
      metrics.AddCounter("stage.count", 1);
      metrics.AddCounter("stage.records_in", in_records);
    }
  }

  // Charges a narrow stage with known per-partition record counts
  // (simulated time = slowest worker, capturing skew).
  void ChargePerPartition(const char* label,
                          const std::vector<uint64_t>& in_counts,
                          const std::vector<uint64_t>& out_counts) const {
    const auto& cfg = ctx_->config();
    StageCost cost;
    cost.label = label;
    double worst = 0.0;
    uint64_t total = 0;
    for (size_t i = 0; i < in_counts.size(); ++i) {
      const uint64_t n = in_counts[i] + out_counts[i];
      worst = std::max(worst, static_cast<double>(n) * cfg.seconds_per_record);
      total += in_counts[i];
    }
    cost.compute_sec = worst;
    cost.latency_sec = cfg.stage_latency_sec;
    ctx_->tracker().AddStage(cost);
    ctx_->tracker().AddRecords(total);
    if (ctx_->telemetry().enabled()) {
      auto& metrics = ctx_->telemetry().metrics();
      metrics.AddCounter("stage.count", 1);
      metrics.AddCounter("stage.records_in", total);
      // Per-partition input sizes: the skew distribution behind ragged
      // same-stage task spans.
      for (const uint64_t n : in_counts) {
        metrics.Observe("stage.partition_records",
                        static_cast<double>(n));
      }
    }
  }

  // Hash-shuffles `src` partitions into `dst` partitions by key, charging
  // network time for records that change workers.
  template <typename KeyFn, typename Rec>
  void ShuffleInto(KeyFn key, const std::vector<std::vector<Rec>>& src,
                   std::vector<std::vector<Rec>>* dst,
                   const char* label) const {
    const bool traced = ctx_->telemetry().enabled();
    const double span_begin_us =
        traced ? ctx_->telemetry().tracer().NowMicros() : 0.0;
    const int p = num_partitions();
    dst->assign(p, {});
    std::vector<uint64_t> out_bytes(p, 0), in_bytes(p, 0);
    std::vector<uint64_t> in_counts(p, 0);
    uint64_t moved = 0;
    uint64_t exchanged = 0;
    using K = std::decay_t<std::invoke_result_t<KeyFn, const Rec&>>;
    std::hash<K> hasher;
    common::CancellationToken& cancel = ctx_->cancellation();
    for (int i = 0; i < p; ++i) {
      in_counts[i] = src[i].size();
      for (const Rec& rec : src[i]) {
        if (cancel.CheckCancelled()) break;
        const int target = static_cast<int>(hasher(key(rec)) % p);
        // Only the cost model distinguishes local from remote delivery;
        // the shuffle.bytes counter (Flink's numBytesOut) covers every
        // record entering the exchange, local channels included — that is
        // the volume an elided shuffle avoids serializing. Skip the size
        // computation entirely for untraced local records.
        const uint64_t b =
            (traced || target != i) ? RecordBytes(rec) : 0;
        if (traced) exchanged += b;
        if (target != i) {
          out_bytes[i] += b;
          in_bytes[target] += b;
          moved += b;
        }
        (*dst)[target].push_back(rec);
      }
    }
    const auto& cfg = ctx_->config();
    StageCost cost;
    cost.label = std::string(label) + "/Shuffle";
    double worst = 0.0;
    for (int i = 0; i < p; ++i) {
      worst = std::max(worst,
                       static_cast<double>(in_counts[i]) * cfg.seconds_per_record);
    }
    cost.compute_sec = worst;
    cost.network_sec = ShuffleSeconds(out_bytes, in_bytes, cfg);
    cost.latency_sec = cfg.stage_latency_sec;
    ctx_->tracker().AddStage(cost);
    ctx_->tracker().AddNetworkBytes(moved);
    uint64_t total = 0;
    for (uint64_t n : in_counts) total += n;
    ctx_->tracker().AddRecords(total);
    if (traced) {
      telemetry::Telemetry& tel = ctx_->telemetry();
      tel.tracer().AddSpan(
          cost.label, telemetry::kCategoryStage, span_begin_us,
          tel.tracer().NowMicros(), /*worker=*/-1,
          {{"bytes", static_cast<double>(exchanged)},
           {"remote_bytes", static_cast<double>(moved)},
           {"records", static_cast<double>(total)}});
      tel.metrics().AddCounter("shuffle.count", 1);
      tel.metrics().AddCounter("shuffle.bytes", exchanged);
      tel.metrics().AddCounter("shuffle.bytes.remote", moved);
    }
  }

  // Adopts `src` as the already-partitioned join-side layout: the
  // partitioning analysis proved every record sits at hash(key) % p, so
  // no exchange runs, no stage is charged and no network bytes accrue.
  // Counters record what was saved; with GRADOOP_AUDIT_PARTITIONING set,
  // every record is re-hashed and the process hard-fails on the first
  // one the proof misplaced.
  template <typename KeyFn, typename Rec>
  void AdoptPrepartitioned(KeyFn key,
                           const std::vector<std::vector<Rec>>& src,
                           std::vector<std::vector<Rec>>* dst,
                           const char* label) const {
    if (PartitioningAuditEnabled()) {
      uint64_t checked = 0;
      const uint64_t misplaced = CountMisplacedRecords(src, key, &checked);
      PartitioningAuditStats::Instance().RecordCheck(checked, misplaced);
      if (misplaced != 0) {
        std::fprintf(stderr,
                     "[gradoop] partitioning audit FAILED at %s: %llu of "
                     "%llu records of an elided shuffle sit in the wrong "
                     "partition — the partitioning analysis is unsound\n",
                     label, static_cast<unsigned long long>(misplaced),
                     static_cast<unsigned long long>(checked));
        std::abort();
      }
    }
    *dst = src;
    if (ctx_->telemetry().enabled()) {
      uint64_t bytes = 0, records = 0;
      // cancellation: telemetry byte walk over an adopted (zero-copy)
      // shuffle; the join kernel consuming the adopted layout polls.
      for (const auto& part : src) {
        records += part.size();
        for (const Rec& rec : part) bytes += RecordBytes(rec);
      }
      telemetry::Telemetry& tel = ctx_->telemetry();
      tel.metrics().AddCounter("shuffle.elided.count", 1);
      tel.metrics().AddCounter("shuffle.elided.bytes", bytes);
      const double now_us = tel.tracer().NowMicros();
      tel.tracer().AddSpan(std::string(label) + "/ShuffleElided",
                           telemetry::kCategoryStage, now_us, now_us,
                           /*worker=*/-1,
                           {{"bytes_saved", static_cast<double>(bytes)},
                            {"records", static_cast<double>(records)}});
    }
  }

  // Same as ShuffleInto but reads from another dataset's partitions.
  template <typename KeyFn, typename U>
  void ShuffleIntoOther(KeyFn key, const Dataset<U>& other,
                        std::vector<std::vector<U>>* dst,
                        const char* label) const {
    ShuffleInto(key, *other.partitions_, dst, label);
  }

  ExecutionContextPtr ctx_;
  std::shared_ptr<Partitions> partitions_;
};

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_DATASET_H_
