#ifndef GRADOOP_DATAFLOW_CLUSTER_CONFIG_H_
#define GRADOOP_DATAFLOW_CLUSTER_CONFIG_H_

#include <cstdint>

namespace gradoop::dataflow {

// Parameters of the simulated shared-nothing cluster.
//
// The engine executes for real on the host's threads, but every dataset
// transformation additionally charges a *simulated* distributed execution
// time against this model. The defaults mirror the paper's testbed: 16
// workers, 1 GBit Ethernet, 40 GB Flink memory per worker (scaled down to
// our miniature data sizes so that the same spill/no-spill transitions
// occur at the same relative points).
struct ClusterConfig {
  // Number of simulated workers; each owns exactly one partition of every
  // dataset. Range used in the paper's experiments: 1..16.
  int num_workers = 4;

  // Effective application-level network throughput per worker for
  // shuffle traffic. The paper's cluster has 1 GBit Ethernet (125 MB/s
  // raw); measured Flink shuffle throughput per worker is a fraction of
  // that once (de)serialization and framing are paid.
  double network_bytes_per_sec = 25.0e6;

  // CPU cost charged per record processed by a transformation. Calibrated
  // so that the miniature datasets produce runtimes in the paper's range
  // (the paper's per-record cost includes Java object and serialization
  // overheads, far above a tight C++ loop).
  double seconds_per_record = 5.0e-5;

  // Fixed coordination latency charged once per dataflow stage
  // (scheduling, task deployment). Caps achievable speedup on small
  // inputs, reproducing the paper's SF-10 stagnation beyond 4 workers.
  double stage_latency_sec = 0.02;

  // Memory available per worker for join/iteration state. When a stage's
  // per-worker state exceeds this budget, the excess is charged a
  // write+read pass against disk_bytes_per_sec (Flink spilling). More
  // workers -> more aggregate memory -> spills disappear, which is the
  // paper's explanation for observed super-linear speedups.
  uint64_t worker_memory_bytes = 4ull << 20;  // 4 MiB

  // Effective disk bandwidth for spill accounting (random-ish I/O on
  // SATA disks shared by all of a worker's threads).
  double disk_bytes_per_sec = 20.0e6;

  // Number of host threads used for the real execution. 0 = hardware
  // concurrency. Independent of num_workers: simulated time never depends
  // on the host's parallelism.
  int host_threads = 0;
};

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_CLUSTER_CONFIG_H_
