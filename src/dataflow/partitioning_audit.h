#ifndef GRADOOP_DATAFLOW_PARTITIONING_AUDIT_H_
#define GRADOOP_DATAFLOW_PARTITIONING_AUDIT_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"

namespace gradoop::dataflow {

// Runtime audit of the compile-time partitioning analysis
// (query/exec/partitioning.h). The analysis lets Dataset::HashJoin adopt
// a pre-partitioned input without shuffling it; an unsound transfer
// function would not crash but silently match records in the wrong
// partition and drop results. With GRADOOP_AUDIT_PARTITIONING set (CI
// runs the debug trees this way), every elided shuffle re-hashes each
// record and the join hard-fails on the first misplaced one.

inline bool PartitioningAuditEnabled() {
  // Read per call, not cached: tests toggle the variable around
  // individual executions with setenv/unsetenv.
  return std::getenv("GRADOOP_AUDIT_PARTITIONING") != nullptr;
}

// Counts records whose key does not hash back to the partition holding
// them — exactly the check an elided shuffle claims is unnecessary. Uses
// the same std::hash the shuffle itself routes by. Exposed for unit
// tests; HashJoin aborts when this returns non-zero.
template <typename Rec, typename KeyFn>
uint64_t CountMisplacedRecords(const std::vector<std::vector<Rec>>& parts,
                               KeyFn key,
                               uint64_t* records_checked = nullptr) {
  using K = std::decay_t<std::invoke_result_t<KeyFn, const Rec&>>;
  std::hash<K> hasher;
  const size_t p = parts.size();
  uint64_t misplaced = 0;
  uint64_t checked = 0;
  for (size_t i = 0; i < p; ++i) {
    for (const Rec& rec : parts[i]) {
      ++checked;
      if (p != 0 && hasher(key(rec)) % p != i) ++misplaced;
    }
  }
  if (records_checked != nullptr) *records_checked = checked;
  return misplaced;
}

// Process-wide tally of audit activity, so tests can assert the audit
// actually ran (a disabled audit trivially "passes"). Joins of one query
// execute concurrently on the host pool, hence the annotated lock — the
// -Wthread-safety gate covers these counters like every other shared
// telemetry path.
class PartitioningAuditStats {
 public:
  static PartitioningAuditStats& Instance() {
    static PartitioningAuditStats stats;
    return stats;
  }

  void RecordCheck(uint64_t records, uint64_t misplaced) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    checks_ += 1;
    records_checked_ += records;
    misplaced_records_ += misplaced;
  }

  uint64_t checks() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return checks_;
  }
  uint64_t records_checked() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return records_checked_;
  }
  uint64_t misplaced_records() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return misplaced_records_;
  }

  void Reset() EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    checks_ = 0;
    records_checked_ = 0;
    misplaced_records_ = 0;
  }

 private:
  PartitioningAuditStats() = default;

  mutable common::Mutex mu_{common::LockRank::kDataflow,
                            "dataflow.partitioning_audit"};
  uint64_t checks_ GUARDED_BY(mu_) = 0;
  uint64_t records_checked_ GUARDED_BY(mu_) = 0;
  uint64_t misplaced_records_ GUARDED_BY(mu_) = 0;
};

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_PARTITIONING_AUDIT_H_
