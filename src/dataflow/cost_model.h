#ifndef GRADOOP_DATAFLOW_COST_MODEL_H_
#define GRADOOP_DATAFLOW_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "dataflow/cluster_config.h"

namespace gradoop::dataflow {

// Cost of one dataflow stage under the simulated cluster model. Produced by
// each dataset transformation and folded into the CostTracker.
struct StageCost {
  std::string label;            // operator name, for traces
  double compute_sec = 0.0;     // max over workers of per-worker CPU time
  double network_sec = 0.0;     // shuffle time (max per-worker in+out bytes)
  double spill_sec = 0.0;       // disk penalty for memory overflow
  double latency_sec = 0.0;     // fixed stage coordination latency

  double TotalSeconds() const {
    return compute_sec + network_sec + spill_sec + latency_sec;
  }
};

// Aggregated simulated-execution statistics for one dataflow job.
// Thread-safe: transformations running on the pool record stages
// concurrently.
class CostTracker {
 public:
  CostTracker() = default;

  void AddStage(const StageCost& cost);

  void AddNetworkBytes(uint64_t bytes);
  void AddSpilledBytes(uint64_t bytes);
  void AddRecords(uint64_t records);

  // Total simulated wall-clock seconds across all recorded stages
  // (stages execute back-to-back, as in a Flink batch job).
  double SimulatedSeconds() const;
  uint64_t NetworkBytes() const;
  uint64_t SpilledBytes() const;
  uint64_t TotalRecords() const;
  int NumStages() const;

  // Per-stage trace in execution order.
  std::vector<StageCost> Stages() const;

  void Reset();

 private:
  mutable common::Mutex mu_{common::LockRank::kDataflow,
                            "dataflow.cost_tracker"};
  std::vector<StageCost> stages_ GUARDED_BY(mu_);
  double simulated_sec_ GUARDED_BY(mu_) = 0.0;
  uint64_t network_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t spilled_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t total_records_ GUARDED_BY(mu_) = 0;
};

// Computes shuffle time for an all-to-all exchange. `out_bytes[w]` /
// `in_bytes[w]` are the bytes worker w sends to / receives from *remote*
// workers. Each worker's NIC is full-duplex; the stage finishes when the
// slowest worker has both sent and received its share.
double ShuffleSeconds(const std::vector<uint64_t>& out_bytes,
                      const std::vector<uint64_t>& in_bytes,
                      const ClusterConfig& config);

// Computes the spill penalty for per-worker state. Bytes beyond the
// worker memory budget pay one write and one read pass against the disk,
// and — the dominant cost in Flink — each spilled record additionally
// pays serialization + deserialization (2x the per-record CPU cost).
// `state_records[w]` is the record count behind `state_bytes[w]`; the
// spilled record share is assumed proportional to the spilled bytes.
double SpillSeconds(const std::vector<uint64_t>& state_bytes,
                    const std::vector<uint64_t>& state_records,
                    const ClusterConfig& config, uint64_t* spilled_bytes);

}  // namespace gradoop::dataflow

#endif  // GRADOOP_DATAFLOW_COST_MODEL_H_
