#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gradoop {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(&state);
  s1_ = SplitMix64(&state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift128+ must not be all-zero
}

uint64_t Random::NextUint64() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::NextInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Random::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Random::NextBool(double p) { return NextDouble() < p; }

uint64_t Random::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
  }
  const double u = NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

uint64_t Random::NextPowerLawDegree(uint64_t min_degree, uint64_t max_degree,
                                    double alpha) {
  assert(min_degree >= 1 && min_degree <= max_degree);
  // Inverse-CDF sampling of a continuous power law, rounded down. For
  // alpha != 1: x = (lo^(1-a) + u * (hi^(1-a) - lo^(1-a)))^(1/(1-a)).
  const double lo = static_cast<double>(min_degree);
  const double hi = static_cast<double>(max_degree) + 1.0;
  const double u = NextDouble();
  const double one_minus_a = 1.0 - alpha;
  double x;
  if (std::abs(one_minus_a) < 1e-9) {
    x = lo * std::pow(hi / lo, u);
  } else {
    const double lo_p = std::pow(lo, one_minus_a);
    const double hi_p = std::pow(hi, one_minus_a);
    x = std::pow(lo_p + u * (hi_p - lo_p), 1.0 / one_minus_a);
  }
  const uint64_t d = static_cast<uint64_t>(x);
  return std::min(std::max(d, min_degree), max_degree);
}

}  // namespace gradoop
