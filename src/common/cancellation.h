#ifndef GRADOOP_COMMON_CANCELLATION_H_
#define GRADOOP_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gradoop::common {

// Why a query stopped early. kInjected is the GRADOOP_AUDIT_CANCELLATION
// fault-injection path; user-visible diagnostics only distinguish
// explicit cancellation from a deadline.
enum class CancelReason {
  kNone = 0,
  kExplicit,  // Cancel() handle / RequestCancel()
  kDeadline,  // per-query deadline expired
  kInjected,  // cancellation audit tripped the token at a checkpoint
};

const char* CancelReasonName(CancelReason reason);

// Cooperative cancellation flag + optional deadline for one query,
// owned by the ExecutionContext and polled from kernel loops at the
// checkpoints the interruptibility analysis (query/exec/
// interruptibility.h) claims. Same cost contract as telemetry: while no
// cancel, deadline or injection is armed, CheckCancelled() is a single
// relaxed atomic load and performs no clock reads.
//
// Thread safety: polled concurrently from pool worker threads while the
// driver (or any other thread) may RequestCancel(). All state is atomic;
// the token itself never blocks.
class CancellationToken {
 public:
  // Deadline expiry is only evaluated every kDeadlineCheckStride armed
  // polls so a deadline does not buy a clock read per record. Operator
  // and phase boundaries use CancelledOrExpired(), which always reads
  // the clock, so expiry latency is bounded by one kernel stage.
  static constexpr uint64_t kDeadlineCheckStride = 64;

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // The kernel checkpoint (the poll CC007 looks for): returns true once
  // the token has tripped. Counts armed polls — the cancellation audit
  // uses the counter both to inject cancellation at a randomized
  // checkpoint and to measure how many checkpoints elapse between the
  // trip and the query unwinding.
  bool CheckCancelled() {
    // relaxed: the disarmed fast path is one load with no ordering
    // requirement — polls are advisory and all counters are monotonic.
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return PollSlow();
  }

  // Pure observation: has the token tripped? No counting, no clock read.
  bool cancelled() const {
    // relaxed: readers only need eventual visibility of the flag.
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Boundary check: tripped flag OR deadline expiry evaluated against
  // the clock right now. Used between kernel stages and pipeline phases
  // where one extra clock read is noise.
  bool CancelledOrExpired();

  // Trips the token explicitly (the engine's Cancel() handle). Safe from
  // any thread, idempotent.
  void RequestCancel() { Trip(CancelReason::kExplicit); }

  // Arms a deadline; polls past it trip the token with kDeadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline);

  // Audit injection: the n-th armed poll (1-based) trips the token with
  // kInjected. 0 disarms injection.
  void InjectCancelAfter(uint64_t polls);

  // Re-arms the token for a fresh query: clears the flag, reason,
  // deadline, injection and counters.
  void Reset();

  CancelReason reason() const {
    // relaxed: written once by Trip before cancelled_ is set; readers
    // tolerate the tiny window by treating kNone as "not tripped yet".
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  // Armed polls observed so far / at the moment the token tripped.
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  uint64_t trip_poll() const {
    return trip_poll_.load(std::memory_order_relaxed);
  }
  // Checkpoints that elapsed after the trip — the quantity the
  // cancellation audit bounds against the plan's interruptibility claim.
  uint64_t polls_after_trip() const;

  // Seconds between the trip and now; 0 when the token has not tripped.
  // Feeds the query.cancel.latency_us histogram.
  double SecondsSinceTrip() const;

 private:
  bool PollSlow();
  void Trip(CancelReason reason);

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // relaxed everywhere: the token is a monotonic latch (disarmed ->
  // armed -> tripped) plus advisory counters; no poll site derives
  // happens-before edges from it.
  std::atomic<bool> armed_{false};      // relaxed: fast-path gate
  std::atomic<bool> cancelled_{false};  // relaxed: the monotonic latch
  // relaxed: written once by the winning tripper, before cancelled_.
  std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
  std::atomic<uint64_t> polls_{0};      // relaxed: advisory tally
  std::atomic<uint64_t> trip_poll_{0};  // relaxed: audit snapshot
  // relaxed: armed before execution; 0 = injection disarmed.
  std::atomic<uint64_t> inject_after_{0};
  // relaxed: steady-clock ns, armed before execution; 0 = none.
  std::atomic<int64_t> deadline_ns_{0};
  std::atomic<int64_t> trip_ns_{0};    // relaxed: audit timestamp
  std::atomic<bool> trip_claim_{false};  // relaxed CAS: first-tripper latch
};

}  // namespace gradoop::common

#endif  // GRADOOP_COMMON_CANCELLATION_H_
