#ifndef GRADOOP_COMMON_RESULT_H_
#define GRADOOP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gradoop {

// A value-or-error holder, the return type of fallible functions that produce
// a value (e.g. the Cypher parser). Either holds a T (status is OK) or a
// non-OK Status.
//
//   Result<Query> r = Parse(text);
//   if (!r.ok()) return r.status();
//   Use(r.value());
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error status keeps call
  // sites terse: `return query;` or `return Status::ParseError(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `expr` (a Result<T>), propagates its error, otherwise binds the
// moved value to `lhs`.
#define GRADOOP_ASSIGN_OR_RETURN(lhs, expr)                   \
  auto GRADOOP_CONCAT_(_res_, __LINE__) = (expr);             \
  if (!GRADOOP_CONCAT_(_res_, __LINE__).ok())                 \
    return GRADOOP_CONCAT_(_res_, __LINE__).status();         \
  lhs = std::move(GRADOOP_CONCAT_(_res_, __LINE__)).value()

#define GRADOOP_CONCAT_(a, b) GRADOOP_CONCAT_IMPL_(a, b)
#define GRADOOP_CONCAT_IMPL_(a, b) a##b

}  // namespace gradoop

#endif  // GRADOOP_COMMON_RESULT_H_
