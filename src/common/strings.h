#ifndef GRADOOP_COMMON_STRINGS_H_
#define GRADOOP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace gradoop {

// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view text, char sep);

// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// ASCII case-insensitive equality (Cypher keywords are case-insensitive).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Uppercases ASCII letters.
std::string ToUpperAscii(std::string_view text);

}  // namespace gradoop

#endif  // GRADOOP_COMMON_STRINGS_H_
