#ifndef GRADOOP_COMMON_TIMER_H_
#define GRADOOP_COMMON_TIMER_H_

#include <chrono>

namespace gradoop {

// Wall-clock stopwatch for benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gradoop

#endif  // GRADOOP_COMMON_TIMER_H_
