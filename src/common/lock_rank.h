#ifndef GRADOOP_COMMON_LOCK_RANK_H_
#define GRADOOP_COMMON_LOCK_RANK_H_

// Static lock ranks + a debug-build deadlock checker for common::Mutex.
//
// Every mutex in the engine belongs to one subsystem layer, and the
// layers form a total order:
//
//   telemetry < dataflow < exec < engine
//
// The allowed acquisition order is strictly DOWNWARD: a thread may
// acquire a mutex only while every mutex it already holds has a
// strictly higher rank. Outer layers lock first (an engine-level cache
// may charge the cost model, which may record telemetry), leaf layers
// lock last, and no layer may ever wait on a layer above it — which
// makes cross-thread lock cycles, and therefore lock-order deadlocks,
// structurally impossible. The ranks double as documentation: they are
// the lock order the shared morsel scheduler (ROADMAP item 1) must
// respect when queries start sharing this state.
//
// Enforcement: in checked builds (!NDEBUG, or any build with
// GRADOOP_FORCE_LOCK_RANK_CHECKS defined) each thread keeps a stack of
// the ranked mutexes it holds; an acquisition that does not descend
// strictly aborts the process, printing the offending mutex and the
// full held-lock stack. Release builds compile the hooks out of
// Mutex::lock/unlock entirely — bench_lock_rank_overhead pins that the
// ranked mutex then costs exactly a raw std::mutex. The checker
// functions themselves stay compiled in every build so tests and the
// bench can drive them directly.
//
// kUnranked mutexes (the default for Mutex's rank-less constructor) are
// exempt: they are neither tracked nor constrained. Engine code should
// always pass a rank; the escape hatch exists for scratch/test mutexes
// whose scope never spans subsystems.

#include <cstddef>

#if !defined(NDEBUG) || defined(GRADOOP_FORCE_LOCK_RANK_CHECKS)
#define GRADOOP_LOCK_RANK_CHECKS 1
#else
#define GRADOOP_LOCK_RANK_CHECKS 0
#endif

namespace gradoop::common {

// Subsystem layers, ordered leaf-most first. Keep this in sync with the
// table in docs/concurrency.md.
enum class LockRank : int {
  kUnranked = 0,   // exempt from checking; avoid in engine code
  kTelemetry = 1,  // metrics shards, tracer shards (leaf: lock nothing under)
  kDataflow = 2,   // thread pool, cost tracker, partitioning audit
  kExec = 3,       // compiled-operator / scan-sharing state (reserved)
  kEngine = 4,     // engine-wide caches, sessions (reserved)
};

// Human-readable layer name ("telemetry", "dataflow", ...).
const char* LockRankName(LockRank rank);

// True when Mutex::lock/unlock run the rank checker in this build.
constexpr bool LockRankCheckingEnabled() {
  return GRADOOP_LOCK_RANK_CHECKS != 0;
}

// --- checker core (always compiled; Mutex calls it only in checked
// builds, tests and bench_lock_rank_overhead call it directly) ---

// Validates that acquiring (`rank`, `name`, identity `mutex`) strictly
// descends from everything this thread holds, then pushes it onto the
// per-thread held stack. On a violation prints the acquisition and the
// held-lock stack to stderr and aborts. kUnranked is a no-op.
void RankCheckAcquire(LockRank rank, const char* name, const void* mutex);

// Pops `mutex` from this thread's held stack (out-of-order release is
// legal and handled). Unknown mutexes are ignored, so enabling checks
// mid-run cannot abort on a release. kUnranked is a no-op.
void RankCheckRelease(LockRank rank, const void* mutex);

// Number of ranked mutexes the calling thread currently holds
// (test/bench observability).
size_t RankedLocksHeld();

}  // namespace gradoop::common

#endif  // GRADOOP_COMMON_LOCK_RANK_H_
