#include "common/strings.h"

#include <cctype>

namespace gradoop {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpperAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace gradoop
