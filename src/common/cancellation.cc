#include "common/cancellation.h"

namespace gradoop::common {

const char* CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kExplicit:
      return "cancelled";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kInjected:
      return "injected";
  }
  return "unknown";
}

bool CancellationToken::CancelledOrExpired() {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && NowNs() >= deadline) {
    Trip(CancelReason::kDeadline);
    return true;
  }
  return false;
}

void CancellationToken::SetDeadline(
    std::chrono::steady_clock::time_point deadline) {
  deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         deadline.time_since_epoch())
                         .count(),
                     std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

void CancellationToken::InjectCancelAfter(uint64_t polls) {
  inject_after_.store(polls, std::memory_order_relaxed);
  if (polls != 0) armed_.store(true, std::memory_order_relaxed);
}

void CancellationToken::Reset() {
  armed_.store(false, std::memory_order_relaxed);
  trip_claim_.store(false, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  reason_.store(static_cast<int>(CancelReason::kNone),
                std::memory_order_relaxed);
  polls_.store(0, std::memory_order_relaxed);
  trip_poll_.store(0, std::memory_order_relaxed);
  inject_after_.store(0, std::memory_order_relaxed);
  deadline_ns_.store(0, std::memory_order_relaxed);
  trip_ns_.store(0, std::memory_order_relaxed);
}

uint64_t CancellationToken::polls_after_trip() const {
  if (!cancelled_.load(std::memory_order_relaxed)) return 0;
  const uint64_t total = polls_.load(std::memory_order_relaxed);
  const uint64_t at_trip = trip_poll_.load(std::memory_order_relaxed);
  return total > at_trip ? total - at_trip : 0;
}

double CancellationToken::SecondsSinceTrip() const {
  const int64_t tripped_at = trip_ns_.load(std::memory_order_relaxed);
  if (tripped_at == 0) return 0.0;
  return static_cast<double>(NowNs() - tripped_at) * 1e-9;
}

bool CancellationToken::PollSlow() {
  const uint64_t n = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  const uint64_t inject = inject_after_.load(std::memory_order_relaxed);
  if (inject != 0 && n >= inject) {
    Trip(CancelReason::kInjected);
    return true;
  }
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 &&
      (n == 1 || n % kDeadlineCheckStride == 0) &&
      NowNs() >= deadline) {
    Trip(CancelReason::kDeadline);
    return true;
  }
  return false;
}

void CancellationToken::Trip(CancelReason reason) {
  // First tripper wins: reason/trip metadata are written exactly once,
  // before cancelled_ flips, so readers of reason() after observing
  // cancelled() see consistent values (relaxed is fine — every field is
  // written by the single winning CAS owner).
  bool expected = false;
  // relaxed CAS: the latch carries no payload other than these fields.
  if (!trip_claim_.compare_exchange_strong(expected, true,
                                           std::memory_order_relaxed)) {
    return;
  }
  reason_.store(static_cast<int>(reason), std::memory_order_relaxed);
  trip_poll_.store(polls_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  // A deadline trip backdates to the deadline itself, not the poll that
  // noticed it: SecondsSinceTrip() then measures how far execution
  // overran the deadline, which is exactly the overrun an unpolled loop
  // causes — the cancellation audit's latency budget catches it even
  // though the loop never touched the poll counters.
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  trip_ns_.store(reason == CancelReason::kDeadline && deadline != 0
                     ? deadline
                     : NowNs(),
                 std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
  cancelled_.store(true, std::memory_order_relaxed);
}

}  // namespace gradoop::common
