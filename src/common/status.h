#ifndef GRADOOP_COMMON_STATUS_H_
#define GRADOOP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace gradoop {

// Error category for a failed operation. Mirrors the small set of failure
// modes that occur in the query pipeline; most call sites only distinguish
// ok() from !ok() and surface the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed (e.g. bad CSV row)
  kParseError,        // Cypher text could not be parsed
  kPlanError,         // no valid execution plan could be constructed
  kExecutionError,    // a query operator failed at runtime
  kNotFound,          // a referenced entity (variable, label, file) is missing
  kUnsupported,       // syntactically valid but outside the implemented subset
  kInternal,          // invariant violation; indicates a bug
};

// Returns a stable human-readable name, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

// Result of a fallible operation. The library does not use exceptions
// (Google style); every fallible API returns Status or Result<T>.
//
// Usage:
//   Status s = DoThing();
//   if (!s.ok()) return s;
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Propagates a non-OK status to the caller.
#define GRADOOP_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::gradoop::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace gradoop

#endif  // GRADOOP_COMMON_STATUS_H_
