#ifndef GRADOOP_COMMON_RANDOM_H_
#define GRADOOP_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace gradoop {

// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). All synthetic
// data in the repository is generated through this class so that tests and
// benchmarks are reproducible across runs and platforms.
class Random {
 public:
  explicit Random(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);
  // Uniform in [lo, hi], inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);
  // Uniform in [0, 1).
  double NextDouble();
  // True with probability p.
  bool NextBool(double p);

  // Samples an index in [0, n) under a Zipf distribution with exponent s:
  // P(i) ~ 1/(i+1)^s. Used for skewed property values (e.g. first names).
  // Precomputes the CDF on first use for a given (n, s).
  uint64_t NextZipf(uint64_t n, double s);

  // Samples a vertex degree from a discrete power law with exponent alpha
  // on [min_degree, max_degree]: P(d) ~ d^-alpha. Used for `knows` degrees,
  // matching the LDBC generator's power-law degree distribution.
  uint64_t NextPowerLawDegree(uint64_t min_degree, uint64_t max_degree,
                              double alpha);

 private:
  uint64_t s0_;
  uint64_t s1_;

  // Cached Zipf CDF for the last (n, s) pair requested.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace gradoop

#endif  // GRADOOP_COMMON_RANDOM_H_
