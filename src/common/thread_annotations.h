#ifndef GRADOOP_COMMON_THREAD_ANNOTATIONS_H_
#define GRADOOP_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety analysis annotations plus a minimally annotated
// Mutex/MutexLock pair. Under Clang, ci/check.sh's -Wthread-safety (and
// -Werror in the plain tree) turns "touched shared state without the
// lock" into a compile error; under GCC every macro expands to nothing
// and Mutex degrades to a plain std::mutex wrapper.
//
// Annotate the data, not the code: fields get GUARDED_BY(mu_), private
// helpers that expect the lock get REQUIRES(mu_). The analysis is
// per-function and needs no runtime support.

#include <mutex>

#include "common/lock_rank.h"

#if defined(__clang__) && defined(__has_attribute)
#define GRADOOP_HAS_THREAD_ANNOTATIONS 1
#define GRADOOP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GRADOOP_HAS_THREAD_ANNOTATIONS 0
#define GRADOOP_THREAD_ANNOTATION(x)
#endif

#define GRADOOP_CAPABILITY(x) GRADOOP_THREAD_ANNOTATION(capability(x))
#define GRADOOP_SCOPED_CAPABILITY GRADOOP_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) GRADOOP_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) GRADOOP_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  GRADOOP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) GRADOOP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) GRADOOP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EXCLUDES(...) GRADOOP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) GRADOOP_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  GRADOOP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gradoop::common {

// std::mutex with the capability attribute the analysis keys on. Waiting
// code pairs it with std::condition_variable_any, which accepts any
// lockable (std::condition_variable requires std::unique_lock —
// incompatible with an annotated wrapper).
//
// Every engine mutex also declares its lock rank (common/lock_rank.h):
// checked builds abort on any acquisition that violates the engine-wide
// lock order, release builds compile the hooks out completely. The
// rank-less constructor yields an unranked, unchecked mutex — meant for
// scratch/test state only; engine code passes a rank and a stable name
// for the abort message.
class GRADOOP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if GRADOOP_LOCK_RANK_CHECKS
    // Check BEFORE blocking on the lock: an inversion must abort with
    // both stacks printed, not park the thread in the deadlock it was
    // about to create.
    RankCheckAcquire(rank_, name_, this);
#endif
    mu_.lock();
  }
  void unlock() RELEASE() {
    mu_.unlock();
#if GRADOOP_LOCK_RANK_CHECKS
    RankCheckRelease(rank_, this);
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "unranked";
};

// RAII lock for Mutex, visible to the analysis as a scoped capability.
class GRADOOP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace gradoop::common

#endif  // GRADOOP_COMMON_THREAD_ANNOTATIONS_H_
