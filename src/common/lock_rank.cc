#include "common/lock_rank.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace gradoop::common {

namespace {

struct HeldLock {
  LockRank rank;
  const char* name;
  const void* mutex;
};

// Per-thread stack of ranked mutexes in acquisition order. Function-local
// so first use on a thread constructs it lazily; the enforced strict
// descent means back() always has the minimum held rank.
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

[[noreturn]] void AbortOnInversion(LockRank rank, const char* name,
                                   const std::vector<HeldLock>& held) {
  std::fprintf(stderr,
               "lock-rank violation: acquiring \"%s\" (rank %s) would not "
               "descend strictly below every held lock\nheld by this thread "
               "(acquisition order):\n",
               name != nullptr ? name : "?", LockRankName(rank));
  for (size_t i = 0; i < held.size(); ++i) {
    std::fprintf(stderr, "  #%zu \"%s\" (rank %s)\n", i,
                 held[i].name != nullptr ? held[i].name : "?",
                 LockRankName(held[i].rank));
  }
  std::fprintf(stderr,
               "allowed order: engine > exec > dataflow > telemetry — outer "
               "layers lock first, leaves last (docs/concurrency.md)\n");
  std::abort();
}

}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "unranked";
    case LockRank::kTelemetry:
      return "telemetry";
    case LockRank::kDataflow:
      return "dataflow";
    case LockRank::kExec:
      return "exec";
    case LockRank::kEngine:
      return "engine";
  }
  return "?";
}

void RankCheckAcquire(LockRank rank, const char* name, const void* mutex) {
  if (rank == LockRank::kUnranked) return;
  std::vector<HeldLock>& held = HeldStack();
  // Strict descent also rejects same-rank nesting: two locks of one layer
  // held together would allow an A/B–B/A cycle within the layer (and a
  // re-entrant self-lock becomes a rank abort instead of a silent hang).
  if (!held.empty() && static_cast<int>(rank) >=
                           static_cast<int>(held.back().rank)) {
    AbortOnInversion(rank, name, held);
  }
  held.push_back(HeldLock{rank, name, mutex});
}

void RankCheckRelease(LockRank rank, const void* mutex) {
  if (rank == LockRank::kUnranked) return;
  std::vector<HeldLock>& held = HeldStack();
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].mutex == mutex) {
      held.erase(held.begin() + static_cast<long>(i - 1));
      return;
    }
  }
}

size_t RankedLocksHeld() { return HeldStack().size(); }

}  // namespace gradoop::common
