#ifndef GRADOOP_CYPHER_EXPRESSION_H_
#define GRADOOP_CYPHER_EXPRESSION_H_

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cypher/source_span.h"
#include "epgm/property_value.h"

namespace gradoop::cypher {

// Binary comparison operators of the WHERE clause.
enum class ComparisonOp {
  kEq,   // =
  kNeq,  // <>
  kLt,   // <
  kLte,  // <=
  kGt,   // >
  kGte,  // >=
};

ComparisonOp NegateComparison(ComparisonOp op);
const char* ComparisonOpName(ComparisonOp op);

enum class ExprKind {
  kLiteral,         // 'Uni Leipzig', 2014, true, NULL
  kPropertyAccess,  // p1.gender
  kVariable,        // bare element reference (only `a = b` / `a <> b`
                    // comparisons reach the analyzer; never executed —
                    // semantic analysis folds or rejects every occurrence)
  kComparison,      // lhs op rhs
  kAnd,
  kOr,
  kXor,
  kNot,
};

class Expression;
// Expression trees are immutable and share subtrees freely (CNF rewriting
// duplicates references, not nodes).
using ExpressionPtr = std::shared_ptr<const Expression>;

// A WHERE-clause expression. One node type with a kind discriminator keeps
// the recursive-descent parser and the CNF rewriter compact.
class Expression {
 public:
  static ExpressionPtr Literal(epgm::PropertyValue value,
                               SourceSpan span = {});
  static ExpressionPtr PropertyAccess(std::string variable, std::string key,
                                      SourceSpan span = {});
  static ExpressionPtr Variable(std::string variable, SourceSpan span = {});
  static ExpressionPtr Comparison(ComparisonOp op, ExpressionPtr lhs,
                                  ExpressionPtr rhs, SourceSpan span = {});
  static ExpressionPtr And(ExpressionPtr lhs, ExpressionPtr rhs);
  static ExpressionPtr Or(ExpressionPtr lhs, ExpressionPtr rhs);
  static ExpressionPtr Xor(ExpressionPtr lhs, ExpressionPtr rhs);
  static ExpressionPtr Not(ExpressionPtr operand, SourceSpan span = {});

  ExprKind kind() const { return kind_; }
  // Location of the source fragment this node was parsed from; synthesized
  // nodes (CNF rewriting, property-map sugar) inherit their source's span.
  const SourceSpan& span() const { return span_; }
  const epgm::PropertyValue& literal() const { return literal_; }
  const std::string& variable() const { return variable_; }
  const std::string& property_key() const { return property_key_; }
  ComparisonOp comparison_op() const { return op_; }
  const ExpressionPtr& left() const { return left_; }
  const ExpressionPtr& right() const { return right_; }

  // Collects every `variable.key` pair referenced in the subtree. These
  // drive embedding projection: only referenced properties are carried.
  void CollectPropertyAccesses(
      std::set<std::pair<std::string, std::string>>* out) const;
  // Collects the set of query variables referenced.
  void CollectVariables(std::set<std::string>* out) const;

  // Cypher-style textual form, for debugging and plan explanation.
  std::string ToString() const;

 private:
  Expression() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  epgm::PropertyValue literal_;
  std::string variable_;
  std::string property_key_;
  ComparisonOp op_ = ComparisonOp::kEq;
  ExpressionPtr left_;
  ExpressionPtr right_;
  SourceSpan span_;
};

// Resolves `variable.key` to a property value during evaluation; returns a
// null value when the binding or property is absent.
using ValueResolver = std::function<epgm::PropertyValue(
    const std::string& variable, const std::string& key)>;

// Evaluates an expression subtree under Cypher's ternary logic: nullopt is
// the SQL/Cypher NULL truth value (comparisons against missing properties
// are NULL, AND/OR/NOT propagate it).
std::optional<bool> EvaluateTernary(const Expression& expr,
                                    const ValueResolver& resolver);

// Top-level predicate evaluation: NULL collapses to false (a WHERE clause
// keeps a row only when the predicate is definitely true).
bool EvaluatePredicate(const Expression& expr, const ValueResolver& resolver);

// A disjunction of atomic predicates; a conjunction of clauses is a CNF.
struct CnfClause {
  std::vector<ExpressionPtr> atoms;  // comparisons (negations folded away)

  // Query variables referenced across all atoms.
  std::set<std::string> Variables() const;
  std::string ToString() const;
};

// Conjunctive normal form of a WHERE expression. Clauses touching a single
// variable can be pushed into the leaf scans (element-centric selection,
// §3.1); the rest run as SelectEmbeddings once all their variables are
// bound.
struct Cnf {
  std::vector<CnfClause> clauses;

  std::string ToString() const;
};

// Rewrites `expr` into CNF: negation normal form (NOT pushed into the
// comparison operators, XOR expanded), then OR distributed over AND.
Cnf ToCnf(const ExpressionPtr& expr);

// Evaluates one CNF clause (disjunction) under ternary logic, collapsing
// NULL to false.
bool EvaluateClause(const CnfClause& clause, const ValueResolver& resolver);

}  // namespace gradoop::cypher

#endif  // GRADOOP_CYPHER_EXPRESSION_H_
