#ifndef GRADOOP_CYPHER_SOURCE_SPAN_H_
#define GRADOOP_CYPHER_SOURCE_SPAN_H_

#include <algorithm>
#include <cstddef>
#include <string>

namespace gradoop::cypher {

// A half-open byte range [offset, offset+length) in the query text, plus
// the 1-based line/column of its first byte. Every token carries one; the
// parser propagates them onto AST nodes and expressions so semantic
// diagnostics can point at the offending query fragment.
struct SourceSpan {
  size_t offset = 0;
  size_t length = 0;
  int line = 0;    // 1-based; 0 = unknown (synthesized node)
  int column = 1;  // 1-based

  bool IsKnown() const { return line > 0; }

  // Smallest span covering both operands; an unknown span is the
  // identity (synthesized subtrees inherit the location of their source).
  static SourceSpan Cover(const SourceSpan& a, const SourceSpan& b) {
    if (!a.IsKnown()) return b;
    if (!b.IsKnown()) return a;
    SourceSpan out = a.offset <= b.offset ? a : b;
    const size_t end = std::max(a.offset + a.length, b.offset + b.length);
    out.length = end - out.offset;
    return out;
  }

  // "1:17" (line:column), the form used in error messages.
  std::string ToString() const {
    if (!IsKnown()) return "?:?";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

}  // namespace gradoop::cypher

#endif  // GRADOOP_CYPHER_SOURCE_SPAN_H_
