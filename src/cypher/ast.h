#ifndef GRADOOP_CYPHER_AST_H_
#define GRADOOP_CYPHER_AST_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cypher/expression.h"
#include "cypher/source_span.h"
#include "epgm/property_value.h"

namespace gradoop::cypher {

// Abstract syntax of the Cypher pattern-matching core (§2.3): a MATCH
// clause with one or more pattern paths, an optional WHERE expression and
// a RETURN clause.

// Direction of a relationship pattern relative to its left node:
// (a)-[e]->(b) outgoing, (a)<-[e]-(b) incoming, (a)-[e]-(b) undirected.
enum class PatternDirection {
  kOutgoing,
  kIncoming,
  kUndirected,
};

// (variable :LabelA|LabelB {key: literal, ...})
struct NodePattern {
  std::string variable;  // empty = anonymous; parser assigns a fresh name
  std::vector<std::string> labels;  // alternation; empty = unlabeled
  // Property map sugar; each entry is an equality predicate on the node.
  std::vector<std::pair<std::string, epgm::PropertyValue>> properties;
  SourceSpan span;           // the whole `(...)` pattern
  SourceSpan variable_span;  // just the variable token (if user-named)
};

// -[variable :typeA|typeB *lower..upper {key: literal}]->
struct RelationshipPattern {
  std::string variable;
  std::vector<std::string> types;  // alternation; empty = untyped
  PatternDirection direction = PatternDirection::kOutgoing;
  std::vector<std::pair<std::string, epgm::PropertyValue>> properties;
  // Variable-length bounds. A fixed-length edge has lower == upper == 1.
  // `*l..u` sets [l, u]; `*` alone defaults to [1, kDefaultUpperBound].
  int lower_bound = 1;
  int upper_bound = 1;
  SourceSpan span;           // the whole `-[...]->` pattern
  SourceSpan variable_span;  // just the variable token (if user-named)
  SourceSpan bounds_span;    // the `*l..u` fragment (if present)

  bool IsVariableLength() const { return lower_bound != 1 || upper_bound != 1; }

  static constexpr int kDefaultUpperBound = 10;
};

// A linear path: node (rel node)*.
struct PatternPath {
  NodePattern start;
  std::vector<std::pair<RelationshipPattern, NodePattern>> steps;
  SourceSpan span;  // from the first '(' to the last ')'
};

// One RETURN item: `*`, `variable` or `variable.key` (optionally aliased).
struct ReturnItem {
  std::string variable;
  std::string property_key;  // empty = whole element binding
  std::string alias;         // empty = no alias
  SourceSpan span;

  bool IsPropertyAccess() const { return !property_key.empty(); }
};

// A parsed query.
struct CypherQuery {
  std::vector<PatternPath> paths;
  ExpressionPtr where;  // nullptr when absent
  bool return_all = false;  // RETURN *
  bool return_distinct = false;  // RETURN DISTINCT ...
  std::vector<ReturnItem> return_items;
  int64_t limit = -1;  // LIMIT n; -1 = unlimited
};

}  // namespace gradoop::cypher

#endif  // GRADOOP_CYPHER_AST_H_
