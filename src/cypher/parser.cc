#include "cypher/parser.h"

#include <cassert>

#include "common/strings.h"
#include "cypher/lexer.h"

namespace gradoop::cypher {

namespace {

// Keywords that must not be mistaken for a bare variable reference in an
// expression (true/false/null are handled as literals before this check).
bool IsReservedWord(const std::string& text) {
  static const char* kReserved[] = {"MATCH", "WHERE",    "RETURN", "LIMIT",
                                    "AS",    "DISTINCT", "AND",    "OR",
                                    "XOR",   "NOT"};
  for (const char* kw : kReserved) {
    if (EqualsIgnoreCase(text, kw)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<CypherQuery> Parse() {
    CypherQuery query;
    if (!ConsumeKeyword("MATCH")) {
      return Error("expected MATCH");
    }
    for (;;) {
      GRADOOP_ASSIGN_OR_RETURN(PatternPath path, ParsePath());
      query.paths.push_back(std::move(path));
      if (!Consume(TokenKind::kComma)) break;
      // Allow `MATCH p1, ..., MATCH`-free continuation only; a comma must
      // be followed by another path.
    }
    if (ConsumeKeyword("WHERE")) {
      GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr where, ParseExpression());
      query.where = std::move(where);
    }
    if (!ConsumeKeyword("RETURN")) {
      return Error("expected RETURN");
    }
    if (ConsumeKeyword("DISTINCT")) query.return_distinct = true;
    if (Consume(TokenKind::kStar)) {
      query.return_all = true;
    } else {
      for (;;) {
        GRADOOP_ASSIGN_OR_RETURN(ReturnItem item, ParseReturnItem());
        query.return_items.push_back(std::move(item));
        if (!Consume(TokenKind::kComma)) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected a count after LIMIT");
      }
      query.limit = Advance().int_value;
      if (query.limit < 0) return Error("LIMIT must be non-negative");
    }
    if (Peek().kind != TokenKind::kEof) {
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  // Span of the most recently consumed token.
  SourceSpan PrevSpan() const {
    return pos_ > 0 ? tokens_[pos_ - 1].span : SourceSpan{};
  }

  bool Consume(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }

  bool PeekKeyword(const char* kw, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }

  bool ConsumeKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " (got " + TokenKindName(t.kind) +
                              (t.text.empty() ? "" : " '" + t.text + "'") +
                              " at " + t.span.ToString() + ")");
  }

  std::string FreshVariable(const char* prefix) {
    return std::string("  __") + prefix + std::to_string(anon_counter_++);
  }

  // path := node (rel node)*
  Result<PatternPath> ParsePath() {
    PatternPath path;
    GRADOOP_ASSIGN_OR_RETURN(path.start, ParseNode());
    path.span = path.start.span;
    while (Peek().kind == TokenKind::kDash || Peek().kind == TokenKind::kLt) {
      GRADOOP_ASSIGN_OR_RETURN(RelationshipPattern rel, ParseRelationship());
      GRADOOP_ASSIGN_OR_RETURN(NodePattern node, ParseNode());
      path.span = SourceSpan::Cover(path.span, node.span);
      path.steps.emplace_back(std::move(rel), std::move(node));
    }
    return path;
  }

  // node := '(' [var] [':' label ('|' label)*] [props] ')'
  Result<NodePattern> ParseNode() {
    if (Peek().kind != TokenKind::kLeftParen) {
      return Error("expected '(' to start a node pattern");
    }
    const SourceSpan open = Advance().span;
    NodePattern node;
    if (Peek().kind == TokenKind::kIdentifier) {
      const Token& var = Advance();
      node.variable = var.text;
      node.variable_span = var.span;
    }
    if (Consume(TokenKind::kColon)) {
      GRADOOP_ASSIGN_OR_RETURN(node.labels, ParseLabelAlternation());
    }
    if (Peek().kind == TokenKind::kLeftBrace) {
      GRADOOP_ASSIGN_OR_RETURN(node.properties, ParsePropertyMap());
    }
    if (!Consume(TokenKind::kRightParen)) {
      return Error("expected ')' to close a node pattern");
    }
    node.span = SourceSpan::Cover(open, PrevSpan());
    if (node.variable.empty()) node.variable = FreshVariable("v");
    return node;
  }

  // rel := ('-'|'<-') '[' ... ']' ('->'|'-')
  Result<RelationshipPattern> ParseRelationship() {
    RelationshipPattern rel;
    bool left_arrow = false;
    const SourceSpan open = Peek().span;
    if (Consume(TokenKind::kLt)) {
      left_arrow = true;
      if (!Consume(TokenKind::kDash)) {
        return Error("expected '-' after '<' in a relationship pattern");
      }
    } else if (!Consume(TokenKind::kDash)) {
      return Error("expected '-' to start a relationship pattern");
    }

    if (Consume(TokenKind::kLeftBracket)) {
      if (Peek().kind == TokenKind::kIdentifier) {
        const Token& var = Advance();
        rel.variable = var.text;
        rel.variable_span = var.span;
      }
      if (Consume(TokenKind::kColon)) {
        GRADOOP_ASSIGN_OR_RETURN(rel.types, ParseLabelAlternation());
      }
      if (Peek().kind == TokenKind::kStar) {
        const SourceSpan star = Advance().span;
        // `*`, `*n`, `*l..u`, `*..u`
        rel.lower_bound = 1;
        rel.upper_bound = RelationshipPattern::kDefaultUpperBound;
        bool have_lower = false;
        if (Peek().kind == TokenKind::kInteger) {
          rel.lower_bound = static_cast<int>(Advance().int_value);
          have_lower = true;
          rel.upper_bound = rel.lower_bound;  // `*n` = exactly n
        }
        if (Consume(TokenKind::kDotDot)) {
          rel.upper_bound = RelationshipPattern::kDefaultUpperBound;
          if (Peek().kind == TokenKind::kInteger) {
            rel.upper_bound = static_cast<int>(Advance().int_value);
          }
          if (!have_lower) rel.lower_bound = 1;
        }
        rel.bounds_span = SourceSpan::Cover(star, PrevSpan());
        // Bound sanity (lower <= upper, non-negative) is a semantic check:
        // the analyzer reports it with a stable diagnostic code.
      }
      if (Peek().kind == TokenKind::kLeftBrace) {
        GRADOOP_ASSIGN_OR_RETURN(rel.properties, ParsePropertyMap());
      }
      if (!Consume(TokenKind::kRightBracket)) {
        return Error("expected ']' to close a relationship pattern");
      }
    }

    bool right_arrow = false;
    if (!Consume(TokenKind::kDash)) {
      return Error("expected '-' after a relationship pattern");
    }
    if (Consume(TokenKind::kGt)) right_arrow = true;
    rel.span = SourceSpan::Cover(open, PrevSpan());

    if (left_arrow && right_arrow) {
      return Error("a relationship cannot point both ways");
    }
    rel.direction = left_arrow    ? PatternDirection::kIncoming
                    : right_arrow ? PatternDirection::kOutgoing
                                  : PatternDirection::kUndirected;
    if (rel.variable.empty()) rel.variable = FreshVariable("e");
    return rel;
  }

  Result<std::vector<std::string>> ParseLabelAlternation() {
    std::vector<std::string> labels;
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected a label name after ':'");
    }
    labels.push_back(Advance().text);
    while (Consume(TokenKind::kPipe)) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected a label name after '|'");
      }
      labels.push_back(Advance().text);
    }
    return labels;
  }

  Result<std::vector<std::pair<std::string, epgm::PropertyValue>>>
  ParsePropertyMap() {
    std::vector<std::pair<std::string, epgm::PropertyValue>> props;
    if (!Consume(TokenKind::kLeftBrace)) {
      return Error("expected '{'");
    }
    if (!Consume(TokenKind::kRightBrace)) {
      for (;;) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected a property key");
        }
        const std::string key = Advance().text;
        if (!Consume(TokenKind::kColon)) {
          return Error("expected ':' after property key");
        }
        GRADOOP_ASSIGN_OR_RETURN(epgm::PropertyValue value, ParseLiteral());
        props.emplace_back(key, std::move(value));
        if (Consume(TokenKind::kRightBrace)) break;
        if (!Consume(TokenKind::kComma)) {
          return Error("expected ',' or '}' in property map");
        }
      }
    }
    return props;
  }

  Result<epgm::PropertyValue> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kString:
        Advance();
        return epgm::PropertyValue(t.text);
      case TokenKind::kInteger:
        Advance();
        return epgm::PropertyValue(t.int_value);
      case TokenKind::kFloat:
        Advance();
        return epgm::PropertyValue(t.float_value);
      case TokenKind::kDash: {
        // Negative numeric literal.
        Advance();
        const Token& num = Peek();
        if (num.kind == TokenKind::kInteger) {
          Advance();
          return epgm::PropertyValue(-num.int_value);
        }
        if (num.kind == TokenKind::kFloat) {
          Advance();
          return epgm::PropertyValue(-num.float_value);
        }
        return Error("expected a number after '-'");
      }
      case TokenKind::kIdentifier:
        if (EqualsIgnoreCase(t.text, "true")) {
          Advance();
          return epgm::PropertyValue(true);
        }
        if (EqualsIgnoreCase(t.text, "false")) {
          Advance();
          return epgm::PropertyValue(false);
        }
        if (EqualsIgnoreCase(t.text, "null")) {
          Advance();
          return epgm::PropertyValue::Null();
        }
        return Error("expected a literal");
      default:
        return Error("expected a literal");
    }
  }

  // expr := xor_expr (OR xor_expr)*
  Result<ExpressionPtr> ParseExpression() {
    GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseXor());
    while (ConsumeKeyword("OR")) {
      GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseXor());
      lhs = Expression::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExpressionPtr> ParseXor() {
    GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseAnd());
    while (ConsumeKeyword("XOR")) {
      GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseAnd());
      lhs = Expression::Xor(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExpressionPtr> ParseAnd() {
    GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseNot());
      lhs = Expression::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExpressionPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      const SourceSpan not_span = Advance().span;
      GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr operand, ParseNot());
      const SourceSpan covered =
          SourceSpan::Cover(not_span, operand->span());
      return Expression::Not(std::move(operand), covered);
    }
    return ParseComparison();
  }

  Result<ExpressionPtr> ParseComparison() {
    GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseValueTerm());
    ComparisonOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = ComparisonOp::kEq;
        break;
      case TokenKind::kNeq:
        op = ComparisonOp::kNeq;
        break;
      case TokenKind::kLt:
        op = ComparisonOp::kLt;
        break;
      case TokenKind::kLte:
        op = ComparisonOp::kLte;
        break;
      case TokenKind::kGt:
        op = ComparisonOp::kGt;
        break;
      case TokenKind::kGte:
        op = ComparisonOp::kGte;
        break;
      default:
        return lhs;  // bare boolean term
    }
    Advance();
    GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseValueTerm());
    return Expression::Comparison(op, std::move(lhs), std::move(rhs));
  }

  // value_term := literal | var '.' key | var | '(' expr ')'
  Result<ExpressionPtr> ParseValueTerm() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kLeftParen) {
      Advance();
      GRADOOP_ASSIGN_OR_RETURN(ExpressionPtr inner, ParseExpression());
      if (!Consume(TokenKind::kRightParen)) {
        return Error("expected ')'");
      }
      return inner;
    }
    if (t.kind == TokenKind::kIdentifier && !EqualsIgnoreCase(t.text, "true") &&
        !EqualsIgnoreCase(t.text, "false") &&
        !EqualsIgnoreCase(t.text, "null")) {
      if (IsReservedWord(t.text)) {
        return Error("expected a value");
      }
      const Token& var = Advance();
      const std::string variable = var.text;
      const SourceSpan var_span = var.span;
      if (!Consume(TokenKind::kDot)) {
        // Bare element reference: only meaningful inside `a = b` / `a <> b`
        // comparisons, which semantic analysis folds or rejects.
        return Expression::Variable(variable, var_span);
      }
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected a property key after '.'");
      }
      const Token& key = Advance();
      return Expression::PropertyAccess(variable, key.text,
                                        SourceSpan::Cover(var_span, key.span));
    }
    const SourceSpan start = Peek().span;
    GRADOOP_ASSIGN_OR_RETURN(epgm::PropertyValue lit, ParseLiteral());
    return Expression::Literal(std::move(lit),
                               SourceSpan::Cover(start, PrevSpan()));
  }

  Result<ReturnItem> ParseReturnItem() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected a variable in RETURN");
    }
    ReturnItem item;
    const Token& var = Advance();
    item.variable = var.text;
    item.span = var.span;
    if (Consume(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected a property key after '.'");
      }
      item.property_key = Advance().text;
      item.span = SourceSpan::Cover(item.span, PrevSpan());
    }
    if (ConsumeKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected an alias after AS");
      }
      item.alias = Advance().text;
    }
    return item;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Result<CypherQuery> ParseCypher(const std::string& query_text) {
  GRADOOP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query_text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace gradoop::cypher
