#ifndef GRADOOP_CYPHER_PARSER_H_
#define GRADOOP_CYPHER_PARSER_H_

#include <string>

#include "common/result.h"
#include "cypher/ast.h"

namespace gradoop::cypher {

// Parses the Cypher pattern-matching subset implemented by the paper:
//
//   query      := MATCH path (',' path)* [WHERE expr] RETURN items
//   path       := node (rel node)*
//   node       := '(' [var] [':' label ('|' label)*] [props] ')'
//   rel        := '-' '[' [var] [':' type ('|' type)*] ['*' [int] ['..' int]]
//                 [props] ']' '->'   (and the <-[...]-, -[...]- variants)
//   props      := '{' key ':' literal (',' key ':' literal)* '}'
//   expr       := boolean combination (AND/OR/XOR/NOT) of comparisons
//                 between `var.key` accesses and literals
//   items      := '*' | item (',' item)*;  item := var['.' key] [AS alias]
//
// Keywords are case-insensitive. Anonymous pattern elements receive fresh
// internal variable names (`  __v0`, `  __e1`, ...).
Result<CypherQuery> ParseCypher(const std::string& query_text);

}  // namespace gradoop::cypher

#endif  // GRADOOP_CYPHER_PARSER_H_
