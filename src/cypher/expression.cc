#include "cypher/expression.h"

#include <cassert>

namespace gradoop::cypher {

ComparisonOp NegateComparison(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return ComparisonOp::kNeq;
    case ComparisonOp::kNeq:
      return ComparisonOp::kEq;
    case ComparisonOp::kLt:
      return ComparisonOp::kGte;
    case ComparisonOp::kLte:
      return ComparisonOp::kGt;
    case ComparisonOp::kGt:
      return ComparisonOp::kLte;
    case ComparisonOp::kGte:
      return ComparisonOp::kLt;
  }
  return ComparisonOp::kEq;
}

const char* ComparisonOpName(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNeq:
      return "<>";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLte:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGte:
      return ">=";
  }
  return "?";
}

namespace {

SourceSpan SpanOf(const ExpressionPtr& e) {
  return e == nullptr ? SourceSpan{} : e->span();
}

}  // namespace

ExpressionPtr Expression::Literal(epgm::PropertyValue value, SourceSpan span) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(value);
  e->span_ = span;
  return e;
}

ExpressionPtr Expression::PropertyAccess(std::string variable,
                                         std::string key, SourceSpan span) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kPropertyAccess;
  e->variable_ = std::move(variable);
  e->property_key_ = std::move(key);
  e->span_ = span;
  return e;
}

ExpressionPtr Expression::Variable(std::string variable, SourceSpan span) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kVariable;
  e->variable_ = std::move(variable);
  e->span_ = span;
  return e;
}

ExpressionPtr Expression::Comparison(ComparisonOp op, ExpressionPtr lhs,
                                     ExpressionPtr rhs, SourceSpan span) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kComparison;
  e->op_ = op;
  e->span_ = span.IsKnown() ? span : SourceSpan::Cover(SpanOf(lhs),
                                                       SpanOf(rhs));
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExpressionPtr Expression::And(ExpressionPtr lhs, ExpressionPtr rhs) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kAnd;
  e->span_ = SourceSpan::Cover(SpanOf(lhs), SpanOf(rhs));
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExpressionPtr Expression::Or(ExpressionPtr lhs, ExpressionPtr rhs) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kOr;
  e->span_ = SourceSpan::Cover(SpanOf(lhs), SpanOf(rhs));
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExpressionPtr Expression::Xor(ExpressionPtr lhs, ExpressionPtr rhs) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kXor;
  e->span_ = SourceSpan::Cover(SpanOf(lhs), SpanOf(rhs));
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExpressionPtr Expression::Not(ExpressionPtr operand, SourceSpan span) {
  auto e = std::shared_ptr<Expression>(new Expression());
  e->kind_ = ExprKind::kNot;
  e->span_ = span.IsKnown() ? span : SpanOf(operand);
  e->left_ = std::move(operand);
  return e;
}

void Expression::CollectPropertyAccesses(
    std::set<std::pair<std::string, std::string>>* out) const {
  if (kind_ == ExprKind::kPropertyAccess) {
    out->emplace(variable_, property_key_);
  }
  if (left_) left_->CollectPropertyAccesses(out);
  if (right_) right_->CollectPropertyAccesses(out);
}

void Expression::CollectVariables(std::set<std::string>* out) const {
  if (kind_ == ExprKind::kPropertyAccess || kind_ == ExprKind::kVariable) {
    out->insert(variable_);
  }
  if (left_) left_->CollectVariables(out);
  if (right_) right_->CollectVariables(out);
}

std::string Expression::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.is_string() ? "'" + literal_.ToString() + "'"
                                  : literal_.ToString();
    case ExprKind::kPropertyAccess:
      return variable_ + "." + property_key_;
    case ExprKind::kVariable:
      return variable_;
    case ExprKind::kComparison:
      return left_->ToString() + " " + ComparisonOpName(op_) + " " +
             right_->ToString();
    case ExprKind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case ExprKind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case ExprKind::kXor:
      return "(" + left_->ToString() + " XOR " + right_->ToString() + ")";
    case ExprKind::kNot:
      return "NOT (" + left_->ToString() + ")";
  }
  return "?";
}

namespace {

// Evaluates a value-producing subexpression (literal or property access).
epgm::PropertyValue EvaluateValue(const Expression& expr,
                                  const ValueResolver& resolver) {
  if (expr.kind() == ExprKind::kLiteral) return expr.literal();
  // Bare variable references never survive semantic analysis; evaluating
  // one (only reachable when QueryGraph::Build is driven directly, without
  // the analyzer) yields NULL, which collapses the predicate to false.
  if (expr.kind() == ExprKind::kVariable) return epgm::PropertyValue::Null();
  assert(expr.kind() == ExprKind::kPropertyAccess);
  return resolver(expr.variable(), expr.property_key());
}

std::optional<bool> EvaluateComparison(const Expression& expr,
                                       const ValueResolver& resolver) {
  const epgm::PropertyValue lhs = EvaluateValue(*expr.left(), resolver);
  const epgm::PropertyValue rhs = EvaluateValue(*expr.right(), resolver);
  if (lhs.is_null() || rhs.is_null()) return std::nullopt;
  switch (expr.comparison_op()) {
    case ComparisonOp::kEq:
      return lhs == rhs;
    case ComparisonOp::kNeq:
      // Cypher: comparing values of incompatible types yields NULL for
      // ordering but <>/= are defined as plain (in)equality.
      return lhs != rhs;
    default:
      break;
  }
  const std::optional<int> cmp = lhs.Compare(rhs);
  if (!cmp.has_value()) return std::nullopt;
  switch (expr.comparison_op()) {
    case ComparisonOp::kLt:
      return *cmp < 0;
    case ComparisonOp::kLte:
      return *cmp <= 0;
    case ComparisonOp::kGt:
      return *cmp > 0;
    case ComparisonOp::kGte:
      return *cmp >= 0;
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<bool> EvaluateTernary(const Expression& expr,
                                    const ValueResolver& resolver) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      if (expr.literal().is_bool()) return expr.literal().bool_value();
      if (expr.literal().is_null()) return std::nullopt;
      return std::nullopt;  // non-boolean literal in predicate position
    case ExprKind::kPropertyAccess: {
      const epgm::PropertyValue v =
          resolver(expr.variable(), expr.property_key());
      if (v.is_bool()) return v.bool_value();
      return std::nullopt;
    }
    case ExprKind::kVariable:
      // An element reference is not a truth value (see EvaluateValue).
      return std::nullopt;
    case ExprKind::kComparison:
      return EvaluateComparison(expr, resolver);
    case ExprKind::kAnd: {
      const auto l = EvaluateTernary(*expr.left(), resolver);
      const auto r = EvaluateTernary(*expr.right(), resolver);
      if (l.has_value() && !*l) return false;
      if (r.has_value() && !*r) return false;
      if (l.has_value() && r.has_value()) return true;
      return std::nullopt;
    }
    case ExprKind::kOr: {
      const auto l = EvaluateTernary(*expr.left(), resolver);
      const auto r = EvaluateTernary(*expr.right(), resolver);
      if (l.has_value() && *l) return true;
      if (r.has_value() && *r) return true;
      if (l.has_value() && r.has_value()) return false;
      return std::nullopt;
    }
    case ExprKind::kXor: {
      const auto l = EvaluateTernary(*expr.left(), resolver);
      const auto r = EvaluateTernary(*expr.right(), resolver);
      if (!l.has_value() || !r.has_value()) return std::nullopt;
      return *l != *r;
    }
    case ExprKind::kNot: {
      const auto v = EvaluateTernary(*expr.left(), resolver);
      if (!v.has_value()) return std::nullopt;
      return !*v;
    }
  }
  return std::nullopt;
}

bool EvaluatePredicate(const Expression& expr, const ValueResolver& resolver) {
  const auto v = EvaluateTernary(expr, resolver);
  return v.has_value() && *v;
}

std::set<std::string> CnfClause::Variables() const {
  std::set<std::string> vars;
  for (const ExpressionPtr& atom : atoms) atom->CollectVariables(&vars);
  return vars;
}

std::string CnfClause::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += " OR ";
    out += atoms[i]->ToString();
  }
  return out + ")";
}

std::string Cnf::ToString() const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " AND ";
    out += clauses[i].ToString();
  }
  return out;
}

namespace {

// Rewrites to negation normal form: NOT sinks into comparisons (operator
// negation), XOR expands into AND/OR.
ExpressionPtr ToNnf(const ExpressionPtr& expr, bool negate) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kPropertyAccess:
    case ExprKind::kVariable: {
      // Boolean atom; represent negation as `atom = false`.
      if (!negate) return expr;
      return Expression::Comparison(ComparisonOp::kEq, expr,
                                    Expression::Literal(false));
    }
    case ExprKind::kComparison:
      if (!negate) return expr;
      return Expression::Comparison(NegateComparison(expr->comparison_op()),
                                    expr->left(), expr->right());
    case ExprKind::kAnd: {
      auto l = ToNnf(expr->left(), negate);
      auto r = ToNnf(expr->right(), negate);
      return negate ? Expression::Or(l, r) : Expression::And(l, r);
    }
    case ExprKind::kOr: {
      auto l = ToNnf(expr->left(), negate);
      auto r = ToNnf(expr->right(), negate);
      return negate ? Expression::And(l, r) : Expression::Or(l, r);
    }
    case ExprKind::kXor: {
      // a XOR b == (a OR b) AND (NOT a OR NOT b); negation flips to XNOR.
      auto a = expr->left();
      auto b = expr->right();
      ExpressionPtr expanded;
      if (!negate) {
        expanded = Expression::And(
            Expression::Or(a, b),
            Expression::Or(Expression::Not(a), Expression::Not(b)));
      } else {
        expanded = Expression::Or(
            Expression::And(a, b),
            Expression::And(Expression::Not(a), Expression::Not(b)));
      }
      return ToNnf(expanded, false);
    }
    case ExprKind::kNot:
      return ToNnf(expr->left(), !negate);
  }
  return expr;
}

// Distributes OR over AND on an NNF tree, producing clause lists.
std::vector<CnfClause> ToClauses(const ExpressionPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kAnd: {
      auto l = ToClauses(expr->left());
      auto r = ToClauses(expr->right());
      l.insert(l.end(), std::make_move_iterator(r.begin()),
               std::make_move_iterator(r.end()));
      return l;
    }
    case ExprKind::kOr: {
      const auto l = ToClauses(expr->left());
      const auto r = ToClauses(expr->right());
      std::vector<CnfClause> out;
      out.reserve(l.size() * r.size());
      for (const CnfClause& cl : l) {
        for (const CnfClause& cr : r) {
          CnfClause merged = cl;
          merged.atoms.insert(merged.atoms.end(), cr.atoms.begin(),
                              cr.atoms.end());
          out.push_back(std::move(merged));
        }
      }
      return out;
    }
    default: {
      CnfClause clause;
      clause.atoms.push_back(expr);
      return {std::move(clause)};
    }
  }
}

}  // namespace

Cnf ToCnf(const ExpressionPtr& expr) {
  Cnf cnf;
  if (expr == nullptr) return cnf;
  cnf.clauses = ToClauses(ToNnf(expr, false));
  return cnf;
}

bool EvaluateClause(const CnfClause& clause, const ValueResolver& resolver) {
  for (const ExpressionPtr& atom : clause.atoms) {
    const auto v = EvaluateTernary(*atom, resolver);
    if (v.has_value() && *v) return true;
  }
  return false;
}

}  // namespace gradoop::cypher
