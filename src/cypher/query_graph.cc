#include "cypher/query_graph.h"

#include <algorithm>

namespace gradoop::cypher {

namespace {

// Intersects two label alternations. An empty alternation means
// "unconstrained" and acts as the identity.
std::vector<std::string> IntersectLabels(std::vector<std::string> a,
                                         const std::vector<std::string>& b,
                                         bool* became_empty) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  std::vector<std::string> out;
  for (const std::string& l : a) {
    if (std::find(b.begin(), b.end(), l) != b.end()) out.push_back(l);
  }
  if (out.empty()) *became_empty = true;
  return out;
}

}  // namespace

Result<QueryGraph> QueryGraph::Build(const CypherQuery& ast) {
  QueryGraph qg;

  auto add_or_merge_vertex = [&](const NodePattern& node) -> Result<int> {
    auto it = qg.vertex_by_variable_.find(node.variable);
    if (it != qg.vertex_by_variable_.end()) {
      if (qg.edge_by_variable_.contains(node.variable)) {
        return Status::ParseError("variable '" + node.variable +
                                  "' used for both a vertex and an edge");
      }
      QueryVertex& existing = qg.vertices_[it->second];
      bool empty = false;
      existing.labels = IntersectLabels(existing.labels, node.labels, &empty);
      if (empty) qg.unsatisfiable_ = true;
      return it->second;
    }
    if (qg.edge_by_variable_.contains(node.variable)) {
      return Status::ParseError("variable '" + node.variable +
                                "' used for both a vertex and an edge");
    }
    QueryVertex v;
    v.index = static_cast<int>(qg.vertices_.size());
    v.variable = node.variable;
    v.labels = node.labels;
    qg.vertex_by_variable_.emplace(node.variable, v.index);
    qg.vertices_.push_back(std::move(v));
    return static_cast<int>(qg.vertices_.size()) - 1;
  };

  // Property-map sugar becomes equality predicates; the synthesized atoms
  // inherit the span of the pattern element they desugar.
  std::vector<ExpressionPtr> property_map_atoms;
  auto add_property_map =
      [&](const std::string& variable,
          const std::vector<std::pair<std::string, epgm::PropertyValue>>&
              props,
          const SourceSpan& span) {
        for (const auto& [key, value] : props) {
          property_map_atoms.push_back(Expression::Comparison(
              ComparisonOp::kEq,
              Expression::PropertyAccess(variable, key, span),
              Expression::Literal(value, span)));
        }
      };

  for (const PatternPath& path : ast.paths) {
    GRADOOP_ASSIGN_OR_RETURN(int prev, add_or_merge_vertex(path.start));
    add_property_map(path.start.variable, path.start.properties,
                     path.start.span);
    for (const auto& [rel, node] : path.steps) {
      GRADOOP_ASSIGN_OR_RETURN(int next, add_or_merge_vertex(node));
      add_property_map(node.variable, node.properties, node.span);

      if (qg.edge_by_variable_.contains(rel.variable)) {
        return Status::ParseError("edge variable '" + rel.variable +
                                  "' bound more than once");
      }
      if (qg.vertex_by_variable_.contains(rel.variable)) {
        return Status::ParseError("variable '" + rel.variable +
                                  "' used for both a vertex and an edge");
      }
      QueryEdge e;
      e.index = static_cast<int>(qg.edges_.size());
      e.variable = rel.variable;
      e.types = rel.types;
      e.lower_bound = rel.lower_bound;
      e.upper_bound = rel.upper_bound;
      if (rel.lower_bound < 0 || rel.upper_bound < rel.lower_bound) {
        // The analyzer reports this with a located diagnostic before the
        // engine ever builds a query graph; this guards direct callers.
        return Status::ParseError("invalid variable-length bounds on '" +
                                  rel.variable + "'");
      }
      if ((rel.lower_bound != 1 || rel.upper_bound != 1) &&
          rel.direction == PatternDirection::kUndirected) {
        return Status::Unsupported(
            "undirected variable-length paths are not supported");
      }
      switch (rel.direction) {
        case PatternDirection::kOutgoing:
          e.source = prev;
          e.target = next;
          break;
        case PatternDirection::kIncoming:
          e.source = next;
          e.target = prev;
          break;
        case PatternDirection::kUndirected:
          e.source = prev;
          e.target = next;
          e.any_direction = true;
          break;
      }
      add_property_map(rel.variable, rel.properties, rel.span);
      qg.edge_by_variable_.emplace(rel.variable, e.index);
      qg.edges_.push_back(std::move(e));
      prev = next;
    }
  }

  // Normalize WHERE to CNF and append property-map equalities as
  // single-atom clauses.
  Cnf cnf = ToCnf(ast.where);
  for (ExpressionPtr& atom : property_map_atoms) {
    CnfClause clause;
    clause.atoms.push_back(std::move(atom));
    cnf.clauses.push_back(std::move(clause));
  }

  // Validate predicate variables and classify clauses for pushdown.
  for (CnfClause& clause : cnf.clauses) {
    const std::set<std::string> vars = clause.Variables();
    for (const std::string& var : vars) {
      if (!qg.vertex_by_variable_.contains(var) &&
          !qg.edge_by_variable_.contains(var)) {
        return Status::ParseError("predicate references unbound variable '" +
                                  var + "'");
      }
    }
    if (vars.size() <= 1) {
      qg.element_predicates_.push_back(std::move(clause));
    } else {
      qg.cross_predicates_.push_back(std::move(clause));
    }
  }

  // Predicates on variable-length edges are unsupported (their binding is
  // a path, not a single edge) — matches the paper's subset.
  for (const CnfClause& clause : qg.element_predicates_) {
    for (const std::string& var : clause.Variables()) {
      auto it = qg.edge_by_variable_.find(var);
      if (it != qg.edge_by_variable_.end() &&
          qg.edges_[it->second].IsVariableLength()) {
        return Status::Unsupported(
            "property predicate on variable-length edge '" + var + "'");
      }
    }
  }

  // Needed properties: everything referenced by any predicate or RETURN.
  auto note_properties = [&](const ExpressionPtr& e) {
    std::set<std::pair<std::string, std::string>> accesses;
    e->CollectPropertyAccesses(&accesses);
    for (const auto& [var, key] : accesses) {
      qg.needed_properties_[var].insert(key);
    }
  };
  for (const CnfClause& clause : qg.element_predicates_) {
    for (const ExpressionPtr& atom : clause.atoms) note_properties(atom);
  }
  for (const CnfClause& clause : qg.cross_predicates_) {
    for (const ExpressionPtr& atom : clause.atoms) note_properties(atom);
  }

  qg.return_all_ = ast.return_all;
  qg.return_distinct_ = ast.return_distinct;
  qg.limit_ = ast.limit;
  qg.return_items_ = ast.return_items;
  for (const ReturnItem& item : qg.return_items_) {
    if (!qg.vertex_by_variable_.contains(item.variable) &&
        !qg.edge_by_variable_.contains(item.variable)) {
      return Status::ParseError("RETURN references unbound variable '" +
                                item.variable + "'");
    }
    if (item.IsPropertyAccess()) {
      qg.needed_properties_[item.variable].insert(item.property_key);
    }
  }
  return qg;
}

const QueryVertex* QueryGraph::FindVertex(const std::string& variable) const {
  auto it = vertex_by_variable_.find(variable);
  return it == vertex_by_variable_.end() ? nullptr : &vertices_[it->second];
}

const QueryEdge* QueryGraph::FindEdge(const std::string& variable) const {
  auto it = edge_by_variable_.find(variable);
  return it == edge_by_variable_.end() ? nullptr : &edges_[it->second];
}

std::vector<CnfClause> QueryGraph::ElementPredicates(
    const std::string& variable) const {
  std::vector<CnfClause> out;
  for (const CnfClause& clause : element_predicates_) {
    const auto vars = clause.Variables();
    if (vars.size() == 1 && *vars.begin() == variable) out.push_back(clause);
    // Variable-free clauses (constant predicates) attach to every scan; a
    // constant-false clause then empties all scans, which is correct.
    if (vars.empty()) out.push_back(clause);
  }
  return out;
}

std::set<std::string> QueryGraph::NeededProperties(
    const std::string& variable) const {
  auto it = needed_properties_.find(variable);
  return it == needed_properties_.end() ? std::set<std::string>{} : it->second;
}

std::string QueryGraph::ToString() const {
  std::string out = "QueryGraph(";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i > 0) out += ", ";
    out += vertices_[i].variable;
    if (!vertices_[i].labels.empty()) {
      out += ":";
      for (size_t j = 0; j < vertices_[i].labels.size(); ++j) {
        if (j > 0) out += "|";
        out += vertices_[i].labels[j];
      }
    }
  }
  out += "; ";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ", ";
    const QueryEdge& e = edges_[i];
    out += vertices_[e.source].variable + "-[" + e.variable;
    if (!e.types.empty()) {
      out += ":";
      for (size_t j = 0; j < e.types.size(); ++j) {
        if (j > 0) out += "|";
        out += e.types[j];
      }
    }
    if (e.IsVariableLength()) {
      out += "*" + std::to_string(e.lower_bound) + ".." +
             std::to_string(e.upper_bound);
    }
    out += "]->" + vertices_[e.target].variable;
  }
  out += ")";
  return out;
}

}  // namespace gradoop::cypher
