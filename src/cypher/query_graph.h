#ifndef GRADOOP_CYPHER_QUERY_GRAPH_H_
#define GRADOOP_CYPHER_QUERY_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "cypher/ast.h"
#include "cypher/expression.h"

namespace gradoop::cypher {

// A query vertex (Definition 2.2). `labels` is an alternation: the data
// vertex's label must be one of them (empty = any label).
struct QueryVertex {
  int index = -1;
  std::string variable;
  std::vector<std::string> labels;

  bool MatchesLabel(const std::string& label) const {
    if (labels.empty()) return true;
    for (const std::string& l : labels) {
      if (l == label) return true;
    }
    return false;
  }
};

// A query edge between two query vertices, possibly variable-length.
struct QueryEdge {
  int index = -1;
  std::string variable;
  std::vector<std::string> types;
  int source = -1;  // index into QueryGraph::vertices()
  int target = -1;
  bool any_direction = false;  // undirected pattern: match either way
  int lower_bound = 1;
  int upper_bound = 1;

  bool IsVariableLength() const {
    return lower_bound != 1 || upper_bound != 1;
  }

  bool MatchesType(const std::string& label) const {
    if (types.empty()) return true;
    for (const std::string& t : types) {
      if (t == label) return true;
    }
    return false;
  }
};

// The query graph Q = (Vq, Eq, ...) derived from a parsed Cypher query,
// with its predicates normalized to CNF and classified for pushdown.
class QueryGraph {
 public:
  // Builds the query graph: merges repeated variables across paths,
  // intersects label constraints, folds property-map sugar into equality
  // predicates and normalizes the WHERE clause to CNF.
  static Result<QueryGraph> Build(const CypherQuery& ast);

  const std::vector<QueryVertex>& vertices() const { return vertices_; }
  const std::vector<QueryEdge>& edges() const { return edges_; }

  const QueryVertex* FindVertex(const std::string& variable) const;
  const QueryEdge* FindEdge(const std::string& variable) const;

  // CNF clauses that reference only `variable` (element-centric; evaluated
  // during the leaf scans, §3.1).
  std::vector<CnfClause> ElementPredicates(const std::string& variable) const;
  // CNF clauses spanning several variables, paired with their variable
  // sets; evaluated by SelectEmbeddings once all variables are bound.
  const std::vector<CnfClause>& CrossPredicates() const {
    return cross_predicates_;
  }

  // Property keys of `variable` that must be carried in embeddings
  // (referenced by WHERE or RETURN).
  std::set<std::string> NeededProperties(const std::string& variable) const;

  // True when label constraints are contradictory (e.g. (a:X) and (a:Y)
  // with disjoint alternations); such a query has no matches.
  bool unsatisfiable() const { return unsatisfiable_; }

  bool return_all() const { return return_all_; }
  bool return_distinct() const { return return_distinct_; }
  // -1 = unlimited.
  int64_t limit() const { return limit_; }
  const std::vector<ReturnItem>& return_items() const { return return_items_; }

  // Human-readable summary for plan explanation.
  std::string ToString() const;

 private:
  std::vector<QueryVertex> vertices_;
  std::vector<QueryEdge> edges_;
  std::map<std::string, int> vertex_by_variable_;
  std::map<std::string, int> edge_by_variable_;
  std::vector<CnfClause> element_predicates_;  // single-variable clauses
  std::vector<CnfClause> cross_predicates_;
  std::map<std::string, std::set<std::string>> needed_properties_;
  bool unsatisfiable_ = false;
  bool return_all_ = false;
  bool return_distinct_ = false;
  int64_t limit_ = -1;
  std::vector<ReturnItem> return_items_;
};

}  // namespace gradoop::cypher

#endif  // GRADOOP_CYPHER_QUERY_GRAPH_H_
