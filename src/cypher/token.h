#ifndef GRADOOP_CYPHER_TOKEN_H_
#define GRADOOP_CYPHER_TOKEN_H_

#include <cstdint>
#include <string>

#include "cypher/source_span.h"

namespace gradoop::cypher {

enum class TokenKind {
  kEof,
  kIdentifier,   // p1, knows, firstName (also unquoted keywords — the
                 // parser matches keywords case-insensitively)
  kString,       // 'Uni Leipzig' or "Uni Leipzig"
  kInteger,      // 2014
  kFloat,        // 3.14
  kLeftParen,    // (
  kRightParen,   // )
  kLeftBracket,  // [
  kRightBracket,  // ]
  kLeftBrace,    // {
  kRightBrace,   // }
  kColon,        // :
  kComma,        // ,
  kDot,          // .
  kDotDot,       // ..
  kPipe,         // |
  kStar,         // *
  kDash,         // -
  kGt,           // >  (also closes `]->`)
  kLt,           // <  (also opens `<-[`)
  kEq,           // =
  kNeq,          // <>
  kLte,          // <=
  kGte,          // >=
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // raw text (unescaped for strings)
  int64_t int_value = 0;  // valid for kInteger
  double float_value = 0.0;  // valid for kFloat
  SourceSpan span;        // location in the query text, for diagnostics

  size_t offset() const { return span.offset; }
};

}  // namespace gradoop::cypher

#endif  // GRADOOP_CYPHER_TOKEN_H_
