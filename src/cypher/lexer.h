#ifndef GRADOOP_CYPHER_LEXER_H_
#define GRADOOP_CYPHER_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cypher/token.h"

namespace gradoop::cypher {

// Tokenizes a Cypher query. Keywords are not distinguished from
// identifiers at this level; the parser matches them case-insensitively.
// The returned stream always ends with a kEof token.
Result<std::vector<Token>> Tokenize(const std::string& query);

}  // namespace gradoop::cypher

#endif  // GRADOOP_CYPHER_LEXER_H_
