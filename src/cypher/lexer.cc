#include "cypher/lexer.h"

#include <cctype>
#include <cstdlib>

namespace gradoop::cypher {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kLeftParen:
      return "'('";
    case TokenKind::kRightParen:
      return "')'";
    case TokenKind::kLeftBracket:
      return "'['";
    case TokenKind::kRightBracket:
      return "']'";
    case TokenKind::kLeftBrace:
      return "'{'";
    case TokenKind::kRightBrace:
      return "'}'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDotDot:
      return "'..'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kDash:
      return "'-'";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNeq:
      return "'<>'";
    case TokenKind::kLte:
      return "'<='";
    case TokenKind::kGte:
      return "'>='";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  int line = 1;
  size_t line_start = 0;  // offset of the first byte of the current line

  auto span_at = [&](size_t offset, size_t length) {
    SourceSpan s;
    s.offset = offset;
    s.length = length;
    s.line = line;
    s.column = static_cast<int>(offset - line_start) + 1;
    return s;
  };

  auto push = [&](TokenKind kind, size_t offset, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    // Single-character punctuation unless the caller's text is longer
    // (identifiers/keywords); string literals fix up their span below.
    t.span = span_at(offset, t.text.empty() ? 1 : t.text.size());
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') {
        ++line;
        line_start = i + 1;
      }
      ++i;
      continue;
    }
    // Comments: // to end of line.
    if (c == '/' && i + 1 < n && query[i + 1] == '/') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(query[j])) ++j;
      push(TokenKind::kIdentifier, start, query.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(query[j]))) ++j;
      // A float needs `digit . digit`; `1..3` is integer followed by dotdot.
      bool is_float = false;
      if (j + 1 < n && query[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(query[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(query[j]))) {
          ++j;
        }
      }
      Token t;
      t.span = span_at(start, j - i);
      t.text = query.substr(i, j - i);
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (query[j] == '\\' && j + 1 < n) {
          const char esc = query[j + 1];
          switch (esc) {
            case 'n':
              value += '\n';
              break;
            case 't':
              value += '\t';
              break;
            default:
              value += esc;
          }
          j += 2;
          continue;
        }
        if (query[j] == quote) {
          closed = true;
          ++j;
          break;
        }
        value += query[j];
        ++j;
      }
      if (!closed) {
        const SourceSpan where = span_at(start, n - start);
        return Status::ParseError("unterminated string literal at " +
                                  where.ToString());
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(value);
      t.span = span_at(start, j - start);
      tokens.push_back(std::move(t));
      // Account for newlines inside the literal so later spans stay right.
      for (size_t k = start; k < j; ++k) {
        if (query[k] == '\n') {
          ++line;
          line_start = k + 1;
        }
      }
      i = j;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLeftParen, start);
        break;
      case ')':
        push(TokenKind::kRightParen, start);
        break;
      case '[':
        push(TokenKind::kLeftBracket, start);
        break;
      case ']':
        push(TokenKind::kRightBracket, start);
        break;
      case '{':
        push(TokenKind::kLeftBrace, start);
        break;
      case '}':
        push(TokenKind::kRightBrace, start);
        break;
      case ':':
        push(TokenKind::kColon, start);
        break;
      case ',':
        push(TokenKind::kComma, start);
        break;
      case '|':
        push(TokenKind::kPipe, start);
        break;
      case '*':
        push(TokenKind::kStar, start);
        break;
      case '-':
        push(TokenKind::kDash, start);
        break;
      case '=':
        push(TokenKind::kEq, start);
        break;
      case '.':
        if (i + 1 < n && query[i + 1] == '.') {
          push(TokenKind::kDotDot, start);
          tokens.back().span.length = 2;
          ++i;
        } else {
          push(TokenKind::kDot, start);
        }
        break;
      case '<':
        // `<>` and `<=` are comparison operators; a bare `<` either starts
        // the pattern arrow `<-[` or is the less-than operator (the parser
        // disambiguates by context).
        if (i + 1 < n && query[i + 1] == '>') {
          push(TokenKind::kNeq, start);
          tokens.back().span.length = 2;
          ++i;
        } else if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kLte, start);
          tokens.back().span.length = 2;
          ++i;
        } else {
          push(TokenKind::kLt, start);
        }
        break;
      case '>':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kGte, start);
          tokens.back().span.length = 2;
          ++i;
        } else {
          push(TokenKind::kGt, start);
        }
        break;
      default: {
        const SourceSpan where = span_at(start, 1);
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at " + where.ToString());
      }
    }
    ++i;
  }
  {
    Token t;
    t.kind = TokenKind::kEof;
    t.span = span_at(n, 0);
    tokens.push_back(std::move(t));
  }
  return tokens;
}

}  // namespace gradoop::cypher
