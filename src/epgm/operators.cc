#include "epgm/operators.h"

#include <unordered_set>

#include "dataflow/dataset.h"

namespace gradoop::epgm {

namespace dfl = ::gradoop::dataflow;

namespace {

// Tags every element of `ds` with membership in graph `gid`.
template <typename T>
dfl::Dataset<T> AddGraphId(const dfl::Dataset<T>& ds, GradoopId gid) {
  return ds.Map(
      [gid](const T& e) {
        T out = e;
        out.graph_ids.push_back(gid);
        return out;
      },
      "AddGraphId");
}

// Driver-side id set of a dataset of elements (used for broadcast-style
// membership filters in the set operators).
template <typename T>
std::unordered_set<GradoopId> CollectIds(const dfl::Dataset<T>& ds) {
  std::unordered_set<GradoopId> ids;
  for (int p = 0; p < ds.num_partitions(); ++p) {
    for (const T& e : ds.partition(p)) ids.insert(e.id);
  }
  return ids;
}

}  // namespace

LogicalGraph Subgraph(const LogicalGraph& graph, const VertexPredicate& vp,
                      const EdgePredicate& ep, GradoopId new_graph_id) {
  auto vertices = graph.vertices().Filter(vp, "SubgraphVertices");
  auto edges = graph.edges().Filter(ep, "SubgraphEdges");

  // Verify: an edge survives only if both endpoints survived. Two
  // distributed semi-joins against the retained vertex ids.
  auto vertex_ids =
      vertices.Map([](const Vertex& v) { return v.id; }, "VertexIds");
  auto edges_src_ok = edges.HashJoin<Edge>(
      vertex_ids, [](const Edge& e) { return e.source_id; },
      [](const GradoopId& id) { return id; },
      [](const Edge& e, const GradoopId&, std::vector<Edge>* out) {
        out->push_back(e);
      },
      dfl::JoinStrategy::kRepartition, "VerifySource");
  auto edges_ok = edges_src_ok.HashJoin<Edge>(
      vertex_ids, [](const Edge& e) { return e.target_id; },
      [](const GradoopId& id) { return id; },
      [](const Edge& e, const GradoopId&, std::vector<Edge>* out) {
        out->push_back(e);
      },
      dfl::JoinStrategy::kRepartition, "VerifyTarget");

  GraphHead head(new_graph_id, graph.head().label, graph.head().properties);
  return LogicalGraph(head, AddGraphId(vertices, new_graph_id),
                      AddGraphId(edges_ok, new_graph_id));
}

LogicalGraph Transform(const LogicalGraph& graph, const HeadTransform& hf,
                       const VertexTransform& vf, const EdgeTransform& ef) {
  return LogicalGraph(hf(graph.head()),
                      graph.vertices().Map(vf, "TransformVertices"),
                      graph.edges().Map(ef, "TransformEdges"));
}

LogicalGraph Combine(const LogicalGraph& a, const LogicalGraph& b,
                     GradoopId new_graph_id) {
  auto vertices = a.vertices()
                      .Union(b.vertices())
                      .Distinct([](const Vertex& v) { return v.id; },
                                "CombineVertices");
  auto edges =
      a.edges().Union(b.edges()).Distinct(
          [](const Edge& e) { return e.id; }, "CombineEdges");
  GraphHead head(new_graph_id, "Combination");
  return LogicalGraph(head, AddGraphId(vertices, new_graph_id),
                      AddGraphId(edges, new_graph_id));
}

LogicalGraph Overlap(const LogicalGraph& a, const LogicalGraph& b,
                     GradoopId new_graph_id) {
  auto b_vertex_ids =
      b.vertices().Map([](const Vertex& v) { return v.id; }, "OverlapIdsV");
  auto vertices = a.vertices().HashJoin<Vertex>(
      b_vertex_ids, [](const Vertex& v) { return v.id; },
      [](const GradoopId& id) { return id; },
      [](const Vertex& v, const GradoopId&, std::vector<Vertex>* out) {
        out->push_back(v);
      },
      dfl::JoinStrategy::kRepartition, "OverlapVertices");
  auto b_edge_ids =
      b.edges().Map([](const Edge& e) { return e.id; }, "OverlapIdsE");
  auto edges = a.edges().HashJoin<Edge>(
      b_edge_ids, [](const Edge& e) { return e.id; },
      [](const GradoopId& id) { return id; },
      [](const Edge& e, const GradoopId&, std::vector<Edge>* out) {
        out->push_back(e);
      },
      dfl::JoinStrategy::kRepartition, "OverlapEdges");
  GraphHead head(new_graph_id, "Overlap");
  return LogicalGraph(head, AddGraphId(vertices, new_graph_id),
                      AddGraphId(edges, new_graph_id));
}

LogicalGraph Exclusion(const LogicalGraph& a, const LogicalGraph& b,
                       GradoopId new_graph_id) {
  // Anti-join via a broadcast membership filter (the excluded side is
  // typically small; Gradoop similarly broadcasts in set operators).
  const auto excluded_v = CollectIds(b.vertices());
  const auto excluded_e = CollectIds(b.edges());
  auto vertices = a.vertices().Filter(
      [excluded_v](const Vertex& v) { return !excluded_v.contains(v.id); },
      "ExclusionVertices");
  auto edges = a.edges().Filter(
      [&vertices_ids = excluded_v, excluded_e](const Edge& e) {
        return !excluded_e.contains(e.id) &&
               !vertices_ids.contains(e.source_id) &&
               !vertices_ids.contains(e.target_id);
      },
      "ExclusionEdges");
  GraphHead head(new_graph_id, "Exclusion");
  return LogicalGraph(head, AddGraphId(vertices, new_graph_id),
                      AddGraphId(edges, new_graph_id));
}

LogicalGraph Aggregate(const LogicalGraph& graph,
                       const std::string& property_key,
                       const GraphAggregate& fn) {
  GraphHead head = graph.head();
  head.properties.Set(property_key, fn(graph));
  return LogicalGraph(head, graph.vertices(), graph.edges());
}

PropertyValue VertexCountAggregate(const LogicalGraph& graph) {
  return PropertyValue(static_cast<int64_t>(graph.vertices().Count()));
}

PropertyValue EdgeCountAggregate(const LogicalGraph& graph) {
  return PropertyValue(static_cast<int64_t>(graph.edges().Count()));
}

GraphCollection Select(const GraphCollection& collection,
                       const HeadPredicate& pred) {
  auto heads = collection.heads().Filter(pred, "SelectHeads");
  const auto kept = CollectIds(heads);
  auto member_of = [kept](const GradoopIdSet& gids) {
    for (GradoopId g : gids) {
      if (kept.contains(g)) return true;
    }
    return false;
  };
  auto vertices = collection.vertices().Filter(
      [member_of](const Vertex& v) { return member_of(v.graph_ids); },
      "SelectVertices");
  auto edges = collection.edges().Filter(
      [member_of](const Edge& e) { return member_of(e.graph_ids); },
      "SelectEdges");
  return GraphCollection(heads, vertices, edges);
}

}  // namespace gradoop::epgm
