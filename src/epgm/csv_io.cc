#include "epgm/csv_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace gradoop::epgm {

namespace {

constexpr char kReserved[] = ";|=:,%\n";

bool IsReserved(char c) {
  for (const char* p = kReserved; *p; ++p) {
    if (*p == c) return true;
  }
  return false;
}

std::string IdSetToString(const GradoopIdSet& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

Result<GradoopIdSet> ParseIdSet(const std::string& text) {
  GradoopIdSet ids;
  if (text.empty()) return ids;
  for (const std::string& part : SplitString(text, ',')) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(part.c_str(), &end, 10);
    if (errno != 0 || end == part.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad id: " + part);
    }
    ids.push_back(v);
  }
  return ids;
}

Result<GradoopId> ParseId(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad id: " + text);
  }
  return static_cast<GradoopId>(v);
}

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

}  // namespace

std::string EscapeCsvField(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (IsReserved(c)) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeCsvField(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const int hi = std::isxdigit(static_cast<unsigned char>(text[i + 1]))
                         ? std::stoi(text.substr(i + 1, 2), nullptr, 16)
                         : -1;
      if (hi >= 0) {
        out += static_cast<char>(hi);
        i += 2;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

std::string EncodeProperties(const Properties& properties) {
  std::string out;
  bool first = true;
  for (const auto& [key, value] : properties.entries()) {
    if (value.is_id_list()) continue;  // path payloads are not persisted
    if (!first) out += '|';
    first = false;
    out += EscapeCsvField(key);
    out += '=';
    out += value.TypeName();
    out += ':';
    out += EscapeCsvField(value.ToString());
  }
  return out;
}

Result<Properties> DecodeProperties(const std::string& text) {
  Properties props;
  if (text.empty()) return props;
  for (const std::string& entry : SplitString(text, '|')) {
    const size_t eq = entry.find('=');
    const size_t colon = entry.find(':', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || colon == std::string::npos || colon < eq) {
      return Status::InvalidArgument("bad property entry: " + entry);
    }
    const std::string key = UnescapeCsvField(entry.substr(0, eq));
    const std::string type = entry.substr(eq + 1, colon - eq - 1);
    const std::string value = UnescapeCsvField(entry.substr(colon + 1));
    GRADOOP_ASSIGN_OR_RETURN(PropertyValue pv,
                             PropertyValue::ParseTyped(type, value));
    props.Set(key, std::move(pv));
  }
  return props;
}

namespace {

void WriteGraphHeads(std::ostream& out,
                     const std::vector<GraphHead>& heads) {
  for (const GraphHead& h : heads) {
    out << h.id << ';' << EscapeCsvField(h.label) << ';'
        << EncodeProperties(h.properties) << '\n';
  }
}

void WriteVertices(std::ostream& out, const dataflow::Dataset<Vertex>& ds) {
  for (int p = 0; p < ds.num_partitions(); ++p) {
    for (const Vertex& v : ds.partition(p)) {
      out << v.id << ';' << IdSetToString(v.graph_ids) << ';'
          << EscapeCsvField(v.label) << ';' << EncodeProperties(v.properties)
          << '\n';
    }
  }
}

void WriteEdges(std::ostream& out, const dataflow::Dataset<Edge>& ds) {
  for (int p = 0; p < ds.num_partitions(); ++p) {
    for (const Edge& e : ds.partition(p)) {
      out << e.id << ';' << IdSetToString(e.graph_ids) << ';'
          << EscapeCsvField(e.label) << ';' << e.source_id << ';'
          << e.target_id << ';' << EncodeProperties(e.properties) << '\n';
    }
  }
}

Status WriteAll(const std::vector<GraphHead>& heads,
                const dataflow::Dataset<Vertex>& vertices,
                const dataflow::Dataset<Edge>& edges,
                const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::InvalidArgument("cannot create " + dir);
  {
    std::ofstream out(dir + "/graphs.csv");
    if (!out) return Status::InvalidArgument("cannot write graphs.csv");
    WriteGraphHeads(out, heads);
  }
  {
    std::ofstream out(dir + "/vertices.csv");
    if (!out) return Status::InvalidArgument("cannot write vertices.csv");
    WriteVertices(out, vertices);
  }
  {
    std::ofstream out(dir + "/edges.csv");
    if (!out) return Status::InvalidArgument("cannot write edges.csv");
    WriteEdges(out, edges);
  }
  return Status::Ok();
}

Result<std::vector<GraphHead>> ParseHeads(const std::string& path) {
  GRADOOP_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  std::vector<GraphHead> heads;
  for (const std::string& line : lines) {
    const auto fields = SplitString(line, ';');
    if (fields.size() != 3) {
      return Status::InvalidArgument("bad graphs.csv row: " + line);
    }
    GRADOOP_ASSIGN_OR_RETURN(GradoopId id, ParseId(fields[0]));
    GRADOOP_ASSIGN_OR_RETURN(Properties props, DecodeProperties(fields[2]));
    heads.emplace_back(id, UnescapeCsvField(fields[1]), std::move(props));
  }
  return heads;
}

Result<std::vector<Vertex>> ParseVertices(const std::string& path) {
  GRADOOP_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  std::vector<Vertex> vertices;
  vertices.reserve(lines.size());
  for (const std::string& line : lines) {
    const auto fields = SplitString(line, ';');
    if (fields.size() != 4) {
      return Status::InvalidArgument("bad vertices.csv row: " + line);
    }
    GRADOOP_ASSIGN_OR_RETURN(GradoopId id, ParseId(fields[0]));
    GRADOOP_ASSIGN_OR_RETURN(GradoopIdSet gids, ParseIdSet(fields[1]));
    GRADOOP_ASSIGN_OR_RETURN(Properties props, DecodeProperties(fields[3]));
    vertices.emplace_back(id, UnescapeCsvField(fields[2]), std::move(props),
                          std::move(gids));
  }
  return vertices;
}

Result<std::vector<Edge>> ParseEdges(const std::string& path) {
  GRADOOP_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  std::vector<Edge> edges;
  edges.reserve(lines.size());
  for (const std::string& line : lines) {
    const auto fields = SplitString(line, ';');
    if (fields.size() != 6) {
      return Status::InvalidArgument("bad edges.csv row: " + line);
    }
    GRADOOP_ASSIGN_OR_RETURN(GradoopId id, ParseId(fields[0]));
    GRADOOP_ASSIGN_OR_RETURN(GradoopIdSet gids, ParseIdSet(fields[1]));
    GRADOOP_ASSIGN_OR_RETURN(GradoopId src, ParseId(fields[3]));
    GRADOOP_ASSIGN_OR_RETURN(GradoopId dst, ParseId(fields[4]));
    GRADOOP_ASSIGN_OR_RETURN(Properties props, DecodeProperties(fields[5]));
    edges.emplace_back(id, UnescapeCsvField(fields[2]), src, dst,
                       std::move(props), std::move(gids));
  }
  return edges;
}

}  // namespace

Status WriteCsv(const LogicalGraph& graph, const std::string& dir) {
  return WriteAll({graph.head()}, graph.vertices(), graph.edges(), dir);
}

Status WriteCsv(const GraphCollection& collection, const std::string& dir) {
  std::vector<GraphHead> heads;
  for (int p = 0; p < collection.heads().num_partitions(); ++p) {
    for (const GraphHead& h : collection.heads().partition(p)) {
      heads.push_back(h);
    }
  }
  return WriteAll(heads, collection.vertices(), collection.edges(), dir);
}

Result<LogicalGraph> ReadCsvLogicalGraph(dataflow::ExecutionContextPtr ctx,
                                         const std::string& dir) {
  GRADOOP_ASSIGN_OR_RETURN(std::vector<GraphHead> heads,
                           ParseHeads(dir + "/graphs.csv"));
  if (heads.empty()) {
    return Status::InvalidArgument("graphs.csv holds no graph head");
  }
  GRADOOP_ASSIGN_OR_RETURN(std::vector<Vertex> vertices,
                           ParseVertices(dir + "/vertices.csv"));
  GRADOOP_ASSIGN_OR_RETURN(std::vector<Edge> edges,
                           ParseEdges(dir + "/edges.csv"));
  return LogicalGraph::FromVectors(std::move(ctx), heads.front(),
                                   std::move(vertices), std::move(edges));
}

Result<GraphCollection> ReadCsvGraphCollection(
    dataflow::ExecutionContextPtr ctx, const std::string& dir) {
  GRADOOP_ASSIGN_OR_RETURN(std::vector<GraphHead> heads,
                           ParseHeads(dir + "/graphs.csv"));
  GRADOOP_ASSIGN_OR_RETURN(std::vector<Vertex> vertices,
                           ParseVertices(dir + "/vertices.csv"));
  GRADOOP_ASSIGN_OR_RETURN(std::vector<Edge> edges,
                           ParseEdges(dir + "/edges.csv"));
  auto head_ds =
      dataflow::Dataset<GraphHead>::FromVector(ctx, std::move(heads));
  auto vertex_ds =
      dataflow::Dataset<Vertex>::FromVector(ctx, std::move(vertices));
  auto edge_ds = dataflow::Dataset<Edge>::FromVector(ctx, std::move(edges));
  return GraphCollection(std::move(head_ds), std::move(vertex_ds),
                         std::move(edge_ds));
}

}  // namespace gradoop::epgm
