#ifndef GRADOOP_EPGM_CSV_IO_H_
#define GRADOOP_EPGM_CSV_IO_H_

#include <string>

#include "common/result.h"
#include "epgm/logical_graph.h"

namespace gradoop::epgm {

// Gradoop-style CSV data source/sink. A graph directory contains
//   graphs.csv    id;label;properties
//   vertices.csv  id;graphs;label;properties
//   edges.csv     id;graphs;label;source;target;properties
// where `graphs` is a comma-separated id list and `properties` is a
// |-separated list of key=type:value triples (type in {string, long,
// double, boolean}). Reserved characters in string values are
// percent-escaped.

// Writes the graph / collection to `dir` (created if missing).
Status WriteCsv(const LogicalGraph& graph, const std::string& dir);
Status WriteCsv(const GraphCollection& collection, const std::string& dir);

// Loads a logical graph. If graphs.csv holds several heads, the first is
// used as the graph head (a collection read returns them all).
Result<LogicalGraph> ReadCsvLogicalGraph(dataflow::ExecutionContextPtr ctx,
                                         const std::string& dir);
Result<GraphCollection> ReadCsvGraphCollection(
    dataflow::ExecutionContextPtr ctx, const std::string& dir);

// Row-level encoding, exposed for tests.
std::string EncodeProperties(const Properties& properties);
Result<Properties> DecodeProperties(const std::string& text);
std::string EscapeCsvField(const std::string& text);
std::string UnescapeCsvField(const std::string& text);

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_CSV_IO_H_
