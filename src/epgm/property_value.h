#ifndef GRADOOP_EPGM_PROPERTY_VALUE_H_
#define GRADOOP_EPGM_PROPERTY_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace gradoop::epgm {

// A property value bound to a property key (Definition 2.1: the set A).
// Dynamically typed, as the property graph model is schema-free. The
// supported types cover the LDBC data and the Cypher literal types.
class PropertyValue {
 public:
  enum class Type : uint8_t {
    kNull = 0,
    kBool = 1,
    kInt64 = 2,
    kDouble = 3,
    kString = 4,
    kIdList = 5,  // list of graph-element ids (variable-length path `via`)
  };

  PropertyValue() : value_(std::monostate{}) {}
  // Implicit construction from each supported type keeps property literals
  // terse at call sites (properties.Set("yob", 1984)).
  PropertyValue(bool v) : value_(v) {}                     // NOLINT
  PropertyValue(int64_t v) : value_(v) {}                  // NOLINT
  PropertyValue(int v) : value_(static_cast<int64_t>(v)) {}  // NOLINT
  PropertyValue(double v) : value_(v) {}                   // NOLINT
  PropertyValue(std::string v) : value_(std::move(v)) {}   // NOLINT
  PropertyValue(const char* v) : value_(std::string(v)) {}  // NOLINT
  PropertyValue(std::vector<uint64_t> v) : value_(std::move(v)) {}  // NOLINT

  static PropertyValue Null() { return PropertyValue(); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt64; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_string() const { return type() == Type::kString; }
  bool is_id_list() const { return type() == Type::kIdList; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool bool_value() const { return std::get<bool>(value_); }
  int64_t int_value() const { return std::get<int64_t>(value_); }
  double double_value() const { return std::get<double>(value_); }
  const std::string& string_value() const {
    return std::get<std::string>(value_);
  }
  const std::vector<uint64_t>& id_list_value() const {
    return std::get<std::vector<uint64_t>>(value_);
  }

  // Numeric value widened to double (valid for int and double types).
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  // Exact equality: types must match, except int/double which compare
  // numerically (Cypher semantics).
  bool operator==(const PropertyValue& other) const;
  bool operator!=(const PropertyValue& other) const {
    return !(*this == other);
  }

  // Three-way comparison: <0, 0, >0. Returns nullopt when the values are
  // incomparable (different non-numeric types, nulls, lists) — Cypher
  // treats such comparisons as undefined and the enclosing predicate
  // evaluates to false.
  std::optional<int> Compare(const PropertyValue& other) const;

  // Number of bytes in the binary wire encoding (type tag + payload).
  size_t SerializedSize() const;

  // Appends the binary encoding to `out`. DecodeFrom reads one value back,
  // advancing *pos; returns an error on truncated/corrupt input.
  void EncodeTo(std::string* out) const;
  static Result<PropertyValue> DecodeFrom(const std::string& data,
                                          size_t* pos);

  // Display form used by CSV I/O and test output, e.g. `Alice`, `1984`,
  // `true`. ParseTyped reverses it given the type name used in the CSV
  // header (`string`, `long`, `double`, `boolean`).
  std::string ToString() const;
  static Result<PropertyValue> ParseTyped(const std::string& type_name,
                                          const std::string& text);
  // Name of this value's type in CSV metadata.
  const char* TypeName() const;

  // Stable hash for dataset Distinct/grouping keys.
  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::vector<uint64_t>>
      value_;
};

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_PROPERTY_VALUE_H_
