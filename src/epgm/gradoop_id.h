#ifndef GRADOOP_EPGM_GRADOOP_ID_H_
#define GRADOOP_EPGM_GRADOOP_ID_H_

#include <cstdint>
#include <vector>

namespace gradoop::epgm {

// Identifier of a graph, vertex or edge. Gradoop uses 12-byte ids; a 64-bit
// integer is sufficient for our data sizes and keeps shuffle keys flat.
using GradoopId = uint64_t;

inline constexpr GradoopId kInvalidId = ~0ull;

// Identifiers of the logical graphs an element belongs to (the mapping
// l : V ∪ E → P(L) of Definition 2.1).
using GradoopIdSet = std::vector<GradoopId>;

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_GRADOOP_ID_H_
