#include "epgm/properties.h"

namespace gradoop::epgm {

namespace {
const PropertyValue kNullValue;
}  // namespace

void Properties::Set(const std::string& key, PropertyValue value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

const PropertyValue& Properties::Get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return kNullValue;
}

bool Properties::Has(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

bool Properties::Remove(const std::string& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

size_t Properties::SerializedSize() const {
  size_t total = sizeof(uint32_t);
  for (const auto& [k, v] : entries_) {
    total += sizeof(uint32_t) + k.size() + v.SerializedSize();
  }
  return total;
}

}  // namespace gradoop::epgm
