#ifndef GRADOOP_EPGM_ELEMENTS_H_
#define GRADOOP_EPGM_ELEMENTS_H_

#include <string>
#include <utility>

#include "epgm/gradoop_id.h"
#include "epgm/properties.h"

namespace gradoop::epgm {

// Data shared by all EPGM elements: identity, type label τ and properties.
struct Element {
  GradoopId id = kInvalidId;
  std::string label;
  Properties properties;

  size_t SerializedSize() const {
    return sizeof(GradoopId) + sizeof(uint32_t) + label.size() +
           properties.SerializedSize();
  }
};

// Header record of a logical graph (the set L of Definition 2.1 together
// with its label and properties).
struct GraphHead : Element {
  GraphHead() = default;
  GraphHead(GradoopId id_in, std::string label_in,
            Properties properties_in = {}) {
    id = id_in;
    label = std::move(label_in);
    properties = std::move(properties_in);
  }
};

// A vertex; `graph_ids` records logical-graph membership (mapping l).
struct Vertex : Element {
  GradoopIdSet graph_ids;

  Vertex() = default;
  Vertex(GradoopId id_in, std::string label_in, Properties properties_in = {},
         GradoopIdSet graph_ids_in = {}) {
    id = id_in;
    label = std::move(label_in);
    properties = std::move(properties_in);
    graph_ids = std::move(graph_ids_in);
  }

  size_t SerializedSize() const {
    return Element::SerializedSize() + sizeof(uint32_t) +
           graph_ids.size() * sizeof(GradoopId);
  }
};

// A directed edge from `source_id` to `target_id` (mappings s and t).
struct Edge : Element {
  GradoopId source_id = kInvalidId;
  GradoopId target_id = kInvalidId;
  GradoopIdSet graph_ids;

  Edge() = default;
  Edge(GradoopId id_in, std::string label_in, GradoopId source,
       GradoopId target, Properties properties_in = {},
       GradoopIdSet graph_ids_in = {}) {
    id = id_in;
    label = std::move(label_in);
    source_id = source;
    target_id = target;
    properties = std::move(properties_in);
    graph_ids = std::move(graph_ids_in);
  }

  size_t SerializedSize() const {
    return Element::SerializedSize() + 2 * sizeof(GradoopId) +
           sizeof(uint32_t) + graph_ids.size() * sizeof(GradoopId);
  }
};

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_ELEMENTS_H_
