#ifndef GRADOOP_EPGM_OPERATORS_H_
#define GRADOOP_EPGM_OPERATORS_H_

#include <functional>
#include <string>

#include "epgm/logical_graph.h"

namespace gradoop::epgm {

// Analytical EPGM operators (§2.1, [12]). Each consumes and produces
// logical graphs or collections, so they compose with the Cypher
// pattern-matching operator into analytical programs.

using VertexPredicate = std::function<bool(const Vertex&)>;
using EdgePredicate = std::function<bool(const Edge&)>;
using HeadPredicate = std::function<bool(const GraphHead&)>;
using VertexTransform = std::function<Vertex(const Vertex&)>;
using EdgeTransform = std::function<Edge(const Edge&)>;
using HeadTransform = std::function<GraphHead(const GraphHead&)>;

// Extracts the subgraph induced by the vertex and edge predicates. Edges
// are additionally verified against the retained vertex set (both
// endpoints must survive), implemented as two distributed joins.
LogicalGraph Subgraph(const LogicalGraph& graph, const VertexPredicate& vp,
                      const EdgePredicate& ep, GradoopId new_graph_id);

// Applies element-wise transformation functions; structure is unchanged.
LogicalGraph Transform(const LogicalGraph& graph, const HeadTransform& hf,
                       const VertexTransform& vf, const EdgeTransform& ef);

// Set operators on the element sets of two logical graphs.
LogicalGraph Combine(const LogicalGraph& a, const LogicalGraph& b,
                     GradoopId new_graph_id);
LogicalGraph Overlap(const LogicalGraph& a, const LogicalGraph& b,
                     GradoopId new_graph_id);
LogicalGraph Exclusion(const LogicalGraph& a, const LogicalGraph& b,
                       GradoopId new_graph_id);

// Property-based aggregation: stores `fn`'s value under `property_key` on
// the graph head. Provided aggregate helpers below.
using GraphAggregate = std::function<PropertyValue(const LogicalGraph&)>;
LogicalGraph Aggregate(const LogicalGraph& graph,
                       const std::string& property_key,
                       const GraphAggregate& fn);
PropertyValue VertexCountAggregate(const LogicalGraph& graph);
PropertyValue EdgeCountAggregate(const LogicalGraph& graph);

// Selection on a collection: keeps logical graphs whose head satisfies the
// predicate, and restricts the element datasets to the surviving graphs.
GraphCollection Select(const GraphCollection& collection,
                       const HeadPredicate& pred);

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_OPERATORS_H_
