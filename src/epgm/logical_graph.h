#ifndef GRADOOP_EPGM_LOGICAL_GRAPH_H_
#define GRADOOP_EPGM_LOGICAL_GRAPH_H_

#include <utility>
#include <vector>

#include "dataflow/dataset.h"
#include "epgm/elements.h"

namespace gradoop::epgm {

// A single property graph distributed over the cluster: one graph head and
// the vertex/edge datasets (§2.4, Table 1). The EPGM operators and the
// Cypher pattern-matching operator consume and produce this type.
class LogicalGraph {
 public:
  LogicalGraph() = default;
  LogicalGraph(GraphHead head, dataflow::Dataset<Vertex> vertices,
               dataflow::Dataset<Edge> edges)
      : head_(std::move(head)),
        vertices_(std::move(vertices)),
        edges_(std::move(edges)) {}

  // Builds a distributed graph from driver-side element vectors.
  static LogicalGraph FromVectors(dataflow::ExecutionContextPtr ctx,
                                  GraphHead head, std::vector<Vertex> vertices,
                                  std::vector<Edge> edges) {
    auto vertex_ds =
        dataflow::Dataset<Vertex>::FromVector(ctx, std::move(vertices));
    auto edge_ds =
        dataflow::Dataset<Edge>::FromVector(std::move(ctx), std::move(edges));
    return LogicalGraph(std::move(head), std::move(vertex_ds),
                        std::move(edge_ds));
  }

  const GraphHead& head() const { return head_; }
  GraphHead& head() { return head_; }
  const dataflow::Dataset<Vertex>& vertices() const { return vertices_; }
  const dataflow::Dataset<Edge>& edges() const { return edges_; }
  const dataflow::ExecutionContextPtr& context() const {
    return vertices_.context();
  }
  bool valid() const { return vertices_.valid() && edges_.valid(); }

 private:
  GraphHead head_;
  dataflow::Dataset<Vertex> vertices_;
  dataflow::Dataset<Edge> edges_;
};

// A set of (possibly overlapping) logical graphs sharing one vertex/edge
// universe; membership is recorded in each element's graph_ids (§2.1).
class GraphCollection {
 public:
  GraphCollection() = default;
  GraphCollection(dataflow::Dataset<GraphHead> heads,
                  dataflow::Dataset<Vertex> vertices,
                  dataflow::Dataset<Edge> edges)
      : heads_(std::move(heads)),
        vertices_(std::move(vertices)),
        edges_(std::move(edges)) {}

  const dataflow::Dataset<GraphHead>& heads() const { return heads_; }
  const dataflow::Dataset<Vertex>& vertices() const { return vertices_; }
  const dataflow::Dataset<Edge>& edges() const { return edges_; }
  bool valid() const { return heads_.valid(); }

  // Number of logical graphs in the collection.
  uint64_t NumGraphs() const { return heads_.Count(); }

 private:
  dataflow::Dataset<GraphHead> heads_;
  dataflow::Dataset<Vertex> vertices_;
  dataflow::Dataset<Edge> edges_;
};

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_LOGICAL_GRAPH_H_
