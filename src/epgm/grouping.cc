#include "epgm/grouping.h"

#include <cstring>
#include <map>
#include <unordered_map>

#include "dataflow/dataset.h"

namespace gradoop::epgm {

namespace dfl = ::gradoop::dataflow;

namespace {

// Serialized group key: label (optional) plus the listed property values.
std::string GroupKeyOf(const Element& element, bool use_label,
                       const std::vector<std::string>& keys) {
  std::string out;
  if (use_label) {
    out += element.label;
  }
  out.push_back('\0');
  for (const std::string& key : keys) {
    element.properties.Get(key).EncodeTo(&out);
    out.push_back('\0');
  }
  return out;
}

}  // namespace

LogicalGraph GroupGraph(const LogicalGraph& graph,
                        const GroupingConfig& config, GradoopId new_graph_id,
                        GradoopId id_base) {
  const bool v_label = config.group_vertices_by_label;
  const std::vector<std::string> v_keys = config.vertex_group_keys;

  // Phase 1: reduce vertices into groups. The accumulator keeps one
  // representative (for label / grouped property values) and the count.
  struct VertexGroup {
    std::string label;
    Properties grouped;
    int64_t count = 0;

    size_t SerializedSize() const {
      return sizeof(uint32_t) + label.size() + grouped.SerializedSize() + 8;
    }
  };
  auto vertex_groups = graph.vertices().ReduceByKey(
      [v_label, v_keys](const Vertex& v) {
        return GroupKeyOf(v, v_label, v_keys);
      },
      [v_label, v_keys](const Vertex& v) {
        VertexGroup g;
        if (v_label) g.label = v.label;
        for (const std::string& key : v_keys) {
          g.grouped.Set(key, v.properties.Get(key));
        }
        g.count = 1;
        return g;
      },
      [](VertexGroup acc, const Vertex&) {
        acc.count += 1;
        return acc;
      },
      "GroupVertices");

  // Assign deterministic super-vertex ids on the driver (the number of
  // groups is tiny compared to the graph).
  std::map<std::string, GradoopId> super_id_of;
  std::vector<Vertex> super_vertex_rows;
  {
    auto rows = vertex_groups.Collect();
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    GradoopId next = id_base;
    for (const auto& [key, group] : rows) {
      const GradoopId id = next++;
      super_id_of.emplace(key, id);
      Vertex v(id, group.label.empty() ? "Group" : group.label,
               group.grouped, {new_graph_id});
      v.properties.Set("count", group.count);
      super_vertex_rows.push_back(std::move(v));
    }
  }
  auto super_vertices = dfl::Dataset<Vertex>::FromVector(
      graph.context(), super_vertex_rows);

  // Phase 2: rewrite edges onto super-vertices. The vertex -> super-vertex
  // mapping is a pure function of the vertex's group key, so endpoint
  // resolution joins edges with the (id -> super id) pairs derived from
  // the vertices.
  auto vertex_mapping = graph.vertices().Map(
      [v_label, v_keys, super_id_of](const Vertex& v) {
        auto it = super_id_of.find(GroupKeyOf(v, v_label, v_keys));
        return std::make_pair(v.id,
                              it == super_id_of.end() ? kInvalidId
                                                      : it->second);
      },
      "VertexToSuper");

  using Rewritten = Edge;
  auto edges_src = graph.edges().HashJoin<Rewritten>(
      vertex_mapping, [](const Edge& e) { return e.source_id; },
      [](const std::pair<GradoopId, GradoopId>& m) { return m.first; },
      [](const Edge& e, const std::pair<GradoopId, GradoopId>& m,
         std::vector<Rewritten>* out) {
        Edge copy = e;
        copy.source_id = m.second;
        out->push_back(std::move(copy));
      },
      dfl::JoinStrategy::kRepartition, "RewriteSource");
  auto edges_both = edges_src.HashJoin<Rewritten>(
      vertex_mapping, [](const Edge& e) { return e.target_id; },
      [](const std::pair<GradoopId, GradoopId>& m) { return m.first; },
      [](const Edge& e, const std::pair<GradoopId, GradoopId>& m,
         std::vector<Rewritten>* out) {
        Edge copy = e;
        copy.target_id = m.second;
        out->push_back(std::move(copy));
      },
      dfl::JoinStrategy::kRepartition, "RewriteTarget");

  // Phase 3: reduce parallel edges between the same groups.
  const bool e_label = config.group_edges_by_label;
  const std::vector<std::string> e_keys = config.edge_group_keys;
  struct EdgeGroup {
    GradoopId source = kInvalidId;
    GradoopId target = kInvalidId;
    std::string label;
    Properties grouped;
    int64_t count = 0;

    size_t SerializedSize() const {
      return 16 + sizeof(uint32_t) + label.size() +
             grouped.SerializedSize() + 8;
    }
  };
  auto edge_groups = edges_both.ReduceByKey(
      [e_label, e_keys](const Edge& e) {
        std::string key = GroupKeyOf(e, e_label, e_keys);
        char buf[16];
        std::memcpy(buf, &e.source_id, 8);
        std::memcpy(buf + 8, &e.target_id, 8);
        key.append(buf, 16);
        return key;
      },
      [e_label, e_keys](const Edge& e) {
        EdgeGroup g;
        g.source = e.source_id;
        g.target = e.target_id;
        if (e_label) g.label = e.label;
        for (const std::string& key : e_keys) {
          g.grouped.Set(key, e.properties.Get(key));
        }
        g.count = 1;
        return g;
      },
      [](EdgeGroup acc, const Edge&) {
        acc.count += 1;
        return acc;
      },
      "GroupEdges");

  // Materialize super-edges with partition-deterministic ids.
  auto super_edges = edge_groups.MapPartition<Edge>(
      [new_graph_id, id_base](
          int partition,
          const std::vector<std::pair<std::string, EdgeGroup>>& in,
          std::vector<Edge>* out) {
        uint64_t seq = 0;
        for (const auto& [key, group] : in) {
          Edge e(id_base + (1ull << 32) +
                     (static_cast<uint64_t>(partition) << 24) + seq++,
                 group.label.empty() ? "Group" : group.label, group.source,
                 group.target, group.grouped, {new_graph_id});
          e.properties.Set("count", group.count);
          out->push_back(std::move(e));
        }
      },
      "MaterializeSuperEdges");

  GraphHead head(new_graph_id, "Summary");
  return LogicalGraph(head, std::move(super_vertices),
                      std::move(super_edges));
}

}  // namespace gradoop::epgm
