#ifndef GRADOOP_EPGM_PROPERTIES_H_
#define GRADOOP_EPGM_PROPERTIES_H_

#include <string>
#include <utility>
#include <vector>

#include "epgm/property_value.h"

namespace gradoop::epgm {

// Key -> value map attached to every graph element (the mapping κ of
// Definition 2.1). Elements typically carry a handful of properties, so a
// flat sorted-insertion vector beats a hash map on both size and speed.
class Properties {
 public:
  Properties() = default;
  Properties(std::initializer_list<std::pair<std::string, PropertyValue>> init) {
    for (auto& [k, v] : init) Set(k, v);
  }

  // Sets or overwrites `key`.
  void Set(const std::string& key, PropertyValue value);

  // Returns the value for `key`, or null (κ returns ε for absent keys).
  const PropertyValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  // Removes `key` if present; returns whether it was.
  bool Remove(const std::string& key);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, PropertyValue>>& entries() const {
    return entries_;
  }

  size_t SerializedSize() const;

  bool operator==(const Properties& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<std::pair<std::string, PropertyValue>> entries_;
};

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_PROPERTIES_H_
