#ifndef GRADOOP_EPGM_GROUPING_H_
#define GRADOOP_EPGM_GROUPING_H_

#include <string>
#include <vector>

#include "epgm/logical_graph.h"

namespace gradoop::epgm {

// Configuration of the structural grouping (graph summarization) operator
// [14]: vertices with equal grouping keys collapse into one super-vertex,
// edges between two groups collapse into one super-edge; both carry a
// `count` property with the size of their group.
struct GroupingConfig {
  // Group vertices by type label.
  bool group_vertices_by_label = true;
  // Additional vertex property keys contributing to the group key; the
  // grouped value is copied onto the super-vertex.
  std::vector<std::string> vertex_group_keys;

  // Group parallel super-edges by their type label.
  bool group_edges_by_label = true;
  // Additional edge property keys contributing to the edge group key.
  std::vector<std::string> edge_group_keys;
};

// Summarizes `graph` under `config`. Super-vertices receive ids starting
// at `id_base` (callers pick a range disjoint from the input id space).
// Dangling edges (endpoint outside the vertex set) are dropped.
//
// Implemented as dataflow transformations: a ReduceByKey over the vertex
// group keys, a membership join mapping endpoints to super-vertices, and
// a ReduceByKey over the edge group keys.
LogicalGraph GroupGraph(const LogicalGraph& graph,
                        const GroupingConfig& config, GradoopId new_graph_id,
                        GradoopId id_base);

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_GROUPING_H_
