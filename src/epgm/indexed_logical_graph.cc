#include "epgm/indexed_logical_graph.h"

#include <memory>

namespace gradoop::epgm {

namespace {

// Splits one element dataset into per-label datasets without moving records
// across partitions.
template <typename T>
std::map<std::string, dataflow::Dataset<T>> SplitByLabel(
    const dataflow::Dataset<T>& input) {
  using Partitions = typename dataflow::Dataset<T>::Partitions;
  const int p = input.num_partitions();
  std::map<std::string, std::shared_ptr<Partitions>> buckets;
  for (int i = 0; i < p; ++i) {
    for (const T& rec : input.partition(i)) {
      auto it = buckets.find(rec.label);
      if (it == buckets.end()) {
        it = buckets.emplace(rec.label, std::make_shared<Partitions>(p)).first;
      }
      (*it->second)[i].push_back(rec);
    }
  }
  std::map<std::string, dataflow::Dataset<T>> out;
  for (auto& [label, parts] : buckets) {
    out.emplace(label, dataflow::Dataset<T>(input.context(), parts));
  }
  return out;
}

}  // namespace

IndexedLogicalGraph IndexedLogicalGraph::Build(const LogicalGraph& graph) {
  IndexedLogicalGraph out;
  out.head_ = graph.head();
  out.ctx_ = graph.context();
  out.vertices_by_label_ = SplitByLabel(graph.vertices());
  out.edges_by_label_ = SplitByLabel(graph.edges());

  // One narrow pass over all elements (load-time re-bucketing).
  dataflow::StageCost cost;
  cost.label = "BuildIndex";
  uint64_t records = 0;
  for (int i = 0; i < graph.vertices().num_partitions(); ++i) {
    records += graph.vertices().partition(i).size();
    records += graph.edges().partition(i).size();
  }
  const auto& cfg = out.ctx_->config();
  cost.compute_sec = static_cast<double>(records) / cfg.num_workers *
                     cfg.seconds_per_record;
  cost.latency_sec = cfg.stage_latency_sec;
  out.ctx_->tracker().AddStage(cost);
  return out;
}

dataflow::Dataset<Vertex> IndexedLogicalGraph::VerticesByLabel(
    const std::string& label) const {
  auto it = vertices_by_label_.find(label);
  if (it == vertices_by_label_.end()) {
    return dataflow::Dataset<Vertex>::Empty(ctx_);
  }
  return it->second;
}

dataflow::Dataset<Edge> IndexedLogicalGraph::EdgesByLabel(
    const std::string& label) const {
  auto it = edges_by_label_.find(label);
  if (it == edges_by_label_.end()) {
    return dataflow::Dataset<Edge>::Empty(ctx_);
  }
  return it->second;
}

dataflow::Dataset<Vertex> IndexedLogicalGraph::AllVertices() const {
  dataflow::Dataset<Vertex> out = dataflow::Dataset<Vertex>::Empty(ctx_);
  for (const auto& [label, ds] : vertices_by_label_) out = out.Union(ds);
  return out;
}

dataflow::Dataset<Edge> IndexedLogicalGraph::AllEdges() const {
  dataflow::Dataset<Edge> out = dataflow::Dataset<Edge>::Empty(ctx_);
  for (const auto& [label, ds] : edges_by_label_) out = out.Union(ds);
  return out;
}

std::vector<std::string> IndexedLogicalGraph::VertexLabels() const {
  std::vector<std::string> out;
  for (const auto& [label, ds] : vertices_by_label_) out.push_back(label);
  return out;
}

std::vector<std::string> IndexedLogicalGraph::EdgeLabels() const {
  std::vector<std::string> out;
  for (const auto& [label, ds] : edges_by_label_) out.push_back(label);
  return out;
}

}  // namespace gradoop::epgm
