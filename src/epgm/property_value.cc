#include "epgm/property_value.h"

#include <cmath>
#include <cstring>
#include <functional>

namespace gradoop::epgm {

namespace {

void AppendUint32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendUint64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadBytes(const std::string& data, size_t* pos, void* dst, size_t n) {
  if (*pos + n > data.size()) return false;
  std::memcpy(dst, data.data() + *pos, n);
  *pos += n;
  return true;
}

}  // namespace

bool PropertyValue::operator==(const PropertyValue& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return int_value() == other.int_value();
    return AsDouble() == other.AsDouble();
  }
  return value_ == other.value_;
}

std::optional<int> PropertyValue::Compare(const PropertyValue& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      const int64_t a = int_value(), b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble(), b = other.AsDouble();
    if (std::isnan(a) || std::isnan(b)) return std::nullopt;
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    const int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
  }
  return std::nullopt;  // nulls, lists, mixed types: incomparable
}

size_t PropertyValue::SerializedSize() const {
  switch (type()) {
    case Type::kNull:
      return 1;
    case Type::kBool:
      return 2;
    case Type::kInt64:
    case Type::kDouble:
      return 9;
    case Type::kString:
      return 1 + 4 + string_value().size();
    case Type::kIdList:
      return 1 + 4 + 8 * id_list_value().size();
  }
  return 1;
}

void PropertyValue::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type()));
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      out->push_back(bool_value() ? 1 : 0);
      break;
    case Type::kInt64:
      AppendUint64(out, static_cast<uint64_t>(int_value()));
      break;
    case Type::kDouble: {
      uint64_t bits;
      const double d = double_value();
      std::memcpy(&bits, &d, 8);
      AppendUint64(out, bits);
      break;
    }
    case Type::kString:
      AppendUint32(out, static_cast<uint32_t>(string_value().size()));
      out->append(string_value());
      break;
    case Type::kIdList:
      AppendUint32(out, static_cast<uint32_t>(id_list_value().size()));
      for (uint64_t id : id_list_value()) AppendUint64(out, id);
      break;
  }
}

Result<PropertyValue> PropertyValue::DecodeFrom(const std::string& data,
                                                size_t* pos) {
  uint8_t tag;
  if (!ReadBytes(data, pos, &tag, 1)) {
    return Status::InvalidArgument("truncated property value");
  }
  switch (static_cast<Type>(tag)) {
    case Type::kNull:
      return PropertyValue::Null();
    case Type::kBool: {
      uint8_t b;
      if (!ReadBytes(data, pos, &b, 1)) {
        return Status::InvalidArgument("truncated bool");
      }
      return PropertyValue(b != 0);
    }
    case Type::kInt64: {
      uint64_t v;
      if (!ReadBytes(data, pos, &v, 8)) {
        return Status::InvalidArgument("truncated int64");
      }
      return PropertyValue(static_cast<int64_t>(v));
    }
    case Type::kDouble: {
      uint64_t bits;
      if (!ReadBytes(data, pos, &bits, 8)) {
        return Status::InvalidArgument("truncated double");
      }
      double d;
      std::memcpy(&d, &bits, 8);
      return PropertyValue(d);
    }
    case Type::kString: {
      uint32_t len;
      if (!ReadBytes(data, pos, &len, 4) || *pos + len > data.size()) {
        return Status::InvalidArgument("truncated string");
      }
      std::string s(data.data() + *pos, len);
      *pos += len;
      return PropertyValue(std::move(s));
    }
    case Type::kIdList: {
      uint32_t len;
      if (!ReadBytes(data, pos, &len, 4)) {
        return Status::InvalidArgument("truncated id list");
      }
      std::vector<uint64_t> ids(len);
      for (uint32_t i = 0; i < len; ++i) {
        if (!ReadBytes(data, pos, &ids[i], 8)) {
          return Status::InvalidArgument("truncated id list entry");
        }
      }
      return PropertyValue(std::move(ids));
    }
  }
  return Status::InvalidArgument("unknown property type tag");
}

std::string PropertyValue::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "NULL";
    case Type::kBool:
      return bool_value() ? "true" : "false";
    case Type::kInt64:
      return std::to_string(int_value());
    case Type::kDouble: {
      std::string s = std::to_string(double_value());
      return s;
    }
    case Type::kString:
      return string_value();
    case Type::kIdList: {
      std::string s = "[";
      const auto& ids = id_list_value();
      for (size_t i = 0; i < ids.size(); ++i) {
        if (i > 0) s += ",";
        s += std::to_string(ids[i]);
      }
      s += "]";
      return s;
    }
  }
  return "NULL";
}

Result<PropertyValue> PropertyValue::ParseTyped(const std::string& type_name,
                                                const std::string& text) {
  if (type_name == "string") return PropertyValue(text);
  if (type_name == "long" || type_name == "int") {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad long literal: " + text);
    }
    return PropertyValue(static_cast<int64_t>(v));
  }
  if (type_name == "double" || type_name == "float") {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad double literal: " + text);
    }
    return PropertyValue(v);
  }
  if (type_name == "boolean" || type_name == "bool") {
    if (text == "true") return PropertyValue(true);
    if (text == "false") return PropertyValue(false);
    return Status::InvalidArgument("bad boolean literal: " + text);
  }
  if (type_name == "null") return PropertyValue::Null();
  return Status::InvalidArgument("unknown property type: " + type_name);
}

const char* PropertyValue::TypeName() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "boolean";
    case Type::kInt64:
      return "long";
    case Type::kDouble:
      return "double";
    case Type::kString:
      return "string";
    case Type::kIdList:
      return "idlist";
  }
  return "null";
}

size_t PropertyValue::Hash() const {
  switch (type()) {
    case Type::kNull:
      return 0x9e3779b9;
    case Type::kBool:
      return bool_value() ? 1 : 2;
    case Type::kInt64:
      return std::hash<int64_t>{}(int_value());
    case Type::kDouble:
      return std::hash<double>{}(double_value());
    case Type::kString:
      return std::hash<std::string>{}(string_value());
    case Type::kIdList: {
      size_t h = 14695981039346656037ull;
      for (uint64_t id : id_list_value()) {
        h = (h ^ id) * 1099511628211ull;
      }
      return h;
    }
  }
  return 0;
}

}  // namespace gradoop::epgm
