#ifndef GRADOOP_EPGM_INDEXED_LOGICAL_GRAPH_H_
#define GRADOOP_EPGM_INDEXED_LOGICAL_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "epgm/logical_graph.h"

namespace gradoop::epgm {

// Alternative graph layout that partitions vertices and edges by type label
// and manages one dataset per label (§3.4). When a query element carries a
// label predicate, the planner loads only that label's dataset instead of
// filtering (and re-reading) the full element datasets.
class IndexedLogicalGraph {
 public:
  IndexedLogicalGraph() = default;

  // Splits the element datasets of `graph` label-wise, preserving each
  // record's partition (a narrow, local re-bucketing — no shuffle).
  static IndexedLogicalGraph Build(const LogicalGraph& graph);

  const GraphHead& head() const { return head_; }
  const dataflow::ExecutionContextPtr& context() const { return ctx_; }

  // Dataset holding exactly the vertices/edges with `label`; an empty
  // dataset when the label does not occur.
  dataflow::Dataset<Vertex> VerticesByLabel(const std::string& label) const;
  dataflow::Dataset<Edge> EdgesByLabel(const std::string& label) const;

  // Union over all labels (used for unlabeled query elements).
  dataflow::Dataset<Vertex> AllVertices() const;
  dataflow::Dataset<Edge> AllEdges() const;

  std::vector<std::string> VertexLabels() const;
  std::vector<std::string> EdgeLabels() const;

 private:
  GraphHead head_;
  dataflow::ExecutionContextPtr ctx_;
  std::map<std::string, dataflow::Dataset<Vertex>> vertices_by_label_;
  std::map<std::string, dataflow::Dataset<Edge>> edges_by_label_;
};

}  // namespace gradoop::epgm

#endif  // GRADOOP_EPGM_INDEXED_LOGICAL_GRAPH_H_
