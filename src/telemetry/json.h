#ifndef GRADOOP_TELEMETRY_JSON_H_
#define GRADOOP_TELEMETRY_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace gradoop::telemetry::json {

// Minimal JSON DOM used to validate the engine's own emitted artifacts
// (Chrome traces, query profiles, bench reports) in tests and in the
// cypher_profile tool — not a general-purpose parser. Numbers keep their
// raw source text so integer fields can be compared byte-for-byte.
class Value;
using ValuePtr = std::shared_ptr<const Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  // The number's exact source spelling ("35", "0.000123").
  const std::string& raw() const { return raw_; }
  const std::string& AsString() const { return string_; }
  const std::vector<ValuePtr>& AsArray() const { return array_; }
  const std::map<std::string, ValuePtr>& AsObject() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  ValuePtr Get(const std::string& key) const;

  static ValuePtr MakeNull();
  static ValuePtr MakeBool(bool value);
  static ValuePtr MakeNumber(double value, std::string raw);
  static ValuePtr MakeString(std::string value);
  static ValuePtr MakeArray(std::vector<ValuePtr> items);
  static ValuePtr MakeObject(std::map<std::string, ValuePtr> members);

 private:
  explicit Value(Kind kind) : kind_(kind) {}

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string raw_;
  std::string string_;
  std::vector<ValuePtr> array_;
  std::map<std::string, ValuePtr> object_;
};

// Parses `text` as one JSON document (trailing whitespace allowed,
// anything else after the document is an error).
Result<ValuePtr> Parse(const std::string& text);

}  // namespace gradoop::telemetry::json

#endif  // GRADOOP_TELEMETRY_JSON_H_
