#include "telemetry/trace_export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string_view>

namespace gradoop::telemetry {

namespace {

int TidFor(const SpanRecord& span) {
  if (span.category != nullptr &&
      std::string_view(span.category) == kCategoryTask && span.worker >= 0) {
    return 1000 + span.worker;
  }
  return 0;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  // Integral values print without a fraction so counters stay exact and
  // byte-for-byte comparable; timestamps keep 3 decimals (nanosecond
  // resolution in microsecond units).
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", value);
  }
  return buf;
}

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += "  " + event;
  };

  // Row-name metadata: one per tid in use.
  std::set<int> tids;
  for (const SpanRecord& span : spans) tids.insert(TidFor(span));
  for (const int tid : tids) {
    std::string name = tid == 0 ? "driver" : "worker " +
                                                 std::to_string(tid - 1000);
    append("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           JsonEscape(name) + "\"}}");
  }

  for (const SpanRecord& span : spans) {
    std::string event = "{\"name\": \"" + JsonEscape(span.name) +
                        "\", \"cat\": \"" +
                        JsonEscape(span.category != nullptr ? span.category
                                                            : "span") +
                        "\", \"ph\": \"X\", \"ts\": " +
                        JsonNumber(span.begin_us) +
                        ", \"dur\": " + JsonNumber(span.DurationMicros()) +
                        ", \"pid\": 1, \"tid\": " +
                        std::to_string(TidFor(span)) + ", \"args\": {";
    event += "\"thread\": " + std::to_string(span.thread);
    event += ", \"worker\": " + std::to_string(span.worker);
    for (const auto& [key, value] : span.args) {
      event += ", \"" + JsonEscape(key) + "\": " + JsonNumber(value);
    }
    event += "}}";
    append(event);
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<SpanRecord>& spans,
                      std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot write '" + path + "'";
    return false;
  }
  out << ToChromeTraceJson(spans);
  out.close();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace gradoop::telemetry
