#include "telemetry/metrics_registry.h"

#include <algorithm>

#include "telemetry/thread_index.h"

namespace gradoop::telemetry {

using common::MutexLock;

const std::vector<double>& MetricsRegistry::DefaultHistogramBounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    double bound = 1.0;  // microsecond scale: 1us, 4us, ..., ~16.8s
    for (int i = 0; i < 13; ++i) {
      b.push_back(bound);
      bound *= 4.0;
    }
    return b;
  }();
  return bounds;
}

const std::vector<double>& MetricsRegistry::MicroLatencyBounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    double bound = 1.0;  // 1us, 2us, 4us, ..., ~2.1s
    for (int i = 0; i < 22; ++i) {
      b.push_back(bound);
      bound *= 2.0;
    }
    return b;
  }();
  return bounds;
}

const std::vector<double>& MetricsRegistry::RatioBounds() {
  static const std::vector<double> bounds = {
      1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0, 1000.0, 10000.0};
  return bounds;
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  return shards_[CurrentThreadIndex() % kNumShards];
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  Shard& shard = LocalShard();
  MutexLock lock(shard.mu);
  shard.counters[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  // Gauges are level (not additive) values, so they all live in shard 0:
  // last writer wins, exactly as an unsharded store would behave.
  Shard& shard = shards_[0];
  MutexLock lock(shard.mu);
  shard.gauges[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  ObserveWith(name, value, DefaultHistogramBounds());
}

void MetricsRegistry::ObserveWith(const std::string& name, double value,
                                  const std::vector<double>& bounds) {
  Shard& shard = LocalShard();
  MutexLock lock(shard.mu);
  HistogramData& h = shard.histograms[name];
  if (h.bounds.empty()) {
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
  }
  size_t bucket = 0;
  while (bucket < h.bounds.size() && value > h.bounds[bucket]) ++bucket;
  ++h.counts[bucket];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [name, value] : shard.counters) {
      out.counters[name] += value;
    }
    for (const auto& [name, value] : shard.gauges) {
      out.gauges[name] = value;
    }
    for (const auto& [name, h] : shard.histograms) {
      HistogramSnapshot& agg = out.histograms[name];
      if (agg.bounds.empty()) {
        agg.bounds = h.bounds;
        agg.counts.assign(h.counts.size(), 0);
      }
      // Bucket layouts agree by construction: the bounds for a name are
      // fixed by its first observation and every ObserveWith caller
      // passes the same constant bounds per name.
      if (agg.counts.size() == h.counts.size()) {
        for (size_t i = 0; i < h.counts.size(); ++i) {
          agg.counts[i] += h.counts[i];
        }
      }
      if (h.count > 0) {
        if (agg.count == 0 || h.min < agg.min) agg.min = h.min;
        if (agg.count == 0 || h.max > agg.max) agg.max = h.max;
        agg.count += h.count;
        agg.sum += h.sum;
      }
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.counters.clear();
    shard.gauges.clear();
    shard.histograms.clear();
  }
}

}  // namespace gradoop::telemetry
