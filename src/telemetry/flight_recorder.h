#ifndef GRADOOP_TELEMETRY_FLIGHT_RECORDER_H_
#define GRADOOP_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "telemetry/query_profile.h"

namespace gradoop::telemetry {

// Approximate resident size of one retained profile: the struct itself
// plus every heap payload (strings, phase/operator/worker vectors and
// the metrics snapshot maps). The same byte currency the memory
// accountant uses — an estimate, not malloc truth, but stable enough to
// budget the recorder's footprint against.
uint64_t ApproxProfileBytes(const QueryProfile& profile);

// Bounded in-memory history of executed queries — the engine's "flight
// recorder". The CypherEngine records a QueryProfile here after every
// execution while telemetry is enabled; with telemetry off the engine
// never calls in, so the disabled cost stays the telemetry layer's usual
// single relaxed load (pinned by bench_flight_recorder).
//
// Retention is a ring: profiles are kept newest-last and evicted
// oldest-first whenever the retained-byte estimate exceeds the byte
// budget or the entry count exceeds the capacity. The newest profile is
// never evicted, so the last query is always inspectable even if it
// alone blows the budget.
//
// Thread safety: all methods lock the recorder's own telemetry-ranked
// mutex, so concurrent queries (ROADMAP item 1) can record in parallel.
// The mutex is a leaf — Record/Snapshot never call back into the engine.
class FlightRecorder {
 public:
  static constexpr uint64_t kDefaultByteBudget = 4ull << 20;  // 4 MiB
  static constexpr size_t kDefaultCapacity = 256;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one profile, then evicts oldest-first down to the budgets.
  void Record(QueryProfile profile);

  // Copies of the retained profiles, oldest first.
  std::vector<QueryProfile> Snapshot() const;

  size_t size() const;
  uint64_t retained_bytes() const;
  // Profiles evicted (budget) since construction or the last Clear().
  uint64_t dropped() const;

  void Clear();

  uint64_t byte_budget() const;
  void set_byte_budget(uint64_t bytes);
  size_t capacity() const;
  void set_capacity(size_t entries);

  // Whole-recorder export: {"schema_version": 1, "byte_budget": ...,
  // "retained_bytes": ..., "dropped": ..., "queries": [<profile>, ...]}
  // with each query element a full QueryProfile::ToJson() document.
  // Checked by ValidateFlightRecorderExport (telemetry/validate.h).
  std::string ExportJson() const;

 private:
  struct Entry {
    QueryProfile profile;
    uint64_t bytes = 0;
  };

  void EvictLocked() REQUIRES(mu_);

  mutable common::Mutex mu_{common::LockRank::kTelemetry,
                            "telemetry.flight_recorder"};
  std::deque<Entry> entries_ GUARDED_BY(mu_);
  uint64_t retained_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  uint64_t byte_budget_ GUARDED_BY(mu_) = kDefaultByteBudget;
  size_t capacity_ GUARDED_BY(mu_) = kDefaultCapacity;
};

// Writes recorder.ExportJson() to `path`; false + *error on I/O failure.
bool WriteFlightRecorderExport(const std::string& path,
                               const FlightRecorder& recorder,
                               std::string* error);

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_FLIGHT_RECORDER_H_
