#ifndef GRADOOP_TELEMETRY_TRACER_H_
#define GRADOOP_TELEMETRY_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "telemetry/metrics_registry.h"

namespace gradoop::telemetry {

// One completed span. Timestamps are microseconds relative to the
// tracer's epoch (steady clock), so a whole trace starts near zero and
// loads cleanly in Perfetto / chrome://tracing.
struct SpanRecord {
  std::string name;       // "parse", "ScanVertices(a:Person)", "Map", ...
  const char* category;   // "query" | "operator" | "task" | "stage"
  double begin_us = 0.0;
  double end_us = 0.0;
  uint32_t thread = 0;    // dense host-thread index (CurrentThreadIndex)
  int worker = -1;        // simulated worker / partition id; -1 = driver
  // Small numeric payload rendered into the trace viewer's args pane
  // ("rows", "estimated_rows", "bytes", ...).
  std::vector<std::pair<std::string, double>> args;

  double DurationMicros() const { return end_us - begin_us; }
};

// Span categories used by the engine's instrumentation (exporters and
// aggregations key on these exact strings).
inline constexpr const char* kCategoryQuery = "query";     // engine phases
inline constexpr const char* kCategoryOperator = "operator";  // physical ops
inline constexpr const char* kCategoryTask = "task";       // pool tasks
inline constexpr const char* kCategoryStage = "stage";     // shuffles etc.

// Thread-sharded span sink, same locking discipline as MetricsRegistry:
// writers append to their thread's shard under an uncontended lock,
// CollectSpans merges and sorts. The tracer itself has no on/off switch —
// Telemetry (below) gates every instrumentation site, so a disabled run
// never reaches AddSpan.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since the tracer epoch.
  double NowMicros() const {
    return ToMicros(std::chrono::steady_clock::now());
  }
  double ToMicros(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  void AddSpan(std::string name, const char* category, double begin_us,
               double end_us, int worker,
               std::vector<std::pair<std::string, double>> args = {});

  // All spans recorded so far, sorted by begin timestamp (ties broken by
  // end, so the order is deterministic for deterministic workloads).
  std::vector<SpanRecord> CollectSpans() const;

  size_t NumSpans() const;
  void Clear();

 private:
  static constexpr int kNumShards = 16;

  struct Shard {
    // Leaf rank: span recording happens under locks of every other layer
    // (pool tasks, cost charges), so nothing may be acquired beneath it.
    // Collectors hold at most one shard lock at a time.
    mutable common::Mutex mu{common::LockRank::kTelemetry,
                             "telemetry.tracer.shard"};
    std::vector<SpanRecord> spans GUARDED_BY(mu);
  };

  std::chrono::steady_clock::time_point epoch_;
  Shard shards_[kNumShards];
};

// Per-worker busy time aggregated from "task" spans: how long each
// simulated worker's partition tasks ran on the host. Ragged values
// across workers within one stage are exactly the skew the paper's
// Fig. 3 stagnation story is about.
struct WorkerBusy {
  int worker = 0;
  double busy_sec = 0.0;
  uint64_t tasks = 0;
};

// Busy time per worker id over `spans` (category "task", worker >= 0).
// The result covers workers 0..num_workers-1 even if some recorded no
// tasks; worker ids beyond num_workers (never produced by the engine)
// are dropped.
std::vector<WorkerBusy> ComputeWorkerBusy(const std::vector<SpanRecord>& spans,
                                          int num_workers);

// max(busy) / mean(busy) over all workers; 1.0 = perfectly balanced,
// 0.0 when nothing ran. The denominator averages over every worker, so
// idle workers count as imbalance.
double WorkerImbalance(const std::vector<WorkerBusy>& busy);

// Metrics registry + tracer + master switch, owned by one
// dataflow::ExecutionContext. Disabled (the default) means every
// instrumentation site reduces to one relaxed atomic load — the hot path
// stays free of locks, clocks and allocations.
class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Clears spans and metrics (the epoch is kept: one process = one
  // timeline). Call between queries to profile them in isolation.
  void ResetData() {
    tracer_.Clear();
    metrics_.Reset();
  }

 private:
  // ordering: relaxed loads/stores only — the flag is an independent
  // on/off switch, it publishes no data; sites that see a stale value
  // merely record (or skip) one span.
  std::atomic<bool> enabled_{false};
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_TRACER_H_
