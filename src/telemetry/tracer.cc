#include "telemetry/tracer.h"

#include <algorithm>
#include <string_view>

#include "telemetry/thread_index.h"

namespace gradoop::telemetry {

using common::MutexLock;

void Tracer::AddSpan(std::string name, const char* category, double begin_us,
                     double end_us, int worker,
                     std::vector<std::pair<std::string, double>> args) {
  SpanRecord span;
  span.name = std::move(name);
  span.category = category;
  span.begin_us = begin_us;
  span.end_us = end_us;
  span.thread = CurrentThreadIndex();
  span.worker = worker;
  span.args = std::move(args);
  Shard& shard = shards_[span.thread % kNumShards];
  MutexLock lock(shard.mu);
  shard.spans.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::CollectSpans() const {
  std::vector<SpanRecord> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    out.insert(out.end(), shard.spans.begin(), shard.spans.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.begin_us != b.begin_us) {
                       return a.begin_us < b.begin_us;
                     }
                     return a.end_us < b.end_us;
                   });
  return out;
}

size_t Tracer::NumSpans() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    n += shard.spans.size();
  }
  return n;
}

void Tracer::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.spans.clear();
  }
}

std::vector<WorkerBusy> ComputeWorkerBusy(const std::vector<SpanRecord>& spans,
                                          int num_workers) {
  std::vector<WorkerBusy> busy(std::max(num_workers, 0));
  for (int w = 0; w < num_workers; ++w) busy[w].worker = w;
  for (const SpanRecord& span : spans) {
    if (span.category != nullptr &&
        std::string_view(span.category) != kCategoryTask) {
      continue;
    }
    if (span.worker < 0 || span.worker >= num_workers) continue;
    busy[span.worker].busy_sec += span.DurationMicros() * 1e-6;
    ++busy[span.worker].tasks;
  }
  return busy;
}

double WorkerImbalance(const std::vector<WorkerBusy>& busy) {
  if (busy.empty()) return 0.0;
  double max = 0.0;
  double sum = 0.0;
  for (const WorkerBusy& w : busy) {
    max = std::max(max, w.busy_sec);
    sum += w.busy_sec;
  }
  if (sum <= 0.0) return 0.0;
  return max / (sum / static_cast<double>(busy.size()));
}

}  // namespace gradoop::telemetry
