#ifndef GRADOOP_TELEMETRY_METRICS_REGISTRY_H_
#define GRADOOP_TELEMETRY_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace gradoop::telemetry {

// Aggregated view of one histogram: fixed exponential bucket bounds plus
// per-bucket counts (counts.size() == bounds.size() + 1, the last bucket
// is the +Inf overflow), and the usual scalar moments.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

// Point-in-time aggregate of every metric recorded so far. Maps are
// ordered so exported JSON is deterministic for a deterministic run.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

// Thread-sharded metrics store: writers hash their thread onto one of a
// fixed set of shards and take only that shard's (almost always
// uncontended) lock, so recording from pool workers is cheap; readers
// aggregate across all shards (Snapshot). Histograms use fixed
// exponential bucket bounds chosen once per metric name at first
// observation, so shard aggregation is a plain element-wise sum.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void AddCounter(const std::string& name, uint64_t delta);
  void SetGauge(const std::string& name, double value);
  // Records `value` into the histogram's exponential buckets
  // (kDefaultHistogramBounds unless the name saw ObserveWith first).
  void Observe(const std::string& name, double value);
  // Same, with caller-provided ascending bucket upper bounds. Bounds are
  // fixed by whichever call touches the name first.
  void ObserveWith(const std::string& name, double value,
                   const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;
  void Reset();

  // Power-of-4 microsecond-scale bounds: 1us .. ~16.8s in 13 buckets.
  static const std::vector<double>& DefaultHistogramBounds();
  // Fine-grained power-of-2 microsecond bounds: 1us .. ~2.1s in 22
  // buckets, for phase-latency histograms where whole sub-millisecond
  // phases would otherwise collapse into one or two power-of-4 buckets.
  static const std::vector<double>& MicroLatencyBounds();
  // Ratio bounds for plan-quality (Q-error, memory accuracy) histograms:
  // 1 .. 10000 with dense low-end resolution, since most estimates land
  // within a small factor of the truth and that is the region worth
  // resolving.
  static const std::vector<double>& RatioBounds();

 private:
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  static constexpr int kNumShards = 16;

  struct Shard {
    // Leaf rank, same discipline as the tracer shards: recorded into from
    // under dataflow-layer locks, never holds more than itself, and
    // Snapshot/Reset visit shards strictly one lock at a time.
    mutable common::Mutex mu{common::LockRank::kTelemetry,
                             "telemetry.metrics.shard"};
    std::map<std::string, uint64_t> counters GUARDED_BY(mu);
    std::map<std::string, double> gauges GUARDED_BY(mu);
    std::map<std::string, HistogramData> histograms GUARDED_BY(mu);
  };

  Shard& LocalShard();

  Shard shards_[kNumShards];
};

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_METRICS_REGISTRY_H_
