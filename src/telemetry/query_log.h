#ifndef GRADOOP_TELEMETRY_QUERY_LOG_H_
#define GRADOOP_TELEMETRY_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "telemetry/query_profile.h"

namespace gradoop::telemetry {

// FNV-1a 64-bit hash of the query text, as 16 lowercase hex digits. The
// log records the hash instead of the text so near-identical production
// traffic (ROADMAP item 4) groups by shape without shipping user data.
std::string QueryTextHash(const std::string& query);

// One structured query-log record — the line-sized digest of a
// QueryProfile: identity (hash + artifact name), engine, result size,
// wall time per phase and in total, peak memory, shuffle bytes, the
// plan's worst cardinality Q-error, and whether the query crossed the
// slow-query threshold.
struct QueryLogEntry {
  std::string query_hash;
  std::string name;
  std::string engine = "row";
  uint64_t matches = 0;
  double total_wall_sec = 0.0;
  double max_qerror = 0.0;
  uint64_t peak_memory_bytes = 0;
  uint64_t shuffle_bytes = 0;
  bool slow = false;
  // Cancellation attribution: the engine phase during which the query's
  // token was observed tripped and why ("cancelled" | "deadline" |
  // "injected"); both empty for queries that ran to completion, and the
  // JSON fields are omitted so completed-query lines are byte-stable.
  std::string cancelled_phase;
  std::string cancel_reason;
  std::vector<PhaseProfile> phases;
};

// Builds the digest from a profile. `slow_threshold_sec` <= 0 disables
// the slow flag. Peak memory comes from the profile's
// "memory.bytes.peak" gauge (0 when accounting/telemetry was off).
QueryLogEntry MakeQueryLogEntry(const QueryProfile& profile,
                                double slow_threshold_sec);

// Serializes one entry as a single-line JSON object (no trailing
// newline) — the JSONL record format ValidateQueryLogLine checks.
std::string QueryLogLine(const QueryLogEntry& entry);

// Structured JSONL query log. The engine appends one entry per executed
// query while telemetry is enabled; entries are retained in memory
// (bounded, newest-last) and, when a path is set, appended to that file
// one JSON object per line.
//
// Thread safety: one telemetry-ranked leaf mutex, same discipline as the
// flight recorder.
class QueryLog {
 public:
  static constexpr size_t kMaxRetainedLines = 1024;

  QueryLog() = default;
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  // Digests `profile` under the current slow threshold and appends it.
  void Record(const QueryProfile& profile);
  void Append(const QueryLogEntry& entry);

  // Retained lines, oldest first.
  std::vector<std::string> Lines() const;
  size_t size() const;
  void Clear();  // drops retained lines; the sink file is untouched

  // Slow-query knob: entries whose total wall time is >= the threshold
  // get "slow": true. <= 0 (the default) never flags.
  double slow_threshold_sec() const;
  void set_slow_threshold_sec(double seconds);

  // JSONL sink file, opened for append; empty path closes the sink.
  // A non-OK status names the path that could not be opened.
  Status SetPath(const std::string& path);

 private:
  mutable common::Mutex mu_{common::LockRank::kTelemetry,
                            "telemetry.query_log"};
  std::deque<std::string> lines_ GUARDED_BY(mu_);
  std::ofstream sink_ GUARDED_BY(mu_);
  double slow_threshold_sec_ GUARDED_BY(mu_) = 0.0;
};

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_QUERY_LOG_H_
