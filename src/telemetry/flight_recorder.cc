#include "telemetry/flight_recorder.h"

#include <fstream>
#include <utility>

namespace gradoop::telemetry {

using common::MutexLock;

namespace {

uint64_t StringBytes(const std::string& s) {
  return sizeof(std::string) + s.capacity();
}

uint64_t HistogramBytes(const HistogramSnapshot& h) {
  return sizeof(HistogramSnapshot) + h.bounds.capacity() * sizeof(double) +
         h.counts.capacity() * sizeof(uint64_t);
}

}  // namespace

uint64_t ApproxProfileBytes(const QueryProfile& profile) {
  uint64_t bytes = sizeof(QueryProfile);
  bytes += StringBytes(profile.name) + StringBytes(profile.query) +
           StringBytes(profile.engine);
  for (const PhaseProfile& p : profile.phases) {
    bytes += sizeof(PhaseProfile) + StringBytes(p.name);
  }
  for (const OperatorProfile& op : profile.operators) {
    bytes += sizeof(OperatorProfile) + StringBytes(op.name) +
             StringBytes(op.describe);
  }
  bytes += profile.workers.capacity() * sizeof(WorkerBusy);
  // Map nodes carry ~3 pointers + color on top of the payload.
  constexpr uint64_t kMapNodeOverhead = 4 * sizeof(void*);
  for (const auto& [key, value] : profile.metrics.counters) {
    (void)value;
    bytes += kMapNodeOverhead + StringBytes(key) + sizeof(uint64_t);
  }
  for (const auto& [key, value] : profile.metrics.gauges) {
    (void)value;
    bytes += kMapNodeOverhead + StringBytes(key) + sizeof(double);
  }
  for (const auto& [key, h] : profile.metrics.histograms) {
    bytes += kMapNodeOverhead + StringBytes(key) + HistogramBytes(h);
  }
  return bytes;
}

void FlightRecorder::Record(QueryProfile profile) {
  const uint64_t bytes = ApproxProfileBytes(profile);
  MutexLock lock(mu_);
  entries_.push_back(Entry{std::move(profile), bytes});
  retained_bytes_ += bytes;
  EvictLocked();
}

void FlightRecorder::EvictLocked() {
  // The newest profile survives unconditionally: a recorder whose budget
  // is smaller than one profile still answers "what ran last".
  while (entries_.size() > 1 &&
         (retained_bytes_ > byte_budget_ || entries_.size() > capacity_)) {
    retained_bytes_ -= entries_.front().bytes;
    entries_.pop_front();
    ++dropped_;
  }
}

std::vector<QueryProfile> FlightRecorder::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<QueryProfile> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.profile);
  return out;
}

size_t FlightRecorder::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

uint64_t FlightRecorder::retained_bytes() const {
  MutexLock lock(mu_);
  return retained_bytes_;
}

uint64_t FlightRecorder::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  retained_bytes_ = 0;
  dropped_ = 0;
}

uint64_t FlightRecorder::byte_budget() const {
  MutexLock lock(mu_);
  return byte_budget_;
}

void FlightRecorder::set_byte_budget(uint64_t bytes) {
  MutexLock lock(mu_);
  byte_budget_ = bytes;
  EvictLocked();
}

size_t FlightRecorder::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

void FlightRecorder::set_capacity(size_t entries) {
  MutexLock lock(mu_);
  capacity_ = entries == 0 ? 1 : entries;
  EvictLocked();
}

std::string FlightRecorder::ExportJson() const {
  // Copy out under the lock, serialize outside it: ToJson allocates
  // freely and there is no reason to hold a leaf mutex across that.
  std::vector<QueryProfile> queries = Snapshot();
  uint64_t retained = 0;
  uint64_t budget = 0;
  uint64_t dropped_count = 0;
  {
    MutexLock lock(mu_);
    retained = retained_bytes_;
    budget = byte_budget_;
    dropped_count = dropped_;
  }
  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"byte_budget\": " + std::to_string(budget) + ",\n";
  out += "  \"retained_bytes\": " + std::to_string(retained) + ",\n";
  out += "  \"dropped\": " + std::to_string(dropped_count) + ",\n";
  out += "  \"queries\": [";
  for (size_t i = 0; i < queries.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    std::string profile_json = queries[i].ToJson();
    while (!profile_json.empty() && profile_json.back() == '\n') {
      profile_json.pop_back();
    }
    out += profile_json;
  }
  out += "\n  ]\n";
  out += "}\n";
  return out;
}

bool WriteFlightRecorderExport(const std::string& path,
                               const FlightRecorder& recorder,
                               std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot write '" + path + "'";
    return false;
  }
  out << recorder.ExportJson();
  out.close();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace gradoop::telemetry
