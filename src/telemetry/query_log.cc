#include "telemetry/query_log.h"

#include <cstdio>

#include "telemetry/trace_export.h"

namespace gradoop::telemetry {

using common::MutexLock;

namespace {

std::string Seconds(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

std::string QueryTextHash(const std::string& query) {
  // FNV-1a 64: tiny, dependency-free, stable across platforms.
  uint64_t hash = 1469598103934665603ull;
  for (const char c : query) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

QueryLogEntry MakeQueryLogEntry(const QueryProfile& profile,
                                double slow_threshold_sec) {
  QueryLogEntry entry;
  entry.query_hash = QueryTextHash(profile.query);
  entry.name = profile.name;
  entry.engine = profile.engine;
  entry.matches = profile.matches;
  entry.total_wall_sec = profile.total_wall_sec;
  entry.max_qerror = profile.max_qerror;
  auto gauge = profile.metrics.gauges.find("memory.bytes.peak");
  if (gauge != profile.metrics.gauges.end() && gauge->second > 0.0) {
    entry.peak_memory_bytes = static_cast<uint64_t>(gauge->second);
  }
  entry.shuffle_bytes = profile.network_bytes;
  entry.slow = slow_threshold_sec > 0.0 &&
               profile.total_wall_sec >= slow_threshold_sec;
  entry.phases = profile.phases;
  return entry;
}

std::string QueryLogLine(const QueryLogEntry& entry) {
  std::string out = "{\"schema_version\": 1";
  out += ", \"query_hash\": \"" + JsonEscape(entry.query_hash) + "\"";
  out += ", \"name\": \"" + JsonEscape(entry.name) + "\"";
  out += ", \"engine\": \"" + JsonEscape(entry.engine) + "\"";
  out += ", \"matches\": " + std::to_string(entry.matches);
  out += ", \"wall_sec\": " + Seconds(entry.total_wall_sec);
  out += ", \"max_qerror\": " + JsonNumber(entry.max_qerror);
  out += ", \"peak_memory_bytes\": " + std::to_string(entry.peak_memory_bytes);
  out += ", \"shuffle_bytes\": " + std::to_string(entry.shuffle_bytes);
  out += std::string(", \"slow\": ") + (entry.slow ? "true" : "false");
  if (!entry.cancelled_phase.empty()) {
    out += ", \"cancelled_phase\": \"" + JsonEscape(entry.cancelled_phase) +
           "\"";
    out += ", \"cancel_reason\": \"" + JsonEscape(entry.cancel_reason) + "\"";
  }
  out += ", \"phases\": [";
  for (size_t i = 0; i < entry.phases.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + JsonEscape(entry.phases[i].name) +
           "\", \"wall_sec\": " + Seconds(entry.phases[i].wall_sec) + "}";
  }
  out += "]}";
  return out;
}

void QueryLog::Record(const QueryProfile& profile) {
  double threshold = 0.0;
  {
    MutexLock lock(mu_);
    threshold = slow_threshold_sec_;
  }
  // Serialize outside the lock; only the append itself is guarded.
  Append(MakeQueryLogEntry(profile, threshold));
}

void QueryLog::Append(const QueryLogEntry& entry) {
  std::string line = QueryLogLine(entry);
  MutexLock lock(mu_);
  if (sink_.is_open()) sink_ << line << '\n' << std::flush;
  lines_.push_back(std::move(line));
  while (lines_.size() > kMaxRetainedLines) lines_.pop_front();
}

std::vector<std::string> QueryLog::Lines() const {
  MutexLock lock(mu_);
  return {lines_.begin(), lines_.end()};
}

size_t QueryLog::size() const {
  MutexLock lock(mu_);
  return lines_.size();
}

void QueryLog::Clear() {
  MutexLock lock(mu_);
  lines_.clear();
}

double QueryLog::slow_threshold_sec() const {
  MutexLock lock(mu_);
  return slow_threshold_sec_;
}

void QueryLog::set_slow_threshold_sec(double seconds) {
  MutexLock lock(mu_);
  slow_threshold_sec_ = seconds;
}

Status QueryLog::SetPath(const std::string& path) {
  MutexLock lock(mu_);
  if (sink_.is_open()) sink_.close();
  if (path.empty()) return Status::Ok();
  sink_.open(path, std::ios::app);
  if (!sink_.is_open()) {
    return Status::InvalidArgument(
        "query log sink '" + path + "' cannot be opened for append");
  }
  return Status::Ok();
}

}  // namespace gradoop::telemetry
