#include "telemetry/query_profile.h"

#include <cstdio>
#include <fstream>

#include "telemetry/trace_export.h"

namespace gradoop::telemetry {

namespace {

std::string Quoted(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

std::string U64(uint64_t value) { return std::to_string(value); }

// Seconds serialize with microsecond resolution; %.3f on seconds would
// round sub-millisecond phases to zero.
std::string Seconds(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

double QError(double estimated, double actual) {
  // Clamping both sides to >= 1 makes the metric zero-safe: row counts
  // are integers, so a sub-one "cardinality" carries no information and
  // 0-vs-0 must read as a perfect estimate, not 0/0.
  const double est = estimated < 1.0 ? 1.0 : estimated;
  const double act = actual < 1.0 ? 1.0 : actual;
  return est > act ? est / act : act / est;
}

double QueryProfile::WorkerImbalanceRatio() const {
  return WorkerImbalance(workers);
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"name\": " + Quoted(name) + ",\n";
  out += "  \"query\": " + Quoted(query) + ",\n";
  out += "  \"engine\": " + Quoted(engine) + ",\n";
  out += "  \"max_qerror\": " + JsonNumber(max_qerror) + ",\n";
  out += "  \"matches\": " + U64(matches) + ",\n";
  out += "  \"total_wall_sec\": " + Seconds(total_wall_sec) + ",\n";
  out += "  \"simulated_sec\": " + Seconds(simulated_sec) + ",\n";
  out += "  \"network_bytes\": " + U64(network_bytes) + ",\n";
  out += "  \"spilled_bytes\": " + U64(spilled_bytes) + ",\n";
  out += "  \"records\": " + U64(records) + ",\n";
  out += "  \"num_workers\": " + std::to_string(num_workers) + ",\n";
  out += "  \"worker_imbalance\": " + JsonNumber(WorkerImbalanceRatio()) +
         ",\n";

  out += "  \"phases\": [";
  for (size_t i = 0; i < phases.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + Quoted(phases[i].name) +
           ", \"wall_sec\": " + Seconds(phases[i].wall_sec) + "}";
  }
  out += "\n  ],\n";

  out += "  \"operators\": [";
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorProfile& op = operators[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + Quoted(op.name) +
           ", \"describe\": " + Quoted(op.describe) +
           ", \"depth\": " + std::to_string(op.depth) +
           ", \"estimated_rows\": " + JsonNumber(op.estimated_rows) +
           ", \"actual_rows\": " + U64(op.actual_rows) +
           ", \"qerror\": " + JsonNumber(op.qerror) +
           ", \"selectivity\": " + JsonNumber(op.selectivity) +
           ", \"actual_peak_bytes\": " + U64(op.actual_peak_bytes) +
           ", \"claimed_peak_bytes\": " + U64(op.claimed_peak_bytes) +
           ", \"self_wall_sec\": " + Seconds(op.self_wall_sec) +
           ", \"total_wall_sec\": " + Seconds(op.total_wall_sec) +
           ", \"network_bytes\": " + U64(op.network_bytes) +
           ", \"spilled_bytes\": " + U64(op.spilled_bytes) +
           ", \"output_bytes\": " + U64(op.output_bytes) +
           ", \"property_bytes\": " + U64(op.property_bytes) + "}";
  }
  out += "\n  ],\n";

  out += "  \"workers\": [";
  for (size_t i = 0; i < workers.size(); ++i) {
    const WorkerBusy& w = workers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"worker\": " + std::to_string(w.worker) +
           ", \"busy_sec\": " + Seconds(w.busy_sec) +
           ", \"tasks\": " + U64(w.tasks) + "}";
  }
  out += "\n  ],\n";

  out += "  \"counters\": {";
  {
    bool first = true;
    for (const auto& [key, value] : metrics.counters) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    " + Quoted(key) + ": " + U64(value);
    }
  }
  out += "\n  },\n";

  out += "  \"histograms\": {";
  {
    bool first = true;
    for (const auto& [key, h] : metrics.histograms) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    " + Quoted(key) + ": {\"count\": " + U64(h.count) +
             ", \"sum\": " + JsonNumber(h.sum) +
             ", \"min\": " + JsonNumber(h.min) +
             ", \"max\": " + JsonNumber(h.max) + ", \"bounds\": [";
      for (size_t i = 0; i < h.bounds.size(); ++i) {
        if (i > 0) out += ", ";
        out += JsonNumber(h.bounds[i]);
      }
      out += "], \"bucket_counts\": [";
      for (size_t i = 0; i < h.counts.size(); ++i) {
        if (i > 0) out += ", ";
        out += U64(h.counts[i]);
      }
      out += "]}";
    }
  }
  out += "\n  }\n";
  out += "}\n";
  return out;
}

bool WriteQueryProfile(const std::string& path, const QueryProfile& profile,
                       std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot write '" + path + "'";
    return false;
  }
  out << profile.ToJson();
  out.close();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace gradoop::telemetry
