#include "telemetry/json.h"

#include <cctype>
#include <cstdlib>

namespace gradoop::telemetry::json {

ValuePtr Value::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : it->second;
}

ValuePtr Value::MakeNull() { return ValuePtr(new Value(Kind::kNull)); }

ValuePtr Value::MakeBool(bool value) {
  auto v = new Value(Kind::kBool);
  v->bool_ = value;
  return ValuePtr(v);
}

ValuePtr Value::MakeNumber(double value, std::string raw) {
  auto v = new Value(Kind::kNumber);
  v->number_ = value;
  v->raw_ = std::move(raw);
  return ValuePtr(v);
}

ValuePtr Value::MakeString(std::string value) {
  auto v = new Value(Kind::kString);
  v->string_ = std::move(value);
  return ValuePtr(v);
}

ValuePtr Value::MakeArray(std::vector<ValuePtr> items) {
  auto v = new Value(Kind::kArray);
  v->array_ = std::move(items);
  return ValuePtr(v);
}

ValuePtr Value::MakeObject(std::map<std::string, ValuePtr> members) {
  auto v = new Value(Kind::kObject);
  v->object_ = std::move(members);
  return ValuePtr(v);
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<ValuePtr> ParseDocument() {
    GRADOOP_ASSIGN_OR_RETURN(ValuePtr value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError("json: " + message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<ValuePtr> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      GRADOOP_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value::MakeString(std::move(s));
    }
    if (ConsumeWord("true")) return Value::MakeBool(true);
    if (ConsumeWord("false")) return Value::MakeBool(false);
    if (ConsumeWord("null")) return Value::MakeNull();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<ValuePtr> ParseObject() {
    Consume('{');
    std::map<std::string, ValuePtr> members;
    SkipWhitespace();
    if (Consume('}')) return Value::MakeObject(std::move(members));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      GRADOOP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      GRADOOP_ASSIGN_OR_RETURN(ValuePtr value, ParseValue());
      members[key] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<ValuePtr> ParseArray() {
    Consume('[');
    std::vector<ValuePtr> items;
    SkipWhitespace();
    if (Consume(']')) return Value::MakeArray(std::move(items));
    for (;;) {
      GRADOOP_ASSIGN_OR_RETURN(ValuePtr value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            out.push_back(e);
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Error("truncated \\u escape");
            }
            // Decoded only far enough for our own artifacts: the code
            // point is appended raw when ASCII, '?' otherwise.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            const long cp = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return Error("bad \\u escape");
            out.push_back(cp >= 0 && cp < 0x80 ? static_cast<char>(cp)
                                               : '?');
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<ValuePtr> ParseNumber() {
    const size_t begin = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string raw = text_.substr(begin, pos_ - begin);
    if (raw.empty() || raw == "-") return Error("malformed number");
    // Sequenced before the move: argument evaluation order is
    // unspecified, so strtod must not read `raw` in the same call.
    const double value = std::strtod(raw.c_str(), nullptr);
    return Value::MakeNumber(value, std::move(raw));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ValuePtr> Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace gradoop::telemetry::json
