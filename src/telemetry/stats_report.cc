#include "telemetry/stats_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "telemetry/json.h"

namespace gradoop::telemetry {

namespace {

double NumberOr(const json::ValuePtr& object, const char* key,
                double fallback) {
  if (object == nullptr) return fallback;
  const json::ValuePtr v = object->Get(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

uint64_t U64Or(const json::ValuePtr& object, const char* key) {
  const double value = NumberOr(object, key, 0.0);
  return value <= 0.0 ? 0 : static_cast<uint64_t>(value);
}

std::string StringOr(const json::ValuePtr& object, const char* key,
                     const std::string& fallback) {
  if (object == nullptr) return fallback;
  const json::ValuePtr v = object->Get(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

// Tolerant profile reconstruction: the strict shape checks live in
// telemetry/validate.cc; the report only needs the fields it prints.
QueryProfile ParseProfileObject(const json::ValuePtr& root) {
  QueryProfile profile;
  profile.name = StringOr(root, "name", "");
  profile.query = StringOr(root, "query", "");
  profile.engine = StringOr(root, "engine", "row");
  profile.max_qerror = NumberOr(root, "max_qerror", 0.0);
  profile.matches = U64Or(root, "matches");
  profile.total_wall_sec = NumberOr(root, "total_wall_sec", 0.0);
  profile.simulated_sec = NumberOr(root, "simulated_sec", 0.0);
  profile.network_bytes = U64Or(root, "network_bytes");
  profile.spilled_bytes = U64Or(root, "spilled_bytes");
  const json::ValuePtr phases = root->Get("phases");
  if (phases != nullptr && phases->is_array()) {
    for (const json::ValuePtr& phase : phases->AsArray()) {
      profile.phases.push_back({StringOr(phase, "name", "?"),
                                NumberOr(phase, "wall_sec", 0.0)});
    }
  }
  const json::ValuePtr operators = root->Get("operators");
  if (operators != nullptr && operators->is_array()) {
    for (const json::ValuePtr& op : operators->AsArray()) {
      OperatorProfile parsed;
      parsed.name = StringOr(op, "name", "?");
      parsed.describe = StringOr(op, "describe", parsed.name);
      parsed.depth = static_cast<int>(NumberOr(op, "depth", 0.0));
      parsed.estimated_rows = NumberOr(op, "estimated_rows", 0.0);
      parsed.actual_rows = U64Or(op, "actual_rows");
      parsed.qerror = NumberOr(op, "qerror", 1.0);
      parsed.selectivity = NumberOr(op, "selectivity", 0.0);
      parsed.actual_peak_bytes = U64Or(op, "actual_peak_bytes");
      parsed.claimed_peak_bytes = U64Or(op, "claimed_peak_bytes");
      parsed.self_wall_sec = NumberOr(op, "self_wall_sec", 0.0);
      parsed.total_wall_sec = NumberOr(op, "total_wall_sec", 0.0);
      profile.operators.push_back(std::move(parsed));
    }
  }
  return profile;
}

bool IngestBenchReport(const json::ValuePtr& root, StatsInput* input,
                       std::string* error) {
  const std::string bench = StringOr(root, "bench", "bench");
  const json::ValuePtr records = root->Get("records");
  if (records == nullptr || !records->is_array()) {
    if (error != nullptr) *error = "bench report has no records array";
    return false;
  }
  for (const json::ValuePtr& record : records->AsArray()) {
    BenchRecord parsed;
    parsed.bench = bench;
    const json::ValuePtr params = record->Get("params");
    if (params != nullptr && params->is_object()) {
      for (const auto& [key, value] : params->AsObject()) {
        if (value->is_string()) parsed.params[key] = value->AsString();
      }
    }
    parsed.matches = U64Or(record, "matches");
    parsed.wall_ms = NumberOr(record, "wall_ms", 0.0);
    parsed.simulated_sec = NumberOr(record, "simulated_sec", 0.0);
    parsed.network_bytes = U64Or(record, "network_bytes");
    parsed.spilled_bytes = U64Or(record, "spilled_bytes");
    parsed.records = U64Or(record, "records");
    parsed.shuffle_count = U64Or(record, "shuffle_count");
    parsed.shuffle_bytes = U64Or(record, "shuffle_bytes");
    parsed.shuffle_elided_count = U64Or(record, "shuffle_elided_count");
    parsed.shuffle_elided_bytes = U64Or(record, "shuffle_elided_bytes");
    input->bench_records.push_back(std::move(parsed));
  }
  return true;
}

std::string ParamsKey(const std::map<std::string, std::string>& params) {
  std::string key;
  for (const auto& [name, value] : params) {
    key += name + "=" + value + ";";
  }
  return key;
}

std::string Format(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}

// One percentile table row: label padded to 28, count, p50/p95/p99.
void AppendPercentileRow(std::string* out, const std::string& label,
                         const std::vector<double>& values) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-28s %5zu %8s %8s %8s\n",
                label.c_str(), values.size(),
                Format("%.3f", Percentile(values, 50)).c_str(),
                Format("%.3f", Percentile(values, 95)).c_str(),
                Format("%.3f", Percentile(values, 99)).c_str());
  *out += buf;
}

}  // namespace

bool IngestStatsArtifact(const std::string& json_text, StatsInput* input,
                         std::string* error, bool* unknown_schema) {
  if (unknown_schema != nullptr) *unknown_schema = false;
  auto parsed = json::Parse(json_text);
  if (!parsed.ok()) {
    if (error != nullptr) *error = parsed.status().message();
    return false;
  }
  const json::ValuePtr root = parsed.value();
  if (!root->is_object()) {
    // Well-formed JSON, just not one of ours — schema, not syntax.
    if (unknown_schema != nullptr) *unknown_schema = true;
    if (error != nullptr) *error = "artifact root is not an object";
    return false;
  }
  const json::ValuePtr queries = root->Get("queries");
  if (queries != nullptr && queries->is_array()) {
    for (const json::ValuePtr& query : queries->AsArray()) {
      input->profiles.push_back(ParseProfileObject(query));
    }
    return true;
  }
  if (root->Get("operators") != nullptr) {
    input->profiles.push_back(ParseProfileObject(root));
    return true;
  }
  if (root->Get("records") != nullptr) {
    return IngestBenchReport(root, input, error);
  }
  if (unknown_schema != nullptr) *unknown_schema = true;
  if (error != nullptr) {
    *error = "unrecognized artifact (no queries/operators/records)";
  }
  return false;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  // Nearest-rank: the smallest value with at least p% of the sample at
  // or below it.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

std::string RenderStatsReport(const StatsInput& input, size_t worst_count) {
  std::string out;
  size_t row_profiles = 0;
  for (const QueryProfile& profile : input.profiles) {
    if (profile.engine != "batch") ++row_profiles;
  }
  out += "profiles: " + std::to_string(input.profiles.size()) + " (row " +
         std::to_string(row_profiles) + ", batch " +
         std::to_string(input.profiles.size() - row_profiles) + "), " +
         "bench records: " + std::to_string(input.bench_records.size()) +
         "\n";

  // --- phase latency percentiles, in first-seen phase order ---
  std::vector<std::string> phase_order;
  std::map<std::string, std::vector<double>> phase_ms;
  for (const QueryProfile& profile : input.profiles) {
    for (const PhaseProfile& phase : profile.phases) {
      if (phase_ms.find(phase.name) == phase_ms.end()) {
        phase_order.push_back(phase.name);
      }
      phase_ms[phase.name].push_back(phase.wall_sec * 1e3);
    }
  }
  if (!phase_ms.empty()) {
    out += "\nphase latency [ms]             count      p50      p95      "
           "p99\n";
    for (const std::string& name : phase_order) {
      AppendPercentileRow(&out, name, phase_ms[name]);
    }
  }

  // --- per-operator-type self time and Q-error ---
  std::map<std::string, std::vector<double>> op_self_ms;
  std::map<std::string, std::vector<double>> op_qerror;
  for (const QueryProfile& profile : input.profiles) {
    for (const OperatorProfile& op : profile.operators) {
      op_self_ms[op.name].push_back(op.self_wall_sec * 1e3);
      op_qerror[op.name].push_back(op.qerror);
    }
  }
  if (!op_self_ms.empty()) {
    out += "\noperator self time [ms]        count      p50      p95      "
           "p99\n";
    for (const auto& [name, values] : op_self_ms) {
      AppendPercentileRow(&out, name, values);
    }
    out += "\noperator Q-error               count      p50      p95      "
           "max\n";
    for (const auto& [name, values] : op_qerror) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %-28s %5zu %8s %8s %8s\n",
                    name.c_str(), values.size(),
                    Format("%.2f", Percentile(values, 50)).c_str(),
                    Format("%.2f", Percentile(values, 95)).c_str(),
                    Format("%.2f", *std::max_element(values.begin(),
                                                     values.end()))
                        .c_str());
      out += buf;
    }
  }

  // --- worst misestimates, with the plan line that produced them ---
  struct Misestimate {
    double qerror;
    double estimated;
    uint64_t actual;
    std::string profile_name;
    std::string engine;
    std::string describe;
  };
  std::vector<Misestimate> worst;
  for (const QueryProfile& profile : input.profiles) {
    for (const OperatorProfile& op : profile.operators) {
      worst.push_back({op.qerror, op.estimated_rows, op.actual_rows,
                       profile.name, profile.engine, op.describe});
    }
  }
  std::stable_sort(worst.begin(), worst.end(),
                   [](const Misestimate& a, const Misestimate& b) {
                     return a.qerror > b.qerror;
                   });
  if (!worst.empty()) {
    out += "\nworst misestimates\n";
    for (size_t i = 0; i < worst.size() && i < worst_count; ++i) {
      const Misestimate& m = worst[i];
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "  qerror=%.2f est=%.0f act=%llu ", m.qerror,
                    m.estimated,
                    static_cast<unsigned long long>(m.actual));
      out += buf;
      out += "[" + m.profile_name + "/" + m.engine + "] " + m.describe +
             "\n";
    }
  }

  // --- row vs batch, from bench records sweeping an engine mode ---
  // Records pair on identical params minus "mode"; the row mode and its
  // batch twin compare wall clock (the vectorization win) and matches
  // (which must agree — the engines are differential-tested equal).
  const std::pair<const char*, const char*> mode_pairs[] = {
      {"default", "batch"}, {"repartition", "batch-repart"}};
  std::map<std::string, std::map<std::string, const BenchRecord*>> by_key;
  for (const BenchRecord& record : input.bench_records) {
    auto mode = record.params.find("mode");
    if (mode == record.params.end()) continue;
    std::map<std::string, std::string> rest = record.params;
    rest.erase("mode");
    by_key[record.bench + "|" + ParamsKey(rest)][mode->second] = &record;
  }
  std::string engine_rows;
  for (const auto& [key, modes] : by_key) {
    (void)key;
    for (const auto& [row_mode, batch_mode] : mode_pairs) {
      auto row_it = modes.find(row_mode);
      auto batch_it = modes.find(batch_mode);
      if (row_it == modes.end() || batch_it == modes.end()) continue;
      const BenchRecord& row = *row_it->second;
      const BenchRecord& batch = *batch_it->second;
      auto query = row.params.find("query");
      char buf[200];
      std::snprintf(
          buf, sizeof(buf), "  %-10s %-12s row %9.3fms  batch %9.3fms  "
          "speedup %5.2fx%s\n",
          query != row.params.end() ? query->second.c_str() : "?",
          row_mode, row.wall_ms, batch.wall_ms,
          batch.wall_ms > 0.0 ? row.wall_ms / batch.wall_ms : 0.0,
          row.matches == batch.matches ? "" : "  MATCHES DIFFER");
      engine_rows += buf;
    }
  }
  if (!engine_rows.empty()) {
    out += "\nrow vs batch (bench modes)\n" + engine_rows;
  }
  return out;
}

int DiffBenchBaseline(const StatsInput& baseline, const StatsInput& current,
                      const BaselineDiffOptions& options,
                      std::string* report) {
  auto key_of = [](const BenchRecord& record) {
    return record.bench + "|" + ParamsKey(record.params);
  };
  std::map<std::string, const BenchRecord*> current_by_key;
  for (const BenchRecord& record : current.bench_records) {
    current_by_key[key_of(record)] = &record;
  }
  int regressions = 0;
  auto note = [&](const std::string& line) {
    if (report != nullptr) *report += line + "\n";
  };
  std::set<std::string> seen;
  for (const BenchRecord& base : baseline.bench_records) {
    const std::string key = key_of(base);
    seen.insert(key);
    auto it = current_by_key.find(key);
    if (it == current_by_key.end()) {
      ++regressions;
      note("FAIL " + key + ": record missing from current run");
      continue;
    }
    const BenchRecord& cur = *it->second;
    if (cur.matches != base.matches) {
      ++regressions;
      note("FAIL " + key + ": matches " + std::to_string(base.matches) +
           " -> " + std::to_string(cur.matches) + " (must be identical)");
    }
    // Deterministic-but-modeled fields gate with tolerance; wall clock is
    // machine noise and only reported.
    struct Field {
      const char* name;
      double base;
      double cur;
      double floor;  // denominator floor, absorbs zero baselines
    };
    const Field fields[] = {
        {"simulated_sec", base.simulated_sec, cur.simulated_sec, 1e-9},
        {"shuffle_bytes", static_cast<double>(base.shuffle_bytes),
         static_cast<double>(cur.shuffle_bytes), 1.0},
    };
    for (const Field& field : fields) {
      const double denom = field.base > field.floor ? field.base
                                                    : field.floor;
      const double drift = (field.cur - field.base) / denom;
      if (drift > options.tolerance) {
        ++regressions;
        note("FAIL " + key + ": " + field.name + " " +
             Format("%.6g", field.base) + " -> " +
             Format("%.6g", field.cur) + " (+" +
             Format("%.1f", drift * 100.0) + "%, tolerance " +
             Format("%.1f", options.tolerance * 100.0) + "%)");
      } else if (drift < -options.tolerance) {
        note("note " + key + ": " + field.name + " improved " +
             Format("%.6g", field.base) + " -> " +
             Format("%.6g", field.cur) +
             " (consider refreshing the baseline)");
      }
    }
    if (base.wall_ms > 0.0 && cur.wall_ms > 0.0) {
      const double drift = (cur.wall_ms - base.wall_ms) / base.wall_ms;
      if (drift > options.tolerance) {
        note("warn " + key + ": wall_ms " + Format("%.3f", base.wall_ms) +
             " -> " + Format("%.3f", cur.wall_ms) +
             " (not gated: wall clock)");
      }
    }
  }
  for (const BenchRecord& cur : current.bench_records) {
    if (seen.find(key_of(cur)) == seen.end()) {
      note("note " + key_of(cur) + ": new record (not in baseline)");
    }
  }
  note(regressions == 0
           ? "baseline diff OK (" +
                 std::to_string(baseline.bench_records.size()) +
                 " records compared)"
           : "baseline diff found " + std::to_string(regressions) +
                 " regression(s)");
  return regressions;
}

}  // namespace gradoop::telemetry
