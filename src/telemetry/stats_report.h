#ifndef GRADOOP_TELEMETRY_STATS_REPORT_H_
#define GRADOOP_TELEMETRY_STATS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/query_profile.h"

namespace gradoop::telemetry {

// Aggregation layer behind tools/cypher_stats: ingests the engine's own
// JSON artifacts (flight-recorder exports, single QueryProfile files,
// BENCH_*.json reports), renders the cross-run statistics report, and
// diffs two bench artifacts for the CI regression gate.

// One record of a BENCH_*.json artifact (bench/bench_common.h schema).
struct BenchRecord {
  std::string bench;  // artifact name ("ldbc_queries")
  std::map<std::string, std::string> params;
  uint64_t matches = 0;
  double wall_ms = 0.0;
  double simulated_sec = 0.0;
  uint64_t network_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t records = 0;
  uint64_t shuffle_count = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t shuffle_elided_count = 0;
  uint64_t shuffle_elided_bytes = 0;
};

// Everything ingested so far. Profiles keep only the fields the report
// reads back out of the JSON (identity, phases, operators, plan
// quality); histograms and worker arrays stay in the artifacts.
struct StatsInput {
  std::vector<QueryProfile> profiles;
  std::vector<BenchRecord> bench_records;
};

// Parses one artifact and appends its contents to `input`. The document
// kind is auto-detected: an object with "queries" is a flight-recorder
// export, with "operators" a single query profile, with "records" a
// BENCH_*.json report. Returns false + *error on parse/shape failure.
// When the artifact is well-formed JSON but matches none of the known
// schemas, *unknown_schema (if given) is additionally set to true so
// callers can downgrade the failure to a skip-with-warning
// (cypher_stats does, unless --strict).
bool IngestStatsArtifact(const std::string& json_text, StatsInput* input,
                         std::string* error,
                         bool* unknown_schema = nullptr);

// Nearest-rank percentile (p in [0,100]) of `values`; 0 when empty.
double Percentile(std::vector<double> values, double p);

// The aggregate report: per-phase and per-operator-type latency
// percentiles, plan-quality (Q-error) summary, the `worst_count` worst
// misestimates with their plan lines, and a row-vs-batch comparison
// from bench records that sweep an engine mode.
std::string RenderStatsReport(const StatsInput& input,
                              size_t worst_count = 5);

struct BaselineDiffOptions {
  // Relative tolerance on the deterministic-but-modeled fields
  // (simulated_sec, shuffle_bytes). Matches must be exactly equal.
  double tolerance = 0.10;
};

// Diffs `current` bench records against `baseline`, matched by bench
// name + params. Appends a human-readable diff to *report and returns
// the number of regressions: match-count mismatches, tolerance
// violations, and records missing from `current`. Wall-clock deltas are
// reported but never gate (they are machine noise). 0 = gate passes.
int DiffBenchBaseline(const StatsInput& baseline, const StatsInput& current,
                      const BaselineDiffOptions& options,
                      std::string* report);

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_STATS_REPORT_H_
