#ifndef GRADOOP_TELEMETRY_TRACE_EXPORT_H_
#define GRADOOP_TELEMETRY_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "telemetry/tracer.h"

namespace gradoop::telemetry {

// Renders spans as Chrome trace-event JSON (the "JSON Array Format" with
// a traceEvents wrapper), loadable in Perfetto and chrome://tracing.
//
// Mapping: every span becomes one complete event (ph "X") under pid 1.
// Rows are chosen for readability of the skew story: driver-side spans
// (query phases, operators, shuffle stages) render on tid 0 ("driver"),
// per-partition task spans on tid 1000 + worker ("worker N"), so one
// stage's tasks line up vertically and ragged lengths across workers are
// visible at a glance. Real host-thread ids and worker ids are kept in
// each event's args. Thread-name metadata events (ph "M") label the rows.
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans);

// Writes ToChromeTraceJson(spans) to `path`. Returns false (with a
// message in *error) when the file cannot be written.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<SpanRecord>& spans,
                      std::string* error);

// Escapes a string for embedding in a JSON string literal (shared by the
// trace and profile writers).
std::string JsonEscape(const std::string& text);

// Formats a double with enough precision for timestamps, without
// locale surprises ("%.3f").
std::string JsonNumber(double value);

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_TRACE_EXPORT_H_
