#include "telemetry/validate.h"

#include "telemetry/json.h"

namespace gradoop::telemetry {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool NonNegativeNumber(const json::ValuePtr& v) {
  return v != nullptr && v->is_number() && v->AsDouble() >= 0.0;
}

bool EngineName(const json::ValuePtr& v) {
  return v != nullptr && v->is_string() &&
         (v->AsString() == "row" || v->AsString() == "batch");
}

// The query-profile object check, shared between the standalone profile
// document and each element of a flight-recorder export's "queries".
bool ValidateQueryProfileObject(const json::ValuePtr& root,
                                std::string* error) {
  if (!root->is_object()) return Fail(error, "root is not an object");

  const json::ValuePtr version = root->Get("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->AsDouble() != 1.0) {
    return Fail(error, "schema_version missing or not 1");
  }
  for (const char* key : {"name", "query"}) {
    const json::ValuePtr v = root->Get(key);
    if (v == nullptr || !v->is_string()) {
      return Fail(error, std::string("missing string field '") + key + "'");
    }
  }
  if (!EngineName(root->Get("engine"))) {
    return Fail(error, "engine missing or not row|batch");
  }
  for (const char* key :
       {"max_qerror", "matches", "total_wall_sec", "simulated_sec",
        "network_bytes", "spilled_bytes", "records", "num_workers",
        "worker_imbalance"}) {
    if (!NonNegativeNumber(root->Get(key))) {
      return Fail(error,
                  std::string("missing non-negative field '") + key + "'");
    }
  }

  const json::ValuePtr phases = root->Get("phases");
  if (phases == nullptr || !phases->is_array() ||
      phases->AsArray().empty()) {
    return Fail(error, "phases missing or empty");
  }
  for (const json::ValuePtr& phase : phases->AsArray()) {
    const json::ValuePtr name = phase->Get("name");
    if (name == nullptr || !name->is_string()) {
      return Fail(error, "phase without name");
    }
    if (!NonNegativeNumber(phase->Get("wall_sec"))) {
      return Fail(error, "phase '" + name->AsString() +
                             "' has no non-negative wall_sec");
    }
  }

  const json::ValuePtr operators = root->Get("operators");
  if (operators == nullptr || !operators->is_array()) {
    return Fail(error, "operators missing");
  }
  for (const json::ValuePtr& op : operators->AsArray()) {
    const json::ValuePtr name = op->Get("name");
    if (name == nullptr || !name->is_string()) {
      return Fail(error, "operator without name");
    }
    for (const char* key :
         {"actual_rows", "estimated_rows", "selectivity",
          "actual_peak_bytes", "claimed_peak_bytes", "self_wall_sec",
          "total_wall_sec"}) {
      if (!NonNegativeNumber(op->Get(key))) {
        return Fail(error, "operator '" + name->AsString() +
                               "' missing non-negative '" + key + "'");
      }
    }
    // A Q-error below 1 is arithmetically impossible (max/min of two
    // clamped positives), so its presence doubles as an emitter check.
    const json::ValuePtr qerror = op->Get("qerror");
    if (qerror == nullptr || !qerror->is_number() ||
        qerror->AsDouble() < 1.0) {
      return Fail(error,
                  "operator '" + name->AsString() + "' has no qerror >= 1");
    }
    // Self time cannot exceed cumulative time (epsilon for clock jitter
    // between the two Timer reads).
    if (op->Get("self_wall_sec")->AsDouble() >
        op->Get("total_wall_sec")->AsDouble() + 1e-6) {
      return Fail(error, "operator '" + name->AsString() +
                             "' has self_wall_sec > total_wall_sec");
    }
  }

  const json::ValuePtr workers = root->Get("workers");
  if (workers == nullptr || !workers->is_array()) {
    return Fail(error, "workers missing");
  }
  const json::ValuePtr num_workers = root->Get("num_workers");
  if (workers->AsArray().size() !=
      static_cast<size_t>(num_workers->AsDouble())) {
    return Fail(error, "workers array size != num_workers");
  }
  for (const json::ValuePtr& w : workers->AsArray()) {
    if (!NonNegativeNumber(w->Get("busy_sec")) ||
        !NonNegativeNumber(w->Get("tasks"))) {
      return Fail(error, "worker entry missing busy_sec/tasks");
    }
  }
  return true;
}

}  // namespace

bool ValidateChromeTrace(const std::string& json_text, std::string* error) {
  auto parsed = json::Parse(json_text);
  if (!parsed.ok()) return Fail(error, parsed.status().message());
  const json::ValuePtr root = parsed.value();
  if (!root->is_object()) return Fail(error, "root is not an object");
  const json::ValuePtr events = root->Get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail(error, "missing traceEvents array");
  }
  size_t complete_events = 0;
  double last_ts = -1.0;
  for (size_t i = 0; i < events->AsArray().size(); ++i) {
    const json::ValuePtr& event = events->AsArray()[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!event->is_object()) return Fail(error, at + " is not an object");
    const json::ValuePtr name = event->Get("name");
    const json::ValuePtr ph = event->Get("ph");
    if (name == nullptr || !name->is_string()) {
      return Fail(error, at + " has no string name");
    }
    if (ph == nullptr || !ph->is_string()) {
      return Fail(error, at + " has no string ph");
    }
    if (event->Get("pid") == nullptr || event->Get("tid") == nullptr) {
      return Fail(error, at + " is missing pid/tid");
    }
    if (ph->AsString() != "X") continue;
    ++complete_events;
    const json::ValuePtr ts = event->Get("ts");
    const json::ValuePtr dur = event->Get("dur");
    if (!NonNegativeNumber(ts)) {
      return Fail(error, at + " has no non-negative ts");
    }
    if (!NonNegativeNumber(dur)) {
      return Fail(error, at + " has no non-negative dur");
    }
    if (ts->AsDouble() < last_ts) {
      return Fail(error, at + " breaks monotonic ts order");
    }
    last_ts = ts->AsDouble();
  }
  if (complete_events == 0) {
    return Fail(error, "trace has no complete ('X') events");
  }
  return true;
}

bool ValidateQueryProfile(const std::string& json_text, std::string* error) {
  auto parsed = json::Parse(json_text);
  if (!parsed.ok()) return Fail(error, parsed.status().message());
  return ValidateQueryProfileObject(parsed.value(), error);
}

bool ValidateFlightRecorderExport(const std::string& json_text,
                                  std::string* error) {
  auto parsed = json::Parse(json_text);
  if (!parsed.ok()) return Fail(error, parsed.status().message());
  const json::ValuePtr root = parsed.value();
  if (!root->is_object()) return Fail(error, "root is not an object");
  const json::ValuePtr version = root->Get("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->AsDouble() != 1.0) {
    return Fail(error, "schema_version missing or not 1");
  }
  for (const char* key : {"byte_budget", "retained_bytes", "dropped"}) {
    if (!NonNegativeNumber(root->Get(key))) {
      return Fail(error,
                  std::string("missing non-negative field '") + key + "'");
    }
  }
  const json::ValuePtr queries = root->Get("queries");
  if (queries == nullptr || !queries->is_array()) {
    return Fail(error, "queries missing");
  }
  for (size_t i = 0; i < queries->AsArray().size(); ++i) {
    std::string inner;
    if (!ValidateQueryProfileObject(queries->AsArray()[i], &inner)) {
      return Fail(error,
                  "queries[" + std::to_string(i) + "]: " + inner);
    }
  }
  return true;
}

bool ValidateQueryLogLine(const std::string& line, std::string* error) {
  auto parsed = json::Parse(line);
  if (!parsed.ok()) return Fail(error, parsed.status().message());
  const json::ValuePtr root = parsed.value();
  if (!root->is_object()) return Fail(error, "record is not an object");
  const json::ValuePtr version = root->Get("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->AsDouble() != 1.0) {
    return Fail(error, "schema_version missing or not 1");
  }
  const json::ValuePtr hash = root->Get("query_hash");
  if (hash == nullptr || !hash->is_string() ||
      hash->AsString().size() != 16) {
    return Fail(error, "query_hash missing or not 16 chars");
  }
  for (const char c : hash->AsString()) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
      return Fail(error, "query_hash is not lowercase hex");
    }
  }
  const json::ValuePtr name = root->Get("name");
  if (name == nullptr || !name->is_string()) {
    return Fail(error, "missing string field 'name'");
  }
  if (!EngineName(root->Get("engine"))) {
    return Fail(error, "engine missing or not row|batch");
  }
  for (const char* key : {"matches", "wall_sec", "max_qerror",
                          "peak_memory_bytes", "shuffle_bytes"}) {
    if (!NonNegativeNumber(root->Get(key))) {
      return Fail(error,
                  std::string("missing non-negative field '") + key + "'");
    }
  }
  const json::ValuePtr slow = root->Get("slow");
  if (slow == nullptr || !slow->is_bool()) {
    return Fail(error, "missing boolean field 'slow'");
  }
  const json::ValuePtr phases = root->Get("phases");
  if (phases == nullptr || !phases->is_array() ||
      phases->AsArray().empty()) {
    return Fail(error, "phases missing or empty");
  }
  for (const json::ValuePtr& phase : phases->AsArray()) {
    const json::ValuePtr phase_name = phase->Get("name");
    if (phase_name == nullptr || !phase_name->is_string() ||
        !NonNegativeNumber(phase->Get("wall_sec"))) {
      return Fail(error, "phase entry missing name/wall_sec");
    }
  }
  return true;
}

}  // namespace gradoop::telemetry
