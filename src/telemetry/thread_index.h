#ifndef GRADOOP_TELEMETRY_THREAD_INDEX_H_
#define GRADOOP_TELEMETRY_THREAD_INDEX_H_

#include <atomic>
#include <cstdint>

namespace gradoop::telemetry {

// Small dense per-thread index (0, 1, 2, ... in first-use order),
// process-wide. Used to shard metric/span stores and to tag spans with a
// stable host-thread id that is readable in trace viewers (std::thread::id
// is opaque and non-dense).
inline uint32_t CurrentThreadIndex() {
  // ordering: relaxed fetch_add — only uniqueness of the handed-out
  // indices matters, no other memory is published through the counter.
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_THREAD_INDEX_H_
