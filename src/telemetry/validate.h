#ifndef GRADOOP_TELEMETRY_VALIDATE_H_
#define GRADOOP_TELEMETRY_VALIDATE_H_

#include <string>

namespace gradoop::telemetry {

// Schema checks over the engine's own emitted artifacts. Used by tests
// and by the cypher_profile tool (and through it the ci/check.sh profile
// stage) so a malformed export fails loudly instead of producing a file
// Perfetto silently rejects.
//
// ValidateChromeTrace: the document is well-formed JSON, has a
// non-empty "traceEvents" array, every event carries name/ph/pid/tid,
// every "X" event has numeric ts >= 0 and dur >= 0, and the "X" events
// appear in non-decreasing ts order (the exporter emits them sorted —
// monotonic timestamps are part of the contract).
//
// ValidateQueryProfile: well-formed JSON with schema_version 1, the
// required scalar fields (including the plan-quality surface: engine
// "row"|"batch", max_qerror, per-operator qerror >= 1), a non-empty
// "phases" array with non-negative wall times in monotonic span order,
// "operators" entries whose self_wall_sec <= total_wall_sec, and a
// "workers" array sized to num_workers.
//
// ValidateFlightRecorderExport: schema_version 1, non-negative
// byte_budget / retained_bytes / dropped, and a "queries" array whose
// every element passes the full query-profile check.
//
// ValidateQueryLogLine: one JSONL record (telemetry/query_log.h) —
// schema_version 1, a 16-hex-digit query_hash, engine "row"|"batch",
// non-negative scalar fields, boolean slow, and a non-empty phases
// array.
//
// All return true on success; on failure *error (if non-null) gets a
// one-line reason.
bool ValidateChromeTrace(const std::string& json_text, std::string* error);
bool ValidateQueryProfile(const std::string& json_text, std::string* error);
bool ValidateFlightRecorderExport(const std::string& json_text,
                                  std::string* error);
bool ValidateQueryLogLine(const std::string& line, std::string* error);

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_VALIDATE_H_
