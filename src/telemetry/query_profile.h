#ifndef GRADOOP_TELEMETRY_QUERY_PROFILE_H_
#define GRADOOP_TELEMETRY_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics_registry.h"
#include "telemetry/tracer.h"

namespace gradoop::telemetry {

// Cardinality Q-error (Moerkotte et al.): the multiplicative distance
// between an estimate and the measured actual, max(est,act)/min(est,act).
// Both sides are clamped to >= 1 first, so an exact estimate (including
// the 0-estimated/0-actual case) is exactly 1.0 and a zero on either
// side degrades to the other side's magnitude instead of dividing by
// zero. Always >= 1.0; 1.0 means the planner was right.
double QError(double estimated, double actual);

// Wall time of one engine phase (parse, analyze, plan, compile, execute).
struct PhaseProfile {
  std::string name;
  double wall_sec = 0.0;
};

// One physical operator of the executed plan, in pre-order (depth gives
// the tree shape back). `actual_rows` is the same number EXPLAIN ANALYZE
// renders as rows= for this operator; self vs total wall separates the
// operator's own kernel from time spent executing its children.
struct OperatorProfile {
  std::string name;        // stable operator name ("JoinEmbeddings", ...)
  std::string describe;    // one-line description incl. fused filters
  int depth = 0;
  double estimated_rows = 0.0;
  uint64_t actual_rows = 0;
  // Plan-quality signals: cardinality Q-error of this operator's estimate
  // (QError above, >= 1.0), output rows per input row (1.0 on leaves),
  // and the measured vs statically claimed subtree memory peaks (0 when
  // accounting was off / the claim is absent).
  double qerror = 1.0;
  double selectivity = 0.0;
  uint64_t actual_peak_bytes = 0;
  uint64_t claimed_peak_bytes = 0;
  double self_wall_sec = 0.0;
  double total_wall_sec = 0.0;
  uint64_t network_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t property_bytes = 0;
};

// Structured machine-readable profile of one query execution — the
// JSON counterpart of EXPLAIN ANALYZE plus the runtime's per-worker and
// per-phase views, written next to BENCH_*.json artifacts.
struct QueryProfile {
  std::string name;          // artifact name ("ldbc_Q1")
  std::string query;         // the Cypher text
  std::string engine = "row";  // execution engine: "row" | "batch"
  // Worst per-operator cardinality Q-error of the executed plan (>= 1.0
  // once anything executed; 0 when the plan is empty/unsatisfiable).
  double max_qerror = 0.0;
  uint64_t matches = 0;
  double total_wall_sec = 0.0;   // host wall clock of the whole run
  double simulated_sec = 0.0;    // CostTracker simulated cluster time
  uint64_t network_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t records = 0;
  int num_workers = 0;

  std::vector<PhaseProfile> phases;      // engine phases, in order
  std::vector<OperatorProfile> operators;  // pre-order plan walk
  std::vector<WorkerBusy> workers;       // from per-partition task spans
  MetricsSnapshot metrics;               // counters + histogram snapshots

  // max worker busy time over mean (1.0 = balanced; 0 = nothing ran).
  double WorkerImbalanceRatio() const;

  std::string ToJson() const;
};

// Writes profile.ToJson() to `path`; false + *error on I/O failure.
bool WriteQueryProfile(const std::string& path, const QueryProfile& profile,
                       std::string* error);

}  // namespace gradoop::telemetry

#endif  // GRADOOP_TELEMETRY_QUERY_PROFILE_H_
