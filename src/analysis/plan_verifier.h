#ifndef GRADOOP_ANALYSIS_PLAN_VERIFIER_H_
#define GRADOOP_ANALYSIS_PLAN_VERIFIER_H_

#include <string>

#include "common/result.h"
#include "cypher/query_graph.h"
#include "query/exec/physical_operator.h"
#include "query/plan.h"

namespace gradoop::analysis {

// Verification depth. Cheap checks are structural (node shape, index
// ranges, bound-variable bookkeeping) and run on every query in release
// builds; exhaustive checks additionally statically type-check all
// predicates. Column layouts are no longer simulated here: the compiled
// plan carries the layouts exec::PlanCompiler resolved, and
// VerifyCompiledPlan asserts their mutual consistency.
struct VerifyOptions {
  bool exhaustive = true;

  static VerifyOptions Cheap() { return {.exhaustive = false}; }
  static VerifyOptions Exhaustive() { return {.exhaustive = true}; }
  // Engine default: exhaustive in debug builds, cheap in release.
  static VerifyOptions Default() {
#ifdef NDEBUG
    return Cheap();
#else
    return Exhaustive();
#endif
  }
};

// Static checker for logical query plans (the relational soundness the
// planner must uphold). Walks a PlanNode tree bottom-up and rejects the
// first violated invariant with a Status naming the offending node and
// variable.
//
// Invariants checked per node:
//  - operator arity: scans are leaves, joins have two inputs, expand and
//    filter exactly one;
//  - element_index in range for the QueryGraph (vertex scans index
//    vertices(), edge scans / expansions index edges());
//  - fixed-length edges are scanned, variable-length edges expanded;
//  - bound_variables equals the union of the children's bound variables
//    plus exactly what the operator binds, and every bound variable names
//    a query element;
//  - join variables are bound on both inputs (and are never path
//    bindings, which have no joinable identifier);
//  - value-join keys are property accesses bound on the respective side,
//    over disjoint inputs;
//  - expansions start from a bound vertex variable and bind a fresh path
//    variable; bounds satisfy 0 <= lower <= upper;
//  - filter clauses reference only bound variables whose scans are part
//    of the subtree;
//  - cardinality estimates are finite and non-negative;
//  - [exhaustive] every predicate type-checks (see type_check.h) — the
//    query graph's element predicates too, which execute inside the leaf
//    scans and never appear as plan nodes.
class PlanVerifier {
 public:
  explicit PlanVerifier(const cypher::QueryGraph& query_graph,
                        VerifyOptions options = {});

  // Verifies the subtree rooted at `plan`. Partial plans (planner
  // candidates) are accepted as long as their invariants hold.
  Status Verify(const query::PlanNodePtr& plan) const;

  // Verify() plus completeness: the root must bind every vertex and edge
  // variable of the query graph. Run on the final plan before execution.
  Status VerifyComplete(const query::PlanNodePtr& plan) const;

 private:
  // Type-checks the query graph's own predicates: element predicates
  // (evaluated inside the leaf scans, so no plan node ever carries them)
  // and cross predicates. Exhaustive mode only.
  Status CheckQueryPredicates() const;

  const cypher::QueryGraph& query_graph_;
  VerifyOptions options_;
};

// Convenience wrappers used by the engine and the planner.
Status VerifyPlan(const cypher::QueryGraph& query_graph,
                  const query::PlanNodePtr& plan,
                  VerifyOptions options = VerifyOptions::Default());
Status VerifyCandidatePlan(const cypher::QueryGraph& query_graph,
                           const query::PlanNodePtr& plan,
                           VerifyOptions options = VerifyOptions::Default());

// Checks a compiled physical plan against the column layouts its
// operators carry (§3.3 bookkeeping): every meta data object is
// internally sane (indices in range, no overlapping or dangling
// columns), join/value-join key columns resolve on the children and
// merge layouts preserve the left columns while rebasing the right,
// expansions start from a vertex column and append the path (and fresh
// end) columns, and all fused filter clauses resolve to projected
// property columns. Partitioning, memory and batch-layout claims must
// all be re-derivable from the operator alone; memory and batch-layout
// claims are mandatory on every operator (a missing one means the plan
// skipped PlanCompiler's annotation pass, so nothing downstream —
// admission, audit, the vectorized kernels — can trust it).
// `num_workers` must match the CompileOptions::num_workers the plan was
// compiled with, and `batch_size` its CompileOptions::batch_size. Run by
// the engine between compilation and execution.
Status VerifyCompiledPlan(const cypher::QueryGraph& query_graph,
                          const query::exec::PhysicalOperator& root,
                          int num_workers = 4,
                          int batch_size = query::exec::kDefaultBatchSize);

// Stable operator name for diagnostics ("ScanVertices", "JoinEmbeddings",
// ...).
const char* PlanKindName(query::PlanNode::Kind kind);

}  // namespace gradoop::analysis

#endif  // GRADOOP_ANALYSIS_PLAN_VERIFIER_H_
