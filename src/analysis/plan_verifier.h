#ifndef GRADOOP_ANALYSIS_PLAN_VERIFIER_H_
#define GRADOOP_ANALYSIS_PLAN_VERIFIER_H_

#include <string>

#include "common/result.h"
#include "cypher/query_graph.h"
#include "query/embedding_meta_data.h"
#include "query/plan.h"

namespace gradoop::analysis {

// Verification depth. Cheap checks are structural (node shape, index
// ranges, bound-variable bookkeeping) and run on every query in release
// builds; exhaustive checks additionally simulate the embedding column
// layout of every operator and statically type-check all predicates.
struct VerifyOptions {
  bool exhaustive = true;

  static VerifyOptions Cheap() { return {.exhaustive = false}; }
  static VerifyOptions Exhaustive() { return {.exhaustive = true}; }
  // Engine default: exhaustive in debug builds, cheap in release.
  static VerifyOptions Default() {
#ifdef NDEBUG
    return Cheap();
#else
    return Exhaustive();
#endif
  }
};

// Static checker for physical query plans (§3.3 column bookkeeping and the
// relational soundness the planner must uphold). Walks a PlanNode tree
// bottom-up, simulating the EmbeddingMetaData every operator would produce
// at execution time, and rejects the first violated invariant with a
// Status naming the offending node and variable.
//
// Invariants checked per node:
//  - operator arity: scans are leaves, joins have two inputs, expand and
//    filter exactly one;
//  - element_index in range for the QueryGraph (vertex scans index
//    vertices(), edge scans / expansions index edges());
//  - fixed-length edges are scanned, variable-length edges expanded;
//  - bound_variables equals the union of the children's bound variables
//    plus exactly what the operator binds, and every bound variable names
//    a query element;
//  - join variables are bound on both inputs with matching EntryType (and
//    are never path bindings, which have no joinable identifier);
//  - value-join keys are property accesses resolvable to projected
//    property columns of the respective side, over disjoint inputs;
//  - expansions start from a bound vertex variable and bind a fresh path
//    variable; bounds satisfy 0 <= lower <= upper;
//  - filter clauses reference only bound variables whose referenced
//    properties are projected in the subtree;
//  - cardinality estimates are finite and non-negative;
//  - [exhaustive] the simulated EmbeddingMetaData stays consistent under
//    EmbeddingMetaData::Merge: column indices in range, no dangling or
//    overlapping id/property columns, variables typed consistently;
//  - [exhaustive] every predicate type-checks (see type_check.h) — the
//    query graph's element predicates too, which execute inside the leaf
//    scans and never appear as plan nodes.
class PlanVerifier {
 public:
  explicit PlanVerifier(const cypher::QueryGraph& query_graph,
                        VerifyOptions options = {});

  // Verifies the subtree rooted at `plan`. Partial plans (planner
  // candidates) are accepted as long as their invariants hold.
  Status Verify(const query::PlanNodePtr& plan) const;

  // Verify() plus completeness: the root must bind every vertex and edge
  // variable of the query graph. Run on the final plan before execution.
  Status VerifyComplete(const query::PlanNodePtr& plan) const;

  // Simulates the column layout `plan` produces at execution time,
  // mirroring the query operators' meta data construction (exposed for
  // tests, which pin it against the operators' actual output).
  Result<query::EmbeddingMetaData> SimulateMetaData(
      const query::PlanNodePtr& plan) const;

 private:
  // Type-checks the query graph's own predicates: element predicates
  // (evaluated inside the leaf scans, so no plan node ever carries them)
  // and cross predicates. Exhaustive mode only.
  Status CheckQueryPredicates() const;

  const cypher::QueryGraph& query_graph_;
  VerifyOptions options_;
};

// Convenience wrappers used by the engine and the planner.
Status VerifyPlan(const cypher::QueryGraph& query_graph,
                  const query::PlanNodePtr& plan,
                  VerifyOptions options = VerifyOptions::Default());
Status VerifyCandidatePlan(const cypher::QueryGraph& query_graph,
                           const query::PlanNodePtr& plan,
                           VerifyOptions options = VerifyOptions::Default());

// Stable operator name for diagnostics ("ScanVertices", "JoinEmbeddings",
// ...).
const char* PlanKindName(query::PlanNode::Kind kind);

}  // namespace gradoop::analysis

#endif  // GRADOOP_ANALYSIS_PLAN_VERIFIER_H_
