#include "analysis/diagnostics.h"

#include <algorithm>

namespace gradoop::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  return code + " " + SeverityName(severity) + ": " + message + " at " +
         span.ToString();
}

namespace {

// Extracts 1-based line `line` from `text`; returns false when the text
// has fewer lines (a diagnostic produced against a different query).
bool LineAt(const std::string& text, int line, std::string* out) {
  size_t start = 0;
  for (int i = 1; i < line; ++i) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string::npos) return false;
    start = nl + 1;
  }
  const size_t end = text.find('\n', start);
  *out = text.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
  return true;
}

}  // namespace

std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             const std::string& query_text) {
  std::string out = diagnostic.ToString();
  std::string line;
  if (!diagnostic.span.IsKnown() ||
      !LineAt(query_text, diagnostic.span.line, &line)) {
    return out;
  }
  const std::string number = std::to_string(diagnostic.span.line);
  const std::string gutter(number.size(), ' ');
  out += "\n  " + number + " | " + line;
  // Tabs in the source line would desynchronize the caret column; render
  // the underline with the same characters the line uses up to the span.
  const size_t col = static_cast<size_t>(diagnostic.span.column);
  std::string pad;
  for (size_t i = 0; i + 1 < col && i < line.size(); ++i) {
    pad += line[i] == '\t' ? '\t' : ' ';
  }
  size_t width = std::max<size_t>(diagnostic.span.length, 1);
  if (col - 1 < line.size()) {
    width = std::min(width, line.size() - (col - 1));
  } else {
    width = 1;  // span starts past the line end (e.g. at EOF)
  }
  out += "\n  " + gutter + " | " + pad + "^" + std::string(width - 1, '~');
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              const std::string& query_text) {
  std::string out;
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) out += "\n\n";
    out += RenderDiagnostic(diagnostics[i], query_text);
  }
  return out;
}

}  // namespace gradoop::analysis
