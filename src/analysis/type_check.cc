#include "analysis/type_check.h"

#include <string>
#include <vector>

namespace gradoop::analysis {

namespace {

using cypher::ComparisonOp;
using cypher::ExprKind;
using cypher::Expression;
using cypher::ExpressionPtr;

StaticType LiteralType(const epgm::PropertyValue& value) {
  switch (value.type()) {
    case epgm::PropertyValue::Type::kNull:
      return StaticType::kNull;
    case epgm::PropertyValue::Type::kBool:
      return StaticType::kBoolean;
    case epgm::PropertyValue::Type::kInt64:
      return StaticType::kInteger;
    case epgm::PropertyValue::Type::kDouble:
      return StaticType::kFloat;
    case epgm::PropertyValue::Type::kString:
      return StaticType::kString;
    case epgm::PropertyValue::Type::kIdList:
      return StaticType::kIdList;
  }
  return StaticType::kValue;
}

bool IsNumeric(StaticType t) {
  return t == StaticType::kInteger || t == StaticType::kFloat;
}

// Either side statically unknown or NULL: the comparison has a defined
// (possibly NULL) runtime result, so it type-checks.
bool Unconstrained(StaticType t) {
  return t == StaticType::kValue || t == StaticType::kNull;
}

bool IsEquality(ComparisonOp op) {
  return op == ComparisonOp::kEq || op == ComparisonOp::kNeq;
}

Status IllTyped(const Expression& expr, const std::string& detail) {
  return Status::PlanError("ill-typed predicate `" + expr.ToString() +
                           "`: " + detail);
}

Result<StaticType> CheckComparison(const Expression& expr) {
  // EvaluateValue only handles literals and property accesses; anything
  // else (a nested comparison or logical) is not a value.
  for (const ExpressionPtr& side : {expr.left(), expr.right()}) {
    if (side == nullptr) {
      // expr.ToString() would dereference the missing operand.
      return Status::PlanError(
          "ill-typed predicate: comparison is missing an operand");
    }
    if (side->kind() != ExprKind::kLiteral &&
        side->kind() != ExprKind::kPropertyAccess) {
      return IllTyped(expr, "operand `" + side->ToString() +
                                "` is not a value (literal or property "
                                "access)");
    }
  }
  GRADOOP_ASSIGN_OR_RETURN(StaticType lhs, CheckExpression(expr.left()));
  GRADOOP_ASSIGN_OR_RETURN(StaticType rhs, CheckExpression(expr.right()));
  const bool equality = IsEquality(expr.comparison_op());
  // Booleans and id lists carry no ordering (PropertyValue::Compare
  // returns nullopt), so an ordering with one on either side is NULL for
  // every possible value of the other side — reject it even when that
  // other side is statically unknown.
  const bool unorderable =
      lhs == StaticType::kBoolean || rhs == StaticType::kBoolean ||
      lhs == StaticType::kIdList || rhs == StaticType::kIdList;
  if (!equality && unorderable) {
    return IllTyped(expr, std::string("cannot order ") + StaticTypeName(lhs) +
                              " against " + StaticTypeName(rhs));
  }
  if (Unconstrained(lhs) || Unconstrained(rhs)) return StaticType::kBoolean;
  if (unorderable) {
    // Only = and <> are meaningful, and only between equal types.
    if (lhs != rhs) {
      return IllTyped(expr, std::string(StaticTypeName(lhs)) + " and " +
                                StaticTypeName(rhs) + " only support = "
                                "and <> between equal types");
    }
    return StaticType::kBoolean;
  }
  const bool comparable =
      lhs == rhs || (IsNumeric(lhs) && IsNumeric(rhs));
  if (!comparable && !equality) {
    return IllTyped(expr, std::string("cannot order ") +
                              StaticTypeName(lhs) + " against " +
                              StaticTypeName(rhs));
  }
  return StaticType::kBoolean;
}

}  // namespace

const char* StaticTypeName(StaticType type) {
  switch (type) {
    case StaticType::kNull:
      return "null";
    case StaticType::kBoolean:
      return "boolean";
    case StaticType::kInteger:
      return "integer";
    case StaticType::kFloat:
      return "float";
    case StaticType::kString:
      return "string";
    case StaticType::kIdList:
      return "id-list";
    case StaticType::kValue:
      return "value";
  }
  return "?";
}

Result<StaticType> CheckExpression(const cypher::ExpressionPtr& expr) {
  if (expr == nullptr) {
    return Status::PlanError("ill-typed predicate: null expression node");
  }
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return LiteralType(expr->literal());
    case ExprKind::kPropertyAccess:
      if (expr->variable().empty() || expr->property_key().empty()) {
        return IllTyped(*expr, "property access needs a variable and a key");
      }
      return StaticType::kValue;
    case ExprKind::kVariable:
      // Bare element references exist only for the semantic analyzer's
      // `a = b` unsatisfiability analysis; the execution layer cannot
      // evaluate them, and the analyzer folds every occurrence away
      // before planning. One reaching this point is a pipeline bug.
      return IllTyped(*expr,
                      "bare variable reference is not executable; it must "
                      "be folded by semantic analysis");
    case ExprKind::kComparison:
      return CheckComparison(*expr);
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor:
    case ExprKind::kNot: {
      // NOT is unary: only the left operand exists.
      std::vector<ExpressionPtr> operands = {expr->left()};
      if (expr->kind() != ExprKind::kNot) operands.push_back(expr->right());
      for (const ExpressionPtr& side : operands) {
        if (side == nullptr) {
          return Status::PlanError(
              "ill-typed predicate: logical operator is missing an operand");
        }
        GRADOOP_ASSIGN_OR_RETURN(StaticType t, CheckExpression(side));
        if (t != StaticType::kBoolean && t != StaticType::kNull &&
            t != StaticType::kValue) {
          return IllTyped(*expr, "logical operand `" + side->ToString() +
                                     "` has type " + StaticTypeName(t) +
                                     ", expected boolean");
        }
      }
      return StaticType::kBoolean;
    }
  }
  return Status::PlanError("ill-typed predicate: unknown expression kind");
}

Status CheckClause(const cypher::CnfClause& clause) {
  if (clause.atoms.empty()) {
    return Status::PlanError("ill-typed predicate: CNF clause has no atoms");
  }
  for (const cypher::ExpressionPtr& atom : clause.atoms) {
    GRADOOP_ASSIGN_OR_RETURN(StaticType t, CheckExpression(atom));
    if (t != StaticType::kBoolean && t != StaticType::kNull &&
        t != StaticType::kValue) {
      return Status::PlanError(
          "ill-typed predicate `" + atom->ToString() + "`: atom has type " +
          StaticTypeName(t) + ", expected boolean");
    }
  }
  return Status::Ok();
}

}  // namespace gradoop::analysis
