#ifndef GRADOOP_ANALYSIS_ANALYZER_H_
#define GRADOOP_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "cypher/ast.h"
#include "cypher/expression.h"
#include "query/graph_statistics.h"
#include "query/match_semantics.h"

namespace gradoop::analysis {

// Configuration for one analysis run.
struct AnalyzerOptions {
  // Enables the unknown-label pass (GQL102). Lint runs without a graph
  // leave it null and skip that pass; everything else is graph-free.
  const query::GraphStatistics* statistics = nullptr;
  // Morphism configuration the query will execute under. It decides the
  // meaning of bare element comparisons: `a = b` between two distinct
  // vertex variables is constant-false under vertex isomorphism but not
  // executable under vertex homomorphism.
  query::MorphismSetting semantics = query::MorphismSetting::Neo4j();
};

// Everything the semantic passes learned about one query.
struct AnalysisResult {
  // Sorted by source position, then code — deterministic for goldens.
  std::vector<Diagnostic> diagnostics;
  // The match set is statically empty (contradictory labels, an
  // unsatisfiable WHERE, or conflicting property constraints). The engine
  // skips planning and returns an empty embedding set.
  bool unsatisfiable = false;
  // WHERE after constant folding: nullptr when it folded to TRUE or was
  // absent, a `false` literal when it folded to FALSE/NULL (so query
  // graphs built from it stay faithful), otherwise the residual
  // expression. Meaningless when HasErrors() — erroneous queries are
  // never executed.
  cypher::ExpressionPtr folded_where;

  bool HasErrors() const;
  // Every error diagnostic in single-line form, newline-separated — the
  // payload of the PlanError the engine returns for a rejected query.
  std::string ErrorSummary() const;
};

// Runs every semantic pass over a parsed query: scope and kind checking,
// variable-length bound sanity, label vocabulary and contradiction
// analysis, constant folding of WHERE under Cypher's ternary logic,
// property-constraint satisfiability, and structural lints (unused
// variables, disconnected patterns). Analysis never fails — problems
// become diagnostics.
AnalysisResult AnalyzeQuery(const cypher::CypherQuery& ast,
                            const AnalyzerOptions& options = {});

}  // namespace gradoop::analysis

#endif  // GRADOOP_ANALYSIS_ANALYZER_H_
