#include "analysis/analyzer.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gradoop::analysis {

namespace {

using cypher::ComparisonOp;
using cypher::ComparisonOpName;
using cypher::CypherQuery;
using cypher::ExprKind;
using cypher::Expression;
using cypher::ExpressionPtr;
using cypher::NodePattern;
using cypher::PatternPath;
using cypher::RelationshipPattern;
using cypher::ReturnItem;
using cypher::SourceSpan;
using epgm::PropertyValue;
using query::MatchSemantics;

// The parser names anonymous pattern elements with a prefix no user
// identifier can start with (see Parser::FreshAnonymousName).
bool IsAnonymous(const std::string& variable) {
  return variable.rfind("  __", 0) == 0;
}

std::string JoinLabels(const std::vector<std::string>& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += "|";
    out += labels[i];
  }
  return out;
}

// Intersection of two label alternations; empty input = unconstrained.
std::vector<std::string> IntersectLabels(const std::vector<std::string>& a,
                                         const std::vector<std::string>& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  std::vector<std::string> out;
  for (const std::string& l : a) {
    if (std::find(b.begin(), b.end(), l) != b.end()) out.push_back(l);
  }
  return out;
}

std::string Quoted(const PropertyValue& value) {
  return value.is_string() ? "'" + value.ToString() + "'" : value.ToString();
}

enum class VarKind { kVertex, kEdge };

struct VarInfo {
  VarKind kind = VarKind::kVertex;
  int occurrences = 0;
  SourceSpan first_span;          // preferably the variable token
  std::vector<std::string> labels;  // running intersection (vertices only)
  bool label_conflict_reported = false;
};

// Ternary constant: engaged = statically known, inner nullopt = NULL.
using Ternary = std::optional<std::optional<bool>>;

// One subtree after folding: either a constant (with a literal expression
// standing in for it) or a residual expression.
struct Folded {
  ExpressionPtr expr;
  Ternary constant;

  bool IsConst() const { return constant.has_value(); }
  bool IsTrue() const { return IsConst() && constant->has_value() && **constant; }
  bool IsFalse() const {
    return IsConst() && constant->has_value() && !**constant;
  }
  bool IsNull() const { return IsConst() && !constant->has_value(); }
};

Folded MakeConst(std::optional<bool> value, SourceSpan span) {
  PropertyValue literal =
      value.has_value() ? PropertyValue(*value) : PropertyValue::Null();
  return {Expression::Literal(std::move(literal), span), Ternary(value)};
}

Folded MakeDynamic(ExpressionPtr expr) { return {std::move(expr), {}}; }

const char* TernaryName(const std::optional<bool>& v) {
  if (!v.has_value()) return "NULL (never matches)";
  return *v ? "true" : "false";
}

// Union-find over variable names, for the disconnected-pattern lint.
class UnionFind {
 public:
  void Add(const std::string& v) { parent_.emplace(v, v); }
  std::string Find(const std::string& v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) {
      parent_.emplace(v, v);
      return v;
    }
    if (it->second == v) return v;
    const std::string root = Find(it->second);
    parent_[v] = root;
    return root;
  }
  void Union(const std::string& a, const std::string& b) {
    parent_[Find(a)] = Find(b);
  }

 private:
  std::map<std::string, std::string> parent_;
};

class Analyzer {
 public:
  Analyzer(const CypherQuery& ast, const AnalyzerOptions& options)
      : ast_(ast), options_(options) {}

  AnalysisResult Run() {
    CollectPattern();
    CheckScopes();
    FoldWhere();
    CheckPropertyConstraints();
    CheckUnusedVariables();
    CheckConnectivity();
    std::stable_sort(result_.diagnostics.begin(), result_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.span.offset != b.span.offset) {
                         return a.span.offset < b.span.offset;
                       }
                       return a.code < b.code;
                     });
    return std::move(result_);
  }

 private:
  void Report(const char* code, Severity severity, std::string message,
              SourceSpan span) {
    result_.diagnostics.push_back(
        {code, severity, std::move(message), span});
  }

  // ---------------------------------------------------------------- pattern

  void CollectPattern() {
    for (const PatternPath& path : ast_.paths) {
      RegisterVertex(path.start);
      for (const auto& [rel, node] : path.steps) {
        RegisterEdge(rel);
        RegisterVertex(node);
      }
    }
  }

  void RegisterVertex(const NodePattern& node) {
    const SourceSpan span =
        node.variable_span.IsKnown() ? node.variable_span : node.span;
    CheckLabelVocabulary(node.labels, /*is_edge=*/false, node.span);
    auto it = vars_.find(node.variable);
    if (it == vars_.end()) {
      VarInfo info;
      info.kind = VarKind::kVertex;
      info.occurrences = 1;
      info.first_span = span;
      info.labels = node.labels;
      vars_.emplace(node.variable, std::move(info));
      return;
    }
    VarInfo& info = it->second;
    if (info.kind == VarKind::kEdge) {
      Report(kCodeVariableKindConflict, Severity::kError,
             "variable '" + node.variable +
                 "' is already an edge and cannot also name a vertex",
             span);
      return;
    }
    ++info.occurrences;
    if (!node.labels.empty()) {
      const std::vector<std::string> merged =
          IntersectLabels(info.labels, node.labels);
      if (merged.empty() && !info.labels.empty() &&
          !info.label_conflict_reported) {
        info.label_conflict_reported = true;
        result_.unsatisfiable = true;
        Report(kCodeLabelContradiction, Severity::kWarning,
               "contradictory label constraints on '" + node.variable +
                   "': no label is both :" + JoinLabels(info.labels) +
                   " and :" + JoinLabels(node.labels) +
                   "; the query matches nothing",
               node.span);
      }
      info.labels = merged;
    }
  }

  void RegisterEdge(const RelationshipPattern& rel) {
    const SourceSpan span =
        rel.variable_span.IsKnown() ? rel.variable_span : rel.span;
    CheckLabelVocabulary(rel.types, /*is_edge=*/true, rel.span);
    if (rel.lower_bound < 0) {
      Report(kCodeInvalidBounds, Severity::kError,
             "variable-length lower bound is negative (" +
                 std::to_string(rel.lower_bound) + ")",
             rel.bounds_span.IsKnown() ? rel.bounds_span : rel.span);
    } else if (rel.upper_bound < rel.lower_bound) {
      Report(kCodeInvalidBounds, Severity::kError,
             "variable-length bounds are reversed (" +
                 std::to_string(rel.lower_bound) + " > " +
                 std::to_string(rel.upper_bound) + ")",
             rel.bounds_span.IsKnown() ? rel.bounds_span : rel.span);
    }
    auto it = vars_.find(rel.variable);
    if (it == vars_.end()) {
      VarInfo info;
      info.kind = VarKind::kEdge;
      info.occurrences = 1;
      info.first_span = span;
      vars_.emplace(rel.variable, std::move(info));
      return;
    }
    if (it->second.kind == VarKind::kVertex) {
      Report(kCodeVariableKindConflict, Severity::kError,
             "variable '" + rel.variable +
                 "' is already a vertex and cannot also name an edge",
             span);
      return;
    }
    // Every edge pattern binds a distinct edge; reusing the variable is an
    // error (unlike vertices, which merge into one query vertex).
    ++it->second.occurrences;
    Report(kCodeEdgeRebound, Severity::kError,
           "edge variable '" + rel.variable + "' is bound more than once",
           span);
  }

  void CheckLabelVocabulary(const std::vector<std::string>& labels,
                            bool is_edge, SourceSpan span) {
    if (options_.statistics == nullptr) return;
    const query::GraphStatistics& stats = *options_.statistics;
    for (const std::string& label : labels) {
      const bool known =
          is_edge ? stats.HasEdgeLabel(label) : stats.HasVertexLabel(label);
      if (known) continue;
      std::string message = std::string(is_edge ? "edge type" : "label") +
                            " ':" + label + "' does not occur in the graph";
      if (const auto suggestion = NearestLabel(label, is_edge)) {
        message += "; did you mean ':" + *suggestion + "'?";
      }
      Report(kCodeUnknownLabel, Severity::kWarning, std::move(message), span);
    }
  }

  // Case-insensitive edit distance ≤ 2 against the graph's vocabulary
  // catches the common label typos (wrong case, a dropped or doubled
  // letter, a transposition counted as two edits). Ties go to the
  // closest candidate, first-seen on equal distance.
  std::optional<std::string> NearestLabel(const std::string& label,
                                          bool is_edge) const {
    auto lower = [](std::string s) {
      for (char& c : s) c = static_cast<char>(std::tolower(c));
      return s;
    };
    const std::string needle = lower(label);
    const std::vector<std::string> known =
        is_edge ? options_.statistics->EdgeLabels()
                : options_.statistics->VertexLabels();
    std::optional<std::string> best;
    size_t best_distance = 3;  // anything further is not a typo
    for (const std::string& candidate : known) {
      const size_t d = EditDistance(needle, lower(candidate));
      if (d < best_distance) {
        best_distance = d;
        best = candidate;
      }
    }
    return best;
  }

  static size_t EditDistance(const std::string& a, const std::string& b) {
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t diagonal = row[0];
      row[0] = i;
      for (size_t j = 1; j <= b.size(); ++j) {
        const size_t up = row[j];
        row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                           diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
        diagonal = up;
      }
    }
    return row[b.size()];
  }

  // ----------------------------------------------------------------- scopes

  void CheckScopes() {
    if (ast_.where != nullptr) {
      CheckExpressionScope(ast_.where);
      ast_.where->CollectVariables(&used_);
    }
    for (const ReturnItem& item : ast_.return_items) {
      used_.insert(item.variable);
      if (!vars_.count(item.variable)) {
        Report(kCodeUndefinedVariable, Severity::kError,
               "RETURN references undefined variable '" + item.variable + "'",
               item.span);
      }
    }
  }

  void CheckExpressionScope(const ExpressionPtr& expr) {
    if (expr == nullptr) return;
    if (expr->kind() == ExprKind::kPropertyAccess ||
        expr->kind() == ExprKind::kVariable) {
      if (!vars_.count(expr->variable())) {
        Report(kCodeUndefinedVariable, Severity::kError,
               "predicate references undefined variable '" +
                   expr->variable() + "'",
               expr->span());
      }
      return;
    }
    CheckExpressionScope(expr->left());
    CheckExpressionScope(expr->right());
  }

  // ---------------------------------------------------------------- folding

  void FoldWhere() {
    if (ast_.where == nullptr) {
      result_.folded_where = nullptr;
      return;
    }
    const Folded folded = FoldPredicate(ast_.where);
    if (!folded.IsConst()) {
      result_.folded_where = folded.expr;
      return;
    }
    if (folded.IsTrue()) {
      result_.folded_where = nullptr;
      Report(kCodeConstantWhere, Severity::kWarning,
             "WHERE is always true and can be removed", ast_.where->span());
      return;
    }
    // Constant false or NULL: WHERE keeps a row only when the predicate is
    // definitely true, so the match set is empty. Keep a false literal so
    // query graphs built from the folded AST preserve the semantics.
    result_.folded_where = Expression::Literal(false, ast_.where->span());
    result_.unsatisfiable = true;
    Report(kCodeConstantWhere, Severity::kWarning,
           std::string("WHERE is always ") + TernaryName(*folded.constant) +
               "; the query matches nothing",
           ast_.where->span());
  }

  Folded FoldPredicate(const ExpressionPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kLiteral:
        // Mirrors EvaluateTernary: a non-boolean literal in predicate
        // position has the NULL truth value.
        if (expr->literal().is_bool()) {
          return {expr, Ternary(std::optional<bool>(
                            expr->literal().bool_value()))};
        }
        return {expr, Ternary(std::optional<bool>())};
      case ExprKind::kPropertyAccess:
        return MakeDynamic(expr);
      case ExprKind::kVariable:
        // `WHERE a` — an element reference has no truth value.
        Report(kCodeElementMisuse, Severity::kError,
               "element reference '" + expr->variable() +
                   "' is not a predicate",
               expr->span());
        return MakeDynamic(expr);
      case ExprKind::kComparison:
        if (expr->left() == nullptr || expr->right() == nullptr) {
          return MakeDynamic(expr);  // malformed hand-built tree
        }
        return FoldComparison(expr);
      case ExprKind::kAnd:
      case ExprKind::kOr:
      case ExprKind::kXor:
        if (expr->left() == nullptr || expr->right() == nullptr) {
          return MakeDynamic(expr);
        }
        return FoldBinary(expr);
      case ExprKind::kNot: {
        if (expr->left() == nullptr) return MakeDynamic(expr);
        const Folded operand = FoldPredicate(expr->left());
        if (operand.IsConst()) {
          if (!operand.constant->has_value()) {
            return MakeConst(std::nullopt, expr->span());
          }
          return MakeConst(!**operand.constant, expr->span());
        }
        if (operand.expr == expr->left()) return MakeDynamic(expr);
        return MakeDynamic(Expression::Not(operand.expr, expr->span()));
      }
    }
    return MakeDynamic(expr);
  }

  Folded FoldBinary(const ExpressionPtr& expr) {
    const Folded l = FoldPredicate(expr->left());
    const Folded r = FoldPredicate(expr->right());
    const ExprKind kind = expr->kind();
    if (l.IsConst() && r.IsConst()) {
      const std::optional<bool> a = *l.constant;
      const std::optional<bool> b = *r.constant;
      // Exactly EvaluateTernary's connective tables.
      std::optional<bool> v;
      if (kind == ExprKind::kAnd) {
        if ((a.has_value() && !*a) || (b.has_value() && !*b)) {
          v = false;
        } else if (a.has_value() && b.has_value()) {
          v = true;
        }
      } else if (kind == ExprKind::kOr) {
        if ((a.has_value() && *a) || (b.has_value() && *b)) {
          v = true;
        } else if (a.has_value() && b.has_value()) {
          v = false;
        }
      } else {  // XOR
        if (a.has_value() && b.has_value()) v = *a != *b;
      }
      return MakeConst(v, expr->span());
    }
    if (l.IsConst() || r.IsConst()) {
      const Folded& c = l.IsConst() ? l : r;
      const Folded& d = l.IsConst() ? r : l;
      if (kind == ExprKind::kAnd) {
        // false AND x == false; true AND x == x; NULL AND x folds only
        // when x is false, which is unknown here — keep the node.
        if (c.IsFalse()) return MakeConst(false, expr->span());
        if (c.IsTrue()) return d;
      } else if (kind == ExprKind::kOr) {
        if (c.IsTrue()) return MakeConst(true, expr->span());
        if (c.IsFalse()) return d;
      } else {  // XOR
        if (c.IsNull()) return MakeConst(std::nullopt, expr->span());
        if (c.IsTrue()) {
          return MakeDynamic(Expression::Not(d.expr, expr->span()));
        }
        return d;  // false XOR x == x (including x = NULL)
      }
    }
    if (l.expr == expr->left() && r.expr == expr->right()) {
      return MakeDynamic(expr);
    }
    switch (kind) {
      case ExprKind::kAnd:
        return MakeDynamic(Expression::And(l.expr, r.expr));
      case ExprKind::kOr:
        return MakeDynamic(Expression::Or(l.expr, r.expr));
      default:
        return MakeDynamic(Expression::Xor(l.expr, r.expr));
    }
  }

  Folded FoldComparison(const ExpressionPtr& expr) {
    const ExpressionPtr& lhs = expr->left();
    const ExpressionPtr& rhs = expr->right();
    if (lhs->kind() == ExprKind::kVariable ||
        rhs->kind() == ExprKind::kVariable) {
      return FoldElementComparison(expr);
    }
    const ComparisonOp op = expr->comparison_op();
    const bool ordering = op != ComparisonOp::kEq && op != ComparisonOp::kNeq;
    // Ordering against a boolean can never be true (PropertyValue carries
    // no boolean ordering); the plan verifier rejects it as ill-typed in
    // debug builds, so the analyzer rejects it in every build.
    if (ordering) {
      for (const ExpressionPtr& side : {lhs, rhs}) {
        if (side->kind() == ExprKind::kLiteral && side->literal().is_bool()) {
          Report(kCodeIllTypedComparison, Severity::kError,
                 "cannot order against boolean " + Quoted(side->literal()),
                 expr->span());
          return MakeDynamic(expr);
        }
      }
    }
    if (lhs->kind() == ExprKind::kLiteral &&
        rhs->kind() == ExprKind::kLiteral) {
      const std::optional<bool> v =
          EvaluateLiteralComparison(op, lhs->literal(), rhs->literal());
      Report(kCodeConstantComparison, Severity::kWarning,
             "comparison of two constants is always " +
                 std::string(TernaryName(v)),
             expr->span());
      return MakeConst(v, expr->span());
    }
    // One side NULL literal: comparisons with NULL are NULL regardless of
    // the other side.
    for (const ExpressionPtr& side : {lhs, rhs}) {
      if (side->kind() == ExprKind::kLiteral && side->literal().is_null()) {
        Report(kCodeConstantComparison, Severity::kWarning,
               "comparison with NULL is always NULL (never matches)",
               expr->span());
        return MakeConst(std::nullopt, expr->span());
      }
    }
    return MakeDynamic(expr);
  }

  // Exactly EvaluateComparison's semantics, on two known values.
  static std::optional<bool> EvaluateLiteralComparison(
      ComparisonOp op, const PropertyValue& lhs, const PropertyValue& rhs) {
    if (lhs.is_null() || rhs.is_null()) return std::nullopt;
    if (op == ComparisonOp::kEq) return lhs == rhs;
    if (op == ComparisonOp::kNeq) return lhs != rhs;
    const std::optional<int> cmp = lhs.Compare(rhs);
    if (!cmp.has_value()) return std::nullopt;
    switch (op) {
      case ComparisonOp::kLt:
        return *cmp < 0;
      case ComparisonOp::kLte:
        return *cmp <= 0;
      case ComparisonOp::kGt:
        return *cmp > 0;
      case ComparisonOp::kGte:
        return *cmp >= 0;
      default:
        return std::nullopt;
    }
  }

  // Bare element comparisons: `a = b`, `a <> b`. Decidable statically
  // under isomorphism (distinct variables never bind the same element) and
  // for kind mismatches; not executable otherwise.
  Folded FoldElementComparison(const ExpressionPtr& expr) {
    const ExpressionPtr& lhs = expr->left();
    const ExpressionPtr& rhs = expr->right();
    if (lhs->kind() != ExprKind::kVariable ||
        rhs->kind() != ExprKind::kVariable) {
      const ExpressionPtr& element =
          lhs->kind() == ExprKind::kVariable ? lhs : rhs;
      Report(kCodeElementMisuse, Severity::kError,
             "cannot compare element '" + element->variable() +
                 "' to a value; did you mean a property of it?",
             expr->span());
      return MakeDynamic(expr);
    }
    const auto lit = vars_.find(lhs->variable());
    const auto rit = vars_.find(rhs->variable());
    if (lit == vars_.end() || rit == vars_.end()) {
      return MakeDynamic(expr);  // undefined variables already reported
    }
    const ComparisonOp op = expr->comparison_op();
    if (op != ComparisonOp::kEq && op != ComparisonOp::kNeq) {
      Report(kCodeElementMisuse, Severity::kError,
             "graph elements cannot be ordered; only = and <> apply to '" +
                 lhs->variable() + "' and '" + rhs->variable() + "'",
             expr->span());
      return MakeDynamic(expr);
    }
    const bool want_equal = op == ComparisonOp::kEq;
    if (lhs->variable() == rhs->variable()) {
      Report(kCodeConstantElementEquality, Severity::kWarning,
             "'" + lhs->variable() + "' compared to itself is always " +
                 (want_equal ? "true" : "false"),
             expr->span());
      return MakeConst(want_equal, expr->span());
    }
    if (lit->second.kind != rit->second.kind) {
      Report(kCodeConstantElementEquality, Severity::kWarning,
             "a vertex and an edge are never equal; '" + lhs->variable() +
                 " " + ComparisonOpName(op) + " " + rhs->variable() +
                 "' is always " + (want_equal ? "false" : "true"),
             expr->span());
      return MakeConst(!want_equal, expr->span());
    }
    const bool is_vertex = lit->second.kind == VarKind::kVertex;
    const MatchSemantics semantics =
        is_vertex ? options_.semantics.vertex : options_.semantics.edge;
    if (semantics == MatchSemantics::kHomomorphism) {
      Report(kCodeElementMisuse, Severity::kError,
             std::string("element equality between '") + lhs->variable() +
                 "' and '" + rhs->variable() + "' is not executable under " +
                 (is_vertex ? "vertex" : "edge") + " homomorphism semantics",
             expr->span());
      return MakeDynamic(expr);
    }
    Report(kCodeConstantElementEquality, Severity::kWarning,
           std::string("under ") + (is_vertex ? "vertex" : "edge") +
               " isomorphism '" + lhs->variable() + "' and '" +
               rhs->variable() + "' bind distinct elements; '" +
               lhs->variable() + " " + ComparisonOpName(op) + " " +
               rhs->variable() + "' is always " +
               (want_equal ? "false" : "true"),
           expr->span());
    return MakeConst(!want_equal, expr->span());
  }

  // ----------------------------------------------- property satisfiability

  struct Constraint {
    ComparisonOp op;
    PropertyValue value;
    SourceSpan span;
  };

  void CheckPropertyConstraints() {
    // Required conjuncts: pattern property maps plus every single-atom CNF
    // clause of the folded WHERE that compares a property to a literal.
    std::map<std::pair<std::string, std::string>, std::vector<Constraint>>
        by_property;
    auto add = [&](const std::string& var, const std::string& key,
                   ComparisonOp op, const PropertyValue& value,
                   SourceSpan span) {
      if (value.is_null()) return;
      by_property[{var, key}].push_back({op, value, span});
    };
    for (const PatternPath& path : ast_.paths) {
      for (const auto& [key, value] : path.start.properties) {
        add(path.start.variable, key, ComparisonOp::kEq, value,
            path.start.span);
      }
      for (const auto& [rel, node] : path.steps) {
        for (const auto& [key, value] : rel.properties) {
          add(rel.variable, key, ComparisonOp::kEq, value, rel.span);
        }
        for (const auto& [key, value] : node.properties) {
          add(node.variable, key, ComparisonOp::kEq, value, node.span);
        }
      }
    }
    if (result_.folded_where != nullptr) {
      const cypher::Cnf cnf = cypher::ToCnf(result_.folded_where);
      if (cnf.clauses.size() > 64) return;  // pathological; skip the pass
      for (const cypher::CnfClause& clause : cnf.clauses) {
        if (clause.atoms.size() != 1) continue;
        const ExpressionPtr& atom = clause.atoms[0];
        if (atom->kind() != ExprKind::kComparison) continue;
        const ExpressionPtr& l = atom->left();
        const ExpressionPtr& r = atom->right();
        if (l->kind() == ExprKind::kPropertyAccess &&
            r->kind() == ExprKind::kLiteral) {
          add(l->variable(), l->property_key(), atom->comparison_op(),
              r->literal(), atom->span());
        } else if (l->kind() == ExprKind::kLiteral &&
                   r->kind() == ExprKind::kPropertyAccess) {
          add(r->variable(), r->property_key(), Mirror(atom->comparison_op()),
              l->literal(), atom->span());
        }
      }
    }
    for (const auto& [property, constraints] : by_property) {
      CheckOneProperty(property.first + "." + property.second, constraints);
    }
  }

  // `lit op prop` rewritten as `prop op' lit`.
  static ComparisonOp Mirror(ComparisonOp op) {
    switch (op) {
      case ComparisonOp::kLt:
        return ComparisonOp::kGt;
      case ComparisonOp::kLte:
        return ComparisonOp::kGte;
      case ComparisonOp::kGt:
        return ComparisonOp::kLt;
      case ComparisonOp::kGte:
        return ComparisonOp::kLte;
      default:
        return op;
    }
  }

  std::string DescribeConstraint(const std::string& property,
                                 const Constraint& c) const {
    return property + " " + ComparisonOpName(c.op) + " " + Quoted(c.value);
  }

  void CheckOneProperty(const std::string& property,
                        const std::vector<Constraint>& constraints) {
    for (size_t i = 0; i < constraints.size(); ++i) {
      for (size_t j = i + 1; j < constraints.size(); ++j) {
        if (Contradicts(constraints[i], constraints[j])) {
          result_.unsatisfiable = true;
          const SourceSpan span =
              constraints[j].span.IsKnown() ? constraints[j].span
                                            : constraints[i].span;
          Report(kCodePropertyContradiction, Severity::kWarning,
                 "conflicting constraints on " + property + ": '" +
                     DescribeConstraint(property, constraints[i]) +
                     "' and '" +
                     DescribeConstraint(property, constraints[j]) +
                     "' cannot both hold; the query matches nothing",
                 span);
          return;  // one report per property
        }
      }
    }
  }

  // True when no single value satisfies both required constraints. Every
  // check is conservative: a comparison that could be NULL at runtime
  // makes its conjunct false, so "incomparable types" contradicts.
  static bool Contradicts(const Constraint& a, const Constraint& b) {
    auto lower_of = [](const Constraint& c) {
      return c.op == ComparisonOp::kGt || c.op == ComparisonOp::kGte;
    };
    auto upper_of = [](const Constraint& c) {
      return c.op == ComparisonOp::kLt || c.op == ComparisonOp::kLte;
    };
    auto strict = [](const Constraint& c) {
      return c.op == ComparisonOp::kLt || c.op == ComparisonOp::kGt;
    };
    // Equality against each requirement of the other constraint.
    auto eq_violates = [&](const PropertyValue& v, const Constraint& c) {
      switch (c.op) {
        case ComparisonOp::kEq:
          return !(v == c.value);
        case ComparisonOp::kNeq:
          return v == c.value;
        default: {
          const std::optional<int> cmp = v.Compare(c.value);
          if (!cmp.has_value()) return true;  // NULL ordering -> false
          switch (c.op) {
            case ComparisonOp::kLt:
              return *cmp >= 0;
            case ComparisonOp::kLte:
              return *cmp > 0;
            case ComparisonOp::kGt:
              return *cmp <= 0;
            case ComparisonOp::kGte:
              return *cmp < 0;
            default:
              return false;
          }
        }
      }
    };
    if (a.op == ComparisonOp::kEq) return eq_violates(a.value, b);
    if (b.op == ComparisonOp::kEq) return eq_violates(b.value, a);
    // Interval emptiness between a lower and an upper bound.
    const Constraint* lo = nullptr;
    const Constraint* hi = nullptr;
    if (lower_of(a) && upper_of(b)) {
      lo = &a;
      hi = &b;
    } else if (lower_of(b) && upper_of(a)) {
      lo = &b;
      hi = &a;
    }
    if (lo == nullptr) return false;  // <> pairs / same-direction bounds
    const std::optional<int> cmp = lo->value.Compare(hi->value);
    // Incomparable bound types: any value ordered against one of them is
    // NULL, so one of the two conjuncts is always false.
    if (!cmp.has_value()) return true;
    if (*cmp > 0) return true;
    return *cmp == 0 && (strict(*lo) || strict(*hi));
  }

  // ------------------------------------------------------- structural lints

  void CheckUnusedVariables() {
    if (ast_.return_all) return;  // RETURN * uses every variable
    for (const auto& [name, info] : vars_) {
      if (IsAnonymous(name) || used_.count(name)) continue;
      // A vertex variable naming several pattern nodes joins them — that
      // is a use even when nothing else references it.
      if (info.kind == VarKind::kVertex && info.occurrences > 1) continue;
      Report(kCodeUnusedVariable, Severity::kWarning,
             std::string(info.kind == VarKind::kVertex ? "vertex" : "edge") +
                 " variable '" + name +
                 "' is never used; an anonymous pattern matches the same",
             info.first_span);
    }
  }

  void CheckConnectivity() {
    if (ast_.paths.size() < 2) return;
    UnionFind uf;
    for (const PatternPath& path : ast_.paths) {
      std::string prev = path.start.variable;
      uf.Add(prev);
      for (const auto& [rel, node] : path.steps) {
        uf.Union(rel.variable, prev);
        uf.Union(node.variable, prev);
        prev = node.variable;
      }
    }
    // A cross predicate (`a.x = b.y`) still correlates the components via
    // a value join, so it counts as a connection for this lint.
    if (ast_.where != nullptr) ConnectComparisons(ast_.where, &uf);
    const std::string first = uf.Find(ast_.paths[0].start.variable);
    for (const PatternPath& path : ast_.paths) {
      if (uf.Find(path.start.variable) != first) {
        Report(kCodeCartesianProduct, Severity::kWarning,
               "pattern is disconnected; the result is the cartesian "
               "product of its components",
               path.span);
        return;
      }
    }
  }

  void ConnectComparisons(const ExpressionPtr& expr, UnionFind* uf) {
    if (expr == nullptr) return;
    if (expr->kind() == ExprKind::kComparison) {
      std::set<std::string> vars;
      expr->CollectVariables(&vars);
      if (vars.size() < 2) return;
      const std::string& first = *vars.begin();
      for (const std::string& v : vars) uf->Union(v, first);
      return;
    }
    ConnectComparisons(expr->left(), uf);
    ConnectComparisons(expr->right(), uf);
  }

  const CypherQuery& ast_;
  const AnalyzerOptions& options_;
  AnalysisResult result_;
  std::map<std::string, VarInfo> vars_;
  std::set<std::string> used_;
};

}  // namespace

bool AnalysisResult::HasErrors() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::string AnalysisResult::ErrorSummary() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::kError) continue;
    if (!out.empty()) out += "\n";
    out += d.ToString();
  }
  return out;
}

AnalysisResult AnalyzeQuery(const cypher::CypherQuery& ast,
                            const AnalyzerOptions& options) {
  return Analyzer(ast, options).Run();
}

}  // namespace gradoop::analysis
