#include "analysis/plan_verifier.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "analysis/type_check.h"

namespace gradoop::analysis {

namespace {

using cypher::QueryEdge;
using cypher::QueryVertex;
using query::EmbeddingMetaData;
using query::EntryType;
using query::PlanNode;
using query::PlanNodePtr;

const char* EntryTypeName(EntryType type) {
  switch (type) {
    case EntryType::kVertex:
      return "vertex";
    case EntryType::kEdge:
      return "edge";
    case EntryType::kPath:
      return "path";
  }
  return "?";
}

// All verifier diagnostics name the offending operator; callers add the
// variable / index detail.
Status Violation(PlanNode::Kind kind, const std::string& detail) {
  return Status::Internal(std::string("PlanVerifier: ") + PlanKindName(kind) +
                          ": " + detail);
}

std::set<std::string> UnionOf(const std::set<std::string>& a,
                              const std::set<std::string>& b) {
  std::set<std::string> out = a;
  out.insert(b.begin(), b.end());
  return out;
}

std::string JoinNames(const std::set<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out.empty() ? "<none>" : out;
}

// The bottom-up verification pass. Carries the query graph and options;
// each Check* method validates one operator kind and returns the column
// layout its subtree produces (meta simulation only runs in exhaustive
// mode — cheap mode passes empty metas through and skips column checks).
class Pass {
 public:
  Pass(const cypher::QueryGraph& qg, VerifyOptions options)
      : qg_(qg), options_(options) {}

  Result<EmbeddingMetaData> VerifyNode(const PlanNodePtr& node, int depth) {
    if (node == nullptr) {
      return Status::Internal("PlanVerifier: null plan node");
    }
    if (depth > kMaxDepth) {
      return Status::Internal(
          "PlanVerifier: plan tree exceeds maximum depth (cycle?)");
    }
    GRADOOP_RETURN_IF_ERROR(CheckCommon(*node));
    switch (node->kind) {
      case PlanNode::Kind::kScanVertices:
        return CheckScanVertices(*node);
      case PlanNode::Kind::kScanEdges:
        return CheckScanEdges(*node);
      case PlanNode::Kind::kJoin:
        return CheckJoin(*node, depth);
      case PlanNode::Kind::kValueJoin:
        return CheckValueJoin(*node, depth);
      case PlanNode::Kind::kExpand:
        return CheckExpand(*node, depth);
      case PlanNode::Kind::kFilter:
        return CheckFilter(*node, depth);
    }
    return Status::Internal("PlanVerifier: unknown plan node kind");
  }

 private:
  // Generous bound: real plans are O(query elements) deep; a cycle in a
  // corrupted tree must not hang the verifier.
  static constexpr int kMaxDepth = 4096;

  // --- invariants shared by every operator ----------------------------

  Status CheckCommon(const PlanNode& node) const {
    if (!std::isfinite(node.estimated_cardinality) ||
        node.estimated_cardinality < 0.0) {
      return Violation(node.kind, "estimated cardinality is not a finite "
                                  "non-negative number");
    }
    if (node.bound_variables.empty()) {
      return Violation(node.kind, "operator binds no variables");
    }
    for (const std::string& var : node.bound_variables) {
      if (qg_.FindVertex(var) == nullptr && qg_.FindEdge(var) == nullptr) {
        return Violation(node.kind, "bound variable `" + var +
                                        "` names no query element");
      }
    }
    for (const std::string& var : node.property_variables) {
      if (!node.bound_variables.contains(var)) {
        return Violation(node.kind,
                         "property variable `" + var + "` is not bound");
      }
    }
    return Status::Ok();
  }

  // Exhaustive-mode validation of a simulated meta data object: every
  // column index in range, no dangling or overlapping id/property
  // columns, and the variable set consistent with the node's
  // bound_variables bookkeeping.
  Status CheckMeta(const PlanNode& node, const EmbeddingMetaData& meta) const {
    std::set<int> id_columns;
    for (const std::string& var : meta.Variables()) {
      const int c = meta.IdColumn(var);
      if (c < 0 || c >= meta.id_column_count()) {
        return Violation(node.kind,
                         "variable `" + var + "` maps to id column " +
                             std::to_string(c) + ", outside [0, " +
                             std::to_string(meta.id_column_count()) + ")");
      }
      if (!id_columns.insert(c).second) {
        return Violation(node.kind, "two variables overlap on id column " +
                                        std::to_string(c) + " (`" + var +
                                        "` collides)");
      }
    }
    std::set<int> property_columns;
    for (const std::string& var : meta.Variables()) {
      for (const std::string& key : qg_.NeededProperties(var)) {
        const int c = meta.PropertyColumn(var, key);
        if (c < 0) continue;  // not projected in this subtree
        if (c >= meta.property_column_count()) {
          return Violation(node.kind, "property " + var + "." + key +
                                          " maps to dangling column " +
                                          std::to_string(c) + ", outside [0, " +
                                          std::to_string(
                                              meta.property_column_count()) +
                                          ")");
        }
        if (!property_columns.insert(c).second) {
          return Violation(node.kind,
                           "two properties overlap on column " +
                               std::to_string(c) + " (" + var + "." + key +
                               " collides)");
        }
      }
    }
    for (const std::string& var : node.bound_variables) {
      if (!meta.HasVariable(var)) {
        return Violation(node.kind, "bound variable `" + var +
                                        "` has no embedding column");
      }
    }
    for (const std::string& var : meta.Variables()) {
      if (!node.bound_variables.contains(var)) {
        return Violation(node.kind, "embedding column for `" + var +
                                        "` is not in bound_variables");
      }
    }
    return Status::Ok();
  }

  Status CheckLeafShape(const PlanNode& node) const {
    if (node.left != nullptr || node.right != nullptr) {
      return Violation(node.kind, "scan operator must be a leaf");
    }
    return Status::Ok();
  }

  Status CheckBoundSet(const PlanNode& node,
                       const std::set<std::string>& expected) const {
    if (node.bound_variables != expected) {
      return Violation(node.kind,
                       "bound_variables {" + JoinNames(node.bound_variables) +
                           "} do not match the operator's bindings {" +
                           JoinNames(expected) + "}");
    }
    return Status::Ok();
  }

  Status CheckPropertySet(const PlanNode& node,
                          const std::set<std::string>& expected) const {
    if (node.property_variables != expected) {
      return Violation(
          node.kind,
          "property_variables {" + JoinNames(node.property_variables) +
              "} do not match the subtree's scans {" + JoinNames(expected) +
              "}");
    }
    return Status::Ok();
  }

  // --- leaves ----------------------------------------------------------

  Result<EmbeddingMetaData> CheckScanVertices(const PlanNode& node) const {
    GRADOOP_RETURN_IF_ERROR(CheckLeafShape(node));
    const int n = static_cast<int>(qg_.vertices().size());
    if (node.element_index < 0 || node.element_index >= n) {
      return Violation(node.kind,
                       "element_index " + std::to_string(node.element_index) +
                           " outside query vertices [0, " + std::to_string(n) +
                           ")");
    }
    const QueryVertex& v = qg_.vertices()[node.element_index];
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(node, {v.variable}));
    GRADOOP_RETURN_IF_ERROR(CheckPropertySet(node, {v.variable}));
    EmbeddingMetaData meta;
    if (!options_.exhaustive) return meta;
    meta.AddIdColumn(v.variable, EntryType::kVertex);
    for (const std::string& key : qg_.NeededProperties(v.variable)) {
      meta.AddPropertyColumn(v.variable, key);
    }
    GRADOOP_RETURN_IF_ERROR(CheckMeta(node, meta));
    return meta;
  }

  Result<EmbeddingMetaData> CheckScanEdges(const PlanNode& node) const {
    GRADOOP_RETURN_IF_ERROR(CheckLeafShape(node));
    const int n = static_cast<int>(qg_.edges().size());
    if (node.element_index < 0 || node.element_index >= n) {
      return Violation(node.kind,
                       "element_index " + std::to_string(node.element_index) +
                           " outside query edges [0, " + std::to_string(n) +
                           ")");
    }
    const QueryEdge& e = qg_.edges()[node.element_index];
    if (e.IsVariableLength()) {
      return Violation(node.kind, "variable-length edge `" + e.variable +
                                      "` must be expanded, not scanned");
    }
    const std::string& src = qg_.vertices()[e.source].variable;
    const std::string& dst = qg_.vertices()[e.target].variable;
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(node, {src, e.variable, dst}));
    GRADOOP_RETURN_IF_ERROR(CheckPropertySet(node, {e.variable}));
    EmbeddingMetaData meta;
    if (!options_.exhaustive) return meta;
    // Mirrors EdgeScanMetaData (pinned by plan_verifier_test).
    meta.AddIdColumn(src, EntryType::kVertex);
    meta.AddIdColumn(e.variable, EntryType::kEdge);
    if (src != dst) meta.AddIdColumn(dst, EntryType::kVertex);
    for (const std::string& key : qg_.NeededProperties(e.variable)) {
      meta.AddPropertyColumn(e.variable, key);
    }
    GRADOOP_RETURN_IF_ERROR(CheckMeta(node, meta));
    return meta;
  }

  // --- inner operators -------------------------------------------------

  Result<EmbeddingMetaData> CheckJoin(const PlanNode& node, int depth) {
    if (node.left == nullptr || node.right == nullptr) {
      return Violation(node.kind, "join needs two inputs");
    }
    GRADOOP_ASSIGN_OR_RETURN(EmbeddingMetaData left,
                             VerifyNode(node.left, depth + 1));
    GRADOOP_ASSIGN_OR_RETURN(EmbeddingMetaData right,
                             VerifyNode(node.right, depth + 1));

    // The join variables must be exactly the variables shared by the two
    // inputs: a missing shared variable would silently drop the id
    // equality the query demands; an extra one is unbound on a side.
    std::set<std::string> join_vars(node.join_variables.begin(),
                                    node.join_variables.end());
    if (join_vars.size() != node.join_variables.size()) {
      return Violation(node.kind, "duplicate join variable");
    }
    std::set<std::string> shared;
    for (const std::string& var : node.left->bound_variables) {
      if (node.right->bound_variables.contains(var)) shared.insert(var);
    }
    if (join_vars != shared) {
      return Violation(node.kind,
                       "join variables {" + JoinNames(join_vars) +
                           "} do not match the inputs' shared variables {" +
                           JoinNames(shared) + "}");
    }
    for (const std::string& var : node.join_variables) {
      // A variable-length edge variable is bound as a PATH column, which
      // has no joinable 8-byte identifier.
      const QueryEdge* qe = qg_.FindEdge(var);
      if (qe != nullptr && qe->IsVariableLength()) {
        return Violation(node.kind, "join variable `" + var +
                                        "` is a path binding");
      }
      if (options_.exhaustive) {
        const int lc = left.IdColumn(var);
        const int rc = right.IdColumn(var);
        if (lc < 0 || rc < 0) {
          return Violation(node.kind,
                           "join variable `" + var +
                               "` lacks an id column on the " +
                               (lc < 0 ? "left" : "right") + " input");
        }
        if (left.TypeOf(var) != right.TypeOf(var)) {
          return Violation(node.kind,
                           "join variable `" + var + "` is a " +
                               EntryTypeName(left.TypeOf(var)) +
                               " on the left but a " +
                               EntryTypeName(right.TypeOf(var)) +
                               " on the right");
        }
        if (left.TypeOf(var) == EntryType::kPath) {
          return Violation(node.kind, "join variable `" + var +
                                          "` is a path binding");
        }
      }
    }
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(
        node, UnionOf(node.left->bound_variables,
                      node.right->bound_variables)));
    GRADOOP_RETURN_IF_ERROR(CheckPropertySet(
        node, UnionOf(node.left->property_variables,
                      node.right->property_variables)));
    if (!options_.exhaustive) return EmbeddingMetaData();
    EmbeddingMetaData merged = EmbeddingMetaData::Merge(left, right);
    GRADOOP_RETURN_IF_ERROR(CheckMerge(node, left, right, merged));
    GRADOOP_RETURN_IF_ERROR(CheckMeta(node, merged));
    return merged;
  }

  Result<EmbeddingMetaData> CheckValueJoin(const PlanNode& node, int depth) {
    if (node.left == nullptr || node.right == nullptr) {
      return Violation(node.kind, "value join needs two inputs");
    }
    GRADOOP_ASSIGN_OR_RETURN(EmbeddingMetaData left,
                             VerifyNode(node.left, depth + 1));
    GRADOOP_ASSIGN_OR_RETURN(EmbeddingMetaData right,
                             VerifyNode(node.right, depth + 1));
    if (node.value_join_keys.empty()) {
      return Violation(node.kind, "value join has no key equalities");
    }
    // A value join enforces no id equality, so its inputs must be
    // disconnected: a shared variable would end up bound twice without
    // the bindings being reconciled.
    for (const std::string& var : node.left->bound_variables) {
      if (node.right->bound_variables.contains(var)) {
        return Violation(node.kind, "inputs share variable `" + var +
                                        "` (requires an id join)");
      }
    }
    for (const auto& [lhs, rhs] : node.value_join_keys) {
      for (const auto& side : {lhs, rhs}) {
        if (side == nullptr ||
            side->kind() != cypher::ExprKind::kPropertyAccess) {
          return Violation(node.kind,
                           "value-join key is not a property access");
        }
      }
      if (!node.left->bound_variables.contains(lhs->variable())) {
        return Violation(node.kind, "left key variable `" + lhs->variable() +
                                        "` is not bound on the left input");
      }
      if (!node.right->bound_variables.contains(rhs->variable())) {
        return Violation(node.kind, "right key variable `" + rhs->variable() +
                                        "` is not bound on the right input");
      }
      if (options_.exhaustive) {
        if (left.PropertyColumn(lhs->variable(), lhs->property_key()) < 0) {
          return Violation(node.kind, "left key " + lhs->ToString() +
                                          " resolves to no projected "
                                          "property column");
        }
        if (right.PropertyColumn(rhs->variable(), rhs->property_key()) < 0) {
          return Violation(node.kind, "right key " + rhs->ToString() +
                                          " resolves to no projected "
                                          "property column");
        }
      }
    }
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(
        node, UnionOf(node.left->bound_variables,
                      node.right->bound_variables)));
    GRADOOP_RETURN_IF_ERROR(CheckPropertySet(
        node, UnionOf(node.left->property_variables,
                      node.right->property_variables)));
    if (!options_.exhaustive) return EmbeddingMetaData();
    EmbeddingMetaData merged = EmbeddingMetaData::Merge(left, right);
    GRADOOP_RETURN_IF_ERROR(CheckMerge(node, left, right, merged));
    GRADOOP_RETURN_IF_ERROR(CheckMeta(node, merged));
    return merged;
  }

  // Merge consistency: column counts add up and the left-hand layout is
  // preserved verbatim (right columns shift by the left counts).
  Status CheckMerge(const PlanNode& node, const EmbeddingMetaData& left,
                    const EmbeddingMetaData& right,
                    const EmbeddingMetaData& merged) const {
    if (merged.id_column_count() !=
        left.id_column_count() + right.id_column_count()) {
      return Violation(node.kind, "merged id column count " +
                                      std::to_string(merged.id_column_count()) +
                                      " != left " +
                                      std::to_string(left.id_column_count()) +
                                      " + right " +
                                      std::to_string(right.id_column_count()));
    }
    if (merged.property_column_count() !=
        left.property_column_count() + right.property_column_count()) {
      return Violation(node.kind, "merged property column count deviates "
                                  "from the sum of its inputs");
    }
    for (const std::string& var : left.Variables()) {
      if (merged.IdColumn(var) != left.IdColumn(var)) {
        return Violation(node.kind, "merge moved left variable `" + var +
                                        "` to a different column");
      }
    }
    for (const std::string& var : right.Variables()) {
      const int expected = left.HasVariable(var)
                               ? left.IdColumn(var)
                               : right.IdColumn(var) + left.id_column_count();
      if (merged.IdColumn(var) != expected) {
        return Violation(node.kind, "merge rebased right variable `" + var +
                                        "` to column " +
                                        std::to_string(merged.IdColumn(var)) +
                                        ", expected " +
                                        std::to_string(expected));
      }
    }
    return Status::Ok();
  }

  Result<EmbeddingMetaData> CheckExpand(const PlanNode& node, int depth) {
    if (node.left == nullptr || node.right != nullptr) {
      return Violation(node.kind, "expand takes exactly one input");
    }
    const int n = static_cast<int>(qg_.edges().size());
    if (node.element_index < 0 || node.element_index >= n) {
      return Violation(node.kind,
                       "element_index " + std::to_string(node.element_index) +
                           " outside query edges [0, " + std::to_string(n) +
                           ")");
    }
    const QueryEdge& e = qg_.edges()[node.element_index];
    if (!e.IsVariableLength()) {
      return Violation(node.kind, "fixed-length edge `" + e.variable +
                                      "` must be scanned, not expanded");
    }
    if (e.lower_bound < 0 || e.upper_bound < e.lower_bound) {
      return Violation(node.kind,
                       "path bounds *" + std::to_string(e.lower_bound) +
                           ".." + std::to_string(e.upper_bound) +
                           " are not 0 <= lower <= upper");
    }
    GRADOOP_ASSIGN_OR_RETURN(EmbeddingMetaData input,
                             VerifyNode(node.left, depth + 1));
    const std::string& src = qg_.vertices()[e.source].variable;
    const std::string& dst = qg_.vertices()[e.target].variable;
    const std::string& start = node.expand_reverse ? dst : src;
    const std::string& end = node.expand_reverse ? src : dst;
    if (!node.left->bound_variables.contains(start)) {
      return Violation(node.kind, "expansion start `" + start +
                                      "` is not bound by the input");
    }
    if (node.left->bound_variables.contains(e.variable)) {
      return Violation(node.kind, "path variable `" + e.variable +
                                      "` is already bound by the input");
    }
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(
        node, UnionOf(node.left->bound_variables, {e.variable, src, dst})));
    GRADOOP_RETURN_IF_ERROR(
        CheckPropertySet(node, node.left->property_variables));
    if (!options_.exhaustive) return EmbeddingMetaData();
    const int start_column = input.IdColumn(start);
    if (start_column < 0) {
      return Violation(node.kind, "expansion start `" + start +
                                      "` has no id column");
    }
    if (input.TypeOf(start) != EntryType::kVertex) {
      return Violation(node.kind,
                       "expansion start `" + start + "` is bound as a " +
                           EntryTypeName(input.TypeOf(start)) +
                           ", expected a vertex");
    }
    EmbeddingMetaData meta = input;
    meta.AddIdColumn(e.variable, EntryType::kPath);
    if (!input.HasVariable(end)) {
      meta.AddIdColumn(end, EntryType::kVertex);
    }
    GRADOOP_RETURN_IF_ERROR(CheckMeta(node, meta));
    return meta;
  }

  Result<EmbeddingMetaData> CheckFilter(const PlanNode& node, int depth) {
    if (node.left == nullptr || node.right != nullptr) {
      return Violation(node.kind, "filter takes exactly one input");
    }
    if (node.clauses.empty()) {
      return Violation(node.kind, "filter has no clauses");
    }
    GRADOOP_ASSIGN_OR_RETURN(EmbeddingMetaData input,
                             VerifyNode(node.left, depth + 1));
    for (const cypher::CnfClause& clause : node.clauses) {
      for (const std::string& var : clause.Variables()) {
        if (!node.left->bound_variables.contains(var)) {
          return Violation(node.kind, "clause " + clause.ToString() +
                                          " references unbound variable `" +
                                          var + "`");
        }
        if (!node.left->property_variables.contains(var)) {
          return Violation(node.kind,
                           "clause " + clause.ToString() + " reads `" + var +
                               "` before its scan's properties are present");
        }
      }
      if (!options_.exhaustive) continue;
      GRADOOP_RETURN_IF_ERROR(CheckClause(clause));
      std::set<std::pair<std::string, std::string>> accesses;
      for (const cypher::ExpressionPtr& atom : clause.atoms) {
        atom->CollectPropertyAccesses(&accesses);
      }
      for (const auto& [var, key] : accesses) {
        if (input.PropertyColumn(var, key) < 0) {
          return Violation(node.kind, "property " + var + "." + key +
                                          " is not projected in the subtree");
        }
      }
    }
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(node, node.left->bound_variables));
    GRADOOP_RETURN_IF_ERROR(
        CheckPropertySet(node, node.left->property_variables));
    return input;
  }

  const cypher::QueryGraph& qg_;
  VerifyOptions options_;
};

}  // namespace

const char* PlanKindName(query::PlanNode::Kind kind) {
  switch (kind) {
    case PlanNode::Kind::kScanVertices:
      return "ScanVertices";
    case PlanNode::Kind::kScanEdges:
      return "ScanEdges";
    case PlanNode::Kind::kJoin:
      return "JoinEmbeddings";
    case PlanNode::Kind::kValueJoin:
      return "ValueJoinEmbeddings";
    case PlanNode::Kind::kExpand:
      return "ExpandEmbeddings";
    case PlanNode::Kind::kFilter:
      return "SelectEmbeddings";
  }
  return "UnknownOperator";
}

PlanVerifier::PlanVerifier(const cypher::QueryGraph& query_graph,
                           VerifyOptions options)
    : query_graph_(query_graph), options_(options) {}

Status PlanVerifier::CheckQueryPredicates() const {
  // Element predicates execute inside the leaf scans (§3.1), so the plan
  // walk never sees them; a zero-variable clause (`WHERE 1 < 'a'`) is
  // replicated into every element's predicate list, which only makes the
  // re-check idempotent.
  for (const QueryVertex& v : query_graph_.vertices()) {
    for (const cypher::CnfClause& clause :
         query_graph_.ElementPredicates(v.variable)) {
      GRADOOP_RETURN_IF_ERROR(CheckClause(clause));
    }
  }
  for (const QueryEdge& e : query_graph_.edges()) {
    for (const cypher::CnfClause& clause :
         query_graph_.ElementPredicates(e.variable)) {
      GRADOOP_RETURN_IF_ERROR(CheckClause(clause));
    }
  }
  for (const cypher::CnfClause& clause : query_graph_.CrossPredicates()) {
    GRADOOP_RETURN_IF_ERROR(CheckClause(clause));
  }
  return Status::Ok();
}

Status PlanVerifier::Verify(const query::PlanNodePtr& plan) const {
  if (options_.exhaustive) {
    GRADOOP_RETURN_IF_ERROR(CheckQueryPredicates());
  }
  Pass pass(query_graph_, options_);
  auto result = pass.VerifyNode(plan, 0);
  return result.ok() ? Status::Ok() : result.status();
}

Status PlanVerifier::VerifyComplete(const query::PlanNodePtr& plan) const {
  GRADOOP_RETURN_IF_ERROR(Verify(plan));
  for (const QueryVertex& v : query_graph_.vertices()) {
    if (!plan->bound_variables.contains(v.variable)) {
      return Status::Internal(
          "PlanVerifier: final plan leaves query vertex `" + v.variable +
          "` unbound");
    }
  }
  for (const QueryEdge& e : query_graph_.edges()) {
    if (!plan->bound_variables.contains(e.variable)) {
      return Status::Internal("PlanVerifier: final plan leaves query edge `" +
                              e.variable + "` unbound");
    }
  }
  return Status::Ok();
}

Result<query::EmbeddingMetaData> PlanVerifier::SimulateMetaData(
    const query::PlanNodePtr& plan) const {
  Pass pass(query_graph_, VerifyOptions::Exhaustive());
  return pass.VerifyNode(plan, 0);
}

Status VerifyPlan(const cypher::QueryGraph& query_graph,
                  const query::PlanNodePtr& plan, VerifyOptions options) {
  return PlanVerifier(query_graph, options).VerifyComplete(plan);
}

Status VerifyCandidatePlan(const cypher::QueryGraph& query_graph,
                           const query::PlanNodePtr& plan,
                           VerifyOptions options) {
  return PlanVerifier(query_graph, options).Verify(plan);
}

}  // namespace gradoop::analysis
