#include "analysis/plan_verifier.h"

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "analysis/type_check.h"
#include "query/exec/interruptibility.h"
#include "query/exec/memory_bound.h"
#include "query/exec/partitioning.h"

namespace gradoop::analysis {

namespace {

using cypher::QueryEdge;
using cypher::QueryVertex;
using query::EmbeddingMetaData;
using query::EntryType;
using query::PlanNode;
using query::PlanNodePtr;

const char* EntryTypeName(EntryType type) {
  switch (type) {
    case EntryType::kVertex:
      return "vertex";
    case EntryType::kEdge:
      return "edge";
    case EntryType::kPath:
      return "path";
  }
  return "?";
}

// All verifier diagnostics name the offending operator; callers add the
// variable / index detail.
Status Violation(PlanNode::Kind kind, const std::string& detail) {
  return Status::Internal(std::string("PlanVerifier: ") + PlanKindName(kind) +
                          ": " + detail);
}

std::set<std::string> UnionOf(const std::set<std::string>& a,
                              const std::set<std::string>& b) {
  std::set<std::string> out = a;
  out.insert(b.begin(), b.end());
  return out;
}

std::string JoinNames(const std::set<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out.empty() ? "<none>" : out;
}

// The bottom-up verification pass over the logical plan. Carries the
// query graph and options; each Check* method validates one operator
// kind. Column layouts are not simulated here — the compiled plan is
// checked separately by VerifyCompiledPlan.
class Pass {
 public:
  Pass(const cypher::QueryGraph& qg, VerifyOptions options)
      : qg_(qg), options_(options) {}

  Status VerifyNode(const PlanNodePtr& node, int depth) {
    if (node == nullptr) {
      return Status::Internal("PlanVerifier: null plan node");
    }
    if (depth > kMaxDepth) {
      return Status::Internal(
          "PlanVerifier: plan tree exceeds maximum depth (cycle?)");
    }
    GRADOOP_RETURN_IF_ERROR(CheckCommon(*node));
    switch (node->kind) {
      case PlanNode::Kind::kScanVertices:
        return CheckScanVertices(*node);
      case PlanNode::Kind::kScanEdges:
        return CheckScanEdges(*node);
      case PlanNode::Kind::kJoin:
        return CheckJoin(*node, depth);
      case PlanNode::Kind::kValueJoin:
        return CheckValueJoin(*node, depth);
      case PlanNode::Kind::kExpand:
        return CheckExpand(*node, depth);
      case PlanNode::Kind::kFilter:
        return CheckFilter(*node, depth);
    }
    return Status::Internal("PlanVerifier: unknown plan node kind");
  }

 private:
  // Generous bound: real plans are O(query elements) deep; a cycle in a
  // corrupted tree must not hang the verifier.
  static constexpr int kMaxDepth = 4096;

  // --- invariants shared by every operator ----------------------------

  Status CheckCommon(const PlanNode& node) const {
    if (!std::isfinite(node.estimated_cardinality) ||
        node.estimated_cardinality < 0.0) {
      return Violation(node.kind, "estimated cardinality is not a finite "
                                  "non-negative number");
    }
    if (node.bound_variables.empty()) {
      return Violation(node.kind, "operator binds no variables");
    }
    for (const std::string& var : node.bound_variables) {
      if (qg_.FindVertex(var) == nullptr && qg_.FindEdge(var) == nullptr) {
        return Violation(node.kind, "bound variable `" + var +
                                        "` names no query element");
      }
    }
    for (const std::string& var : node.property_variables) {
      if (!node.bound_variables.contains(var)) {
        return Violation(node.kind,
                         "property variable `" + var + "` is not bound");
      }
    }
    return Status::Ok();
  }

  Status CheckLeafShape(const PlanNode& node) const {
    if (node.left != nullptr || node.right != nullptr) {
      return Violation(node.kind, "scan operator must be a leaf");
    }
    return Status::Ok();
  }

  Status CheckBoundSet(const PlanNode& node,
                       const std::set<std::string>& expected) const {
    if (node.bound_variables != expected) {
      return Violation(node.kind,
                       "bound_variables {" + JoinNames(node.bound_variables) +
                           "} do not match the operator's bindings {" +
                           JoinNames(expected) + "}");
    }
    return Status::Ok();
  }

  Status CheckPropertySet(const PlanNode& node,
                          const std::set<std::string>& expected) const {
    if (node.property_variables != expected) {
      return Violation(
          node.kind,
          "property_variables {" + JoinNames(node.property_variables) +
              "} do not match the subtree's scans {" + JoinNames(expected) +
              "}");
    }
    return Status::Ok();
  }

  // --- leaves ----------------------------------------------------------

  Status CheckScanVertices(const PlanNode& node) const {
    GRADOOP_RETURN_IF_ERROR(CheckLeafShape(node));
    const int n = static_cast<int>(qg_.vertices().size());
    if (node.element_index < 0 || node.element_index >= n) {
      return Violation(node.kind,
                       "element_index " + std::to_string(node.element_index) +
                           " outside query vertices [0, " + std::to_string(n) +
                           ")");
    }
    const QueryVertex& v = qg_.vertices()[node.element_index];
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(node, {v.variable}));
    GRADOOP_RETURN_IF_ERROR(CheckPropertySet(node, {v.variable}));
    return Status::Ok();
  }

  Status CheckScanEdges(const PlanNode& node) const {
    GRADOOP_RETURN_IF_ERROR(CheckLeafShape(node));
    const int n = static_cast<int>(qg_.edges().size());
    if (node.element_index < 0 || node.element_index >= n) {
      return Violation(node.kind,
                       "element_index " + std::to_string(node.element_index) +
                           " outside query edges [0, " + std::to_string(n) +
                           ")");
    }
    const QueryEdge& e = qg_.edges()[node.element_index];
    if (e.IsVariableLength()) {
      return Violation(node.kind, "variable-length edge `" + e.variable +
                                      "` must be expanded, not scanned");
    }
    const std::string& src = qg_.vertices()[e.source].variable;
    const std::string& dst = qg_.vertices()[e.target].variable;
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(node, {src, e.variable, dst}));
    GRADOOP_RETURN_IF_ERROR(CheckPropertySet(node, {e.variable}));
    return Status::Ok();
  }

  // --- inner operators -------------------------------------------------

  Status CheckJoin(const PlanNode& node, int depth) {
    if (node.left == nullptr || node.right == nullptr) {
      return Violation(node.kind, "join needs two inputs");
    }
    GRADOOP_RETURN_IF_ERROR(VerifyNode(node.left, depth + 1));
    GRADOOP_RETURN_IF_ERROR(VerifyNode(node.right, depth + 1));

    // The join variables must be exactly the variables shared by the two
    // inputs: a missing shared variable would silently drop the id
    // equality the query demands; an extra one is unbound on a side.
    std::set<std::string> join_vars(node.join_variables.begin(),
                                    node.join_variables.end());
    if (join_vars.size() != node.join_variables.size()) {
      return Violation(node.kind, "duplicate join variable");
    }
    std::set<std::string> shared;
    for (const std::string& var : node.left->bound_variables) {
      if (node.right->bound_variables.contains(var)) shared.insert(var);
    }
    if (join_vars != shared) {
      return Violation(node.kind,
                       "join variables {" + JoinNames(join_vars) +
                           "} do not match the inputs' shared variables {" +
                           JoinNames(shared) + "}");
    }
    for (const std::string& var : node.join_variables) {
      // A variable-length edge variable is bound as a PATH column, which
      // has no joinable 8-byte identifier.
      const QueryEdge* qe = qg_.FindEdge(var);
      if (qe != nullptr && qe->IsVariableLength()) {
        return Violation(node.kind, "join variable `" + var +
                                        "` is a path binding");
      }
    }
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(
        node, UnionOf(node.left->bound_variables,
                      node.right->bound_variables)));
    GRADOOP_RETURN_IF_ERROR(CheckPropertySet(
        node, UnionOf(node.left->property_variables,
                      node.right->property_variables)));
    return Status::Ok();
  }

  Status CheckValueJoin(const PlanNode& node, int depth) {
    if (node.left == nullptr || node.right == nullptr) {
      return Violation(node.kind, "value join needs two inputs");
    }
    GRADOOP_RETURN_IF_ERROR(VerifyNode(node.left, depth + 1));
    GRADOOP_RETURN_IF_ERROR(VerifyNode(node.right, depth + 1));
    if (node.value_join_keys.empty()) {
      return Violation(node.kind, "value join has no key equalities");
    }
    // A value join enforces no id equality, so its inputs must be
    // disconnected: a shared variable would end up bound twice without
    // the bindings being reconciled.
    for (const std::string& var : node.left->bound_variables) {
      if (node.right->bound_variables.contains(var)) {
        return Violation(node.kind, "inputs share variable `" + var +
                                        "` (requires an id join)");
      }
    }
    for (const auto& [lhs, rhs] : node.value_join_keys) {
      for (const auto& side : {lhs, rhs}) {
        if (side == nullptr ||
            side->kind() != cypher::ExprKind::kPropertyAccess) {
          return Violation(node.kind,
                           "value-join key is not a property access");
        }
      }
      if (!node.left->bound_variables.contains(lhs->variable())) {
        return Violation(node.kind, "left key variable `" + lhs->variable() +
                                        "` is not bound on the left input");
      }
      if (!node.right->bound_variables.contains(rhs->variable())) {
        return Violation(node.kind, "right key variable `" + rhs->variable() +
                                        "` is not bound on the right input");
      }
    }
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(
        node, UnionOf(node.left->bound_variables,
                      node.right->bound_variables)));
    GRADOOP_RETURN_IF_ERROR(CheckPropertySet(
        node, UnionOf(node.left->property_variables,
                      node.right->property_variables)));
    return Status::Ok();
  }

  Status CheckExpand(const PlanNode& node, int depth) {
    if (node.left == nullptr || node.right != nullptr) {
      return Violation(node.kind, "expand takes exactly one input");
    }
    const int n = static_cast<int>(qg_.edges().size());
    if (node.element_index < 0 || node.element_index >= n) {
      return Violation(node.kind,
                       "element_index " + std::to_string(node.element_index) +
                           " outside query edges [0, " + std::to_string(n) +
                           ")");
    }
    const QueryEdge& e = qg_.edges()[node.element_index];
    if (!e.IsVariableLength()) {
      return Violation(node.kind, "fixed-length edge `" + e.variable +
                                      "` must be scanned, not expanded");
    }
    if (e.lower_bound < 0 || e.upper_bound < e.lower_bound) {
      return Violation(node.kind,
                       "path bounds *" + std::to_string(e.lower_bound) +
                           ".." + std::to_string(e.upper_bound) +
                           " are not 0 <= lower <= upper");
    }
    GRADOOP_RETURN_IF_ERROR(VerifyNode(node.left, depth + 1));
    const std::string& src = qg_.vertices()[e.source].variable;
    const std::string& dst = qg_.vertices()[e.target].variable;
    const std::string& start = node.expand_reverse ? dst : src;
    if (!node.left->bound_variables.contains(start)) {
      return Violation(node.kind, "expansion start `" + start +
                                      "` is not bound by the input");
    }
    if (node.left->bound_variables.contains(e.variable)) {
      return Violation(node.kind, "path variable `" + e.variable +
                                      "` is already bound by the input");
    }
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(
        node, UnionOf(node.left->bound_variables, {e.variable, src, dst})));
    GRADOOP_RETURN_IF_ERROR(
        CheckPropertySet(node, node.left->property_variables));
    return Status::Ok();
  }

  Status CheckFilter(const PlanNode& node, int depth) {
    if (node.left == nullptr || node.right != nullptr) {
      return Violation(node.kind, "filter takes exactly one input");
    }
    if (node.clauses.empty()) {
      return Violation(node.kind, "filter has no clauses");
    }
    GRADOOP_RETURN_IF_ERROR(VerifyNode(node.left, depth + 1));
    for (const cypher::CnfClause& clause : node.clauses) {
      for (const std::string& var : clause.Variables()) {
        if (!node.left->bound_variables.contains(var)) {
          return Violation(node.kind, "clause " + clause.ToString() +
                                          " references unbound variable `" +
                                          var + "`");
        }
        if (!node.left->property_variables.contains(var)) {
          return Violation(node.kind,
                           "clause " + clause.ToString() + " reads `" + var +
                               "` before its scan's properties are present");
        }
      }
      if (!options_.exhaustive) continue;
      GRADOOP_RETURN_IF_ERROR(CheckClause(clause));
    }
    GRADOOP_RETURN_IF_ERROR(CheckBoundSet(node, node.left->bound_variables));
    GRADOOP_RETURN_IF_ERROR(
        CheckPropertySet(node, node.left->property_variables));
    return Status::Ok();
  }

  const cypher::QueryGraph& qg_;
  VerifyOptions options_;
};

}  // namespace

const char* PlanKindName(query::PlanNode::Kind kind) {
  switch (kind) {
    case PlanNode::Kind::kScanVertices:
      return "ScanVertices";
    case PlanNode::Kind::kScanEdges:
      return "ScanEdges";
    case PlanNode::Kind::kJoin:
      return "JoinEmbeddings";
    case PlanNode::Kind::kValueJoin:
      return "ValueJoinEmbeddings";
    case PlanNode::Kind::kExpand:
      return "ExpandEmbeddings";
    case PlanNode::Kind::kFilter:
      return "SelectEmbeddings";
  }
  return "UnknownOperator";
}

PlanVerifier::PlanVerifier(const cypher::QueryGraph& query_graph,
                           VerifyOptions options)
    : query_graph_(query_graph), options_(options) {}

Status PlanVerifier::CheckQueryPredicates() const {
  // Element predicates execute inside the leaf scans (§3.1), so the plan
  // walk never sees them; a zero-variable clause (`WHERE 1 < 'a'`) is
  // replicated into every element's predicate list, which only makes the
  // re-check idempotent.
  for (const QueryVertex& v : query_graph_.vertices()) {
    for (const cypher::CnfClause& clause :
         query_graph_.ElementPredicates(v.variable)) {
      GRADOOP_RETURN_IF_ERROR(CheckClause(clause));
    }
  }
  for (const QueryEdge& e : query_graph_.edges()) {
    for (const cypher::CnfClause& clause :
         query_graph_.ElementPredicates(e.variable)) {
      GRADOOP_RETURN_IF_ERROR(CheckClause(clause));
    }
  }
  for (const cypher::CnfClause& clause : query_graph_.CrossPredicates()) {
    GRADOOP_RETURN_IF_ERROR(CheckClause(clause));
  }
  return Status::Ok();
}

Status PlanVerifier::Verify(const query::PlanNodePtr& plan) const {
  if (options_.exhaustive) {
    GRADOOP_RETURN_IF_ERROR(CheckQueryPredicates());
  }
  Pass pass(query_graph_, options_);
  return pass.VerifyNode(plan, 0);
}

Status PlanVerifier::VerifyComplete(const query::PlanNodePtr& plan) const {
  GRADOOP_RETURN_IF_ERROR(Verify(plan));
  for (const QueryVertex& v : query_graph_.vertices()) {
    if (!plan->bound_variables.contains(v.variable)) {
      return Status::Internal(
          "PlanVerifier: final plan leaves query vertex `" + v.variable +
          "` unbound");
    }
  }
  for (const QueryEdge& e : query_graph_.edges()) {
    if (!plan->bound_variables.contains(e.variable)) {
      return Status::Internal("PlanVerifier: final plan leaves query edge `" +
                              e.variable + "` unbound");
    }
  }
  return Status::Ok();
}

Status VerifyPlan(const cypher::QueryGraph& query_graph,
                  const query::PlanNodePtr& plan, VerifyOptions options) {
  return PlanVerifier(query_graph, options).VerifyComplete(plan);
}

Status VerifyCandidatePlan(const cypher::QueryGraph& query_graph,
                           const query::PlanNodePtr& plan,
                           VerifyOptions options) {
  return PlanVerifier(query_graph, options).Verify(plan);
}

// --- compiled plan verification ---------------------------------------

namespace {

using query::exec::ExpandOp;
using query::exec::JoinOp;
using query::exec::PhysicalOperator;
using query::exec::PhysOpKind;
using query::exec::ValueJoinOp;

Status CompiledViolation(const PhysicalOperator& op,
                         const std::string& detail) {
  return Status::Internal(std::string("PlanVerifier: compiled ") + op.name() +
                          ": " + detail);
}

// Internal sanity of one compiled meta data object: id columns in range
// and never shared by two variables, property columns dense and
// resolvable back to their (variable, key).
Status CheckMetaSane(const PhysicalOperator& op,
                     const EmbeddingMetaData& meta) {
  std::set<int> id_columns;
  for (const std::string& var : meta.Variables()) {
    const int c = meta.IdColumn(var);
    if (c < 0 || c >= meta.id_column_count()) {
      return CompiledViolation(
          op, "variable `" + var + "` maps to id column " +
                  std::to_string(c) + ", outside [0, " +
                  std::to_string(meta.id_column_count()) + ")");
    }
    if (!id_columns.insert(c).second) {
      return CompiledViolation(op, "two variables overlap on id column " +
                                       std::to_string(c) + " (`" + var +
                                       "` collides)");
    }
  }
  const auto properties = meta.PropertyColumnsInOrder();
  for (size_t i = 0; i < properties.size(); ++i) {
    const auto& [var, key] = properties[i];
    if (meta.PropertyColumn(var, key) != static_cast<int>(i)) {
      return CompiledViolation(op, "property column " + std::to_string(i) +
                                       " is dangling or duplicated");
    }
  }
  return Status::Ok();
}

// Merge consistency: the parent's layout preserves the left child's
// columns verbatim and rebases the right child's by the left counts
// (shared variables keep the left binding).
Status CheckMergedLayout(const PhysicalOperator& op,
                         const EmbeddingMetaData& left,
                         const EmbeddingMetaData& right,
                         const EmbeddingMetaData& merged) {
  if (merged.id_column_count() !=
      left.id_column_count() + right.id_column_count()) {
    return CompiledViolation(
        op, "merged id column count " +
                std::to_string(merged.id_column_count()) + " != left " +
                std::to_string(left.id_column_count()) + " + right " +
                std::to_string(right.id_column_count()));
  }
  if (merged.property_column_count() !=
      left.property_column_count() + right.property_column_count()) {
    return CompiledViolation(op, "merged property column count deviates "
                                 "from the sum of its inputs");
  }
  for (const std::string& var : left.Variables()) {
    if (merged.IdColumn(var) != left.IdColumn(var)) {
      return CompiledViolation(op, "merge moved left variable `" + var +
                                       "` to a different column");
    }
  }
  for (const std::string& var : right.Variables()) {
    const int expected = left.HasVariable(var)
                             ? left.IdColumn(var)
                             : right.IdColumn(var) + left.id_column_count();
    if (merged.IdColumn(var) != expected) {
      return CompiledViolation(
          op, "merge rebased right variable `" + var + "` to column " +
                  std::to_string(merged.IdColumn(var)) + ", expected " +
                  std::to_string(expected));
    }
  }
  return Status::Ok();
}

// Every property a clause set reads must be a projected column of `meta`.
Status CheckCompiledClauses(const PhysicalOperator& op,
                            const std::vector<cypher::CnfClause>& clauses,
                            const EmbeddingMetaData& meta) {
  for (const cypher::CnfClause& clause : clauses) {
    std::set<std::pair<std::string, std::string>> accesses;
    for (const cypher::ExpressionPtr& atom : clause.atoms) {
      atom->CollectPropertyAccesses(&accesses);
    }
    for (const auto& [var, key] : accesses) {
      if (meta.PropertyColumn(var, key) < 0) {
        return CompiledViolation(op, "clause property " + var + "." + key +
                                         " resolves to no projected column");
      }
    }
  }
  return Status::Ok();
}

Status VerifyCompiledNode(const cypher::QueryGraph& qg,
                          const PhysicalOperator& op, int num_workers,
                          int batch_size, int depth) {
  if (depth > 4096) {
    return Status::Internal(
        "PlanVerifier: compiled plan exceeds maximum depth (cycle?)");
  }
  for (const auto& child : op.children()) {
    if (child == nullptr) {
      return CompiledViolation(op, "null child operator");
    }
    GRADOOP_RETURN_IF_ERROR(
        VerifyCompiledNode(qg, *child, num_workers, batch_size, depth + 1));
  }
  if (!std::isfinite(op.estimated_cardinality()) ||
      op.estimated_cardinality() < 0.0) {
    return CompiledViolation(op, "estimated cardinality is not a finite "
                                 "non-negative number");
  }
  const EmbeddingMetaData& meta = op.output_meta();
  GRADOOP_RETURN_IF_ERROR(CheckMetaSane(op, meta));
  // Every variable the layout binds must name a query element.
  for (const std::string& var : meta.Variables()) {
    if (qg.FindVertex(var) == nullptr && qg.FindEdge(var) == nullptr) {
      return CompiledViolation(op, "column variable `" + var +
                                       "` names no query element");
    }
  }
  GRADOOP_RETURN_IF_ERROR(CheckCompiledClauses(op, op.fused_clauses(), meta));

  // Partitioning claim: whatever the compiler stamped must be re-derivable
  // from the operator kind, keys, strategy and the children's claims. A
  // claim the transfer functions cannot reproduce would let an unsound
  // shuffle elision through, so it fails verification outright.
  if (op.has_output_partitioning()) {
    const query::exec::PartitioningProperty derived =
        query::exec::DerivePartitioning(op);
    if (!(op.output_partitioning() == derived)) {
      return CompiledViolation(
          op, "claimed output partitioning " +
                  op.output_partitioning().ToString() +
                  " is not derivable (transfer function yields " +
                  derived.ToString() + ")");
    }
  }

  // Memory claim: mandatory (admission control and the runtime audit both
  // consume it, so a plan without one never reaches execution) and must be
  // exactly what the transfer functions yield from the operator and the
  // children's claims — a claim the verifier cannot reproduce would let an
  // undersized bound through admission.
  if (!op.has_memory_bound()) {
    return CompiledViolation(op,
                             "missing memory bound claim (plan was not "
                             "annotated by PlanCompiler)");
  }
  const query::exec::MemoryBound derived_mem =
      query::exec::DeriveMemoryBound(op, num_workers);
  if (!(op.memory_bound() == derived_mem)) {
    return CompiledViolation(
        op, "claimed memory bound [" + op.memory_bound().ToString() +
                "] is not derivable (transfer function yields [" +
                derived_mem.ToString() + "])");
  }

  // Batch-layout claim: mandatory like the memory bound (the vectorized
  // kernels materialize exactly this columnar shape, and a tampered
  // layout would make them read id payloads as path-pool offsets) and
  // must be exactly what DeriveBatchLayout yields from the output meta.
  if (!op.has_batch_layout()) {
    return CompiledViolation(op,
                             "missing batch layout claim (plan was not "
                             "annotated by PlanCompiler)");
  }
  const query::exec::BatchLayout derived_layout =
      query::exec::DeriveBatchLayout(meta, batch_size);
  if (!(op.batch_layout() == derived_layout)) {
    return CompiledViolation(
        op, "claimed batch layout [" + op.batch_layout().ToString() +
                "] is not derivable (transfer function yields [" +
                derived_layout.ToString() + "])");
  }

  // Interruptibility claim: mandatory — deadline propagation and the
  // cancellation audit both rely on every kernel loop checkpointing at
  // the claimed interval. An unbounded interval (a loop with no poll,
  // e.g. an Expand recursion or hash-build loop that never checks) is
  // rejected outright; a bounded claim must be exactly what the
  // transfer function yields.
  if (!op.has_interruptibility()) {
    return CompiledViolation(op,
                             "missing interruptibility claim (plan was "
                             "not annotated by PlanCompiler)");
  }
  if (!op.interruptibility().bounded()) {
    return CompiledViolation(
        op,
        "unbounded checkpoint interval [" + op.interruptibility().ToString() +
            "] — a kernel loop processes rows without a cancellation poll");
  }
  const query::exec::Interruptibility derived_poll =
      query::exec::DeriveInterruptibility(op);
  if (!(op.interruptibility() == derived_poll)) {
    return CompiledViolation(
        op, "claimed interruptibility [" + op.interruptibility().ToString() +
                "] is not derivable (transfer function yields [" +
                derived_poll.ToString() + "])");
  }

  switch (op.op_kind()) {
    case PhysOpKind::kVertexScan: {
      if (!op.children().empty()) {
        return CompiledViolation(op, "scan operator must be a leaf");
      }
      if (meta.id_column_count() != 1) {
        return CompiledViolation(op, "vertex scan must bind one id column");
      }
      break;
    }
    case PhysOpKind::kEdgeScan: {
      if (!op.children().empty()) {
        return CompiledViolation(op, "scan operator must be a leaf");
      }
      const auto& scan = static_cast<const query::exec::EdgeScanOp&>(op);
      const int expected = scan.self_loop() ? 2 : 3;
      if (meta.id_column_count() != expected) {
        return CompiledViolation(
            op, "edge scan binds " + std::to_string(meta.id_column_count()) +
                    " id columns, expected " + std::to_string(expected));
      }
      break;
    }
    case PhysOpKind::kJoin: {
      if (op.children().size() != 2) {
        return CompiledViolation(op, "join needs two inputs");
      }
      const auto& join = static_cast<const JoinOp&>(op);
      const EmbeddingMetaData& left = op.children()[0]->output_meta();
      const EmbeddingMetaData& right = op.children()[1]->output_meta();
      if (join.left_columns().size() != join.join_variables().size() ||
          join.right_columns().size() != join.join_variables().size()) {
        return CompiledViolation(op, "key column count does not match the "
                                     "join variables");
      }
      for (size_t i = 0; i < join.join_variables().size(); ++i) {
        const std::string& var = join.join_variables()[i];
        if (left.IdColumn(var) != join.left_columns()[i] ||
            right.IdColumn(var) != join.right_columns()[i]) {
          return CompiledViolation(op, "join variable `" + var +
                                           "` key columns do not match the "
                                           "children's layouts");
        }
        if (left.TypeOf(var) != right.TypeOf(var)) {
          return CompiledViolation(op, "join variable `" + var + "` is a " +
                                           EntryTypeName(left.TypeOf(var)) +
                                           " on the left but a " +
                                           EntryTypeName(right.TypeOf(var)) +
                                           " on the right");
        }
        if (left.TypeOf(var) == EntryType::kPath) {
          return CompiledViolation(op, "join variable `" + var +
                                           "` is a path binding");
        }
      }
      GRADOOP_RETURN_IF_ERROR(CheckMergedLayout(op, left, right, meta));
      // Shuffle elision must be justified: repartition strategy, a
      // non-empty key, and an elided side whose child claims exactly the
      // partitioning the elision relies on.
      if (join.elide_left_shuffle() || join.elide_right_shuffle()) {
        if (join.strategy() != dataflow::JoinStrategy::kRepartition) {
          return CompiledViolation(
              op, "shuffle elision on a non-repartition join");
        }
        if (join.join_variables().empty()) {
          return CompiledViolation(op, "shuffle elision on a cartesian join");
        }
        const bool sides[2] = {join.elide_left_shuffle(),
                               join.elide_right_shuffle()};
        for (int i = 0; i < 2; ++i) {
          if (!sides[i]) continue;
          const auto& child = *op.children()[i];
          if (!child.has_output_partitioning() ||
              !query::exec::ElidesShuffle(
                  child.output_partitioning(),
                  query::exec::PartitionKeyKind::kIdColumns,
                  join.join_variables())) {
            return CompiledViolation(
                op, std::string(i == 0 ? "left" : "right") +
                        " shuffle elided but the input claims " +
                        (child.has_output_partitioning()
                             ? child.output_partitioning().ToString()
                             : std::string("no partitioning")) +
                        ", not hash on the join key");
          }
        }
      }
      break;
    }
    case PhysOpKind::kValueJoin: {
      if (op.children().size() != 2) {
        return CompiledViolation(op, "value join needs two inputs");
      }
      const auto& join = static_cast<const ValueJoinOp&>(op);
      const EmbeddingMetaData& left = op.children()[0]->output_meta();
      const EmbeddingMetaData& right = op.children()[1]->output_meta();
      if (join.left_key_columns().size() != join.right_key_columns().size() ||
          join.left_key_columns().empty()) {
        return CompiledViolation(op, "value join has no key equalities");
      }
      for (int c : join.left_key_columns()) {
        if (c < 0 || c >= left.property_column_count()) {
          return CompiledViolation(op, "left key column " +
                                           std::to_string(c) +
                                           " outside the left layout");
        }
      }
      for (int c : join.right_key_columns()) {
        if (c < 0 || c >= right.property_column_count()) {
          return CompiledViolation(op, "right key column " +
                                           std::to_string(c) +
                                           " outside the right layout");
        }
      }
      GRADOOP_RETURN_IF_ERROR(CheckMergedLayout(op, left, right, meta));
      if (join.elide_left_shuffle() || join.elide_right_shuffle()) {
        if (join.strategy() != dataflow::JoinStrategy::kRepartition) {
          return CompiledViolation(
              op, "shuffle elision on a non-repartition value join");
        }
        const bool sides[2] = {join.elide_left_shuffle(),
                               join.elide_right_shuffle()};
        for (int i = 0; i < 2; ++i) {
          if (!sides[i]) continue;
          const auto& child = *op.children()[i];
          if (!child.has_output_partitioning() ||
              !query::exec::ElidesShuffle(
                  child.output_partitioning(),
                  query::exec::PartitionKeyKind::kPropertyValues,
                  query::exec::ValueKeySideTokens(join.key_descriptions(),
                                                  /*right_side=*/i == 1))) {
            return CompiledViolation(
                op, std::string(i == 0 ? "left" : "right") +
                        " shuffle elided but the input claims " +
                        (child.has_output_partitioning()
                             ? child.output_partitioning().ToString()
                             : std::string("no partitioning")) +
                        ", not hash on the value key");
          }
        }
      }
      break;
    }
    case PhysOpKind::kExpand: {
      if (op.children().size() != 1) {
        return CompiledViolation(op, "expand takes exactly one input");
      }
      const auto& expand = static_cast<const ExpandOp&>(op);
      const EmbeddingMetaData& input = op.children()[0]->output_meta();
      const auto vertex_columns = input.VertexColumns();
      auto is_vertex_column = [&vertex_columns](int c) {
        for (int v : vertex_columns) {
          if (v == c) return true;
        }
        return false;
      };
      if (!is_vertex_column(expand.start_column())) {
        return CompiledViolation(op, "start column " +
                                         std::to_string(
                                             expand.start_column()) +
                                         " is not a vertex column of the "
                                         "input");
      }
      if (expand.bound_end_column() >= 0 &&
          !is_vertex_column(expand.bound_end_column())) {
        return CompiledViolation(op, "bound end column " +
                                         std::to_string(
                                             expand.bound_end_column()) +
                                         " is not a vertex column of the "
                                         "input");
      }
      const int expected = input.id_column_count() +
                           (expand.bound_end_column() >= 0 ? 1 : 2);
      if (meta.id_column_count() != expected) {
        return CompiledViolation(
            op, "expansion appends the wrong number of columns (" +
                    std::to_string(meta.id_column_count()) + " != " +
                    std::to_string(expected) + ")");
      }
      for (const std::string& var : input.Variables()) {
        if (meta.IdColumn(var) != input.IdColumn(var)) {
          return CompiledViolation(op, "expansion moved input variable `" +
                                           var + "` to a different column");
        }
      }
      break;
    }
    case PhysOpKind::kFilter: {
      if (op.children().size() != 1) {
        return CompiledViolation(op, "filter takes exactly one input");
      }
      const EmbeddingMetaData& input = op.children()[0]->output_meta();
      if (meta.id_column_count() != input.id_column_count() ||
          meta.property_column_count() != input.property_column_count()) {
        return CompiledViolation(op, "filter changed the column layout");
      }
      for (const std::string& var : input.Variables()) {
        if (meta.IdColumn(var) != input.IdColumn(var)) {
          return CompiledViolation(op, "filter moved variable `" + var +
                                           "` to a different column");
        }
      }
      const auto& filter = static_cast<const query::exec::FilterOp&>(op);
      GRADOOP_RETURN_IF_ERROR(
          CheckCompiledClauses(op, filter.clauses(), meta));
      break;
    }
  }
  return Status::Ok();
}

}  // namespace

Status VerifyCompiledPlan(const cypher::QueryGraph& query_graph,
                          const query::exec::PhysicalOperator& root,
                          int num_workers, int batch_size) {
  return VerifyCompiledNode(query_graph, root, num_workers, batch_size, 0);
}

}  // namespace gradoop::analysis
