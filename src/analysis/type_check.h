#ifndef GRADOOP_ANALYSIS_TYPE_CHECK_H_
#define GRADOOP_ANALYSIS_TYPE_CHECK_H_

#include <string>

#include "common/result.h"
#include "cypher/expression.h"

namespace gradoop::analysis {

// Static type of an expression subtree. The property graph model is
// schema-free, so a property access types as kValue (any value, possibly
// NULL) until a declared property column narrows it; literals carry their
// value type; predicates are kBoolean.
enum class StaticType {
  kNull,     // the NULL literal
  kBoolean,  // comparison / logical result, boolean literal
  kInteger,
  kFloat,
  kString,
  kIdList,   // variable-length path `via` list
  kValue,    // statically unknown value (schema-free property access)
};

const char* StaticTypeName(StaticType type);

// Folds an expression tree bottom-up and returns its static type, or a
// PlanError when the tree is ill-typed. Rules (mirroring what
// EvaluateTernary / EvaluateValue can actually execute):
//
//  - comparison operands must be value-producing (literal or property
//    access); a comparison/logical operand would hit the evaluator's
//    assert and is rejected here;
//  - ordering comparisons (< <= > >=) require operands whose types can
//    compare: numeric with numeric, string with string; boolean and
//    id-list values only support = and <>; mismatched concrete literal
//    types (e.g. 1 < 'a') are rejected as statically never-true;
//  - logical operands (AND/OR/XOR/NOT and the atoms of a CNF clause) must
//    be boolean-typed: a predicate position holding a non-boolean,
//    non-NULL literal (e.g. WHERE 42) is statically always-NULL and
//    rejected.
//
// NULL operands stay legal everywhere: Cypher's ternary logic gives them
// a defined (NULL) result, and predicates over them simply fail at
// runtime rather than being type errors.
Result<StaticType> CheckExpression(const cypher::ExpressionPtr& expr);

// Checks every atom of a CNF clause in predicate position.
Status CheckClause(const cypher::CnfClause& clause);

}  // namespace gradoop::analysis

#endif  // GRADOOP_ANALYSIS_TYPE_CHECK_H_
