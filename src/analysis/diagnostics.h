#ifndef GRADOOP_ANALYSIS_DIAGNOSTICS_H_
#define GRADOOP_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "cypher/source_span.h"

namespace gradoop::analysis {

// Severity of a semantic diagnostic. Errors describe queries the engine
// refuses to execute; warnings describe queries that execute but are
// almost certainly not what the author meant (statically empty results,
// dead variables, accidental cartesian products).
enum class Severity {
  kWarning,
  kError,
};

const char* SeverityName(Severity severity);

// Stable diagnostic codes. The numeric ranges are part of the contract
// (golden tests and docs/diagnostics.md pin them): GQL0xx are errors,
// GQL1xx are warnings. Codes are never renumbered or reused; retired
// codes stay reserved.
//
// Errors.
inline constexpr char kCodeUndefinedVariable[] = "GQL001";
inline constexpr char kCodeVariableKindConflict[] = "GQL002";
inline constexpr char kCodeEdgeRebound[] = "GQL003";
inline constexpr char kCodeInvalidBounds[] = "GQL004";
inline constexpr char kCodeElementMisuse[] = "GQL005";
inline constexpr char kCodeIllTypedComparison[] = "GQL006";
// Admission control: the plan's static peak-memory bound
// (query/exec/memory_bound.h) exceeds CypherEngine's
// max_query_memory_bytes budget; the query is rejected before execution.
inline constexpr char kCodeMemoryBudgetExceeded[] = "GQL007";
// The query was cancelled (CypherEngine Cancel() handle) or exceeded its
// per-query deadline (set_query_deadline); execution unwound at a
// cancellation checkpoint (docs/cancellation.md).
inline constexpr char kCodeQueryCancelled[] = "GQL008";
// Warnings.
inline constexpr char kCodeUnusedVariable[] = "GQL101";
inline constexpr char kCodeUnknownLabel[] = "GQL102";
inline constexpr char kCodeLabelContradiction[] = "GQL103";
inline constexpr char kCodePropertyContradiction[] = "GQL104";
inline constexpr char kCodeConstantWhere[] = "GQL105";
inline constexpr char kCodeConstantElementEquality[] = "GQL106";
inline constexpr char kCodeCartesianProduct[] = "GQL107";
inline constexpr char kCodeConstantComparison[] = "GQL108";

// One semantic finding, anchored to a source span of the query text.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  std::string message;
  cypher::SourceSpan span;

  // "GQL004 error: ... at 1:14" — the single-line form used in Status
  // messages and test assertions.
  std::string ToString() const;
};

// Renders one diagnostic with the offending source line and a caret
// underline:
//
//   GQL004 error: variable-length bounds are reversed (3 > 1) at 1:14
//     1 | MATCH (a)-[e*3..1]->(b) RETURN *
//       |              ^~~~~
//
// Spans with unknown location (synthesized nodes) render the one-line
// form only. Multi-line spans are clamped to their first line.
std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             const std::string& query_text);

// Renders every diagnostic in order, separated by blank lines.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              const std::string& query_text);

}  // namespace gradoop::analysis

#endif  // GRADOOP_ANALYSIS_DIAGNOSTICS_H_
