#ifndef GRADOOP_LDBC_LDBC_GENERATOR_H_
#define GRADOOP_LDBC_LDBC_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/execution_context.h"
#include "epgm/logical_graph.h"

namespace gradoop::ldbc {

// Parameters of the LDBC-SNB-shaped generator. The defaults at
// scale_factor = 1.0 produce a miniature analogue of the paper's SF 10
// data set (~16k vertices / ~60k edges); scale_factor = 10.0 plays the
// role of SF 100, preserving the paper's 10x size ratio. The generator
// reproduces the two structural properties the paper calls out: power-law
// `knows` degrees and skewed property-value distributions (Zipf first
// names, tags, forum sizes).
struct LdbcConfig {
  double scale_factor = 1.0;
  uint64_t seed = 42;

  // Base entity counts, scaled linearly by scale_factor.
  int persons = 2000;
  int posts = 6000;
  int comments = 8000;
  int forums = 100;
  // Dictionary-sized entities (scaled sub-linearly: sqrt of scale).
  int tags = 100;
  int cities = 50;
  int universities = 20;

  // knows degree distribution: P(d) ~ d^-alpha on [1, max].
  double knows_alpha = 2.2;
  int knows_max_degree = 150;

  // Zipf exponents for skewed choices.
  double first_name_zipf = 1.15;
  double popularity_zipf = 0.8;  // authorship / membership / interest skew

  // Probability that a comment's author is a friend (knows-neighbour) of
  // the parent message's author — reply locality, as in real networks.
  double reply_locality = 0.5;

  int first_name_dictionary = 200;
  double study_at_probability = 0.8;
  int max_interests = 10;
  int max_forum_members = 60;
};

// Driver-side generated elements (before distribution).
struct LdbcElements {
  std::vector<epgm::Vertex> vertices;
  std::vector<epgm::Edge> edges;
};

// Deterministic social-network generator covering every label and edge
// type used by the paper's queries Q1-Q6: Person, City, University, Tag,
// Forum, Post, Comment vertices; knows, hasCreator, replyOf, isLocatedIn,
// hasInterest, studyAt, hasMember, hasModerator edges.
class LdbcGenerator {
 public:
  explicit LdbcGenerator(LdbcConfig config = LdbcConfig());

  // Generates all elements on the driver.
  LdbcElements GenerateElements() const;

  // Generates and distributes a logical graph over `ctx`.
  epgm::LogicalGraph Generate(dataflow::ExecutionContextPtr ctx) const;

  const LdbcConfig& config() const { return config_; }

 private:
  LdbcConfig config_;
};

// Selectivity classes of the paper's parameterized predicates (Appendix):
// persons are filtered by firstName values ranging from highly uncommon to
// very common.
enum class Selectivity {
  kHigh,    // rare name: few persons selected
  kMedium,  // mid-frequency name
  kLow,     // the most common name: many persons selected
};

const char* SelectivityName(Selectivity s);

// Picks a firstName realizing the selectivity class against the actual
// generated Person population.
std::string PickFirstName(const LdbcElements& elements, Selectivity level);

// The first-name dictionary entry at `index` (Zipf rank order).
std::string FirstNameAt(int index);

}  // namespace gradoop::ldbc

#endif  // GRADOOP_LDBC_LDBC_GENERATOR_H_
