#include "ldbc/ldbc_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"

namespace gradoop::ldbc {

namespace {

constexpr const char* kBaseNames[] = {
    "Jan",    "Alice",  "Bob",     "Eve",    "Carol",  "David",  "Frank",
    "Grace",  "Heidi",  "Ivan",    "Judy",   "Ken",    "Laura",  "Mallory",
    "Niaj",   "Olivia", "Peggy",   "Quentin","Rupert", "Sybil",  "Trent",
    "Uma",    "Victor", "Walter",  "Xavier", "Yara",   "Zane",   "Anna",
    "Bernd",  "Clara",  "Dieter",  "Emma",   "Felix",  "Gerda",  "Hans",
    "Inge",   "Jonas",  "Karin",   "Lukas",  "Mia",    "Nils",   "Otto",
    "Paula",  "Rolf",   "Sofia",   "Theo",   "Ulla",   "Vera",   "Wolf",
    "Zoe",
};
constexpr int kNumBaseNames = sizeof(kBaseNames) / sizeof(kBaseNames[0]);

constexpr const char* kLastNames[] = {
    "Smith",   "Mueller", "Schmidt", "Meyer",  "Weber",  "Wagner",
    "Becker",  "Hoffmann","Koch",    "Richter","Klein",  "Wolf",
    "Neumann", "Schwarz", "Braun",   "Krueger","Hofmann","Lange",
    "Werner",  "Krause",
};
constexpr int kNumLastNames = sizeof(kLastNames) / sizeof(kLastNames[0]);

constexpr const char* kTagThemes[] = {
    "music", "sports", "politics", "movies", "science", "travel",
    "food",  "art",    "history",  "coding",
};

}  // namespace

std::string FirstNameAt(int index) {
  if (index < kNumBaseNames) return kBaseNames[index];
  // Extend the dictionary deterministically beyond the base list.
  return std::string(kBaseNames[index % kNumBaseNames]) + "_" +
         std::to_string(index / kNumBaseNames);
}

const char* SelectivityName(Selectivity s) {
  switch (s) {
    case Selectivity::kHigh:
      return "high";
    case Selectivity::kMedium:
      return "medium";
    case Selectivity::kLow:
      return "low";
  }
  return "?";
}

LdbcGenerator::LdbcGenerator(LdbcConfig config) : config_(config) {}

LdbcElements LdbcGenerator::GenerateElements() const {
  const LdbcConfig& cfg = config_;
  Random rng(cfg.seed);
  LdbcElements out;

  const double sf = cfg.scale_factor;
  const int num_persons = std::max(1, static_cast<int>(cfg.persons * sf));
  const int num_posts = std::max(1, static_cast<int>(cfg.posts * sf));
  const int num_comments = std::max(1, static_cast<int>(cfg.comments * sf));
  const int num_forums = std::max(1, static_cast<int>(cfg.forums * sf));
  const double dict_scale = std::sqrt(std::max(1.0, sf));
  const int num_tags = std::max(1, static_cast<int>(cfg.tags * dict_scale));
  const int num_cities =
      std::max(1, static_cast<int>(cfg.cities * dict_scale));
  const int num_unis =
      std::max(1, static_cast<int>(cfg.universities * dict_scale));

  uint64_t next_id = 1;
  auto fresh_id = [&next_id] { return next_id++; };

  // --- vertices ---------------------------------------------------------

  std::vector<uint64_t> person_ids(num_persons);
  for (int i = 0; i < num_persons; ++i) {
    const uint64_t id = fresh_id();
    person_ids[i] = id;
    epgm::Properties props;
    props.Set("firstName",
              FirstNameAt(static_cast<int>(rng.NextZipf(
                  cfg.first_name_dictionary, cfg.first_name_zipf))));
    props.Set("lastName", kLastNames[rng.NextUint64(kNumLastNames)]);
    props.Set("gender", rng.NextBool(0.5) ? "male" : "female");
    props.Set("birthday",
              static_cast<int64_t>(rng.NextInt64(19600101, 20051231)));
    out.vertices.emplace_back(id, "Person", std::move(props));
  }

  std::vector<uint64_t> city_ids(num_cities);
  for (int i = 0; i < num_cities; ++i) {
    const uint64_t id = fresh_id();
    city_ids[i] = id;
    epgm::Properties props;
    props.Set("name", i == 0 ? std::string("Leipzig")
                             : "City_" + std::to_string(i));
    out.vertices.emplace_back(id, "City", std::move(props));
  }

  std::vector<uint64_t> uni_ids(num_unis);
  for (int i = 0; i < num_unis; ++i) {
    const uint64_t id = fresh_id();
    uni_ids[i] = id;
    epgm::Properties props;
    props.Set("name", i == 0 ? std::string("Uni Leipzig")
                             : "Uni_" + std::to_string(i));
    out.vertices.emplace_back(id, "University", std::move(props));
  }

  std::vector<uint64_t> tag_ids(num_tags);
  for (int i = 0; i < num_tags; ++i) {
    const uint64_t id = fresh_id();
    tag_ids[i] = id;
    epgm::Properties props;
    props.Set("name", std::string(kTagThemes[i % 10]) + "_" +
                          std::to_string(i / 10));
    out.vertices.emplace_back(id, "Tag", std::move(props));
  }

  std::vector<uint64_t> forum_ids(num_forums);
  for (int i = 0; i < num_forums; ++i) {
    const uint64_t id = fresh_id();
    forum_ids[i] = id;
    epgm::Properties props;
    props.Set("title", "Forum_" + std::to_string(i));
    out.vertices.emplace_back(id, "Forum", std::move(props));
  }

  // Posts and comments; creationDate is an integer day stamp.
  std::vector<uint64_t> post_ids(num_posts);
  for (int i = 0; i < num_posts; ++i) {
    const uint64_t id = fresh_id();
    post_ids[i] = id;
    epgm::Properties props;
    props.Set("creationDate",
              static_cast<int64_t>(rng.NextInt64(20100101, 20161231)));
    props.Set("content", "post_" + std::to_string(i));
    out.vertices.emplace_back(id, "Post", std::move(props));
  }
  std::vector<uint64_t> comment_ids(num_comments);
  for (int i = 0; i < num_comments; ++i) {
    const uint64_t id = fresh_id();
    comment_ids[i] = id;
    epgm::Properties props;
    props.Set("creationDate",
              static_cast<int64_t>(rng.NextInt64(20100101, 20161231)));
    props.Set("content", "comment_" + std::to_string(i));
    out.vertices.emplace_back(id, "Comment", std::move(props));
  }

  // --- edges ------------------------------------------------------------

  auto add_edge = [&](const std::string& label, uint64_t src, uint64_t dst,
                      epgm::Properties props = {}) {
    out.edges.emplace_back(fresh_id(), label, src, dst, std::move(props));
  };

  // knows: power-law out-degree, Zipf-skewed popularity of targets. The
  // out-adjacency feeds the reply-locality choice below.
  std::unordered_map<uint64_t, std::vector<uint64_t>> knows_out;
  for (int i = 0; i < num_persons; ++i) {
    const uint64_t degree = rng.NextPowerLawDegree(
        1, std::min<uint64_t>(cfg.knows_max_degree, num_persons - 1),
        cfg.knows_alpha);
    std::unordered_set<uint64_t> chosen;
    for (uint64_t d = 0; d < degree; ++d) {
      const int target = static_cast<int>(
          rng.NextZipf(num_persons, cfg.popularity_zipf));
      if (target == i) continue;
      if (!chosen.insert(person_ids[target]).second) continue;
      add_edge("knows", person_ids[i], person_ids[target]);
      knows_out[person_ids[i]].push_back(person_ids[target]);
    }
  }

  // hasCreator: messages point to their (Zipf-active) author. The
  // activity ranking is shifted against the knows-popularity ranking —
  // LDBC's degree and activity skews are not perfectly aligned, and a
  // perfect alignment would square the hub effect (in-degree x message
  // count) in every join over persons.
  auto pick_person = [&] {
    const uint64_t rank = rng.NextZipf(num_persons, cfg.popularity_zipf);
    return person_ids[(rank + num_persons / 2) % num_persons];
  };
  std::unordered_map<uint64_t, uint64_t> author_of;  // message -> person
  for (int i = 0; i < num_posts; ++i) {
    const uint64_t author = pick_person();
    author_of.emplace(post_ids[i], author);
    add_edge("hasCreator", post_ids[i], author);
  }

  // Comments: each replies to a post (50%) or an earlier comment, forming
  // acyclic reply trees rooted at posts. Reply locality: with high
  // probability the commenter is a friend of the parent message's author
  // (people reply within their social neighbourhood), which populates the
  // friend-replied-to-post pattern of Query 3 exactly as LDBC does.
  for (int i = 0; i < num_comments; ++i) {
    uint64_t parent;
    if (i == 0 || rng.NextBool(0.5)) {
      parent = post_ids[rng.NextZipf(num_posts, cfg.popularity_zipf)];
    } else {
      parent = comment_ids[rng.NextUint64(i)];  // strictly earlier comment
    }
    add_edge("replyOf", comment_ids[i], parent);

    uint64_t author = epgm::kInvalidId;
    if (rng.NextBool(cfg.reply_locality)) {
      const uint64_t parent_author = author_of.at(parent);
      auto it = knows_out.find(parent_author);
      if (it != knows_out.end() && !it->second.empty()) {
        author = it->second[rng.NextUint64(it->second.size())];
      }
    }
    if (author == epgm::kInvalidId) author = pick_person();
    author_of.emplace(comment_ids[i], author);
    add_edge("hasCreator", comment_ids[i], author);
  }

  // isLocatedIn: every person lives in a Zipf-skewed city.
  for (int i = 0; i < num_persons; ++i) {
    add_edge("isLocatedIn", person_ids[i],
             city_ids[rng.NextZipf(num_cities, 1.0)]);
  }

  // hasInterest: 1..max_interests Zipf-skewed tags per person.
  for (int i = 0; i < num_persons; ++i) {
    const uint64_t count = 1 + rng.NextUint64(cfg.max_interests);
    std::unordered_set<uint64_t> chosen;
    for (uint64_t k = 0; k < count; ++k) {
      const uint64_t tag = tag_ids[rng.NextZipf(num_tags, 1.0)];
      if (chosen.insert(tag).second) {
        add_edge("hasInterest", person_ids[i], tag);
      }
    }
  }

  // studyAt with classYear.
  for (int i = 0; i < num_persons; ++i) {
    if (!rng.NextBool(cfg.study_at_probability)) continue;
    epgm::Properties props;
    props.Set("classYear", static_cast<int64_t>(rng.NextInt64(2000, 2019)));
    add_edge("studyAt", person_ids[i], uni_ids[rng.NextZipf(num_unis, 1.0)],
             std::move(props));
  }

  // Forums: one moderator, power-law member count.
  for (int i = 0; i < num_forums; ++i) {
    add_edge("hasModerator", forum_ids[i], pick_person());
    const uint64_t members = rng.NextPowerLawDegree(
        2, std::min<uint64_t>(cfg.max_forum_members, num_persons), 1.8);
    std::unordered_set<uint64_t> chosen;
    for (uint64_t m = 0; m < members; ++m) {
      const uint64_t person = pick_person();
      if (chosen.insert(person).second) {
        add_edge("hasMember", forum_ids[i], person);
      }
    }
  }

  return out;
}

epgm::LogicalGraph LdbcGenerator::Generate(
    dataflow::ExecutionContextPtr ctx) const {
  LdbcElements elements = GenerateElements();
  epgm::GraphHead head(0, "SocialNetwork");
  head.properties.Set("scaleFactor", config_.scale_factor);
  return epgm::LogicalGraph::FromVectors(std::move(ctx), std::move(head),
                                         std::move(elements.vertices),
                                         std::move(elements.edges));
}

std::string PickFirstName(const LdbcElements& elements, Selectivity level) {
  // Frequency table over the generated Person population.
  std::map<std::string, int> freq;
  for (const epgm::Vertex& v : elements.vertices) {
    if (v.label != "Person") continue;
    freq[v.properties.Get("firstName").string_value()]++;
  }
  std::vector<std::pair<int, std::string>> by_count;
  for (const auto& [name, count] : freq) by_count.emplace_back(count, name);
  std::sort(by_count.begin(), by_count.end());
  if (by_count.empty()) return "Alice";
  switch (level) {
    case Selectivity::kHigh:
      return by_count.front().second;  // rarest
    case Selectivity::kMedium: {
      // Geometric middle of the frequency range: Zipf counts span orders
      // of magnitude, so the arithmetic median would be nearly as rare as
      // `high` (the paper's medium sits between the extremes in log
      // scale).
      const double target = std::sqrt(
          static_cast<double>(by_count.front().first) *
          static_cast<double>(by_count.back().first));
      const std::string* best = &by_count.front().second;
      double best_delta = 1e300;
      for (const auto& [count, name] : by_count) {
        const double delta =
            std::abs(std::log(static_cast<double>(count)) - std::log(target));
        if (delta < best_delta) {
          best_delta = delta;
          best = &name;
        }
      }
      return *best;
    }
    case Selectivity::kLow:
      return by_count.back().second;  // most common
  }
  return by_count.back().second;
}

}  // namespace gradoop::ldbc
