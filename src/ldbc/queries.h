#ifndef GRADOOP_LDBC_QUERIES_H_
#define GRADOOP_LDBC_QUERIES_H_

#include <string>

namespace gradoop::ldbc {

// The paper's six evaluation queries (Appendix), transcribed verbatim.
// Q1-Q3 are operational (selectivity controlled by the firstName
// parameter); Q4-Q6 are analytical.

// Query 1 - All messages of a person.
inline std::string Query1(const std::string& first_name) {
  return "MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post) "
         "WHERE person.firstName = '" + first_name + "' "
         "RETURN message.creationDate, message.content";
}

// Query 2 - Posts to a person's comments.
inline std::string Query2(const std::string& first_name) {
  return "MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post), "
         "(message)-[:replyOf*0..10]->(post:Post) "
         "WHERE person.firstName = '" + first_name + "' "
         "RETURN message.creationDate, message.content, "
         "post.creationDate, post.content";
}

// Query 3 - Friends that replied to a post.
inline std::string Query3(const std::string& first_name) {
  return "MATCH (p1:Person)-[:knows]->(p2:Person), "
         "(p2)<-[:hasCreator]-(comment:Comment), "
         "(comment)-[:replyOf*1..10]->(post:Post), "
         "(post)-[:hasCreator]->(p1) "
         "WHERE p1.firstName = '" + first_name + "' "
         "RETURN p1.firstName, p1.lastName, "
         "p2.firstName, p2.lastName, post.content";
}

// Query 4 - Person profile.
inline std::string Query4() {
  return "MATCH (person:Person)-[:isLocatedIn]->(city:City), "
         "(person)-[:hasInterest]->(tag:Tag), "
         "(person)-[:studyAt]->(uni:University), "
         "(person)<-[:hasMember|hasModerator]-(forum:Forum) "
         "RETURN person.firstName, person.lastName, "
         "city.name, tag.name, uni.name, forum.title";
}

// Query 5 - Close friends (knows triangle).
inline std::string Query5() {
  return "MATCH (p1:Person)-[:knows]->(p2:Person), "
         "(p2)-[:knows]->(p3:Person), "
         "(p1)-[:knows]->(p3) "
         "RETURN p1.firstName, p1.lastName, "
         "p2.firstName, p2.lastName, p3.firstName, p3.lastName";
}

// Query 6 - Recommendation (shared interests).
inline std::string Query6() {
  return "MATCH (p1:Person)-[:knows]->(p2:Person), "
         "(p1)-[:hasInterest]->(t1:Tag), "
         "(p2)-[:hasInterest]->(t1), "
         "(p2)-[:hasInterest]->(t2:Tag) "
         "RETURN p1.firstName, p1.lastName, t2.name";
}

}  // namespace gradoop::ldbc

#endif  // GRADOOP_LDBC_QUERIES_H_
