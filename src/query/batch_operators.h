#ifndef GRADOOP_QUERY_BATCH_OPERATORS_H_
#define GRADOOP_QUERY_BATCH_OPERATORS_H_

#include <string>
#include <vector>

#include "cypher/query_graph.h"
#include "dataflow/dataset.h"
#include "epgm/elements.h"
#include "query/embedding_batch.h"
#include "query/embedding_meta_data.h"
#include "query/match_semantics.h"
#include "query/operators.h"

namespace gradoop::query {

// A distributed set of columnar embedding batches plus the meta data
// describing the columns — the batch engine's counterpart of
// EmbeddingSet. The meta is identical to the row engine's: the compiler
// resolves one layout, both engines execute it (docs/vectorized.md).
struct BatchSet {
  dataflow::Dataset<EmbeddingBatch> data;
  EmbeddingMetaData meta;
};

// Conversions between the two representations. Both are narrow stages;
// the reconstruction in BatchesToRows is byte-identical to what the row
// kernels would have produced (the differential tests pin this).
BatchSet RowsToBatches(const EmbeddingSet& rows, int batch_size);
EmbeddingSet BatchesToRows(const BatchSet& batches);

// The vectorized kernels below mirror query/operators.h one-to-one:
// same compiled layouts, same predicate/morphism semantics, same
// std::hash-based partition placement (so the partitioning claims and
// GRADOOP_AUDIT_PARTITIONING hold unchanged in batch mode). They differ
// only in processing whole column batches per dataflow record.

// Scan kernels: materialize batches of up to `batch_size` rows directly
// from each element partition (no per-row Embedding is ever built).
BatchSet ScanVerticesBatch(const dataflow::Dataset<epgm::Vertex>& vertices,
                           const cypher::QueryVertex& query_vertex,
                           const std::vector<cypher::CnfClause>& predicates,
                           const EmbeddingMetaData& meta,
                           const std::vector<cypher::CnfClause>& residual,
                           int batch_size);

BatchSet ScanEdgesBatch(const dataflow::Dataset<epgm::Edge>& edges,
                        const cypher::QueryEdge& query_edge,
                        const std::vector<cypher::CnfClause>& predicates,
                        const MorphismSetting& semantics, bool self_loop,
                        const EmbeddingMetaData& meta,
                        const std::vector<cypher::CnfClause>& residual,
                        int batch_size);

// Filter as a tight select-loop: evaluates the clauses over each batch's
// active rows and writes a selection vector — no rows move or copy.
BatchSet SelectBatches(const BatchSet& input,
                       const std::vector<cypher::CnfClause>& clauses);

// Equi-join on id columns: scatters only the selected rows of each batch
// by the row engine's join-key hash, builds per-partition hash tables
// over raw u64 key columns (single-column joins probe without any key
// materialization) and emits merged batches. Elided sides are adopted in
// place and re-audited per row under GRADOOP_AUDIT_PARTITIONING.
BatchSet JoinBatches(const BatchSet& left, const BatchSet& right,
                     const std::vector<int>& left_columns,
                     const std::vector<int>& right_columns,
                     const EmbeddingMetaData& merged_meta,
                     const MorphismSetting& semantics,
                     dataflow::JoinStrategy strategy,
                     const std::vector<cypher::CnfClause>& residual,
                     dataflow::JoinShuffleHints hints, int batch_size);

// Equi-join on property values. NULL-key rows are masked out by a
// selection pass (the row engine's pre-join Filter) before the scatter.
BatchSet ValueJoinBatches(const BatchSet& left, const BatchSet& right,
                          const std::vector<int>& left_key_columns,
                          const std::vector<int>& right_key_columns,
                          const EmbeddingMetaData& merged_meta,
                          const MorphismSetting& semantics,
                          dataflow::JoinStrategy strategy,
                          const std::vector<cypher::CnfClause>& residual,
                          dataflow::JoinShuffleHints hints, int batch_size);

// Variable-length expansion, batch-at-a-time at the boundaries: input
// batches compact to rows, the row engine's bulk frontier iteration runs
// (the traversal is inherently row-dependent), and the emissions
// re-batch. See docs/vectorized.md for why this operator is the
// deliberate exception to end-to-end columnar processing.
BatchSet ExpandBatches(const BatchSet& input,
                       const dataflow::Dataset<epgm::Edge>& edges,
                       int start_column, int bound_end_column,
                       const EmbeddingMetaData& result_meta, int lower_bound,
                       int upper_bound, bool reverse,
                       const MorphismSetting& semantics,
                       const std::vector<cypher::CnfClause>& residual,
                       int batch_size);

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_BATCH_OPERATORS_H_
