#include "query/embedding_batch.h"

#include <cstring>

namespace gradoop::query {

namespace {

uint64_t ReadUint64(const std::string& data, size_t pos) {
  uint64_t v;
  std::memcpy(&v, data.data() + pos, 8);
  return v;
}

uint32_t ReadUint32(const std::string& data, size_t pos) {
  uint32_t v;
  std::memcpy(&v, data.data() + pos, 4);
  return v;
}

void AppendUint32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendUint64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

}  // namespace

std::vector<uint64_t> EmbeddingBatch::PathAt(int column, uint32_t row) const {
  assert(IsPathColumn(column));
  const size_t offset = PayloadAt(column, row);
  const uint32_t len = ReadUint32(cols_->path_pool, offset);
  std::vector<uint64_t> ids(len);
  for (uint32_t i = 0; i < len; ++i) {
    ids[i] = ReadUint64(cols_->path_pool, offset + 4 + 8 * i);
  }
  return ids;
}

epgm::PropertyValue EmbeddingBatch::PropertyAt(int column,
                                               uint32_t row) const {
  const size_t cell =
      static_cast<size_t>(row) * cols_->property_columns + column;
  size_t pos = cols_->prop_offsets[cell];
  auto decoded = epgm::PropertyValue::DecodeFrom(cols_->prop_pool, &pos);
  assert(decoded.ok());
  return std::move(decoded).value();
}

void EmbeddingBatch::PushPath(int column,
                              const std::vector<uint64_t>& via_ids) {
  Columns& cols = MutableColumns();
  const uint64_t offset = cols.path_pool.size();
  AppendUint32(&cols.path_pool, static_cast<uint32_t>(via_ids.size()));
  for (const uint64_t id : via_ids) AppendUint64(&cols.path_pool, id);
  cols.ids[static_cast<size_t>(column)].push_back(offset);
}

void EmbeddingBatch::PushProperty(const epgm::PropertyValue& value) {
  Columns& cols = MutableColumns();
  cols.prop_offsets.push_back(cols.prop_pool.size());
  cols.prop_lens.push_back(static_cast<uint32_t>(value.SerializedSize()));
  value.EncodeTo(&cols.prop_pool);
}

void EmbeddingBatch::PushPropertyEncoded(std::string_view encoded) {
  Columns& cols = MutableColumns();
  cols.prop_offsets.push_back(cols.prop_pool.size());
  cols.prop_lens.push_back(static_cast<uint32_t>(encoded.size()));
  cols.prop_pool.append(encoded);
}

void EmbeddingBatch::CommitRow() {
  Columns& cols = MutableColumns();
  ++cols.rows;
#ifndef NDEBUG
  for (const auto& column : cols.ids) {
    assert(column.size() == cols.rows && "row is missing an id cell");
  }
  assert(cols.prop_offsets.size() ==
             static_cast<size_t>(cols.rows) * cols.property_columns &&
         "row is missing a property cell");
#endif
}

void EmbeddingBatch::Rollback(const RowMark& mark) {
  Columns& cols = MutableColumns();
  for (auto& column : cols.ids) {
    if (column.size() > mark.rows) column.resize(mark.rows);
  }
  cols.path_pool.resize(mark.path_pool_bytes);
  cols.prop_pool.resize(mark.prop_pool_bytes);
  cols.prop_offsets.resize(mark.prop_cells);
  cols.prop_lens.resize(mark.prop_cells);
  cols.rows = mark.rows;
}

void EmbeddingBatch::AppendRowCells(const EmbeddingBatch& src, uint32_t row,
                                    int col_offset) {
  const int src_columns = src.num_id_columns();
  for (int c = 0; c < src_columns; ++c) {
    if (src.IsPathColumn(c)) {
      // Copy the raw path segment into this batch's pool; the new offset
      // replaces the old one, the segment bytes stay verbatim.
      Columns& cols = MutableColumns();
      const size_t offset = src.PayloadAt(c, row);
      const uint32_t len = ReadUint32(src.cols_->path_pool, offset);
      const uint64_t new_offset = cols.path_pool.size();
      cols.path_pool.append(src.cols_->path_pool, offset, 4 + 8 * len);
      cols.ids[static_cast<size_t>(col_offset + c)].push_back(new_offset);
    } else {
      PushId(col_offset + c, src.PayloadAt(c, row));
    }
  }
  // cancellation: one row's cells, bounded by the layout's column count.
  for (int c = 0; c < src.num_property_columns(); ++c) {
    PushPropertyEncoded(src.PropertyCellAt(c, row));
  }
}

void EmbeddingBatch::AppendRows(const EmbeddingBatch& src,
                                const std::vector<uint32_t>& rows) {
  Columns& cols = MutableColumns();
  const Columns& s = *src.cols_;
  const int columns = num_id_columns();
  for (int c = 0; c < columns; ++c) {
    auto& dst_col = cols.ids[static_cast<size_t>(c)];
    const auto& src_col = s.ids[static_cast<size_t>(c)];
    dst_col.reserve(dst_col.size() + rows.size());
    if (IsPathColumn(c)) {
      for (const uint32_t row : rows) {
        const size_t offset = src_col[row];
        const uint32_t len = ReadUint32(s.path_pool, offset);
        dst_col.push_back(cols.path_pool.size());
        cols.path_pool.append(s.path_pool, offset, 4 + 8 * len);
      }
    } else {
      for (const uint32_t row : rows) dst_col.push_back(src_col[row]);
    }
  }
  const int props = cols.property_columns;
  if (props > 0) {
    const size_t cells = rows.size() * static_cast<size_t>(props);
    cols.prop_offsets.reserve(cols.prop_offsets.size() + cells);
    cols.prop_lens.reserve(cols.prop_lens.size() + cells);
    // Pre-size the pool once for the whole gather — appending row by row
    // into a growing megabyte string re-copies it log-many times.
    size_t pool_bytes = 0;
    for (const uint32_t row : rows) {
      const size_t base = static_cast<size_t>(row) * props;
      for (int c = 0; c < props; ++c) pool_bytes += s.prop_lens[base + c];
    }
    cols.prop_pool.reserve(cols.prop_pool.size() + pool_bytes);
    for (const uint32_t row : rows) {
      const size_t base = static_cast<size_t>(row) * props;
      // A row's cells are contiguous in the source pool whenever the
      // source was built row-major (every builder is); copy them with a
      // single append and fall back to per-cell copies otherwise.
      size_t row_bytes = s.prop_lens[base];
      bool contiguous = true;
      for (int c = 1; c < props; ++c) {
        contiguous = contiguous && s.prop_offsets[base + c] ==
                                       s.prop_offsets[base + c - 1] +
                                           s.prop_lens[base + c - 1];
        row_bytes += s.prop_lens[base + c];
      }
      if (contiguous) {
        size_t offset = cols.prop_pool.size();
        for (int c = 0; c < props; ++c) {
          cols.prop_offsets.push_back(offset);
          cols.prop_lens.push_back(s.prop_lens[base + c]);
          offset += s.prop_lens[base + c];
        }
        cols.prop_pool.append(s.prop_pool, s.prop_offsets[base],
                              row_bytes);
      } else {
        for (int c = 0; c < props; ++c) {
          const uint32_t len = s.prop_lens[base + c];
          cols.prop_offsets.push_back(cols.prop_pool.size());
          cols.prop_lens.push_back(len);
          cols.prop_pool.append(s.prop_pool, s.prop_offsets[base + c],
                                len);
        }
      }
    }
  }
  cols.rows += static_cast<uint32_t>(rows.size());
}

void EmbeddingBatch::AppendMergedRows(const EmbeddingBatch& left,
                                      int left_id_columns,
                                      const std::vector<MergePair>& pairs,
                                      size_t offset, size_t count) {
  Columns& cols = MutableColumns();
  const Columns& l = *left.cols_;
  const int columns = num_id_columns();
  for (int c = 0; c < columns; ++c) {
    auto& dst_col = cols.ids[static_cast<size_t>(c)];
    dst_col.reserve(dst_col.size() + count);
    const bool is_path = IsPathColumn(c);
    if (c < left_id_columns) {
      const auto& src_col = l.ids[static_cast<size_t>(c)];
      if (is_path) {
        for (size_t i = 0; i < count; ++i) {
          const size_t off = src_col[pairs[offset + i].left_row];
          const uint32_t len = ReadUint32(l.path_pool, off);
          dst_col.push_back(cols.path_pool.size());
          cols.path_pool.append(l.path_pool, off, 4 + 8 * len);
        }
      } else {
        for (size_t i = 0; i < count; ++i) {
          dst_col.push_back(src_col[pairs[offset + i].left_row]);
        }
      }
    } else {
      const size_t rc = static_cast<size_t>(c - left_id_columns);
      if (is_path) {
        for (size_t i = 0; i < count; ++i) {
          const MergePair& pr = pairs[offset + i];
          const Columns& r = *pr.right->cols_;
          const size_t off = r.ids[rc][pr.right_row];
          const uint32_t len = ReadUint32(r.path_pool, off);
          dst_col.push_back(cols.path_pool.size());
          cols.path_pool.append(r.path_pool, off, 4 + 8 * len);
        }
      } else {
        for (size_t i = 0; i < count; ++i) {
          const MergePair& pr = pairs[offset + i];
          dst_col.push_back(pr.right->cols_->ids[rc][pr.right_row]);
        }
      }
    }
  }
  const int props = cols.property_columns;
  if (props > 0) {
    const int left_props = left.num_property_columns();
    const size_t cells = count * static_cast<size_t>(props);
    cols.prop_offsets.reserve(cols.prop_offsets.size() + cells);
    cols.prop_lens.reserve(cols.prop_lens.size() + cells);
    // One side's cells for one row: contiguous in the source pool for
    // every row-major-built batch — single append; per-cell otherwise.
    auto copy_cells = [&cols](const Columns& src, uint32_t row) {
      const int n = src.property_columns;
      if (n == 0) return;
      const size_t base = static_cast<size_t>(row) * n;
      size_t row_bytes = src.prop_lens[base];
      bool contiguous = true;
      for (int c = 1; c < n; ++c) {
        contiguous = contiguous &&
                     src.prop_offsets[base + c] ==
                         src.prop_offsets[base + c - 1] +
                             src.prop_lens[base + c - 1];
        row_bytes += src.prop_lens[base + c];
      }
      if (contiguous) {
        size_t at = cols.prop_pool.size();
        for (int c = 0; c < n; ++c) {
          cols.prop_offsets.push_back(at);
          cols.prop_lens.push_back(src.prop_lens[base + c]);
          at += src.prop_lens[base + c];
        }
        cols.prop_pool.append(src.prop_pool, src.prop_offsets[base],
                              row_bytes);
      } else {
        for (int c = 0; c < n; ++c) {
          const uint32_t len = src.prop_lens[base + c];
          cols.prop_offsets.push_back(cols.prop_pool.size());
          cols.prop_lens.push_back(len);
          cols.prop_pool.append(src.prop_pool, src.prop_offsets[base + c],
                                len);
        }
      }
    };
    size_t pool_bytes = 0;
    for (size_t i = 0; i < count; ++i) {
      const MergePair& pr = pairs[offset + i];
      const size_t lbase = static_cast<size_t>(pr.left_row) * left_props;
      for (int c = 0; c < left_props; ++c) {
        pool_bytes += l.prop_lens[lbase + c];
      }
      const Columns& r = *pr.right->cols_;
      const size_t rbase =
          static_cast<size_t>(pr.right_row) * r.property_columns;
      for (int c = 0; c < r.property_columns; ++c) {
        pool_bytes += r.prop_lens[rbase + c];
      }
    }
    cols.prop_pool.reserve(cols.prop_pool.size() + pool_bytes);
    for (size_t i = 0; i < count; ++i) {
      const MergePair& pr = pairs[offset + i];
      copy_cells(l, pr.left_row);
      copy_cells(*pr.right->cols_, pr.right_row);
    }
  }
  cols.rows += static_cast<uint32_t>(count);
}

void EmbeddingBatch::AppendRow(const Embedding& embedding) {
  const int columns = num_id_columns();
  assert(embedding.NumIdEntries() == columns);
  for (int c = 0; c < columns; ++c) {
    if (IsPathColumn(c)) {
      assert(embedding.IsPathEntry(c));
      PushPath(c, embedding.PathAt(c));
    } else {
      PushId(c, embedding.IdAt(c));
    }
  }
  // Property cells copy the row's encoded bytes verbatim: walk the
  // length-prefixed prop_data directly instead of decode + re-encode.
  const std::string& prop_data = embedding.prop_data();
  size_t pos = 0;
  int cells = 0;
  while (pos < prop_data.size()) {
    const uint32_t len = ReadUint32(prop_data, pos);
    PushPropertyEncoded(std::string_view(prop_data).substr(pos + 4, len));
    pos += 4 + len;
    ++cells;
  }
  assert(cells == num_property_columns());
  (void)cells;
  CommitRow();
}

Embedding EmbeddingBatch::RowAt(uint32_t row) const {
  Embedding out;
  const int columns = num_id_columns();
  const int props = cols_->property_columns;
  // The row footprint is knowable up front: reserve each byte array
  // exactly once, then transplant path segments and property cells
  // verbatim — no decode/re-encode round trips.
  size_t path_bytes = 0;
  for (int c = 0; c < columns; ++c) {
    if (IsPathColumn(c)) {
      path_bytes +=
          4 + 8 * ReadUint32(cols_->path_pool, PayloadAt(c, row));
    }
  }
  size_t prop_bytes = 0;
  const size_t base = static_cast<size_t>(row) * props;
  for (int c = 0; c < props; ++c) {
    prop_bytes += 4 + cols_->prop_lens[base + c];
  }
  out.Reserve(columns * Embedding::kEntryWidth, path_bytes, prop_bytes);
  for (int c = 0; c < columns; ++c) {
    if (IsPathColumn(c)) {
      const size_t offset = PayloadAt(c, row);
      const uint32_t len = ReadUint32(cols_->path_pool, offset);
      out.AppendPathSegment(
          std::string_view(cols_->path_pool).substr(offset, 4 + 8 * len));
    } else {
      out.AppendId(IdAt(c, row));
    }
  }
  for (int c = 0; c < props; ++c) {
    out.AppendPropertyEncoded(PropertyCellAt(c, row));
  }
  return out;
}

}  // namespace gradoop::query
