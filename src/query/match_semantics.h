#ifndef GRADOOP_QUERY_MATCH_SEMANTICS_H_
#define GRADOOP_QUERY_MATCH_SEMANTICS_H_

namespace gradoop::query {

// Morphism semantics for one element class (§2.2). Isomorphism requires the
// mapping to be injective (no data element bound to two query elements);
// homomorphism allows reuse.
enum class MatchSemantics {
  kIsomorphism,
  kHomomorphism,
};

// Per-operator morphism configuration. Neo4j fixes HOMO vertices / ISO
// edges; Gradoop lets the caller choose both (§2.3), which is what the
// operator signature `g.cypher(q, HOMO, ISO)` expresses.
struct MorphismSetting {
  MatchSemantics vertex = MatchSemantics::kHomomorphism;
  MatchSemantics edge = MatchSemantics::kIsomorphism;

  static MorphismSetting Neo4j() {
    return {MatchSemantics::kHomomorphism, MatchSemantics::kIsomorphism};
  }
  static MorphismSetting FullIsomorphism() {
    return {MatchSemantics::kIsomorphism, MatchSemantics::kIsomorphism};
  }
  static MorphismSetting FullHomomorphism() {
    return {MatchSemantics::kHomomorphism, MatchSemantics::kHomomorphism};
  }
};

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_MATCH_SEMANTICS_H_
