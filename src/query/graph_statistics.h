#ifndef GRADOOP_QUERY_GRAPH_STATISTICS_H_
#define GRADOOP_QUERY_GRAPH_STATISTICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "epgm/logical_graph.h"

namespace gradoop::query {

// Pre-computed statistics about the data graph used by the greedy planner
// to estimate join cardinalities (§3.2): total counts, label
// distributions, and distinct source/target vertex counts overall and per
// edge label.
class GraphStatistics {
 public:
  GraphStatistics() = default;

  // One pass over the element datasets (computed at load time, like
  // Gradoop's statistics files).
  static GraphStatistics Compute(const epgm::LogicalGraph& graph);

  uint64_t vertex_count() const { return vertex_count_; }
  uint64_t edge_count() const { return edge_count_; }

  uint64_t VertexCountByLabel(const std::string& label) const;
  uint64_t EdgeCountByLabel(const std::string& label) const;
  // Label vocabulary of the data graph, for semantic analysis (a query
  // label outside it matches nothing). A label is "known" iff at least one
  // element carries it — the model is schema-free, so data is the schema.
  bool HasVertexLabel(const std::string& label) const {
    return vertex_label_count_.count(label) > 0;
  }
  bool HasEdgeLabel(const std::string& label) const {
    return edge_label_count_.count(label) > 0;
  }
  std::vector<std::string> VertexLabels() const;
  std::vector<std::string> EdgeLabels() const;
  // Sum over an alternation; empty alternation = all.
  uint64_t VertexCountByLabels(const std::vector<std::string>& labels) const;
  uint64_t EdgeCountByLabels(const std::vector<std::string>& labels) const;

  uint64_t distinct_source_count() const { return distinct_source_count_; }
  uint64_t distinct_target_count() const { return distinct_target_count_; }
  uint64_t DistinctSourceByLabel(const std::string& label) const;
  uint64_t DistinctTargetByLabel(const std::string& label) const;
  uint64_t DistinctSourceByLabels(const std::vector<std::string>& labels) const;
  uint64_t DistinctTargetByLabels(const std::vector<std::string>& labels) const;

  std::string ToString() const;

  // Persistence: Gradoop stores pre-computed statistics next to the graph
  // data so the planner can load them without a pass over the graph.
  Status WriteToFile(const std::string& path) const;
  static Result<GraphStatistics> ReadFromFile(const std::string& path);

 private:
  uint64_t vertex_count_ = 0;
  uint64_t edge_count_ = 0;
  std::map<std::string, uint64_t> vertex_label_count_;
  std::map<std::string, uint64_t> edge_label_count_;
  uint64_t distinct_source_count_ = 0;
  uint64_t distinct_target_count_ = 0;
  std::map<std::string, uint64_t> distinct_source_by_label_;
  std::map<std::string, uint64_t> distinct_target_by_label_;
};

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_GRAPH_STATISTICS_H_
