#include "query/operators.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <optional>

namespace gradoop::query {

namespace dfl = ::gradoop::dataflow;

namespace {

// Resolver over a raw element during leaf scans: only the scanned
// variable's properties are in scope.
cypher::ValueResolver ElementResolver(std::string variable,
                                      const epgm::Properties& properties) {
  // `properties` refers to the element being scanned and outlives the
  // resolver's use within one FlatMap call; the variable name is copied.
  return [variable = std::move(variable), &properties](
             const std::string& var,
             const std::string& key) -> epgm::PropertyValue {
    if (var != variable) return epgm::PropertyValue::Null();
    return properties.Get(key);
  };
}

bool EvaluateClauses(const std::vector<cypher::CnfClause>& clauses,
                     const cypher::ValueResolver& resolver) {
  for (const cypher::CnfClause& clause : clauses) {
    if (!cypher::EvaluateClause(clause, resolver)) return false;
  }
  return true;
}

// Residual clauses of a fused filter, evaluated on the produced embedding.
bool PassesResidual(const std::vector<cypher::CnfClause>& residual,
                    const EmbeddingMetaData& meta, const Embedding& e) {
  if (residual.empty()) return true;
  return EvaluateClauses(residual, meta.MakeResolver(e));
}

// Projection keys for one scanned variable, read off the compiled meta.
std::vector<std::string> ProjectedKeys(const EmbeddingMetaData& meta,
                                       const std::string& variable) {
  std::vector<std::string> out;
  for (const auto& [var, key] : meta.PropertyColumnsInOrder()) {
    assert(var == variable && "scan meta projects only the scanned variable");
    (void)variable;
    out.push_back(key);
  }
  return out;
}

// Join key: concatenated 8-byte ids of the given columns.
std::string JoinKeyOf(const Embedding& embedding,
                      const std::vector<int>& columns) {
  std::string key;
  key.reserve(8 * columns.size());
  for (int c : columns) {
    const uint64_t id = embedding.IdAt(c);
    char buf[8];
    std::memcpy(buf, &id, 8);
    key.append(buf, 8);
  }
  return key;
}

bool AllDistinct(std::vector<uint64_t>* ids) {
  std::sort(ids->begin(), ids->end());
  return std::adjacent_find(ids->begin(), ids->end()) == ids->end();
}

}  // namespace

EmbeddingSet SelectAndProjectVertices(
    const dataflow::Dataset<epgm::Vertex>& vertices,
    const cypher::QueryVertex& query_vertex,
    const std::vector<cypher::CnfClause>& predicates,
    const EmbeddingMetaData& meta,
    const std::vector<cypher::CnfClause>& residual) {
  const std::vector<std::string> projected =
      ProjectedKeys(meta, query_vertex.variable);
  auto data = vertices.FlatMap<Embedding>(
      [query_vertex, predicates, projected, meta, residual](
          const epgm::Vertex& v, std::vector<Embedding>* out) {
        if (!query_vertex.MatchesLabel(v.label)) return;
        const auto resolver =
            ElementResolver(query_vertex.variable, v.properties);
        if (!EvaluateClauses(predicates, resolver)) return;
        Embedding e;
        e.AppendId(v.id);
        for (const std::string& key : projected) {
          e.AppendProperty(v.properties.Get(key));
        }
        if (!PassesResidual(residual, meta, e)) return;
        out->push_back(std::move(e));
      },
      "SelectAndProjectVertices");
  return {std::move(data), meta};
}

EmbeddingSet SelectAndProjectEdges(
    const dataflow::Dataset<epgm::Edge>& edges,
    const cypher::QueryEdge& query_edge,
    const std::vector<cypher::CnfClause>& predicates,
    const MorphismSetting& semantics, bool self_loop,
    const EmbeddingMetaData& meta,
    const std::vector<cypher::CnfClause>& residual) {
  assert(!query_edge.IsVariableLength());
  // Under vertex isomorphism a data self-loop cannot bind two distinct
  // query vertices; the scan enforces it so that scan-only plans are
  // already morphism-correct.
  const bool drop_data_self_loops =
      !self_loop && semantics.vertex == MatchSemantics::kIsomorphism;
  const std::vector<std::string> projected =
      ProjectedKeys(meta, query_edge.variable);
  const bool any_direction = query_edge.any_direction;
  auto data = edges.FlatMap<Embedding>(
      [query_edge, predicates, projected, self_loop, any_direction,
       drop_data_self_loops, meta, residual](const epgm::Edge& edge,
                                             std::vector<Embedding>* out) {
        if (!query_edge.MatchesType(edge.label)) return;
        if (self_loop && edge.source_id != edge.target_id) return;
        if (drop_data_self_loops && edge.source_id == edge.target_id) return;
        const auto resolver =
            ElementResolver(query_edge.variable, edge.properties);
        if (!EvaluateClauses(predicates, resolver)) return;
        auto emit = [&](uint64_t src, uint64_t dst) {
          Embedding e;
          e.AppendId(src);
          e.AppendId(edge.id);
          if (!self_loop) e.AppendId(dst);
          for (const std::string& key : projected) {
            e.AppendProperty(edge.properties.Get(key));
          }
          if (!PassesResidual(residual, meta, e)) return;
          out->push_back(std::move(e));
        };
        emit(edge.source_id, edge.target_id);
        // Undirected pattern: the edge also matches flipped (unless it is
        // a data self-loop, which would duplicate).
        if (any_direction && edge.source_id != edge.target_id) {
          emit(edge.target_id, edge.source_id);
        }
      },
      "SelectAndProjectEdges");
  return {std::move(data), meta};
}

bool SatisfiesMorphism(const Embedding& embedding,
                       const EmbeddingMetaData& meta,
                       const MorphismSetting& semantics) {
  if (semantics.vertex == MatchSemantics::kIsomorphism) {
    std::vector<uint64_t> ids;
    for (int c : meta.VertexColumns()) ids.push_back(embedding.IdAt(c));
    if (!AllDistinct(&ids)) return false;
  }
  if (semantics.edge == MatchSemantics::kIsomorphism) {
    std::vector<uint64_t> ids;
    for (int c : meta.EdgeColumns()) ids.push_back(embedding.IdAt(c));
    for (int c : meta.PathColumns()) {
      const std::vector<uint64_t> via = embedding.PathAt(c);
      for (size_t i = 0; i < via.size(); i += 2) ids.push_back(via[i]);
    }
    if (!AllDistinct(&ids)) return false;
  }
  return true;
}

EmbeddingSet JoinEmbeddings(const EmbeddingSet& left,
                            const EmbeddingSet& right,
                            const std::vector<int>& left_columns,
                            const std::vector<int>& right_columns,
                            const EmbeddingMetaData& merged_meta,
                            const MorphismSetting& semantics,
                            dataflow::JoinStrategy strategy,
                            const std::vector<cypher::CnfClause>& residual,
                            dataflow::JoinShuffleHints hints) {
  assert(left_columns.size() == right_columns.size());
  auto data = left.data.HashJoin<Embedding>(
      right.data,
      [left_columns](const Embedding& e) { return JoinKeyOf(e, left_columns); },
      [right_columns](const Embedding& e) {
        return JoinKeyOf(e, right_columns);
      },
      [merged_meta, semantics, residual](const Embedding& l,
                                         const Embedding& r,
                                         std::vector<Embedding>* out) {
        Embedding merged = Embedding::Merge(l, r);
        if (!SatisfiesMorphism(merged, merged_meta, semantics)) return;
        if (!PassesResidual(residual, merged_meta, merged)) return;
        out->push_back(std::move(merged));
      },
      strategy, "JoinEmbeddings", hints);
  return {std::move(data), merged_meta};
}

namespace {

// Value-join key: concatenated encodings of the key properties, or
// nullopt when any key property is NULL (such rows never join).
std::optional<std::string> ValueJoinKeyOf(const Embedding& embedding,
                                          const std::vector<int>& columns) {
  std::string out;
  for (int c : columns) {
    const epgm::PropertyValue value = embedding.PropertyAt(c);
    if (value.is_null()) return std::nullopt;
    // Normalize numerics so 2 and 2.0 join (Cypher equality semantics).
    if (value.is_numeric()) {
      epgm::PropertyValue(value.AsDouble()).EncodeTo(&out);
    } else {
      value.EncodeTo(&out);
    }
  }
  return out;
}

}  // namespace

EmbeddingSet ValueJoinEmbeddings(const EmbeddingSet& left,
                                 const EmbeddingSet& right,
                                 const std::vector<int>& left_key_columns,
                                 const std::vector<int>& right_key_columns,
                                 const EmbeddingMetaData& merged_meta,
                                 const MorphismSetting& semantics,
                                 dataflow::JoinStrategy strategy,
                                 const std::vector<cypher::CnfClause>&
                                     residual,
                                 dataflow::JoinShuffleHints hints) {
  assert(left_key_columns.size() == right_key_columns.size() &&
         !left_key_columns.empty());
  // Rows with NULL keys are dropped before the join (they can never
  // match), keeping the join key total.
  auto left_data = left.data.Filter(
      [left_key_columns](const Embedding& e) {
        return ValueJoinKeyOf(e, left_key_columns).has_value();
      },
      "ValueJoinPruneLeft");
  auto right_data = right.data.Filter(
      [right_key_columns](const Embedding& e) {
        return ValueJoinKeyOf(e, right_key_columns).has_value();
      },
      "ValueJoinPruneRight");
  auto data = left_data.HashJoin<Embedding>(
      right_data,
      [left_key_columns](const Embedding& e) {
        return *ValueJoinKeyOf(e, left_key_columns);
      },
      [right_key_columns](const Embedding& e) {
        return *ValueJoinKeyOf(e, right_key_columns);
      },
      [merged_meta, semantics, residual](const Embedding& l,
                                         const Embedding& r,
                                         std::vector<Embedding>* out) {
        Embedding merged = Embedding::Merge(l, r);
        if (!SatisfiesMorphism(merged, merged_meta, semantics)) return;
        if (!PassesResidual(residual, merged_meta, merged)) return;
        out->push_back(std::move(merged));
      },
      strategy, "ValueJoinEmbeddings", hints);
  return {std::move(data), merged_meta};
}

EmbeddingSet SelectEmbeddings(const EmbeddingSet& input,
                              const std::vector<cypher::CnfClause>& clauses) {
  const EmbeddingMetaData meta = input.meta;
  auto data = input.data.Filter(
      [meta, clauses](const Embedding& e) {
        return EvaluateClauses(clauses, meta.MakeResolver(e));
      },
      "SelectEmbeddings");
  return {std::move(data), input.meta};
}

namespace {

// Working record of one in-flight variable-length expansion.
struct ExpandState {
  Embedding base;             // the input embedding, untouched
  std::vector<uint64_t> via;  // alternating edge/vertex ids walked so far
  uint64_t end = 0;           // current path end vertex

  size_t SerializedSize() const {
    return base.SerializedSize() + sizeof(uint32_t) + 8 * via.size() + 8;
  }
};

}  // namespace

EmbeddingSet ExpandEmbeddings(const EmbeddingSet& input,
                              const dataflow::Dataset<epgm::Edge>& edges,
                              int start_column, int bound_end_column,
                              const EmbeddingMetaData& result_meta,
                              int lower_bound, int upper_bound, bool reverse,
                              const MorphismSetting& semantics,
                              const std::vector<cypher::CnfClause>& residual) {
  assert(start_column >= 0 && "expansion start must be bound");
  const bool end_bound = bound_end_column >= 0;

  // Columns of the *input* layout, read off the input's compiled meta
  // (the result meta additionally holds the fresh path/end columns).
  const std::vector<int> base_edge_columns = input.meta.EdgeColumns();
  const std::vector<int> base_path_columns = input.meta.PathColumns();
  const bool vertex_iso = semantics.vertex == MatchSemantics::kIsomorphism;
  const bool edge_iso = semantics.edge == MatchSemantics::kIsomorphism;

  // Builds the emitted embedding for a completed path of k >= 0 hops.
  auto emit = [=](const ExpandState& state, std::vector<Embedding>* out) {
    std::vector<uint64_t> via = state.via;
    if (reverse) std::reverse(via.begin(), via.end());
    if (end_bound && state.base.IdAt(bound_end_column) != state.end) return;
    Embedding result = state.base;
    result.AppendPath(via);
    if (!end_bound) result.AppendId(state.end);
    if (!SatisfiesMorphism(result, result_meta, semantics)) return;
    if (!PassesResidual(residual, result_meta, result)) return;
    out->push_back(std::move(result));
  };

  // Initial frontier: every input embedding positioned at its start
  // binding with an empty path.
  dataflow::Dataset<ExpandState> frontier = input.data.Map(
      [start_column](const Embedding& e) {
        ExpandState s;
        s.base = e;
        s.end = e.IdAt(start_column);
        return s;
      },
      "ExpandInit");

  std::vector<dataflow::Dataset<Embedding>> emitted;

  if (lower_bound == 0) {
    emitted.push_back(frontier.FlatMap<Embedding>(
        [emit](const ExpandState& s, std::vector<Embedding>* out) {
          emit(s, out);
        },
        "ExpandEmitZero"));
  }

  common::CancellationToken& cancel = input.data.context()->cancellation();
  for (int k = 1; k <= upper_bound; ++k) {
    // Each hop runs a full join stage, so one boundary check per hop
    // bounds the loop's cancel latency to one stage.
    if (cancel.CancelledOrExpired()) break;
    uint64_t frontier_size = 0;
    // cancellation: O(partitions) size walk, no per-record work.
    for (int p = 0; p < frontier.num_partitions(); ++p) {
      frontier_size += frontier.partition(p).size();
    }
    if (frontier_size == 0) break;  // no more valid paths

    // 1-hop expansion: join the frontier with the edge set on the current
    // end vertex, enforcing morphism constraints on the grown path.
    frontier = frontier.HashJoin<ExpandState>(
        edges,
        [](const ExpandState& s) { return s.end; },
        [reverse](const epgm::Edge& e) {
          return reverse ? e.target_id : e.source_id;
        },
        [=](const ExpandState& s, const epgm::Edge& e,
            std::vector<ExpandState>* out) {
          const uint64_t new_end = reverse ? e.source_id : e.target_id;
          if (edge_iso) {
            // The new edge must not repeat within the path nor collide
            // with edges already bound in the base embedding.
            for (size_t i = 0; i < s.via.size(); i += 2) {
              if (s.via[i] == e.id) return;
            }
            if (s.base.ContainsIdAt(e.id, base_edge_columns)) return;
            if (s.base.PathContains(e.id, base_path_columns, true)) return;
          }
          if (vertex_iso) {
            // Path-local distinctness: the new end must not revisit an
            // interior vertex, and must not return to the path's start —
            // unless it is the bound end binding (cycle queries where the
            // path's endpoints are the same query variable). Distinctness
            // of the end against other vertex *columns* is enforced at
            // emission by SatisfiesMorphism; path interiors are free, as
            // they bind no query variable.
            if (new_end == s.end) return;  // data self-loop revisits the end
            for (size_t i = 1; i < s.via.size(); i += 2) {
              if (s.via[i] == new_end) return;
            }
            const bool is_bound_end =
                end_bound && s.base.IdAt(bound_end_column) == new_end;
            if (!is_bound_end && new_end == s.base.IdAt(start_column)) {
              return;
            }
          }
          ExpandState next;
          next.base = s.base;
          next.via = s.via;
          if (!next.via.empty()) {
            // Close the previous hop with its intermediate vertex.
            next.via.push_back(s.end);
          }
          next.via.push_back(e.id);
          next.end = new_end;
          out->push_back(std::move(next));
        },
        dataflow::JoinStrategy::kRepartition, "ExpandStep");

    if (k >= lower_bound) {
      emitted.push_back(frontier.FlatMap<Embedding>(
          [emit](const ExpandState& s, std::vector<Embedding>* out) {
            emit(s, out);
          },
          "ExpandEmit"));
    }
  }
  dataflow::Dataset<Embedding> results =
      dataflow::Dataset<Embedding>::Empty(input.data.context());
  // cancellation: folds at most upper_bound per-hop result handles;
  // Union is a pure partition splice with no per-record work.
  for (const auto& part : emitted) results = results.Union(part);
  return {std::move(results), result_meta};
}

}  // namespace gradoop::query
