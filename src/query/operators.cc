#include "query/operators.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace gradoop::query {

namespace dfl = ::gradoop::dataflow;

namespace {

// Resolver over a raw element during leaf scans: only the scanned
// variable's properties are in scope.
cypher::ValueResolver ElementResolver(std::string variable,
                                      const epgm::Properties& properties) {
  // `properties` refers to the element being scanned and outlives the
  // resolver's use within one FlatMap call; the variable name is copied.
  return [variable = std::move(variable), &properties](
             const std::string& var,
             const std::string& key) -> epgm::PropertyValue {
    if (var != variable) return epgm::PropertyValue::Null();
    return properties.Get(key);
  };
}

bool EvaluateClauses(const std::vector<cypher::CnfClause>& clauses,
                     const cypher::ValueResolver& resolver) {
  for (const cypher::CnfClause& clause : clauses) {
    if (!cypher::EvaluateClause(clause, resolver)) return false;
  }
  return true;
}

// Join key: concatenated 8-byte ids of the given columns.
std::string JoinKeyOf(const Embedding& embedding,
                      const std::vector<int>& columns) {
  std::string key;
  key.reserve(8 * columns.size());
  for (int c : columns) {
    const uint64_t id = embedding.IdAt(c);
    char buf[8];
    std::memcpy(buf, &id, 8);
    key.append(buf, 8);
  }
  return key;
}

bool AllDistinct(std::vector<uint64_t>* ids) {
  std::sort(ids->begin(), ids->end());
  return std::adjacent_find(ids->begin(), ids->end()) == ids->end();
}

}  // namespace

EmbeddingSet SelectAndProjectVertices(
    const dataflow::Dataset<epgm::Vertex>& vertices,
    const cypher::QueryVertex& query_vertex,
    const std::vector<cypher::CnfClause>& predicates,
    const std::set<std::string>& needed_properties) {
  EmbeddingMetaData meta;
  meta.AddIdColumn(query_vertex.variable, EntryType::kVertex);
  std::vector<std::string> projected(needed_properties.begin(),
                                     needed_properties.end());
  for (const std::string& key : projected) {
    meta.AddPropertyColumn(query_vertex.variable, key);
  }
  auto data = vertices.FlatMap<Embedding>(
      [query_vertex, predicates, projected](const epgm::Vertex& v,
                                            std::vector<Embedding>* out) {
        if (!query_vertex.MatchesLabel(v.label)) return;
        const auto resolver =
            ElementResolver(query_vertex.variable, v.properties);
        if (!EvaluateClauses(predicates, resolver)) return;
        Embedding e;
        e.AppendId(v.id);
        for (const std::string& key : projected) {
          e.AppendProperty(v.properties.Get(key));
        }
        out->push_back(std::move(e));
      },
      "SelectAndProjectVertices");
  return {std::move(data), std::move(meta)};
}

EmbeddingSet SelectAndProjectEdges(
    const dataflow::Dataset<epgm::Edge>& edges,
    const cypher::QueryEdge& query_edge, const std::string& source_variable,
    const std::string& target_variable,
    const std::vector<cypher::CnfClause>& predicates,
    const std::set<std::string>& needed_properties,
    const MorphismSetting& semantics) {
  assert(!query_edge.IsVariableLength());
  const bool self_loop = source_variable == target_variable;
  // Under vertex isomorphism a data self-loop cannot bind two distinct
  // query vertices; the scan enforces it so that scan-only plans are
  // already morphism-correct.
  const bool drop_data_self_loops =
      !self_loop && semantics.vertex == MatchSemantics::kIsomorphism;
  EmbeddingMetaData meta = EdgeScanMetaData(query_edge, source_variable,
                                            target_variable,
                                            needed_properties);
  std::vector<std::string> projected(needed_properties.begin(),
                                     needed_properties.end());
  const bool any_direction = query_edge.any_direction;
  auto data = edges.FlatMap<Embedding>(
      [query_edge, predicates, projected, self_loop, any_direction,
       drop_data_self_loops](const epgm::Edge& edge,
                             std::vector<Embedding>* out) {
        if (!query_edge.MatchesType(edge.label)) return;
        if (self_loop && edge.source_id != edge.target_id) return;
        if (drop_data_self_loops && edge.source_id == edge.target_id) return;
        const auto resolver =
            ElementResolver(query_edge.variable, edge.properties);
        if (!EvaluateClauses(predicates, resolver)) return;
        auto emit = [&](uint64_t src, uint64_t dst) {
          Embedding e;
          e.AppendId(src);
          e.AppendId(edge.id);
          if (!self_loop) e.AppendId(dst);
          for (const std::string& key : projected) {
            e.AppendProperty(edge.properties.Get(key));
          }
          out->push_back(std::move(e));
        };
        emit(edge.source_id, edge.target_id);
        // Undirected pattern: the edge also matches flipped (unless it is
        // a data self-loop, which would duplicate).
        if (any_direction && edge.source_id != edge.target_id) {
          emit(edge.target_id, edge.source_id);
        }
      },
      "SelectAndProjectEdges");
  return {std::move(data), std::move(meta)};
}

EmbeddingMetaData EdgeScanMetaData(
    const cypher::QueryEdge& query_edge, const std::string& source_variable,
    const std::string& target_variable,
    const std::set<std::string>& needed_properties) {
  const bool self_loop = source_variable == target_variable;
  EmbeddingMetaData meta;
  meta.AddIdColumn(source_variable, EntryType::kVertex);
  meta.AddIdColumn(query_edge.variable, EntryType::kEdge);
  if (!self_loop) meta.AddIdColumn(target_variable, EntryType::kVertex);
  for (const std::string& key : needed_properties) {
    meta.AddPropertyColumn(query_edge.variable, key);
  }
  return meta;
}

bool SatisfiesMorphism(const Embedding& embedding,
                       const EmbeddingMetaData& meta,
                       const MorphismSetting& semantics) {
  if (semantics.vertex == MatchSemantics::kIsomorphism) {
    std::vector<uint64_t> ids;
    for (int c : meta.VertexColumns()) ids.push_back(embedding.IdAt(c));
    if (!AllDistinct(&ids)) return false;
  }
  if (semantics.edge == MatchSemantics::kIsomorphism) {
    std::vector<uint64_t> ids;
    for (int c : meta.EdgeColumns()) ids.push_back(embedding.IdAt(c));
    for (int c : meta.PathColumns()) {
      const std::vector<uint64_t> via = embedding.PathAt(c);
      for (size_t i = 0; i < via.size(); i += 2) ids.push_back(via[i]);
    }
    if (!AllDistinct(&ids)) return false;
  }
  return true;
}

EmbeddingSet JoinEmbeddings(const EmbeddingSet& left,
                            const EmbeddingSet& right,
                            const std::vector<std::string>& join_variables,
                            const MorphismSetting& semantics,
                            dataflow::JoinStrategy strategy) {
  std::vector<int> left_columns, right_columns;
  left_columns.reserve(join_variables.size());
  right_columns.reserve(join_variables.size());
  for (const std::string& var : join_variables) {
    const int lc = left.meta.IdColumn(var);
    const int rc = right.meta.IdColumn(var);
    assert(lc >= 0 && rc >= 0 && "join variable must be bound on both sides");
    left_columns.push_back(lc);
    right_columns.push_back(rc);
  }
  EmbeddingMetaData merged_meta =
      EmbeddingMetaData::Merge(left.meta, right.meta);
  auto data = left.data.HashJoin<Embedding>(
      right.data,
      [left_columns](const Embedding& e) { return JoinKeyOf(e, left_columns); },
      [right_columns](const Embedding& e) {
        return JoinKeyOf(e, right_columns);
      },
      [merged_meta, semantics](const Embedding& l, const Embedding& r,
                               std::vector<Embedding>* out) {
        Embedding merged = Embedding::Merge(l, r);
        if (SatisfiesMorphism(merged, merged_meta, semantics)) {
          out->push_back(std::move(merged));
        }
      },
      strategy, "JoinEmbeddings");
  return {std::move(data), std::move(merged_meta)};
}

namespace {

// Value-join key: concatenated encodings of the key properties, or
// nullopt when any key property is NULL (such rows never join).
std::optional<std::string> ValueJoinKeyOf(
    const Embedding& embedding, const EmbeddingMetaData& meta,
    const std::vector<PropertyRef>& keys) {
  std::string out;
  for (const PropertyRef& ref : keys) {
    const int c = meta.PropertyColumn(ref.variable, ref.key);
    if (c < 0) return std::nullopt;
    const epgm::PropertyValue value = embedding.PropertyAt(c);
    if (value.is_null()) return std::nullopt;
    // Normalize numerics so 2 and 2.0 join (Cypher equality semantics).
    if (value.is_numeric()) {
      epgm::PropertyValue(value.AsDouble()).EncodeTo(&out);
    } else {
      value.EncodeTo(&out);
    }
  }
  return out;
}

}  // namespace

EmbeddingSet ValueJoinEmbeddings(const EmbeddingSet& left,
                                 const EmbeddingSet& right,
                                 const std::vector<PropertyRef>& left_keys,
                                 const std::vector<PropertyRef>& right_keys,
                                 const MorphismSetting& semantics,
                                 dataflow::JoinStrategy strategy) {
  assert(left_keys.size() == right_keys.size() && !left_keys.empty());
  const EmbeddingMetaData left_meta = left.meta;
  const EmbeddingMetaData right_meta = right.meta;
  EmbeddingMetaData merged_meta =
      EmbeddingMetaData::Merge(left_meta, right_meta);
  // Rows with NULL keys are dropped before the join (they can never
  // match), keeping the join key total.
  auto left_data = left.data.Filter(
      [left_meta, left_keys](const Embedding& e) {
        return ValueJoinKeyOf(e, left_meta, left_keys).has_value();
      },
      "ValueJoinPruneLeft");
  auto right_data = right.data.Filter(
      [right_meta, right_keys](const Embedding& e) {
        return ValueJoinKeyOf(e, right_meta, right_keys).has_value();
      },
      "ValueJoinPruneRight");
  auto data = left_data.HashJoin<Embedding>(
      right_data,
      [left_meta, left_keys](const Embedding& e) {
        return *ValueJoinKeyOf(e, left_meta, left_keys);
      },
      [right_meta, right_keys](const Embedding& e) {
        return *ValueJoinKeyOf(e, right_meta, right_keys);
      },
      [merged_meta, semantics](const Embedding& l, const Embedding& r,
                               std::vector<Embedding>* out) {
        Embedding merged = Embedding::Merge(l, r);
        if (SatisfiesMorphism(merged, merged_meta, semantics)) {
          out->push_back(std::move(merged));
        }
      },
      strategy, "ValueJoinEmbeddings");
  return {std::move(data), std::move(merged_meta)};
}

EmbeddingSet SelectEmbeddings(const EmbeddingSet& input,
                              const std::vector<cypher::CnfClause>& clauses) {
  const EmbeddingMetaData meta = input.meta;
  auto data = input.data.Filter(
      [meta, clauses](const Embedding& e) {
        return EvaluateClauses(clauses, meta.MakeResolver(e));
      },
      "SelectEmbeddings");
  return {std::move(data), input.meta};
}

EmbeddingSet ProjectEmbeddings(
    const EmbeddingSet& input,
    const std::vector<std::pair<std::string, std::string>>& keep) {
  const EmbeddingMetaData old_meta = input.meta;
  EmbeddingMetaData new_meta;
  // Id columns are preserved verbatim (ordered by column index).
  std::vector<std::pair<int, std::string>> by_column;
  for (const std::string& var : old_meta.Variables()) {
    by_column.emplace_back(old_meta.IdColumn(var), var);
  }
  std::sort(by_column.begin(), by_column.end());
  // Track duplicate columns for shared variables: the merged meta maps
  // each variable to one column, so re-adding in column order is safe.
  for (const auto& [column, var] : by_column) {
    while (new_meta.id_column_count() < column) {
      // Unreferenced duplicate column (shared join variable); keep the
      // slot so physical indices stay aligned.
      new_meta.AddIdColumn(
          "  __dup" + std::to_string(new_meta.id_column_count()),
          EntryType::kVertex);
    }
    new_meta.AddIdColumn(var, old_meta.TypeOf(var));
  }
  // Trailing duplicate columns also keep their slots: the meta's column
  // count must match the embeddings' physical width or a later merge
  // would rebase against the wrong offset.
  while (new_meta.id_column_count() < old_meta.id_column_count()) {
    new_meta.AddIdColumn(
        "  __dup" + std::to_string(new_meta.id_column_count()),
        EntryType::kVertex);
  }

  std::vector<int> kept_columns;
  for (const auto& [var, key] : keep) {
    const int c = old_meta.PropertyColumn(var, key);
    if (c >= 0) {
      kept_columns.push_back(c);
      new_meta.AddPropertyColumn(var, key);
    }
  }
  auto data = input.data.Map(
      [kept_columns](const Embedding& e) {
        Embedding out;
        for (int c = 0; c < e.NumIdEntries(); ++c) {
          if (e.IsPathEntry(c)) {
            out.AppendPath(e.PathAt(c));
          } else {
            out.AppendId(e.IdAt(c));
          }
        }
        for (int c : kept_columns) out.AppendProperty(e.PropertyAt(c));
        return out;
      },
      "ProjectEmbeddings");
  return {std::move(data), std::move(new_meta)};
}

namespace {

// Working record of one in-flight variable-length expansion.
struct ExpandState {
  Embedding base;             // the input embedding, untouched
  std::vector<uint64_t> via;  // alternating edge/vertex ids walked so far
  uint64_t end = 0;           // current path end vertex

  size_t SerializedSize() const {
    return base.SerializedSize() + sizeof(uint32_t) + 8 * via.size() + 8;
  }
};

}  // namespace

EmbeddingSet ExpandEmbeddings(const EmbeddingSet& input,
                              const dataflow::Dataset<epgm::Edge>& edges,
                              const std::string& start_variable,
                              const std::string& path_variable,
                              const std::string& end_variable,
                              int lower_bound, int upper_bound, bool reverse,
                              const MorphismSetting& semantics) {
  const int start_column = input.meta.IdColumn(start_variable);
  assert(start_column >= 0 && "expansion start must be bound");
  const int bound_end_column = input.meta.IdColumn(end_variable);
  const bool end_bound = bound_end_column >= 0;

  EmbeddingMetaData result_meta = input.meta;
  result_meta.AddIdColumn(path_variable, EntryType::kPath);
  if (!end_bound) result_meta.AddIdColumn(end_variable, EntryType::kVertex);

  const EmbeddingMetaData base_meta = input.meta;
  const std::vector<int> base_edge_columns = base_meta.EdgeColumns();
  const std::vector<int> base_path_columns = base_meta.PathColumns();
  const bool vertex_iso = semantics.vertex == MatchSemantics::kIsomorphism;
  const bool edge_iso = semantics.edge == MatchSemantics::kIsomorphism;

  // Builds the emitted embedding for a completed path of k >= 0 hops.
  auto emit = [=](const ExpandState& state, std::vector<Embedding>* out) {
    std::vector<uint64_t> via = state.via;
    if (reverse) std::reverse(via.begin(), via.end());
    if (end_bound && state.base.IdAt(bound_end_column) != state.end) return;
    Embedding result = state.base;
    result.AppendPath(via);
    if (!end_bound) result.AppendId(state.end);
    if (!SatisfiesMorphism(result, result_meta, semantics)) return;
    out->push_back(std::move(result));
  };

  // Initial frontier: every input embedding positioned at its start
  // binding with an empty path.
  dataflow::Dataset<ExpandState> frontier = input.data.Map(
      [start_column](const Embedding& e) {
        ExpandState s;
        s.base = e;
        s.end = e.IdAt(start_column);
        return s;
      },
      "ExpandInit");

  std::vector<dataflow::Dataset<Embedding>> emitted;

  if (lower_bound == 0) {
    emitted.push_back(frontier.FlatMap<Embedding>(
        [emit](const ExpandState& s, std::vector<Embedding>* out) {
          emit(s, out);
        },
        "ExpandEmitZero"));
  }

  for (int k = 1; k <= upper_bound; ++k) {
    uint64_t frontier_size = 0;
    for (int p = 0; p < frontier.num_partitions(); ++p) {
      frontier_size += frontier.partition(p).size();
    }
    if (frontier_size == 0) break;  // no more valid paths

    // 1-hop expansion: join the frontier with the edge set on the current
    // end vertex, enforcing morphism constraints on the grown path.
    frontier = frontier.HashJoin<ExpandState>(
        edges,
        [](const ExpandState& s) { return s.end; },
        [reverse](const epgm::Edge& e) {
          return reverse ? e.target_id : e.source_id;
        },
        [=](const ExpandState& s, const epgm::Edge& e,
            std::vector<ExpandState>* out) {
          const uint64_t new_end = reverse ? e.source_id : e.target_id;
          if (edge_iso) {
            // The new edge must not repeat within the path nor collide
            // with edges already bound in the base embedding.
            for (size_t i = 0; i < s.via.size(); i += 2) {
              if (s.via[i] == e.id) return;
            }
            if (s.base.ContainsIdAt(e.id, base_edge_columns)) return;
            if (s.base.PathContains(e.id, base_path_columns, true)) return;
          }
          if (vertex_iso) {
            // Path-local distinctness: the new end must not revisit an
            // interior vertex, and must not return to the path's start —
            // unless it is the bound end binding (cycle queries where the
            // path's endpoints are the same query variable). Distinctness
            // of the end against other vertex *columns* is enforced at
            // emission by SatisfiesMorphism; path interiors are free, as
            // they bind no query variable.
            if (new_end == s.end) return;  // data self-loop revisits the end
            for (size_t i = 1; i < s.via.size(); i += 2) {
              if (s.via[i] == new_end) return;
            }
            const bool is_bound_end =
                end_bound && s.base.IdAt(bound_end_column) == new_end;
            if (!is_bound_end && new_end == s.base.IdAt(start_column)) {
              return;
            }
          }
          ExpandState next;
          next.base = s.base;
          next.via = s.via;
          if (!next.via.empty()) {
            // Close the previous hop with its intermediate vertex.
            next.via.push_back(s.end);
          }
          next.via.push_back(e.id);
          next.end = new_end;
          out->push_back(std::move(next));
        },
        dataflow::JoinStrategy::kRepartition, "ExpandStep");

    if (k >= lower_bound) {
      emitted.push_back(frontier.FlatMap<Embedding>(
          [emit](const ExpandState& s, std::vector<Embedding>* out) {
            emit(s, out);
          },
          "ExpandEmit"));
    }
  }
  dataflow::Dataset<Embedding> results =
      dataflow::Dataset<Embedding>::Empty(input.data.context());
  for (const auto& part : emitted) results = results.Union(part);
  return {std::move(results), std::move(result_meta)};
}

}  // namespace gradoop::query
