#ifndef GRADOOP_QUERY_PLAN_H_
#define GRADOOP_QUERY_PLAN_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cypher/query_graph.h"
#include "dataflow/dataset.h"

namespace gradoop::query {

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

// One operator of a physical query plan (Figure 2). The dataflow is
// defined bottom-up: leaves are SelectAndProjectVertices/-Edges scans,
// inner nodes join or expand embeddings, filters evaluate cross-variable
// predicates as soon as all their variables are bound.
struct PlanNode {
  enum class Kind {
    kScanVertices,  // leaf: SelectAndProjectVertices of one query vertex
    kScanEdges,     // leaf: SelectAndProjectEdges of one fixed-length edge
    kJoin,          // JoinEmbeddings(left, right) on join_variables
    kValueJoin,     // ValueJoinEmbeddings on property-value equalities
    kExpand,        // ExpandEmbeddings of a variable-length edge over left
    kFilter,        // SelectEmbeddings with cross-variable clauses
  };

  Kind kind;
  PlanNodePtr left;   // input (all non-leaf kinds)
  PlanNodePtr right;  // second input (kJoin only)

  // kScanVertices: index into QueryGraph::vertices().
  // kScanEdges / kExpand: index into QueryGraph::edges().
  int element_index = -1;

  // kJoin: the shared variables joined on (may be empty: cartesian).
  std::vector<std::string> join_variables;

  // kValueJoin: equality atoms `left.var.key = right.var.key` driving the
  // value join (first: the left side's access, second: the right side's).
  std::vector<std::pair<cypher::ExpressionPtr, cypher::ExpressionPtr>>
      value_join_keys;
  // kJoin: physical strategy chosen from the estimated input sizes.
  dataflow::JoinStrategy join_strategy = dataflow::JoinStrategy::kRepartition;

  // kExpand: expand against edge direction (target side was bound first).
  bool expand_reverse = false;

  // kFilter: clauses to evaluate.
  std::vector<cypher::CnfClause> clauses;

  // Query variables bound after this operator.
  std::set<std::string> bound_variables;

  // Variables whose projected properties are available in the embeddings
  // (i.e. whose SelectAndProject scan is part of this subtree). A
  // cross-variable filter may only run once all its variables' properties
  // are present, which can be later than their ids are bound.
  std::set<std::string> property_variables;

  // Planner's cardinality estimate for this operator's output.
  double estimated_cardinality = 0.0;

  // Indented operator-tree rendering (EXPLAIN output).
  std::string ToString(const cypher::QueryGraph& query_graph,
                       int indent = 0) const;
};

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_PLAN_H_
