#include "query/graph_statistics.h"

#include <fstream>
#include <unordered_set>

#include "common/strings.h"

namespace gradoop::query {

GraphStatistics GraphStatistics::Compute(const epgm::LogicalGraph& graph) {
  GraphStatistics stats;
  for (int p = 0; p < graph.vertices().num_partitions(); ++p) {
    // cancellation: one-time statistics build at graph load, before any
    // query (and its token) exists.
    for (const epgm::Vertex& v : graph.vertices().partition(p)) {
      ++stats.vertex_count_;
      ++stats.vertex_label_count_[v.label];
    }
  }
  std::unordered_set<epgm::GradoopId> sources, targets;
  std::map<std::string, std::unordered_set<epgm::GradoopId>> sources_by_label,
      targets_by_label;
  for (int p = 0; p < graph.edges().num_partitions(); ++p) {
    // cancellation: one-time statistics build (see above).
    for (const epgm::Edge& e : graph.edges().partition(p)) {
      ++stats.edge_count_;
      ++stats.edge_label_count_[e.label];
      sources.insert(e.source_id);
      targets.insert(e.target_id);
      sources_by_label[e.label].insert(e.source_id);
      targets_by_label[e.label].insert(e.target_id);
    }
  }
  stats.distinct_source_count_ = sources.size();
  stats.distinct_target_count_ = targets.size();
  for (const auto& [label, ids] : sources_by_label) {
    stats.distinct_source_by_label_[label] = ids.size();
  }
  for (const auto& [label, ids] : targets_by_label) {
    stats.distinct_target_by_label_[label] = ids.size();
  }
  return stats;
}

uint64_t GraphStatistics::VertexCountByLabel(const std::string& label) const {
  auto it = vertex_label_count_.find(label);
  return it == vertex_label_count_.end() ? 0 : it->second;
}

uint64_t GraphStatistics::EdgeCountByLabel(const std::string& label) const {
  auto it = edge_label_count_.find(label);
  return it == edge_label_count_.end() ? 0 : it->second;
}

std::vector<std::string> GraphStatistics::VertexLabels() const {
  std::vector<std::string> out;
  out.reserve(vertex_label_count_.size());
  for (const auto& [label, count] : vertex_label_count_) out.push_back(label);
  return out;
}

std::vector<std::string> GraphStatistics::EdgeLabels() const {
  std::vector<std::string> out;
  out.reserve(edge_label_count_.size());
  for (const auto& [label, count] : edge_label_count_) out.push_back(label);
  return out;
}

uint64_t GraphStatistics::VertexCountByLabels(
    const std::vector<std::string>& labels) const {
  if (labels.empty()) return vertex_count_;
  uint64_t total = 0;
  for (const std::string& l : labels) total += VertexCountByLabel(l);
  return total;
}

uint64_t GraphStatistics::EdgeCountByLabels(
    const std::vector<std::string>& labels) const {
  if (labels.empty()) return edge_count_;
  uint64_t total = 0;
  for (const std::string& l : labels) total += EdgeCountByLabel(l);
  return total;
}

uint64_t GraphStatistics::DistinctSourceByLabel(
    const std::string& label) const {
  auto it = distinct_source_by_label_.find(label);
  return it == distinct_source_by_label_.end() ? 0 : it->second;
}

uint64_t GraphStatistics::DistinctTargetByLabel(
    const std::string& label) const {
  auto it = distinct_target_by_label_.find(label);
  return it == distinct_target_by_label_.end() ? 0 : it->second;
}

uint64_t GraphStatistics::DistinctSourceByLabels(
    const std::vector<std::string>& labels) const {
  if (labels.empty()) return distinct_source_count_;
  uint64_t total = 0;
  for (const std::string& l : labels) total += DistinctSourceByLabel(l);
  return total;
}

uint64_t GraphStatistics::DistinctTargetByLabels(
    const std::vector<std::string>& labels) const {
  if (labels.empty()) return distinct_target_count_;
  uint64_t total = 0;
  for (const std::string& l : labels) total += DistinctTargetByLabel(l);
  return total;
}

Status GraphStatistics::WriteToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << "vertex_count;" << vertex_count_ << "\n";
  out << "edge_count;" << edge_count_ << "\n";
  out << "distinct_source_count;" << distinct_source_count_ << "\n";
  out << "distinct_target_count;" << distinct_target_count_ << "\n";
  for (const auto& [label, count] : vertex_label_count_) {
    out << "vertex_label;" << label << ";" << count << "\n";
  }
  for (const auto& [label, count] : edge_label_count_) {
    out << "edge_label;" << label << ";" << count << "\n";
  }
  for (const auto& [label, count] : distinct_source_by_label_) {
    out << "distinct_source;" << label << ";" << count << "\n";
  }
  for (const auto& [label, count] : distinct_target_by_label_) {
    out << "distinct_target;" << label << ";" << count << "\n";
  }
  return Status::Ok();
}

Result<GraphStatistics> GraphStatistics::ReadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  GraphStatistics stats;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = SplitString(line, ';');
    auto parse_count = [](const std::string& text) -> Result<uint64_t> {
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad count: " + text);
      }
      return static_cast<uint64_t>(v);
    };
    if (fields.size() == 2) {
      GRADOOP_ASSIGN_OR_RETURN(uint64_t count, parse_count(fields[1]));
      if (fields[0] == "vertex_count") {
        stats.vertex_count_ = count;
      } else if (fields[0] == "edge_count") {
        stats.edge_count_ = count;
      } else if (fields[0] == "distinct_source_count") {
        stats.distinct_source_count_ = count;
      } else if (fields[0] == "distinct_target_count") {
        stats.distinct_target_count_ = count;
      } else {
        return Status::InvalidArgument("unknown statistics row: " + line);
      }
    } else if (fields.size() == 3) {
      GRADOOP_ASSIGN_OR_RETURN(uint64_t count, parse_count(fields[2]));
      if (fields[0] == "vertex_label") {
        stats.vertex_label_count_[fields[1]] = count;
      } else if (fields[0] == "edge_label") {
        stats.edge_label_count_[fields[1]] = count;
      } else if (fields[0] == "distinct_source") {
        stats.distinct_source_by_label_[fields[1]] = count;
      } else if (fields[0] == "distinct_target") {
        stats.distinct_target_by_label_[fields[1]] = count;
      } else {
        return Status::InvalidArgument("unknown statistics row: " + line);
      }
    } else {
      return Status::InvalidArgument("bad statistics row: " + line);
    }
  }
  return stats;
}

std::string GraphStatistics::ToString() const {
  std::string out = "GraphStatistics(|V|=" + std::to_string(vertex_count_) +
                    ", |E|=" + std::to_string(edge_count_) + "\n vertices:";
  for (const auto& [label, count] : vertex_label_count_) {
    out += " " + label + "=" + std::to_string(count);
  }
  out += "\n edges:";
  for (const auto& [label, count] : edge_label_count_) {
    out += " " + label + "=" + std::to_string(count);
  }
  out += ")";
  return out;
}

}  // namespace gradoop::query
