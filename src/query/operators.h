#ifndef GRADOOP_QUERY_OPERATORS_H_
#define GRADOOP_QUERY_OPERATORS_H_

#include <string>
#include <vector>

#include "cypher/query_graph.h"
#include "dataflow/dataset.h"
#include "epgm/elements.h"
#include "query/embedding.h"
#include "query/embedding_meta_data.h"
#include "query/match_semantics.h"

namespace gradoop::query {

// A distributed set of (partial) embeddings together with the meta data
// describing its columns. Every physical query operator consumes and
// produces this pair (§3.1).
struct EmbeddingSet {
  dataflow::Dataset<Embedding> data;
  EmbeddingMetaData meta;
};

// The operator kernels below execute against column layouts resolved
// ahead of time by exec::PlanCompiler — they never derive meta data
// themselves. `residual` carries cross-variable clauses a fused filter
// pushed into the operator; they are evaluated on each produced embedding
// via the output meta's resolver before it is emitted.

// SelectAndProjectVertices: filters `vertices` by the query vertex's label
// alternation and its element-centric predicates, projects the properties
// listed in `meta` and transforms each survivor into a one-column
// embedding. Executed as a single FlatMap (Select -> Project -> Transform
// fusion).
EmbeddingSet SelectAndProjectVertices(
    const dataflow::Dataset<epgm::Vertex>& vertices,
    const cypher::QueryVertex& query_vertex,
    const std::vector<cypher::CnfClause>& predicates,
    const EmbeddingMetaData& meta,
    const std::vector<cypher::CnfClause>& residual = {});

// SelectAndProjectEdges: same for a fixed-length query edge; emits
// three-column embeddings [source, edge, target] (plus projected edge
// properties). When `self_loop` is set (the query edge's source variable
// equals its target variable), only edges with source == target survive
// and the embedding carries two columns.
EmbeddingSet SelectAndProjectEdges(
    const dataflow::Dataset<epgm::Edge>& edges,
    const cypher::QueryEdge& query_edge,
    const std::vector<cypher::CnfClause>& predicates,
    const MorphismSetting& semantics, bool self_loop,
    const EmbeddingMetaData& meta,
    const std::vector<cypher::CnfClause>& residual = {});

// Checks the global morphism constraints on a merged embedding: under
// vertex isomorphism all vertex bindings (distinct query variables) are
// pairwise distinct; under edge isomorphism all edge bindings including
// the edges inside variable-length paths are pairwise distinct.
bool SatisfiesMorphism(const Embedding& embedding,
                       const EmbeddingMetaData& meta,
                       const MorphismSetting& semantics);

// JoinEmbeddings: equi-join of two embedding sets on the id columns
// `left_columns[i]` == `right_columns[i]`, implemented as a FlatJoin —
// the merged embedding is emitted only if the morphism constraints hold
// (§3.1). `merged_meta` must be EmbeddingMetaData::Merge of the inputs'
// metas, resolved at compile time.
// `hints` marks sides the partitioning analysis proved co-partitioned on
// the join key; those sides skip the repartition shuffle (audited under
// GRADOOP_AUDIT_PARTITIONING).
EmbeddingSet JoinEmbeddings(const EmbeddingSet& left,
                            const EmbeddingSet& right,
                            const std::vector<int>& left_columns,
                            const std::vector<int>& right_columns,
                            const EmbeddingMetaData& merged_meta,
                            const MorphismSetting& semantics,
                            dataflow::JoinStrategy strategy =
                                dataflow::JoinStrategy::kRepartition,
                            const std::vector<cypher::CnfClause>& residual =
                                {},
                            dataflow::JoinShuffleHints hints = {});

// SelectEmbeddings: evaluates cross-variable CNF clauses on complete
// (partial) embeddings.
EmbeddingSet SelectEmbeddings(const EmbeddingSet& input,
                              const std::vector<cypher::CnfClause>& clauses);

// ValueJoinEmbeddings: equi-join of two embedding sets on property VALUES
// instead of identifiers — the extension operator §3.1 names ("to join
// subqueries on property values"). `left_key_columns[i]` (a property
// column of the left input) must equal `right_key_columns[i]` value-wise
// for a pair to join; embeddings whose key property is NULL never join
// (Cypher equality with NULL is NULL). The merged embedding is checked
// against the morphism constraints like a regular join.
EmbeddingSet ValueJoinEmbeddings(const EmbeddingSet& left,
                                 const EmbeddingSet& right,
                                 const std::vector<int>& left_key_columns,
                                 const std::vector<int>& right_key_columns,
                                 const EmbeddingMetaData& merged_meta,
                                 const MorphismSetting& semantics,
                                 dataflow::JoinStrategy strategy =
                                     dataflow::JoinStrategy::kRepartition,
                                 const std::vector<cypher::CnfClause>&
                                     residual = {},
                                 dataflow::JoinShuffleHints hints = {});

// ExpandEmbeddings: evaluates a variable-length path expression by bulk
// iteration (§3.1). Starting from the embeddings of `input` positioned at
// `start_column`, repeatedly performs 1-hop expansions by joining the
// frontier with `edges`, keeping only paths that satisfy the morphism
// semantics, and unions an emission into the result once the iteration
// count reaches `lower_bound`. Terminates at `upper_bound` or when no
// valid path remains.
//
// `reverse` expands against edge direction (used when the plan binds the
// path's target first). A non-negative `bound_end_column` closes a cycle:
// no new column is added and the path end must equal the id at that
// column; otherwise `result_meta` appends a fresh vertex column after the
// path column. A `lower_bound` of 0 admits the empty path (end == start).
EmbeddingSet ExpandEmbeddings(const EmbeddingSet& input,
                              const dataflow::Dataset<epgm::Edge>& edges,
                              int start_column, int bound_end_column,
                              const EmbeddingMetaData& result_meta,
                              int lower_bound, int upper_bound, bool reverse,
                              const MorphismSetting& semantics,
                              const std::vector<cypher::CnfClause>& residual =
                                  {});

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_OPERATORS_H_
