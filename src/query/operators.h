#ifndef GRADOOP_QUERY_OPERATORS_H_
#define GRADOOP_QUERY_OPERATORS_H_

#include <set>
#include <string>
#include <vector>

#include "cypher/query_graph.h"
#include "dataflow/dataset.h"
#include "epgm/elements.h"
#include "query/embedding.h"
#include "query/embedding_meta_data.h"
#include "query/match_semantics.h"

namespace gradoop::query {

// A distributed set of (partial) embeddings together with the meta data
// describing its columns. Every physical query operator consumes and
// produces this pair (§3.1).
struct EmbeddingSet {
  dataflow::Dataset<Embedding> data;
  EmbeddingMetaData meta;
};

// SelectAndProjectVertices: filters `vertices` by the query vertex's label
// alternation and its element-centric predicates, projects the needed
// properties and transforms each survivor into a one-column embedding.
// Executed as a single FlatMap (Select -> Project -> Transform fusion).
EmbeddingSet SelectAndProjectVertices(
    const dataflow::Dataset<epgm::Vertex>& vertices,
    const cypher::QueryVertex& query_vertex,
    const std::vector<cypher::CnfClause>& predicates,
    const std::set<std::string>& needed_properties);

// SelectAndProjectEdges: same for a fixed-length query edge; emits
// three-column embeddings [source, edge, target] (plus projected edge
// properties). When the query edge is a self-loop (source variable ==
// target variable), only edges with source == target survive and the
// embedding still carries all three columns.
EmbeddingSet SelectAndProjectEdges(
    const dataflow::Dataset<epgm::Edge>& edges,
    const cypher::QueryEdge& query_edge, const std::string& source_variable,
    const std::string& target_variable,
    const std::vector<cypher::CnfClause>& predicates,
    const std::set<std::string>& needed_properties,
    const MorphismSetting& semantics = MorphismSetting::FullHomomorphism());

// Column meta data produced by SelectAndProjectEdges for the given query
// edge (exposed so scan-sharing can pair a cached dataset, whose rows are
// independent of variable naming, with a freshly named meta).
EmbeddingMetaData EdgeScanMetaData(const cypher::QueryEdge& query_edge,
                                   const std::string& source_variable,
                                   const std::string& target_variable,
                                   const std::set<std::string>& needed_properties);

// Checks the global morphism constraints on a merged embedding: under
// vertex isomorphism all vertex bindings (distinct query variables) are
// pairwise distinct; under edge isomorphism all edge bindings including
// the edges inside variable-length paths are pairwise distinct.
bool SatisfiesMorphism(const Embedding& embedding,
                       const EmbeddingMetaData& meta,
                       const MorphismSetting& semantics);

// JoinEmbeddings: equi-join of two embedding sets on the shared
// `join_variables`, implemented as a FlatJoin — the merged embedding is
// emitted only if the morphism constraints hold (§3.1).
EmbeddingSet JoinEmbeddings(const EmbeddingSet& left,
                            const EmbeddingSet& right,
                            const std::vector<std::string>& join_variables,
                            const MorphismSetting& semantics,
                            dataflow::JoinStrategy strategy =
                                dataflow::JoinStrategy::kRepartition);

// SelectEmbeddings: evaluates cross-variable CNF clauses on complete
// (partial) embeddings.
EmbeddingSet SelectEmbeddings(const EmbeddingSet& input,
                              const std::vector<cypher::CnfClause>& clauses);

// One side of a value-join key: a projected property of a bound
// variable.
struct PropertyRef {
  std::string variable;
  std::string key;
};

// ValueJoinEmbeddings: equi-join of two embedding sets on property VALUES
// instead of identifiers — the extension operator §3.1 names ("to join
// subqueries on property values"). `left_keys[i]` must equal
// `right_keys[i]` value-wise for a pair to join; embeddings whose key
// property is NULL never join (Cypher equality with NULL is NULL). The
// merged embedding is checked against the morphism constraints like a
// regular join.
EmbeddingSet ValueJoinEmbeddings(const EmbeddingSet& left,
                                 const EmbeddingSet& right,
                                 const std::vector<PropertyRef>& left_keys,
                                 const std::vector<PropertyRef>& right_keys,
                                 const MorphismSetting& semantics,
                                 dataflow::JoinStrategy strategy =
                                     dataflow::JoinStrategy::kRepartition);

// ProjectEmbeddings: keeps only the listed (variable, key) property
// columns, rebuilding the property payload of each embedding.
EmbeddingSet ProjectEmbeddings(
    const EmbeddingSet& input,
    const std::vector<std::pair<std::string, std::string>>& keep);

// ExpandEmbeddings: evaluates a variable-length path expression by bulk
// iteration (§3.1). Starting from the embeddings of `input` (whose
// `start_variable` must be bound), repeatedly performs 1-hop expansions by
// joining the frontier with `edges`, keeping only paths that satisfy the
// morphism semantics, and unions an emission into the result once the
// iteration count reaches `lower_bound`. Terminates at `upper_bound` or
// when no valid path remains.
//
// `reverse` expands against edge direction (used when the plan binds the
// path's target first). If `end_variable` is already bound in `input`, the
// expansion closes a cycle: no new column is added and the path end must
// equal the existing binding; otherwise a new vertex column is appended.
// A `lower_bound` of 0 admits the empty path (end == start).
EmbeddingSet ExpandEmbeddings(const EmbeddingSet& input,
                              const dataflow::Dataset<epgm::Edge>& edges,
                              const std::string& start_variable,
                              const std::string& path_variable,
                              const std::string& end_variable,
                              int lower_bound, int upper_bound, bool reverse,
                              const MorphismSetting& semantics);

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_OPERATORS_H_
