#include "query/embedding.h"

#include <cassert>
#include <cstring>

namespace gradoop::query {

namespace {

uint64_t ReadUint64(const std::string& data, size_t pos) {
  uint64_t v;
  std::memcpy(&v, data.data() + pos, 8);
  return v;
}

uint32_t ReadUint32(const std::string& data, size_t pos) {
  uint32_t v;
  std::memcpy(&v, data.data() + pos, 4);
  return v;
}

void AppendUint64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendUint32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

}  // namespace

bool Embedding::IsPathEntry(int column) const {
  assert(column >= 0 && column < NumIdEntries());
  return static_cast<uint8_t>(id_data_[column * kEntryWidth]) == kPathFlag;
}

uint64_t Embedding::PayloadAt(int column) const {
  assert(column >= 0 && column < NumIdEntries());
  return ReadUint64(id_data_, column * kEntryWidth + 1);
}

uint64_t Embedding::IdAt(int column) const {
  assert(!IsPathEntry(column));
  return PayloadAt(column);
}

std::vector<uint64_t> Embedding::PathAt(int column) const {
  assert(IsPathEntry(column));
  const size_t offset = PayloadAt(column);
  assert(offset + 4 <= path_data_.size());
  const uint32_t len = ReadUint32(path_data_, offset);
  std::vector<uint64_t> ids(len);
  for (uint32_t i = 0; i < len; ++i) {
    ids[i] = ReadUint64(path_data_, offset + 4 + 8 * i);
  }
  return ids;
}

void Embedding::AppendId(uint64_t id) {
  id_data_.push_back(static_cast<char>(kIdFlag));
  AppendUint64(&id_data_, id);
}

void Embedding::AppendPath(const std::vector<uint64_t>& via_ids) {
  const uint64_t offset = path_data_.size();
  id_data_.push_back(static_cast<char>(kPathFlag));
  AppendUint64(&id_data_, offset);
  AppendUint32(&path_data_, static_cast<uint32_t>(via_ids.size()));
  for (uint64_t id : via_ids) AppendUint64(&path_data_, id);
}

void Embedding::AppendPathSegment(std::string_view segment) {
  const uint64_t offset = path_data_.size();
  id_data_.push_back(static_cast<char>(kPathFlag));
  AppendUint64(&id_data_, offset);
  path_data_.append(segment);
}

bool Embedding::ContainsIdAt(uint64_t id,
                             const std::vector<int>& columns) const {
  for (int c : columns) {
    if (!IsPathEntry(c) && PayloadAt(c) == id) return true;
  }
  return false;
}

bool Embedding::PathContains(uint64_t id,
                             const std::vector<int>& path_columns,
                             bool edges) const {
  // Paths store alternating identifiers starting with an edge:
  // e1, v1, e2, v2, ..., ek — edges at even indices, vertices at odd.
  for (int c : path_columns) {
    if (!IsPathEntry(c)) continue;
    const size_t offset = PayloadAt(c);
    const uint32_t len = ReadUint32(path_data_, offset);
    for (uint32_t i = edges ? 0 : 1; i < len; i += 2) {
      if (ReadUint64(path_data_, offset + 4 + 8 * i) == id) return true;
    }
  }
  return false;
}

epgm::PropertyValue Embedding::PropertyAt(int index) const {
  assert(index >= 0 && index < num_properties_);
  size_t pos = 0;
  for (int i = 0; i < index; ++i) {
    const uint32_t len = ReadUint32(prop_data_, pos);
    pos += 4 + len;
  }
  const uint32_t len = ReadUint32(prop_data_, pos);
  (void)len;
  size_t value_pos = pos + 4;
  auto decoded = epgm::PropertyValue::DecodeFrom(prop_data_, &value_pos);
  assert(decoded.ok());
  return std::move(decoded).value();
}

void Embedding::AppendProperty(const epgm::PropertyValue& value) {
  AppendUint32(&prop_data_, static_cast<uint32_t>(value.SerializedSize()));
  value.EncodeTo(&prop_data_);
  ++num_properties_;
}

void Embedding::AppendPropertyEncoded(std::string_view encoded) {
  AppendUint32(&prop_data_, static_cast<uint32_t>(encoded.size()));
  prop_data_.append(encoded);
  ++num_properties_;
}

void Embedding::EncodeTo(std::string* out) const {
  AppendUint32(out, static_cast<uint32_t>(id_data_.size()));
  out->append(id_data_);
  AppendUint32(out, static_cast<uint32_t>(path_data_.size()));
  out->append(path_data_);
  AppendUint32(out, static_cast<uint32_t>(prop_data_.size()));
  out->append(prop_data_);
}

Result<Embedding> Embedding::DecodeFrom(const std::string& data,
                                        size_t* pos) {
  auto read_chunk = [&data, pos](std::string* dst) -> bool {
    if (*pos + 4 > data.size()) return false;
    const uint32_t len = ReadUint32(data, *pos);
    *pos += 4;
    if (*pos + len > data.size()) return false;
    dst->assign(data, *pos, len);
    *pos += len;
    return true;
  };
  Embedding e;
  if (!read_chunk(&e.id_data_) || !read_chunk(&e.path_data_) ||
      !read_chunk(&e.prop_data_)) {
    return Status::InvalidArgument("truncated embedding");
  }
  if (e.id_data_.size() % kEntryWidth != 0) {
    return Status::InvalidArgument("corrupt embedding id data");
  }
  // Recount the length-prefixed property entries.
  size_t p = 0;
  int count = 0;
  while (p < e.prop_data_.size()) {
    if (p + 4 > e.prop_data_.size()) {
      return Status::InvalidArgument("corrupt embedding property data");
    }
    const uint32_t len = ReadUint32(e.prop_data_, p);
    p += 4 + len;
    ++count;
  }
  if (p != e.prop_data_.size()) {
    return Status::InvalidArgument("corrupt embedding property data");
  }
  e.num_properties_ = count;
  return e;
}

Embedding Embedding::Merge(const Embedding& left, const Embedding& right) {
  Embedding out;
  out.id_data_.reserve(left.id_data_.size() + right.id_data_.size());
  out.id_data_ = left.id_data_;
  // Right id entries append directly; PATH offsets rebase by the left
  // pathData length (bounded by the number of right id entries).
  const uint64_t rebase = left.path_data_.size();
  const int right_entries = right.NumIdEntries();
  for (int c = 0; c < right_entries; ++c) {
    const uint8_t flag =
        static_cast<uint8_t>(right.id_data_[c * kEntryWidth]);
    out.id_data_.push_back(static_cast<char>(flag));
    uint64_t payload = ReadUint64(right.id_data_, c * kEntryWidth + 1);
    if (flag == kPathFlag) payload += rebase;
    AppendUint64(&out.id_data_, payload);
  }
  out.path_data_ = left.path_data_ + right.path_data_;
  out.prop_data_ = left.prop_data_ + right.prop_data_;
  out.num_properties_ = left.num_properties_ + right.num_properties_;
  return out;
}

std::string Embedding::ToString() const {
  std::string out = "[";
  for (int c = 0; c < NumIdEntries(); ++c) {
    if (c > 0) out += ", ";
    if (IsPathEntry(c)) {
      out += "path(";
      const auto ids = PathAt(c);
      for (size_t i = 0; i < ids.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(ids[i]);
      }
      out += ")";
    } else {
      out += std::to_string(IdAt(c));
    }
  }
  if (num_properties_ > 0) {
    out += " | ";
    for (int i = 0; i < num_properties_; ++i) {
      if (i > 0) out += ", ";
      out += PropertyAt(i).ToString();
    }
  }
  out += "]";
  return out;
}

}  // namespace gradoop::query
