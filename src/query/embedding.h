#ifndef GRADOOP_QUERY_EMBEDDING_H_
#define GRADOOP_QUERY_EMBEDDING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "epgm/property_value.h"

namespace gradoop::query {

// Compact binary representation of one (partial) query embedding (§3.3).
//
//   idEntry   := (ID, id)
//   pathEntry := (PATH, offset)
//   Embedding := idData[], pathData[], propData[]
//
// idData is an array of fixed-width entries — a one-byte flag followed by
// an 8-byte payload. ID entries hold a vertex/edge identifier; PATH
// entries hold a byte offset into pathData, where the path is stored as
// (path-length, ids...) with the alternating edge/vertex identifiers of a
// variable-length expansion. propData stores length-prefixed property
// values bound to query variables.
//
// Identifier and path entries are readable in constant time; property
// access walks the length prefixes. Merging two embeddings is append-only
// for ids and properties; path offsets of the right side are rebased.
//
// Column semantics (which query variable lives at which index) are NOT
// part of the embedding — they live in EmbeddingMetaData, maintained by
// the query operators.
class Embedding {
 public:
  static constexpr uint8_t kIdFlag = 0;
  static constexpr uint8_t kPathFlag = 1;
  static constexpr size_t kEntryWidth = 9;  // flag byte + 8-byte payload

  Embedding() = default;

  // --- id/path columns -----------------------------------------------

  int NumIdEntries() const {
    return static_cast<int>(id_data_.size() / kEntryWidth);
  }
  bool IsPathEntry(int column) const;
  // Identifier stored at `column` (must be an ID entry).
  uint64_t IdAt(int column) const;
  // Decoded path stored at `column` (must be a PATH entry): the
  // alternating edge/vertex ids between the expansion's endpoints.
  std::vector<uint64_t> PathAt(int column) const;

  void AppendId(uint64_t id);
  void AppendPath(const std::vector<uint64_t>& via_ids);
  // Appends a PATH entry whose payload is an already-encoded segment
  // (u32 length + 8-byte ids) copied verbatim — the batch-to-row
  // conversion transplants path_pool slices through this instead of
  // decoding and re-encoding them.
  void AppendPathSegment(std::string_view segment);
  // Pre-sizes the three byte arrays; the batch-to-row conversion knows
  // the exact row footprint up front, so every array allocates once.
  void Reserve(size_t id_bytes, size_t path_bytes, size_t prop_bytes) {
    id_data_.reserve(id_bytes);
    path_data_.reserve(path_bytes);
    prop_data_.reserve(prop_bytes);
  }

  // True if any listed ID column holds `id` (morphism uniqueness checks).
  bool ContainsIdAt(uint64_t id, const std::vector<int>& columns) const;
  // True if any listed PATH column contains `id` among its even (edge) or
  // odd (vertex) positions; `edges` selects which alternation to scan.
  bool PathContains(uint64_t id, const std::vector<int>& path_columns,
                    bool edges) const;

  // --- property columns ----------------------------------------------

  int NumProperties() const { return num_properties_; }
  epgm::PropertyValue PropertyAt(int index) const;
  void AppendProperty(const epgm::PropertyValue& value);
  // Appends an already-encoded value (the bytes EncodeTo would produce)
  // verbatim. The columnar EmbeddingBatch reconstructs rows through this
  // so no decode/re-encode round trip can perturb the byte layout.
  void AppendPropertyEncoded(std::string_view encoded);

  // --- merge / size ---------------------------------------------------

  // Concatenates two embeddings: ids and properties append; the right
  // side's path offsets are rebased by the left pathData length.
  static Embedding Merge(const Embedding& left, const Embedding& right);

  // Wire size: the three byte arrays plus their length headers.
  size_t SerializedSize() const {
    return 3 * sizeof(uint32_t) + id_data_.size() + path_data_.size() +
           prop_data_.size();
  }

  // Wire format: three length-prefixed byte arrays, appended to `out`.
  // The payload needs no re-encoding — the in-memory representation IS
  // the wire representation, which is the point of §3.3. DecodeFrom reads
  // one embedding back, advancing *pos.
  void EncodeTo(std::string* out) const;
  static Result<Embedding> DecodeFrom(const std::string& data, size_t* pos);

  bool operator==(const Embedding& other) const {
    return id_data_ == other.id_data_ && path_data_ == other.path_data_ &&
           prop_data_ == other.prop_data_;
  }

  // Raw storage accessors (tests, serialization).
  const std::string& id_data() const { return id_data_; }
  const std::string& path_data() const { return path_data_; }
  const std::string& prop_data() const { return prop_data_; }

  // Debug form: [10, path(5,20,7), 30 | Alice, Bob].
  std::string ToString() const;

 private:
  uint64_t PayloadAt(int column) const;

  std::string id_data_;
  std::string path_data_;
  std::string prop_data_;
  int num_properties_ = 0;
};

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_EMBEDDING_H_
