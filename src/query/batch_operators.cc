#include "query/batch_operators.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/cancellation.h"
#include "dataflow/partitioning_audit.h"
#include "query/exec/batch_layout.h"

namespace gradoop::query {

namespace dfl = ::gradoop::dataflow;

namespace {

using BatchDataset = dfl::Dataset<EmbeddingBatch>;

// Resolver over a raw element during leaf scans: only the scanned
// variable's properties are in scope (the row kernels' ElementResolver).
cypher::ValueResolver ElementResolver(std::string variable,
                                      const epgm::Properties& properties) {
  return [variable = std::move(variable), &properties](
             const std::string& var,
             const std::string& key) -> epgm::PropertyValue {
    if (var != variable) return epgm::PropertyValue::Null();
    return properties.Get(key);
  };
}

bool EvaluateClauses(const std::vector<cypher::CnfClause>& clauses,
                     const cypher::ValueResolver& resolver) {
  for (const cypher::CnfClause& clause : clauses) {
    if (!cypher::EvaluateClause(clause, resolver)) return false;
  }
  return true;
}

// Clause evaluation against one batch row — the columnar counterpart of
// EmbeddingMetaData::MakeResolver. Also valid for the *pending* row of a
// builder (cells pushed, CommitRow not yet called), which is how the
// kernels evaluate fused residuals speculatively before committing.
bool RowPassesClauses(const std::vector<cypher::CnfClause>& clauses,
                      const EmbeddingMetaData& meta, const EmbeddingBatch& b,
                      uint32_t row) {
  if (clauses.empty()) return true;
  const auto resolver = [&meta, &b, row](
                            const std::string& var,
                            const std::string& key) -> epgm::PropertyValue {
    const int column = meta.PropertyColumn(var, key);
    if (column < 0) return epgm::PropertyValue::Null();
    return b.PropertyAt(column, row);
  };
  return EvaluateClauses(clauses, resolver);
}

// Projection keys for one scanned variable, read off the compiled meta.
std::vector<std::string> ProjectedKeys(const EmbeddingMetaData& meta,
                                       const std::string& variable) {
  std::vector<std::string> out;
  for (const auto& [var, key] : meta.PropertyColumnsInOrder()) {
    assert(var == variable && "scan meta projects only the scanned variable");
    (void)variable;
    out.push_back(key);
  }
  return out;
}

bool AllDistinct(std::vector<uint64_t>* ids) {
  std::sort(ids->begin(), ids->end());
  return std::adjacent_find(ids->begin(), ids->end()) == ids->end();
}

// Column flags of a fresh batch for `meta` — the same derivation the
// compiler stamps as the operator's BatchLayout claim.
std::vector<uint8_t> FlagsOf(const EmbeddingMetaData& meta) {
  return exec::DeriveBatchLayout(meta, /*batch_size=*/0).column_flags;
}

// Hoisted morphism plan: the row engine re-reads the meta's column lists
// per embedding; the batch kernels resolve them once per operator and
// check each merged row against raw id columns.
struct MorphismPlan {
  std::vector<int> vertex_columns;
  std::vector<int> edge_columns;
  std::vector<int> path_columns;
  bool vertex_iso = false;
  bool edge_iso = false;

  MorphismPlan(const EmbeddingMetaData& meta, const MorphismSetting& semantics)
      : vertex_columns(meta.VertexColumns()),
        edge_columns(meta.EdgeColumns()),
        path_columns(meta.PathColumns()),
        vertex_iso(semantics.vertex == MatchSemantics::kIsomorphism),
        edge_iso(semantics.edge == MatchSemantics::kIsomorphism) {}

  bool RowSatisfies(const EmbeddingBatch& b, uint32_t row,
                    std::vector<uint64_t>* scratch) const {
    if (vertex_iso) {
      scratch->clear();
      for (const int c : vertex_columns) scratch->push_back(b.IdAt(c, row));
      if (!AllDistinct(scratch)) return false;
    }
    if (edge_iso) {
      scratch->clear();
      for (const int c : edge_columns) scratch->push_back(b.IdAt(c, row));
      for (const int c : path_columns) {
        const std::vector<uint64_t> via = b.PathAt(c, row);
        for (size_t i = 0; i < via.size(); i += 2) scratch->push_back(via[i]);
      }
      if (!AllDistinct(scratch)) return false;
    }
    return true;
  }

  // Same check over a (left row, right row) pair that has NOT been merged
  // yet, reading merged column c from the side that owns it. Lets the
  // probe loop reject a pair before copying any cells — on selective
  // joins most candidates die here, and the speculative append/rollback
  // is reserved for pairs that still need the residual clauses.
  bool PairSatisfies(const EmbeddingBatch& lb, uint32_t lrow,
                     const EmbeddingBatch& rb, uint32_t rrow, int left_cols,
                     std::vector<uint64_t>* scratch) const {
    const auto id_at = [&](int c) {
      return c < left_cols ? lb.IdAt(c, lrow) : rb.IdAt(c - left_cols, rrow);
    };
    if (vertex_iso) {
      scratch->clear();
      for (const int c : vertex_columns) scratch->push_back(id_at(c));
      if (!AllDistinct(scratch)) return false;
    }
    if (edge_iso) {
      scratch->clear();
      for (const int c : edge_columns) scratch->push_back(id_at(c));
      for (const int c : path_columns) {
        const std::vector<uint64_t> via =
            c < left_cols ? lb.PathAt(c, lrow)
                          : rb.PathAt(c - left_cols, rrow);
        for (size_t i = 0; i < via.size(); i += 2) scratch->push_back(via[i]);
      }
      if (!AllDistinct(scratch)) return false;
    }
    return true;
  }
};

// Appends the row's join key — concatenated 8-byte ids, the byte string
// the row engine's JoinKeyOf produces, so both engines route every row
// through the same std::hash<std::string> placement.
void AppendIdKey(const EmbeddingBatch& b, uint32_t row,
                 const std::vector<int>& columns, std::string* key) {
  for (const int c : columns) {
    const uint64_t id = b.IdAt(c, row);
    char buf[8];
    std::memcpy(buf, &id, 8);
    key->append(buf, 8);
  }
}

// Appends the row's value-join key: concatenated encodings of the key
// properties, numerics normalized so 2 and 2.0 join. Callers prune NULL
// keys first; a NULL here would be a kernel bug.
void AppendValueKey(const EmbeddingBatch& b, uint32_t row,
                    const std::vector<int>& columns, std::string* key) {
  for (const int c : columns) {
    const epgm::PropertyValue value = b.PropertyAt(c, row);
    assert(!value.is_null() && "NULL keys must be pruned before the join");
    if (value.is_numeric()) {
      epgm::PropertyValue(value.AsDouble()).EncodeTo(key);
    } else {
      value.EncodeTo(key);
    }
  }
}

// Per-row routing key of one join side.
using RowKeyFn =
    std::function<void(const EmbeddingBatch&, uint32_t, std::string*)>;

// Scatters the active rows of every batch to hash(key) % p, compacting
// them into per-target sub-batches. Placement is the row engine's.
BatchDataset ScatterBatches(const BatchDataset& data,
                            std::vector<uint8_t> flags, int props,
                            RowKeyFn key_of, const char* label) {
  const int p = data.num_partitions();
  return data.ScatterShuffle(
      [flags = std::move(flags), props, key_of = std::move(key_of), p](
          const EmbeddingBatch& b, int /*source*/,
          std::vector<std::pair<int, EmbeddingBatch>>* frags) {
        // Two passes: route every active row first, then compact each
        // target's rows with one column-major bulk gather (AppendRows)
        // instead of row-at-a-time appends.
        const std::hash<std::string> hasher;
        std::vector<std::vector<uint32_t>> rows_by_target(
            static_cast<size_t>(p));
        std::string key;
        const uint32_t active = b.ActiveRows();
        for (uint32_t i = 0; i < active; ++i) {
          const uint32_t row = b.ActiveRow(i);
          key.clear();
          key_of(b, row, &key);
          const size_t target = hasher(key) % static_cast<size_t>(p);
          rows_by_target[target].push_back(row);
        }
        for (int target = 0; target < p; ++target) {
          const auto& rows = rows_by_target[static_cast<size_t>(target)];
          if (rows.empty()) continue;
          frags->emplace_back(target, EmbeddingBatch(flags, props));
          frags->back().second.AppendRows(b, rows);
        }
      },
      label);
}

// Adopts an input the partitioning analysis proved co-partitioned on the
// join key: no exchange, no stage, no network bytes. Mirrors the row
// engine's AdoptPrepartitioned — under GRADOOP_AUDIT_PARTITIONING every
// *active row* is re-hashed and the process hard-fails on the first
// misplaced one; telemetry records what the elision saved.
BatchDataset AdoptBatches(const BatchDataset& data, const RowKeyFn& key_of,
                          const char* label) {
  const int p = data.num_partitions();
  if (dfl::PartitioningAuditEnabled()) {
    const std::hash<std::string> hasher;
    uint64_t checked = 0;
    uint64_t misplaced = 0;
    std::string key;
    for (int i = 0; i < p; ++i) {
      // cancellation: opt-in partitioning audit must re-hash every row
      // even while unwinding — a partial check could miss the violation.
      for (const EmbeddingBatch& b : data.partition(i)) {
        const uint32_t active = b.ActiveRows();
        for (uint32_t j = 0; j < active; ++j) {
          ++checked;
          key.clear();
          key_of(b, b.ActiveRow(j), &key);
          if (p != 0 &&
              hasher(key) % static_cast<size_t>(p) !=
                  static_cast<size_t>(i)) {
            ++misplaced;
          }
        }
      }
    }
    dfl::PartitioningAuditStats::Instance().RecordCheck(checked, misplaced);
    if (misplaced != 0) {
      std::fprintf(stderr,
                   "[gradoop] partitioning audit FAILED at %s: %llu of "
                   "%llu rows of an elided batch shuffle sit in the wrong "
                   "partition — the partitioning analysis is unsound\n",
                   label, static_cast<unsigned long long>(misplaced),
                   static_cast<unsigned long long>(checked));
      std::abort();
    }
  }
  const auto& ctx = data.context();
  if (ctx->telemetry().enabled()) {
    uint64_t bytes = 0;
    uint64_t records = 0;
    for (int i = 0; i < p; ++i) {
      // cancellation: telemetry byte walk, O(batches) with no row work.
      for (const EmbeddingBatch& b : data.partition(i)) {
        records += b.ActiveRows();
        bytes += b.SerializedSize();
      }
    }
    telemetry::Telemetry& tel = ctx->telemetry();
    tel.metrics().AddCounter("shuffle.elided.count", 1);
    tel.metrics().AddCounter("shuffle.elided.bytes", bytes);
    const double now_us = tel.tracer().NowMicros();
    tel.tracer().AddSpan(std::string(label) + "/ShuffleElided",
                         telemetry::kCategoryStage, now_us, now_us,
                         /*worker=*/-1,
                         {{"bytes_saved", static_cast<double>(bytes)},
                          {"records", static_cast<double>(records)}});
  }
  return data;
}

// Everything the build+probe stage needs to merge a (left, right) row
// pair and decide whether it survives.
struct MergeParams {
  std::vector<uint8_t> flags;  // merged layout
  int props = 0;
  int left_id_columns = 0;
  MorphismPlan morphism;
  EmbeddingMetaData merged_meta;
  std::vector<cypher::CnfClause> residual;
  int batch_size = 0;

  MergeParams(const EmbeddingMetaData& merged, int left_cols,
              const MorphismSetting& semantics,
              std::vector<cypher::CnfClause> residual_clauses, int size)
      : flags(FlagsOf(merged)),
        props(merged.property_column_count()),
        left_id_columns(left_cols),
        morphism(merged, semantics),
        merged_meta(merged),
        residual(std::move(residual_clauses)),
        batch_size(size) {}
};

// Local-probe hash for two-column id keys (placement was already decided
// by the scatter, so the table hash is free to be cheap).
struct U64PairHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& k) const {
    uint64_t h = k.first * 0x9e3779b97f4a7c15ull;
    h ^= k.second + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

// The vectorized probe loop: builds a multimap over the build (right)
// side's active rows, probes with every left row and appends surviving
// merged rows. Key extraction is a template parameter so one- and
// two-column id joins probe on raw u64 columns with no per-row key
// materialization.
template <typename Key, typename Hash = std::hash<Key>, typename LeftKeyFn,
          typename RightKeyFn>
void BuildProbeMerge(const std::vector<EmbeddingBatch>& left_batches,
                     const std::vector<EmbeddingBatch>& right_batches,
                     LeftKeyFn left_key, RightKeyFn right_key,
                     const MergeParams& mp, std::vector<EmbeddingBatch>* dst,
                     dfl::ZipPartitionStats* st,
                     common::CancellationToken& cancel) {
  // Build over the right side (HashJoin's build side), one entry per
  // active row addressed as (batch, row).
  std::unordered_multimap<Key, std::pair<uint32_t, uint32_t>, Hash> table;
  uint64_t build_rows = 0;
  // cancellation: O(batches) size prepass; the build loop below polls.
  for (const EmbeddingBatch& b : right_batches) build_rows += b.ActiveRows();
  table.reserve(build_rows);
  // Presence filter in front of the multimap: on selective joins most
  // probe keys miss, and a one-byte direct-mapped table rejects a miss
  // with a single cache line instead of a hash-bucket walk. False
  // positives just fall through to the real probe, so match order and
  // results are untouched.
  size_t present_mask = 0;
  std::vector<uint8_t> present;
  if (build_rows > 0) {
    size_t slots = 64;
    while (slots < build_rows * 4 && slots < (1u << 22)) slots <<= 1;
    present.assign(slots, 0);
    present_mask = slots - 1;
  }
  const Hash key_hash;
  for (uint32_t bi = 0; bi < right_batches.size(); ++bi) {
    if (cancel.CheckCancelled()) break;
    const EmbeddingBatch& b = right_batches[bi];
    const uint32_t active = b.ActiveRows();
    for (uint32_t i = 0; i < active; ++i) {
      const uint32_t row = b.ActiveRow(i);
      Key key = right_key(b, row);
      present[key_hash(key) & present_mask] = 1;
      table.emplace(std::move(key), std::make_pair(bi, row));
    }
  }
  st->state_records = build_rows;
  // cancellation: O(batches) accounting byte walk, no per-row work.
  for (const EmbeddingBatch& b : right_batches) {
    st->state_bytes += b.SerializedSize();
  }

  EmbeddingBatch builder(mp.flags, mp.props);
  auto flush = [&] {
    if (builder.num_rows() == 0) return;
    dst->push_back(std::move(builder));
    builder = EmbeddingBatch(mp.flags, mp.props);
  };
  std::vector<uint64_t> scratch;
  const bool no_residual = mp.residual.empty();
  std::vector<EmbeddingBatch::MergePair> pairs;
  for (const EmbeddingBatch& lb : left_batches) {
    if (cancel.CheckCancelled()) break;
    const uint32_t active = lb.ActiveRows();
    for (uint32_t i = 0; i < active; ++i) {
      const uint32_t lrow = lb.ActiveRow(i);
      const Key probe = left_key(lb, lrow);
      if (present.empty() || !present[key_hash(probe) & present_mask]) {
        continue;
      }
      const auto [begin, end] = table.equal_range(probe);
      for (auto it = begin; it != end; ++it) {
        const EmbeddingBatch& rb = right_batches[it->second.first];
        const uint32_t rrow = it->second.second;
        // Morphism first, straight off the source rows: on selective
        // joins most pairs die here without a single cell copied.
        if (!mp.morphism.PairSatisfies(lb, lrow, rb, rrow,
                                       mp.left_id_columns, &scratch)) {
          continue;
        }
        if (no_residual) {
          // No residual to check on the merged row: defer the copy and
          // bulk-gather all of this probe batch's survivors below.
          pairs.push_back({lrow, &rb, rrow});
          continue;
        }
        // Speculative merge: lay the left and right slices side by side,
        // check the fused residual on the pending row, and either commit
        // or roll back — the batch analogue of build-Merge-then-drop in
        // the row FlatJoin.
        const EmbeddingBatch::RowMark mark = builder.Mark();
        builder.AppendRowCells(lb, lrow, 0);
        builder.AppendRowCells(rb, rrow, mp.left_id_columns);
        if (!RowPassesClauses(mp.residual, mp.merged_meta, builder,
                              builder.num_rows())) {
          builder.Rollback(mark);
          continue;
        }
        builder.CommitRow();
        if (static_cast<int>(builder.num_rows()) >= mp.batch_size) flush();
      }
    }
    // Column-major merge of the survivors, chunked at the batch size so
    // output batches break exactly where the row-at-a-time path breaks.
    size_t done = 0;
    while (done < pairs.size()) {
      const size_t room =
          static_cast<size_t>(mp.batch_size) - builder.num_rows();
      const size_t take = std::min(room, pairs.size() - done);
      builder.AppendMergedRows(lb, mp.left_id_columns, pairs, done, take);
      done += take;
      if (static_cast<int>(builder.num_rows()) >= mp.batch_size) flush();
    }
    pairs.clear();
  }
  flush();
}

// Shared tail of the two join kernels: exchange (scatter / adopt /
// broadcast, matching HashJoin's strategies), then build+probe.
BatchSet ExchangeAndMerge(const BatchSet& left, const BatchSet& right,
                          const RowKeyFn& left_key_of,
                          const RowKeyFn& right_key_of,
                          const std::vector<int>& left_columns,
                          const std::vector<int>& right_columns,
                          bool id_join, const MergeParams& mp,
                          dfl::JoinStrategy strategy,
                          dfl::JoinShuffleHints hints, const char* label) {
  BatchDataset left_exchanged = left.data;
  BatchDataset right_exchanged = right.data;
  if (strategy == dfl::JoinStrategy::kRepartition) {
    left_exchanged =
        hints.left_prepartitioned
            ? AdoptBatches(left.data, left_key_of, label)
            : ScatterBatches(left.data, FlagsOf(left.meta),
                             left.meta.property_column_count(), left_key_of,
                             label);
    right_exchanged =
        hints.right_prepartitioned
            ? AdoptBatches(right.data, right_key_of, label)
            : ScatterBatches(right.data, FlagsOf(right.meta),
                             right.meta.property_column_count(), right_key_of,
                             label);
  } else {
    // Broadcast: the left side stays in place, the right (build) side
    // replicates to every worker.
    right_exchanged = right.data.Replicate(label);
  }
  common::CancellationToken& cancel = left.data.context()->cancellation();
  auto data = left_exchanged.ZipPartitions<EmbeddingBatch>(
      right_exchanged,
      [&](int /*partition*/, const std::vector<EmbeddingBatch>& ls,
          const std::vector<EmbeddingBatch>& rs,
          std::vector<EmbeddingBatch>* dst, dfl::ZipPartitionStats* st) {
        if (id_join && left_columns.size() == 1) {
          // Single-column id join: probe directly on the raw u64 column.
          const int lc = left_columns[0];
          const int rc = right_columns[0];
          BuildProbeMerge<uint64_t>(
              ls, rs,
              [lc](const EmbeddingBatch& b, uint32_t row) {
                return b.IdAt(lc, row);
              },
              [rc](const EmbeddingBatch& b, uint32_t row) {
                return b.IdAt(rc, row);
              },
              mp, dst, st, cancel);
          return;
        }
        if (id_join && left_columns.size() == 2) {
          // Two-column id join (e.g. closing a triangle): packed u64
          // pair, no per-row key strings.
          const int lc0 = left_columns[0], lc1 = left_columns[1];
          const int rc0 = right_columns[0], rc1 = right_columns[1];
          BuildProbeMerge<std::pair<uint64_t, uint64_t>, U64PairHash>(
              ls, rs,
              [lc0, lc1](const EmbeddingBatch& b, uint32_t row) {
                return std::make_pair(b.IdAt(lc0, row), b.IdAt(lc1, row));
              },
              [rc0, rc1](const EmbeddingBatch& b, uint32_t row) {
                return std::make_pair(b.IdAt(rc0, row), b.IdAt(rc1, row));
              },
              mp, dst, st, cancel);
          return;
        }
        auto materialize = [](const RowKeyFn& key_of) {
          return [&key_of](const EmbeddingBatch& b, uint32_t row) {
            std::string key;
            key_of(b, row, &key);
            return key;
          };
        };
        BuildProbeMerge<std::string>(ls, rs, materialize(left_key_of),
                                     materialize(right_key_of), mp, dst, st,
                                     cancel);
      },
      label);
  return {std::move(data), mp.merged_meta};
}

}  // namespace

BatchSet RowsToBatches(const EmbeddingSet& rows, int batch_size) {
  assert(batch_size > 0);
  std::vector<uint8_t> flags = FlagsOf(rows.meta);
  const int props = rows.meta.property_column_count();
  common::CancellationToken& cancel = rows.data.context()->cancellation();
  auto data = rows.data.MapPartition<EmbeddingBatch>(
      [flags = std::move(flags), props, batch_size, &cancel](
          int /*partition*/, const std::vector<Embedding>& src,
          std::vector<EmbeddingBatch>* out) {
        EmbeddingBatch builder(flags, props);
        for (const Embedding& e : src) {
          if (cancel.CheckCancelled()) break;
          builder.AppendRow(e);
          if (static_cast<int>(builder.num_rows()) >= batch_size) {
            out->push_back(std::move(builder));
            builder = EmbeddingBatch(flags, props);
          }
        }
        if (builder.num_rows() > 0) out->push_back(std::move(builder));
      },
      "RowsToBatches");
  return {std::move(data), rows.meta};
}

EmbeddingSet BatchesToRows(const BatchSet& batches) {
  auto data = batches.data.FlatMap<Embedding>(
      [](const EmbeddingBatch& b, std::vector<Embedding>* out) {
        const uint32_t active = b.ActiveRows();
        out->reserve(out->size() + active);
        for (uint32_t i = 0; i < active; ++i) {
          out->push_back(b.RowAt(b.ActiveRow(i)));
        }
      },
      "BatchesToRows");
  return {std::move(data), batches.meta};
}

BatchSet ScanVerticesBatch(const dataflow::Dataset<epgm::Vertex>& vertices,
                           const cypher::QueryVertex& query_vertex,
                           const std::vector<cypher::CnfClause>& predicates,
                           const EmbeddingMetaData& meta,
                           const std::vector<cypher::CnfClause>& residual,
                           int batch_size) {
  assert(batch_size > 0);
  const std::vector<std::string> projected =
      ProjectedKeys(meta, query_vertex.variable);
  std::vector<uint8_t> flags = FlagsOf(meta);
  const int props = meta.property_column_count();
  common::CancellationToken& cancel = vertices.context()->cancellation();
  auto data = vertices.MapPartition<EmbeddingBatch>(
      [query_vertex, predicates, projected, meta, residual,
       flags = std::move(flags), props, batch_size, &cancel](
          int /*partition*/, const std::vector<epgm::Vertex>& src,
          std::vector<EmbeddingBatch>* out) {
        EmbeddingBatch builder(flags, props);
        for (const epgm::Vertex& v : src) {
          if (cancel.CheckCancelled()) break;
          if (!query_vertex.MatchesLabel(v.label)) continue;
          const auto resolver =
              ElementResolver(query_vertex.variable, v.properties);
          if (!EvaluateClauses(predicates, resolver)) continue;
          // Speculative append: push the row's cells, evaluate the fused
          // residual on the pending row, roll back on failure.
          const EmbeddingBatch::RowMark mark = builder.Mark();
          builder.PushId(0, v.id);
          for (const std::string& key : projected) {
            builder.PushProperty(v.properties.Get(key));
          }
          if (!RowPassesClauses(residual, meta, builder,
                                builder.num_rows())) {
            builder.Rollback(mark);
            continue;
          }
          builder.CommitRow();
          if (static_cast<int>(builder.num_rows()) >= batch_size) {
            out->push_back(std::move(builder));
            builder = EmbeddingBatch(flags, props);
          }
        }
        if (builder.num_rows() > 0) out->push_back(std::move(builder));
      },
      "SelectAndProjectVertices");
  return {std::move(data), meta};
}

BatchSet ScanEdgesBatch(const dataflow::Dataset<epgm::Edge>& edges,
                        const cypher::QueryEdge& query_edge,
                        const std::vector<cypher::CnfClause>& predicates,
                        const MorphismSetting& semantics, bool self_loop,
                        const EmbeddingMetaData& meta,
                        const std::vector<cypher::CnfClause>& residual,
                        int batch_size) {
  assert(!query_edge.IsVariableLength());
  assert(batch_size > 0);
  const bool drop_data_self_loops =
      !self_loop && semantics.vertex == MatchSemantics::kIsomorphism;
  const std::vector<std::string> projected =
      ProjectedKeys(meta, query_edge.variable);
  const bool any_direction = query_edge.any_direction;
  std::vector<uint8_t> flags = FlagsOf(meta);
  const int props = meta.property_column_count();
  common::CancellationToken& cancel = edges.context()->cancellation();
  auto data = edges.MapPartition<EmbeddingBatch>(
      [query_edge, predicates, projected, self_loop, any_direction,
       drop_data_self_loops, meta, residual, flags = std::move(flags), props,
       batch_size,
       &cancel](int /*partition*/, const std::vector<epgm::Edge>& src,
                std::vector<EmbeddingBatch>* out) {
        EmbeddingBatch builder(flags, props);
        auto emit = [&](const epgm::Edge& edge, uint64_t source,
                        uint64_t target) {
          const EmbeddingBatch::RowMark mark = builder.Mark();
          int column = 0;
          builder.PushId(column++, source);
          builder.PushId(column++, edge.id);
          if (!self_loop) builder.PushId(column++, target);
          for (const std::string& key : projected) {
            builder.PushProperty(edge.properties.Get(key));
          }
          if (!RowPassesClauses(residual, meta, builder,
                                builder.num_rows())) {
            builder.Rollback(mark);
            return;
          }
          builder.CommitRow();
          if (static_cast<int>(builder.num_rows()) >= batch_size) {
            out->push_back(std::move(builder));
            builder = EmbeddingBatch(flags, props);
          }
        };
        for (const epgm::Edge& edge : src) {
          if (cancel.CheckCancelled()) break;
          if (!query_edge.MatchesType(edge.label)) continue;
          if (self_loop && edge.source_id != edge.target_id) continue;
          if (drop_data_self_loops && edge.source_id == edge.target_id) {
            continue;
          }
          const auto resolver =
              ElementResolver(query_edge.variable, edge.properties);
          if (!EvaluateClauses(predicates, resolver)) continue;
          emit(edge, edge.source_id, edge.target_id);
          // Undirected pattern: the edge also matches flipped (unless it
          // is a data self-loop, which would duplicate).
          if (any_direction && edge.source_id != edge.target_id) {
            emit(edge, edge.target_id, edge.source_id);
          }
        }
        if (builder.num_rows() > 0) out->push_back(std::move(builder));
      },
      "SelectAndProjectEdges");
  return {std::move(data), meta};
}

BatchSet SelectBatches(const BatchSet& input,
                       const std::vector<cypher::CnfClause>& clauses) {
  const EmbeddingMetaData meta = input.meta;
  // The select-loop: no row moves — the survivors' indices become the
  // batch's selection vector over the shared column store.
  auto data = input.data.Map(
      [meta, clauses](const EmbeddingBatch& b) {
        std::vector<uint32_t> selected;
        const uint32_t active = b.ActiveRows();
        selected.reserve(active);
        for (uint32_t i = 0; i < active; ++i) {
          const uint32_t row = b.ActiveRow(i);
          if (RowPassesClauses(clauses, meta, b, row)) {
            selected.push_back(row);
          }
        }
        return b.WithSelection(std::move(selected));
      },
      "SelectEmbeddings");
  return {std::move(data), input.meta};
}

BatchSet JoinBatches(const BatchSet& left, const BatchSet& right,
                     const std::vector<int>& left_columns,
                     const std::vector<int>& right_columns,
                     const EmbeddingMetaData& merged_meta,
                     const MorphismSetting& semantics,
                     dataflow::JoinStrategy strategy,
                     const std::vector<cypher::CnfClause>& residual,
                     dataflow::JoinShuffleHints hints, int batch_size) {
  assert(left_columns.size() == right_columns.size());
  const MergeParams mp(merged_meta, left.meta.id_column_count(), semantics,
                       residual, batch_size);
  const RowKeyFn left_key_of = [left_columns](const EmbeddingBatch& b,
                                              uint32_t row,
                                              std::string* key) {
    AppendIdKey(b, row, left_columns, key);
  };
  const RowKeyFn right_key_of = [right_columns](const EmbeddingBatch& b,
                                                uint32_t row,
                                                std::string* key) {
    AppendIdKey(b, row, right_columns, key);
  };
  return ExchangeAndMerge(left, right, left_key_of, right_key_of,
                          left_columns, right_columns, /*id_join=*/true, mp,
                          strategy, hints, "JoinEmbeddings");
}

BatchSet ValueJoinBatches(const BatchSet& left, const BatchSet& right,
                          const std::vector<int>& left_key_columns,
                          const std::vector<int>& right_key_columns,
                          const EmbeddingMetaData& merged_meta,
                          const MorphismSetting& semantics,
                          dataflow::JoinStrategy strategy,
                          const std::vector<cypher::CnfClause>& residual,
                          dataflow::JoinShuffleHints hints, int batch_size) {
  assert(left_key_columns.size() == right_key_columns.size() &&
         !left_key_columns.empty());
  // Rows with NULL keys can never match (Cypher equality with NULL is
  // NULL); a selection pass masks them before the exchange — the batch
  // form of the row engine's pre-join prune Filters.
  auto prune = [](const BatchSet& side, const std::vector<int>& columns,
                  const char* label) {
    return side.data.Map(
        [columns](const EmbeddingBatch& b) {
          std::vector<uint32_t> selected;
          const uint32_t active = b.ActiveRows();
          selected.reserve(active);
          for (uint32_t i = 0; i < active; ++i) {
            const uint32_t row = b.ActiveRow(i);
            bool has_null = false;
            for (const int c : columns) {
              if (b.PropertyAt(c, row).is_null()) {
                has_null = true;
                break;
              }
            }
            if (!has_null) selected.push_back(row);
          }
          return b.WithSelection(std::move(selected));
        },
        label);
  };
  const BatchSet pruned_left{
      prune(left, left_key_columns, "ValueJoinPruneLeft"), left.meta};
  const BatchSet pruned_right{
      prune(right, right_key_columns, "ValueJoinPruneRight"), right.meta};
  const MergeParams mp(merged_meta, left.meta.id_column_count(), semantics,
                       residual, batch_size);
  const RowKeyFn left_key_of = [left_key_columns](const EmbeddingBatch& b,
                                                  uint32_t row,
                                                  std::string* key) {
    AppendValueKey(b, row, left_key_columns, key);
  };
  const RowKeyFn right_key_of = [right_key_columns](const EmbeddingBatch& b,
                                                    uint32_t row,
                                                    std::string* key) {
    AppendValueKey(b, row, right_key_columns, key);
  };
  return ExchangeAndMerge(pruned_left, pruned_right, left_key_of,
                          right_key_of, left_key_columns, right_key_columns,
                          /*id_join=*/false, mp, strategy, hints,
                          "ValueJoinEmbeddings");
}

BatchSet ExpandBatches(const BatchSet& input,
                       const dataflow::Dataset<epgm::Edge>& edges,
                       int start_column, int bound_end_column,
                       const EmbeddingMetaData& result_meta, int lower_bound,
                       int upper_bound, bool reverse,
                       const MorphismSetting& semantics,
                       const std::vector<cypher::CnfClause>& residual,
                       int batch_size) {
  // The frontier iteration is inherently row-dependent (each path grows
  // from its own end vertex), so the batch engine compacts to rows at
  // this operator's boundary, runs the row engine's bulk iteration, and
  // re-batches the emissions (docs/vectorized.md).
  EmbeddingSet rows = BatchesToRows(input);
  EmbeddingSet expanded =
      ExpandEmbeddings(rows, edges, start_column, bound_end_column,
                       result_meta, lower_bound, upper_bound, reverse,
                       semantics, residual);
  return RowsToBatches(expanded, batch_size);
}

}  // namespace gradoop::query
