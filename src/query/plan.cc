#include "query/plan.h"

#include <cstdio>

namespace gradoop::query {

namespace {

std::string Indent(int n) { return std::string(2 * n, ' '); }

std::string CardString(double card) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", card);
  return buf;
}

}  // namespace

std::string PlanNode::ToString(const cypher::QueryGraph& query_graph,
                               int indent) const {
  std::string out = Indent(indent);
  switch (kind) {
    case Kind::kScanVertices: {
      const auto& v = query_graph.vertices()[element_index];
      out += "ScanVertices(" + v.variable;
      if (!v.labels.empty()) {
        out += ":";
        for (size_t i = 0; i < v.labels.size(); ++i) {
          if (i > 0) out += "|";
          out += v.labels[i];
        }
      }
      out += ") ~" + CardString(estimated_cardinality) + "\n";
      return out;
    }
    case Kind::kScanEdges: {
      const auto& e = query_graph.edges()[element_index];
      out += "ScanEdges(" + e.variable;
      if (!e.types.empty()) {
        out += ":";
        for (size_t i = 0; i < e.types.size(); ++i) {
          if (i > 0) out += "|";
          out += e.types[i];
        }
      }
      out += ") ~" + CardString(estimated_cardinality) + "\n";
      return out;
    }
    case Kind::kJoin: {
      out += "JoinEmbeddings(on ";
      if (join_variables.empty()) {
        out += "<cartesian>";
      } else {
        for (size_t i = 0; i < join_variables.size(); ++i) {
          if (i > 0) out += ",";
          out += join_variables[i];
        }
      }
      out += join_strategy == dataflow::JoinStrategy::kBroadcast
                 ? ", broadcast"
                 : ", repartition";
      out += ") ~" + CardString(estimated_cardinality) + "\n";
      out += left->ToString(query_graph, indent + 1);
      out += right->ToString(query_graph, indent + 1);
      return out;
    }
    case Kind::kValueJoin: {
      out += "ValueJoinEmbeddings(on ";
      for (size_t i = 0; i < value_join_keys.size(); ++i) {
        if (i > 0) out += ",";
        out += value_join_keys[i].first->ToString() + "=" +
               value_join_keys[i].second->ToString();
      }
      out += ") ~" + CardString(estimated_cardinality) + "\n";
      out += left->ToString(query_graph, indent + 1);
      out += right->ToString(query_graph, indent + 1);
      return out;
    }
    case Kind::kExpand: {
      const auto& e = query_graph.edges()[element_index];
      out += "ExpandEmbeddings(" + e.variable + "*" +
             std::to_string(e.lower_bound) + ".." +
             std::to_string(e.upper_bound) +
             (expand_reverse ? ", reverse" : "") + ") ~" +
             CardString(estimated_cardinality) + "\n";
      out += left->ToString(query_graph, indent + 1);
      return out;
    }
    case Kind::kFilter: {
      out += "SelectEmbeddings(";
      for (size_t i = 0; i < clauses.size(); ++i) {
        if (i > 0) out += " AND ";
        out += clauses[i].ToString();
      }
      out += ") ~" + CardString(estimated_cardinality) + "\n";
      out += left->ToString(query_graph, indent + 1);
      return out;
    }
  }
  return out;
}

}  // namespace gradoop::query
