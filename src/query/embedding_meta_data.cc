#include "query/embedding_meta_data.h"

#include <cassert>

namespace gradoop::query {

int EmbeddingMetaData::AddIdColumn(const std::string& variable,
                                   EntryType type) {
  assert(!id_columns_.contains(variable));
  const int column = id_column_count_++;
  id_columns_.emplace(variable, std::make_pair(column, type));
  return column;
}

int EmbeddingMetaData::AddPropertyColumn(const std::string& variable,
                                         const std::string& key) {
  const int column = property_column_count_++;
  property_columns_.emplace(std::make_pair(variable, key), column);
  return column;
}

bool EmbeddingMetaData::HasVariable(const std::string& variable) const {
  return id_columns_.contains(variable);
}

int EmbeddingMetaData::IdColumn(const std::string& variable) const {
  auto it = id_columns_.find(variable);
  return it == id_columns_.end() ? -1 : it->second.first;
}

EntryType EmbeddingMetaData::TypeOf(const std::string& variable) const {
  auto it = id_columns_.find(variable);
  assert(it != id_columns_.end());
  return it->second.second;
}

int EmbeddingMetaData::PropertyColumn(const std::string& variable,
                                      const std::string& key) const {
  auto it = property_columns_.find(std::make_pair(variable, key));
  return it == property_columns_.end() ? -1 : it->second;
}

std::vector<int> EmbeddingMetaData::VertexColumns() const {
  std::vector<int> out;
  for (const auto& [var, entry] : id_columns_) {
    if (entry.second == EntryType::kVertex) out.push_back(entry.first);
  }
  return out;
}

std::vector<int> EmbeddingMetaData::EdgeColumns() const {
  std::vector<int> out;
  for (const auto& [var, entry] : id_columns_) {
    if (entry.second == EntryType::kEdge) out.push_back(entry.first);
  }
  return out;
}

std::vector<int> EmbeddingMetaData::PathColumns() const {
  std::vector<int> out;
  for (const auto& [var, entry] : id_columns_) {
    if (entry.second == EntryType::kPath) out.push_back(entry.first);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>>
EmbeddingMetaData::PropertyColumnsInOrder() const {
  // Property columns are dense: AddPropertyColumn assigns sequential
  // indices and Merge rebases without gaps.
  std::vector<std::pair<std::string, std::string>> out(
      static_cast<size_t>(property_column_count_));
  for (const auto& [key, column] : property_columns_) {
    out[static_cast<size_t>(column)] = key;
  }
  return out;
}

std::vector<std::string> EmbeddingMetaData::Variables() const {
  std::vector<std::string> out;
  out.reserve(id_columns_.size());
  for (const auto& [var, entry] : id_columns_) out.push_back(var);
  return out;
}

EmbeddingMetaData EmbeddingMetaData::Merge(const EmbeddingMetaData& left,
                                           const EmbeddingMetaData& right) {
  EmbeddingMetaData out = left;
  out.id_column_count_ = left.id_column_count_ + right.id_column_count_;
  out.property_column_count_ =
      left.property_column_count_ + right.property_column_count_;
  for (const auto& [var, entry] : right.id_columns_) {
    // Shared variables keep the left binding (both columns hold the same
    // id after an equi-join on that variable).
    out.id_columns_.emplace(
        var, std::make_pair(entry.first + left.id_column_count_,
                            entry.second));
  }
  for (const auto& [key, column] : right.property_columns_) {
    out.property_columns_.emplace(key,
                                  column + left.property_column_count_);
  }
  return out;
}

cypher::ValueResolver EmbeddingMetaData::MakeResolver(
    const Embedding& embedding) const {
  return [this, &embedding](const std::string& variable,
                            const std::string& key) -> epgm::PropertyValue {
    const int column = PropertyColumn(variable, key);
    if (column < 0) return epgm::PropertyValue::Null();
    return embedding.PropertyAt(column);
  };
}

std::string EmbeddingMetaData::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, entry] : id_columns_) {
    if (!first) out += ", ";
    first = false;
    out += var + ":" + std::to_string(entry.first);
  }
  for (const auto& [key, column] : property_columns_) {
    if (!first) out += ", ";
    first = false;
    out += key.first + "." + key.second + ":" + std::to_string(column);
  }
  return out + "}";
}

}  // namespace gradoop::query
