#ifndef GRADOOP_QUERY_EMBEDDING_META_DATA_H_
#define GRADOOP_QUERY_EMBEDDING_META_DATA_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cypher/expression.h"
#include "query/embedding.h"

namespace gradoop::query {

// Kind of binding a query variable holds in an embedding column.
enum class EntryType {
  kVertex,
  kEdge,
  kPath,  // variable-length expansion result
};

// Maps query variables and their projected properties to column indices of
// an Embedding (§3.3: "a meta data object that stores the mapping
// information between query variables/properties and indices of embedding
// entries"). Maintained and merged by the query operators; never shipped
// with the data.
class EmbeddingMetaData {
 public:
  EmbeddingMetaData() = default;

  // Registers `variable` at the next id column. Returns the column index.
  int AddIdColumn(const std::string& variable, EntryType type);
  // Registers a projected property (variable.key) at the next property
  // column. Returns the column index.
  int AddPropertyColumn(const std::string& variable, const std::string& key);

  bool HasVariable(const std::string& variable) const;
  int IdColumn(const std::string& variable) const;  // -1 when absent
  EntryType TypeOf(const std::string& variable) const;
  // -1 when the property is not projected.
  int PropertyColumn(const std::string& variable,
                     const std::string& key) const;

  int id_column_count() const { return id_column_count_; }
  int property_column_count() const { return property_column_count_; }

  // All projected (variable, key) pairs ordered by property column index.
  // Scan kernels derive their projection from the compiled meta data
  // through this, so the compiler stays the single source of layouts.
  std::vector<std::pair<std::string, std::string>> PropertyColumnsInOrder()
      const;

  // All distinct columns bound to vertex / edge variables (morphism
  // uniqueness checks operate on these, not on raw columns, because a
  // merged embedding may contain duplicate columns for shared variables).
  std::vector<int> VertexColumns() const;
  std::vector<int> EdgeColumns() const;
  std::vector<int> PathColumns() const;

  // Variables present in this meta data.
  std::vector<std::string> Variables() const;

  // Meta data of Embedding::Merge(left, right): right id/property columns
  // shift by the left counts; variables already bound on the left keep
  // their left column.
  static EmbeddingMetaData Merge(const EmbeddingMetaData& left,
                                 const EmbeddingMetaData& right);

  // Resolver reading `variable.key` out of `embedding` for predicate
  // evaluation. The embedding reference must outlive the resolver.
  cypher::ValueResolver MakeResolver(const Embedding& embedding) const;

  std::string ToString() const;

 private:
  std::map<std::string, std::pair<int, EntryType>> id_columns_;
  std::map<std::pair<std::string, std::string>, int> property_columns_;
  int id_column_count_ = 0;
  int property_column_count_ = 0;
};

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_EMBEDDING_META_DATA_H_
