#ifndef GRADOOP_QUERY_QUERY_PROFILE_H_
#define GRADOOP_QUERY_QUERY_PROFILE_H_

#include <string>

#include "dataflow/execution_context.h"
#include "query/cypher_engine.h"
#include "telemetry/query_profile.h"

namespace gradoop::query {

// Assembles the structured telemetry::QueryProfile for one executed
// query: engine phases and the pre-order operator walk come from the
// CypherMatchResult, worker busy times from the context's "task" spans,
// cluster totals from its CostTracker and the counter/histogram state
// from its MetricsRegistry. The per-operator `actual_rows` are copied
// verbatim from OperatorStats, so they match EXPLAIN ANALYZE's rows=
// figures for the same run exactly.
//
// Call after CypherEngine::Execute, before resetting the tracker or the
// telemetry data. Works with telemetry disabled too — the trace-derived
// sections (workers, metrics) are then just empty.
telemetry::QueryProfile BuildQueryProfile(
    const std::string& name, const std::string& query,
    const CypherMatchResult& result, const dataflow::ExecutionContext& ctx);

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_QUERY_PROFILE_H_
