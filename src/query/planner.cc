#include "query/planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "analysis/plan_verifier.h"
#include "query/exec/partitioning.h"

namespace gradoop::query {

namespace {

using cypher::CnfClause;
using cypher::ComparisonOp;
using cypher::ExprKind;
using cypher::QueryEdge;
using cypher::QueryGraph;
using cypher::QueryVertex;

double AtomSelectivity(const cypher::ExpressionPtr& atom,
                       const PlannerOptions& options) {
  if (atom->kind() != ExprKind::kComparison) return 0.5;
  switch (atom->comparison_op()) {
    case ComparisonOp::kEq:
      return options.equality_selectivity;
    case ComparisonOp::kNeq:
      return options.inequality_selectivity;
    default:
      return options.range_selectivity;
  }
}

double ClauseSelectivity(const CnfClause& clause,
                         const PlannerOptions& options) {
  // A disjunction passes when any atom passes.
  double sel = 0.0;
  for (const auto& atom : clause.atoms) sel += AtomSelectivity(atom, options);
  return std::min(sel, 1.0);
}

double ClausesSelectivity(const std::vector<CnfClause>& clauses,
                          const PlannerOptions& options) {
  double sel = 1.0;
  for (const CnfClause& clause : clauses) {
    sel *= ClauseSelectivity(clause, options);
  }
  return sel;
}

// Domain size of a variable: the number of data elements it can bind.
double VariableDomain(const QueryGraph& qg, const GraphStatistics& stats,
                      const std::string& variable) {
  if (const QueryVertex* v = qg.FindVertex(variable)) {
    return std::max<double>(1.0,
                            static_cast<double>(
                                stats.VertexCountByLabels(v->labels)));
  }
  if (const QueryEdge* e = qg.FindEdge(variable)) {
    return std::max<double>(
        1.0, static_cast<double>(stats.EdgeCountByLabels(e->types)));
  }
  return 1.0;
}

// Estimated distinct values of `variable` within a plan of `cardinality`.
double DistinctInPlan(double cardinality, double domain) {
  return std::max(1.0, std::min(cardinality, domain));
}

class Planner {
 public:
  Planner(const QueryGraph& qg, const GraphStatistics& stats,
          const PlannerOptions& options)
      : qg_(qg), stats_(stats), options_(options) {}

  Result<PlanNodePtr> Plan() {
    BuildUnits();
    for (const PlanNodePtr& unit : units_) {
      GRADOOP_RETURN_IF_ERROR(VerifyCandidate(unit));
    }
    for (const CnfClause& clause : qg_.CrossPredicates()) {
      pending_filters_.push_back(clause);
    }
    if (options_.mode == PlannerOptions::Mode::kLeftDeep) {
      return PlanLeftDeep();
    }
    if (options_.mode == PlannerOptions::Mode::kDynamicProgramming &&
        units_.size() <= PlannerOptions::kDpUnitLimit) {
      return PlanDynamicProgramming();
    }
    return PlanGreedy();
  }

 private:
  // Static invariant gate run on every partial plan the search produces.
  // A violation is a planner bug: surfacing it at the combination step
  // pinpoints the construction that broke the bookkeeping.
  Status VerifyCandidate(const PlanNodePtr& node) const {
    if (!options_.verify_candidates) return Status::Ok();
    return analysis::VerifyCandidatePlan(
        qg_, node, analysis::VerifyOptions::Exhaustive());
  }

  // --- leaf construction ----------------------------------------------

  void BuildUnits() {
    // A query vertex needs its own scan when it carries constraints
    // (labels, predicates, projected properties) or when no fixed-length
    // edge scan binds it structurally.
    std::vector<bool> covered(qg_.vertices().size(), false);
    for (const QueryEdge& e : qg_.edges()) {
      if (!e.IsVariableLength()) {
        covered[e.source] = true;
        covered[e.target] = true;
      }
    }
    // Variable-length edges bind their end vertex during expansion, but
    // the start must be bound elsewhere; ends also count as covered.
    for (const QueryEdge& e : qg_.edges()) {
      if (e.IsVariableLength()) covered[e.target] = true;
    }
    for (const QueryVertex& v : qg_.vertices()) {
      const bool constrained = !v.labels.empty() ||
                               !qg_.ElementPredicates(v.variable).empty() ||
                               !qg_.NeededProperties(v.variable).empty();
      if (constrained || !covered[v.index]) {
        units_.push_back(MakeVertexScan(v.index));
      }
    }
    for (const QueryEdge& e : qg_.edges()) {
      if (e.IsVariableLength()) {
        pending_expansions_.push_back(e.index);
      } else {
        units_.push_back(MakeEdgeScan(e.index));
      }
    }
  }

  PlanNodePtr MakeVertexScan(int vertex_index) {
    const QueryVertex& v = qg_.vertices()[vertex_index];
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanNode::Kind::kScanVertices;
    node->element_index = vertex_index;
    node->bound_variables = {v.variable};
    node->property_variables = {v.variable};
    const double base =
        static_cast<double>(stats_.VertexCountByLabels(v.labels));
    node->estimated_cardinality =
        base *
        ClausesSelectivity(qg_.ElementPredicates(v.variable), options_);
    return node;
  }

  PlanNodePtr MakeEdgeScan(int edge_index) {
    const QueryEdge& e = qg_.edges()[edge_index];
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanNode::Kind::kScanEdges;
    node->element_index = edge_index;
    node->bound_variables = {e.variable, qg_.vertices()[e.source].variable,
                             qg_.vertices()[e.target].variable};
    node->property_variables = {e.variable};
    double base = static_cast<double>(stats_.EdgeCountByLabels(e.types));
    if (e.any_direction) base *= 2.0;
    node->estimated_cardinality =
        base * ClausesSelectivity(qg_.ElementPredicates(e.variable), options_);
    return node;
  }

  // --- combination steps ------------------------------------------------

  std::vector<std::string> SharedVariables(const PlanNode& a,
                                           const PlanNode& b) const {
    std::vector<std::string> shared;
    for (const std::string& var : a.bound_variables) {
      if (b.bound_variables.contains(var)) shared.push_back(var);
    }
    return shared;
  }

  double EstimateJoin(const PlanNode& a, const PlanNode& b,
                      const std::vector<std::string>& shared) const {
    double card = a.estimated_cardinality * b.estimated_cardinality;
    for (const std::string& var : shared) {
      const double domain = VariableDomain(qg_, stats_, var);
      card /= std::max(DistinctInPlan(a.estimated_cardinality, domain),
                       DistinctInPlan(b.estimated_cardinality, domain));
    }
    return card;
  }

  // Tie-break score for a join candidate: how many of its repartition
  // shuffles the partitioning analysis would elide (0, 1 or 2). Mirrors
  // MakeJoin's side swap and broadcast decision so it scores the join
  // that would actually be built. Cardinality estimates stay untouched —
  // the score only separates candidates with exactly equal cost, so
  // plans that never tie are planned as before.
  int ElisionScore(const PlanNode& a, const PlanNode& b,
                   const std::vector<std::string>& shared) const {
    if (!options_.elide_shuffles || shared.empty()) return 0;
    const PlanNode* left = &a;
    const PlanNode* right = &b;
    if (left->estimated_cardinality < right->estimated_cardinality) {
      std::swap(left, right);
    }
    if (options_.allow_broadcast &&
        right->estimated_cardinality < options_.broadcast_threshold &&
        right->estimated_cardinality <= left->estimated_cardinality) {
      return 0;  // a broadcast join has no repartition shuffle to elide
    }
    int score = 0;
    for (const PlanNode* side : {left, right}) {
      if (exec::ElidesShuffle(exec::DeriveLogicalPartitioning(*side),
                              exec::PartitionKeyKind::kIdColumns, shared)) {
        ++score;
      }
    }
    return score;
  }

  PlanNodePtr MakeJoin(PlanNodePtr a, PlanNodePtr b,
                       std::vector<std::string> shared) const {
    // The smaller side becomes the right (build/broadcast) side.
    if (a->estimated_cardinality < b->estimated_cardinality) std::swap(a, b);
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanNode::Kind::kJoin;
    node->estimated_cardinality = EstimateJoin(*a, *b, shared);
    node->left = a;
    node->right = b;
    node->join_variables = std::move(shared);
    node->bound_variables = node->left->bound_variables;
    node->bound_variables.insert(node->right->bound_variables.begin(),
                                 node->right->bound_variables.end());
    node->property_variables = node->left->property_variables;
    node->property_variables.insert(node->right->property_variables.begin(),
                                    node->right->property_variables.end());
    if (options_.allow_broadcast &&
        node->right->estimated_cardinality < options_.broadcast_threshold &&
        node->right->estimated_cardinality <=
            node->left->estimated_cardinality) {
      node->join_strategy = dataflow::JoinStrategy::kBroadcast;
    }
    return node;
  }

  // Expansion applicability: the plan must bind the start (forward) or the
  // end (reverse). Returns {applicable, reverse}.
  std::pair<bool, bool> ExpansionFit(const PlanNode& plan,
                                     const QueryEdge& e) const {
    const std::string& src = qg_.vertices()[e.source].variable;
    const std::string& dst = qg_.vertices()[e.target].variable;
    if (plan.bound_variables.contains(src)) return {true, false};
    if (plan.bound_variables.contains(dst)) return {true, true};
    return {false, false};
  }

  double EstimateExpansion(const PlanNode& plan, const QueryEdge& e,
                           bool reverse) const {
    const double edge_count =
        static_cast<double>(stats_.EdgeCountByLabels(e.types));
    const double distinct = std::max<double>(
        1.0, static_cast<double>(reverse
                                     ? stats_.DistinctTargetByLabels(e.types)
                                     : stats_.DistinctSourceByLabels(e.types)));
    const double fanout = edge_count / distinct;
    double paths = e.lower_bound == 0 ? 1.0 : 0.0;
    // cancellation: planning-time loop bounded by the query's hop range.
    for (int k = std::max(1, e.lower_bound); k <= e.upper_bound; ++k) {
      paths += std::pow(fanout, k);
    }
    double card = plan.estimated_cardinality * paths;
    // Closing a cycle: the free endpoint is already bound, so only paths
    // hitting that exact vertex survive.
    const std::string& src = qg_.vertices()[e.source].variable;
    const std::string& dst = qg_.vertices()[e.target].variable;
    const std::string& free_var = reverse ? src : dst;
    if (plan.bound_variables.contains(free_var)) {
      card /= VariableDomain(qg_, stats_, free_var);
    }
    return std::max(card, 1e-3);
  }

  PlanNodePtr MakeExpansion(PlanNodePtr plan, int edge_index,
                            bool reverse) const {
    const QueryEdge& e = qg_.edges()[edge_index];
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanNode::Kind::kExpand;
    node->element_index = edge_index;
    node->expand_reverse = reverse;
    node->estimated_cardinality = EstimateExpansion(*plan, e, reverse);
    node->left = std::move(plan);
    node->bound_variables = node->left->bound_variables;
    node->property_variables = node->left->property_variables;
    node->bound_variables.insert(e.variable);
    node->bound_variables.insert(qg_.vertices()[e.source].variable);
    node->bound_variables.insert(qg_.vertices()[e.target].variable);
    return node;
  }


  // Looks for a pending single-atom equality clause `a.x = b.y` whose two
  // property accesses live in different units; if found, value-joins those
  // units (the §3.1 extension operator) and removes the clause. Returns
  // nullptr when no such opportunity exists.
  PlanNodePtr TryValueJoin(std::vector<PlanNodePtr>* units) {
    for (auto it = pending_filters_.begin(); it != pending_filters_.end();
         ++it) {
      if (it->atoms.size() != 1) continue;
      const cypher::ExpressionPtr& atom = it->atoms.front();
      if (atom->kind() != cypher::ExprKind::kComparison ||
          atom->comparison_op() != cypher::ComparisonOp::kEq) {
        continue;
      }
      const cypher::ExpressionPtr& lhs = atom->left();
      const cypher::ExpressionPtr& rhs = atom->right();
      if (lhs->kind() != cypher::ExprKind::kPropertyAccess ||
          rhs->kind() != cypher::ExprKind::kPropertyAccess) {
        continue;
      }
      for (size_t i = 0; i < units->size(); ++i) {
        for (size_t j = 0; j < units->size(); ++j) {
          if (i == j) continue;
          const PlanNode& a = *(*units)[i];
          const PlanNode& b = *(*units)[j];
          if (!a.property_variables.contains(lhs->variable()) ||
              !b.property_variables.contains(rhs->variable())) {
            continue;
          }
          // A value join does not enforce id equality: only disconnected
          // units qualify (units sharing a variable take a regular join).
          if (!SharedVariables(a, b).empty()) continue;
          auto node = std::make_shared<PlanNode>();
          node->kind = PlanNode::Kind::kValueJoin;
          node->left = (*units)[i];
          node->right = (*units)[j];
          node->value_join_keys.emplace_back(lhs, rhs);
          node->estimated_cardinality = a.estimated_cardinality *
                                        b.estimated_cardinality *
                                        options_.equality_selectivity;
          node->bound_variables = a.bound_variables;
          node->bound_variables.insert(b.bound_variables.begin(),
                                       b.bound_variables.end());
          node->property_variables = a.property_variables;
          node->property_variables.insert(b.property_variables.begin(),
                                          b.property_variables.end());
          pending_filters_.erase(it);
          const size_t hi = std::max(i, j), lo = std::min(i, j);
          units->erase(units->begin() + hi);
          units->erase(units->begin() + lo);
          units->push_back(AttachFilters(std::move(node)));
          return units->back();
        }
      }
    }
    return nullptr;
  }

  // Wraps `node` in a SelectEmbeddings for every pending cross-variable
  // clause whose variables are now all bound.
  PlanNodePtr AttachFilters(PlanNodePtr node) {
    std::vector<CnfClause> ready;
    for (auto it = pending_filters_.begin(); it != pending_filters_.end();) {
      const auto vars = it->Variables();
      // Every variable of the clause must be bound AND have its scan's
      // property projection present (predicates read property columns).
      const bool all_bound = std::all_of(
          vars.begin(), vars.end(), [&](const std::string& v) {
            return node->bound_variables.contains(v) &&
                   node->property_variables.contains(v);
          });
      if (all_bound) {
        ready.push_back(*it);
        it = pending_filters_.erase(it);
      } else {
        ++it;
      }
    }
    if (ready.empty()) return node;
    auto filter = std::make_shared<PlanNode>();
    filter->kind = PlanNode::Kind::kFilter;
    filter->estimated_cardinality =
        node->estimated_cardinality * ClausesSelectivity(ready, options_);
    filter->clauses = std::move(ready);
    filter->bound_variables = node->bound_variables;
    filter->property_variables = node->property_variables;
    filter->left = std::move(node);
    return filter;
  }


  // --- dynamic programming (optimal bushy join order) --------------------

  // Enumerates every bushy join tree over the scan units, keeping the
  // cheapest plan per unit subset (classic DPsub). Connected splits are
  // preferred; a cartesian split is admitted only when a subset has no
  // connected split. Expansions, value joins and filters are applied
  // after the join order is fixed.
  Result<PlanNodePtr> PlanDynamicProgramming() {
    // Units connect through shared variables; units that only connect via
    // a pending variable-length expansion must NOT be cartesian-joined
    // here (the expansion binds them cheaply later). So: optimal DP join
    // order WITHIN each connected component, then the greedy combiner
    // handles expansions, value joins and residual cartesians across the
    // component trees.
    const int n = static_cast<int>(units_.size());
    if (n == 0) {
      return Status::PlanError("query has no scannable elements");
    }
    // Union-find over units by shared variables.
    std::vector<int> parent(n);
    for (int i = 0; i < n; ++i) parent[i] = i;
    std::function<int(int)> find = [&](int x) {
      return parent[x] == x ? x : parent[x] = find(parent[x]);
    };
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (!SharedVariables(*units_[i], *units_[j]).empty()) {
          parent[find(i)] = find(j);
        }
      }
    }
    std::map<int, std::vector<int>> components;
    for (int i = 0; i < n; ++i) components[find(i)].push_back(i);

    std::vector<PlanNodePtr> component_trees;
    for (const auto& [root, members] : components) {
      GRADOOP_ASSIGN_OR_RETURN(PlanNodePtr tree, DpOverUnits(members));
      component_trees.push_back(AttachFiltersRecursively(std::move(tree)));
      GRADOOP_RETURN_IF_ERROR(VerifyCandidate(component_trees.back()));
    }
    units_ = std::move(component_trees);
    // The greedy loop finishes the plan: expansions, value joins and (only
    // if unavoidable) cartesian products between component trees.
    return PlanGreedy();
  }

  // Classic DPsub over the given unit indices, minimizing TOTAL cost =
  // the sum of all intermediate result sizes (the final cardinality alone
  // is order-independent and cannot distinguish good from disastrous
  // orders).
  Result<PlanNodePtr> DpOverUnits(const std::vector<int>& members) {
    const int k = static_cast<int>(members.size());
    if (k == 1) return units_[members[0]];
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<PlanNodePtr> best(1u << k);
    std::vector<double> cost(1u << k, kInf);
    // Shuffle elisions of the top join of best[mask]; cost ties break
    // toward more elisions (see ElisionScore).
    std::vector<int> score(1u << k, -1);
    for (int i = 0; i < k; ++i) {
      best[1u << i] = units_[members[i]];
      cost[1u << i] = units_[members[i]]->estimated_cardinality;
    }
    for (uint32_t mask = 1; mask < (1u << k); ++mask) {
      if ((mask & (mask - 1)) == 0) continue;  // singleton
      for (uint32_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        const uint32_t rest = mask ^ sub;
        if (sub > rest) continue;  // each split once
        if (!best[sub] || !best[rest]) continue;
        const auto shared = SharedVariables(*best[sub], *best[rest]);
        if (shared.empty()) continue;  // connected splits only
        PlanNodePtr cand = MakeJoin(best[sub], best[rest], shared);
        const double cand_cost =
            cost[sub] + cost[rest] + cand->estimated_cardinality;
        const int cand_score = ElisionScore(*best[sub], *best[rest], shared);
        if (cand_cost < cost[mask] ||
            (cand_cost == cost[mask] && cand_score > score[mask])) {
          cost[mask] = cand_cost;
          score[mask] = cand_score;
          best[mask] = std::move(cand);
        }
      }
    }
    if (!best[(1u << k) - 1]) {
      return Status::PlanError("component has no connected join order");
    }
    return best[(1u << k) - 1];
  }

  // Wraps every node of a finished tree whose newly-bound variables
  // satisfy pending cross predicates (post-pass used by the DP planner).
  PlanNodePtr AttachFiltersRecursively(PlanNodePtr node) {
    if (node->left) node->left = AttachFiltersRecursively(node->left);
    if (node->right) node->right = AttachFiltersRecursively(node->right);
    return AttachFilters(std::move(node));
  }

  // --- greedy search ----------------------------------------------------

  Result<PlanNodePtr> PlanGreedy() {
    if (units_.empty()) {
      return Status::PlanError("query has no scannable elements");
    }
    while (units_.size() > 1 || !pending_expansions_.empty()) {
      double best_cost = std::numeric_limits<double>::infinity();
      int best_i = -1, best_j = -1;  // join candidate
      int best_score = -1;           // shuffle elisions of the best join
      int best_exp_unit = -1, best_exp_edge = -1;  // expansion candidate
      bool best_exp_reverse = false;

      for (size_t i = 0; i < units_.size(); ++i) {
        for (size_t j = i + 1; j < units_.size(); ++j) {
          const auto shared = SharedVariables(*units_[i], *units_[j]);
          if (shared.empty()) continue;
          const double cost = EstimateJoin(*units_[i], *units_[j], shared);
          // Exact cost ties break toward the candidate whose shuffles the
          // partitioning analysis elides; otherwise first-found wins as
          // before, keeping existing plans stable.
          const int score = ElisionScore(*units_[i], *units_[j], shared);
          if (cost < best_cost ||
              (best_i >= 0 && cost == best_cost && score > best_score)) {
            best_cost = cost;
            best_score = score;
            best_i = static_cast<int>(i);
            best_j = static_cast<int>(j);
            best_exp_unit = -1;
          }
        }
      }
      for (size_t u = 0; u < units_.size(); ++u) {
        for (size_t x = 0; x < pending_expansions_.size(); ++x) {
          const QueryEdge& e = qg_.edges()[pending_expansions_[x]];
          const auto [ok, reverse] = ExpansionFit(*units_[u], e);
          if (!ok) continue;
          const double cost = EstimateExpansion(*units_[u], e, reverse);
          if (cost < best_cost) {
            best_cost = cost;
            best_i = best_j = -1;
            best_exp_unit = static_cast<int>(u);
            best_exp_edge = static_cast<int>(x);
            best_exp_reverse = reverse;
          }
        }
      }

      if (best_i >= 0) {
        PlanNodePtr joined = AttachFilters(
            MakeJoin(units_[best_i], units_[best_j],
                     SharedVariables(*units_[best_i], *units_[best_j])));
        units_.erase(units_.begin() + best_j);
        units_.erase(units_.begin() + best_i);
        units_.push_back(std::move(joined));
        GRADOOP_RETURN_IF_ERROR(VerifyCandidate(units_.back()));
        continue;
      }
      if (best_exp_unit >= 0) {
        PlanNodePtr expanded = AttachFilters(
            MakeExpansion(units_[best_exp_unit],
                          pending_expansions_[best_exp_edge],
                          best_exp_reverse));
        units_.erase(units_.begin() + best_exp_unit);
        pending_expansions_.erase(pending_expansions_.begin() +
                                  best_exp_edge);
        units_.push_back(std::move(expanded));
        GRADOOP_RETURN_IF_ERROR(VerifyCandidate(units_.back()));
        continue;
      }
      // No connected combination exists. Prefer a value join on a
      // pending property equality over a raw cartesian product.
      if (PlanNodePtr vj = TryValueJoin(&units_); vj != nullptr) {
        GRADOOP_RETURN_IF_ERROR(VerifyCandidate(vj));
        continue;
      }
      if (units_.size() < 2) {
        return Status::PlanError(
            "variable-length path with no bound endpoint");
      }
      std::sort(units_.begin(), units_.end(),
                [](const PlanNodePtr& a, const PlanNodePtr& b) {
                  return a->estimated_cardinality < b->estimated_cardinality;
                });
      PlanNodePtr joined =
          AttachFilters(MakeJoin(units_[0], units_[1], {}));
      units_.erase(units_.begin(), units_.begin() + 2);
      units_.push_back(std::move(joined));
      GRADOOP_RETURN_IF_ERROR(VerifyCandidate(units_.back()));
    }
    if (!pending_filters_.empty()) {
      return Status::PlanError("unapplied cross predicates remain");
    }
    return units_.front();
  }

  // --- left-deep baseline ------------------------------------------------

  Result<PlanNodePtr> PlanLeftDeep() {
    if (units_.empty()) {
      return Status::PlanError("query has no scannable elements");
    }
    // Textual order: fold units left to right, preferring the first unit
    // that connects to the current plan; apply expansions as soon as an
    // endpoint is bound.
    PlanNodePtr current = units_.front();
    units_.erase(units_.begin());
    current = AttachFilters(current);
    GRADOOP_RETURN_IF_ERROR(VerifyCandidate(current));
    while (!units_.empty() || !pending_expansions_.empty()) {
      // Expansions first (textual order puts them where they appear).
      bool advanced = false;
      for (size_t x = 0; x < pending_expansions_.size(); ++x) {
        const QueryEdge& e = qg_.edges()[pending_expansions_[x]];
        const auto [ok, reverse] = ExpansionFit(*current, e);
        if (ok) {
          current = AttachFilters(
              MakeExpansion(current, pending_expansions_[x], reverse));
          GRADOOP_RETURN_IF_ERROR(VerifyCandidate(current));
          pending_expansions_.erase(pending_expansions_.begin() + x);
          advanced = true;
          break;
        }
      }
      if (advanced) continue;
      // First connecting unit in textual order; else cartesian with the
      // next unit.
      size_t pick = 0;
      std::vector<std::string> shared;
      for (size_t i = 0; i < units_.size(); ++i) {
        shared = SharedVariables(*current, *units_[i]);
        if (!shared.empty()) {
          pick = i;
          break;
        }
      }
      if (units_.empty()) {
        return Status::PlanError(
            "variable-length path with no bound endpoint");
      }
      if (shared.empty()) {
        // Try a value join of `current` with some unit before falling
        // back to a cartesian product.
        std::vector<PlanNodePtr> pool;
        pool.push_back(current);
        pool.insert(pool.end(), units_.begin(), units_.end());
        if (TryValueJoin(&pool) != nullptr) {
          current = pool.back();
          pool.pop_back();
          units_.assign(pool.begin(), pool.end());
          GRADOOP_RETURN_IF_ERROR(VerifyCandidate(current));
          continue;
        }
      }
      // Left-deep: keep `current` on the left regardless of size.
      auto node = std::make_shared<PlanNode>();
      node->kind = PlanNode::Kind::kJoin;
      node->left = current;
      node->right = units_[pick];
      node->join_variables = shared;
      node->estimated_cardinality =
          EstimateJoin(*node->left, *node->right, shared);
      node->bound_variables = node->left->bound_variables;
      node->bound_variables.insert(node->right->bound_variables.begin(),
                                   node->right->bound_variables.end());
      node->property_variables = node->left->property_variables;
      node->property_variables.insert(
          node->right->property_variables.begin(),
          node->right->property_variables.end());
      units_.erase(units_.begin() + pick);
      current = AttachFilters(node);
      GRADOOP_RETURN_IF_ERROR(VerifyCandidate(current));
    }
    if (!pending_filters_.empty()) {
      return Status::PlanError("unapplied cross predicates remain");
    }
    return current;
  }

  const QueryGraph& qg_;
  const GraphStatistics& stats_;
  const PlannerOptions& options_;
  std::vector<PlanNodePtr> units_;
  std::vector<int> pending_expansions_;
  std::vector<CnfClause> pending_filters_;
};

}  // namespace

double EstimateScanCardinality(const cypher::QueryGraph& query_graph,
                               const GraphStatistics& stats,
                               const PlannerOptions& options,
                               const std::string& variable, bool is_vertex) {
  if (is_vertex) {
    const QueryVertex* v = query_graph.FindVertex(variable);
    if (v == nullptr) return 0.0;
    return static_cast<double>(stats.VertexCountByLabels(v->labels)) *
           ClausesSelectivity(query_graph.ElementPredicates(variable),
                              options);
  }
  const QueryEdge* e = query_graph.FindEdge(variable);
  if (e == nullptr) return 0.0;
  return static_cast<double>(stats.EdgeCountByLabels(e->types)) *
         ClausesSelectivity(query_graph.ElementPredicates(variable), options);
}

Result<PlanNodePtr> PlanQuery(const cypher::QueryGraph& query_graph,
                              const GraphStatistics& stats,
                              const PlannerOptions& options) {
  Planner planner(query_graph, stats, options);
  return planner.Plan();
}

}  // namespace gradoop::query
