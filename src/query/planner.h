#ifndef GRADOOP_QUERY_PLANNER_H_
#define GRADOOP_QUERY_PLANNER_H_

#include "common/result.h"
#include "query/exec/batch_layout.h"
#include "query/graph_statistics.h"
#include "query/plan.h"

namespace gradoop::query {

// Planner knobs; defaults correspond to the paper's greedy planner, the
// alternatives exist for the ablation benchmarks.
struct PlannerOptions {
  enum class Mode {
    kGreedy,    // §3.2: bushy plan minimizing estimated intermediate size
    kLeftDeep,  // textual order, left-deep joins (ablation baseline)
    // Exhaustive dynamic programming over the scan units (optimal bushy
    // join order under the cost model); expansions and filters attach
    // afterwards. Falls back to greedy beyond kDpUnitLimit units.
    kDynamicProgramming,
  };

  // Unit-count cap for the DP enumeration (2^n subsets).
  static constexpr int kDpUnitLimit = 14;
  Mode mode = Mode::kGreedy;

  // A join build side whose estimated cardinality is below this threshold
  // (and below the probe side) is broadcast instead of repartitioned.
  double broadcast_threshold = 1000.0;
  // Disables broadcast joins entirely (ablation).
  bool allow_broadcast = true;

  // Reuse the result of identical edge scans within one query (the
  // paper's future-work item on recurring subqueries): Query 6 scans
  // hasInterest three times; with sharing it is scanned once.
  bool share_scan_results = false;

  // Compile-time passes applied by exec::PlanCompiler when lowering the
  // logical plan (ablation knobs; see exec/plan_compiler.h).
  bool fuse_filters = true;
  bool prune_properties = true;
  // Partitioning analysis (exec/partitioning.h): elide repartition-join
  // shuffles of inputs provably hash-partitioned on the join key, and
  // break join-order cost ties toward the shuffle-free candidate. Off =
  // ablation baseline for the elision A/B tests.
  bool elide_shuffles = true;

  // Execution engine: row-at-a-time Embedding kernels (the default), or
  // the columnar EmbeddingBatch kernels (docs/vectorized.md). Both
  // execute the same compiled plan and produce byte-identical results;
  // batch_size is the rows-per-batch capacity the vectorized kernels
  // build to (stamped into the plan's BatchLayout claims either way).
  enum class ExecutionEngine {
    kRow,
    kBatch,
  };
  ExecutionEngine engine = ExecutionEngine::kRow;
  int batch_size = exec::kDefaultBatchSize;

  // Default selectivity assumed per predicate clause, by comparison class.
  double equality_selectivity = 0.05;
  double range_selectivity = 0.25;
  double inequality_selectivity = 0.9;

  // Run analysis::PlanVerifier over every combined partial plan during the
  // search (defaults on in debug builds). Catches bookkeeping bugs at the
  // combination step that introduces them instead of at execution time;
  // the final plan is verified by the engine regardless.
#ifdef NDEBUG
  bool verify_candidates = false;
#else
  bool verify_candidates = true;
#endif
};

// Builds a physical plan for `query_graph` over a graph described by
// `stats`. Follows the paper's greedy approach: decompose the query into
// vertex/edge scan units, then iteratively combine the pair of partial
// plans whose join (or variable-length expansion) has the smallest
// estimated output cardinality, until one plan covers the whole query.
// Cross-variable filters attach as soon as their variables are bound.
Result<PlanNodePtr> PlanQuery(const cypher::QueryGraph& query_graph,
                              const GraphStatistics& stats,
                              const PlannerOptions& options = {});

// Cardinality estimation helpers (exposed for tests and ablations).
double EstimateScanCardinality(const cypher::QueryGraph& query_graph,
                               const GraphStatistics& stats,
                               const PlannerOptions& options,
                               const std::string& variable, bool is_vertex);

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_PLANNER_H_
