#include "query/cypher_engine.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "analysis/plan_verifier.h"
#include "common/cancellation.h"
#include "common/timer.h"
#include "cypher/parser.h"
#include "query/batch_operators.h"
#include "query/exec/interruptibility.h"
#include "query/exec/memory_bound.h"
#include "query/exec/plan_compiler.h"
#include "query/query_profile.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/query_log.h"

namespace gradoop::query {

namespace dfl = ::gradoop::dataflow;

namespace {

EmbeddingSet ApplyDistinct(const EmbeddingSet& input,
                           const cypher::QueryGraph& qg);
EmbeddingSet ApplyLimit(const EmbeddingSet& input, int64_t limit);

exec::CompileOptions CompileOptionsFrom(const PlannerOptions& planner,
                                        int num_workers,
                                        const GraphStatistics* statistics) {
  exec::CompileOptions options;
  options.fuse_filters = planner.fuse_filters;
  options.prune_properties = planner.prune_properties;
  options.share_scans = planner.share_scan_results;
  options.elide_shuffles = planner.elide_shuffles;
  options.num_workers = num_workers;
  options.statistics = statistics;
  options.batch_size = planner.batch_size;
  return options;
}

// GQL007 admission gate: when the engine carries a memory budget, a plan
// whose static peak bound exceeds it is rejected with a located
// diagnostic before Open() — no scan, shuffle or join ever runs.
Status CheckMemoryAdmission(const std::string& query,
                            const exec::PhysicalOperator& root,
                            uint64_t budget_bytes) {
  if (budget_bytes == 0 || !root.has_memory_bound() ||
      root.memory_bound().peak_bytes <= budget_bytes) {
    return Status::Ok();
  }
  analysis::Diagnostic diag;
  diag.code = analysis::kCodeMemoryBudgetExceeded;
  diag.severity = analysis::Severity::kError;
  diag.message = "plan's static peak-memory bound (" +
                 std::to_string(root.memory_bound().peak_bytes) +
                 " bytes) exceeds max_query_memory_bytes (" +
                 std::to_string(budget_bytes) + " bytes)";
  // The bound belongs to the whole plan, so the diagnostic anchors at the
  // start of the query and underlines its first line.
  const size_t eol = query.find('\n');
  diag.span = {/*offset=*/0,
               /*length=*/eol == std::string::npos ? query.size() : eol,
               /*line=*/1, /*column=*/1};
  return Status::PlanError(analysis::RenderDiagnostic(diag, query));
}

// GQL008: a tripped cancellation token unwinds to a located diagnostic,
// the same shape as the GQL007 admission gate's so both terminal
// outcomes render identically. Cancellation belongs to the whole query,
// so the span anchors at its first line; the message attributes the trip
// to the engine phase that observed it, plus the tripping operator's own
// message when execution supplied one.
Status CancelledStatus(const std::string& query,
                       common::CancellationToken& token, const char* phase,
                       const std::string& detail) {
  analysis::Diagnostic diag;
  diag.code = analysis::kCodeQueryCancelled;
  diag.severity = analysis::Severity::kError;
  diag.message =
      std::string(token.reason() == common::CancelReason::kDeadline
                      ? "query timed out"
                      : "query cancelled") +
      " during " + phase + " phase";
  if (!detail.empty()) diag.message += " (" + detail + ")";
  const size_t eol = query.find('\n');
  diag.span = {/*offset=*/0,
               /*length=*/eol == std::string::npos ? query.size() : eol,
               /*line=*/1, /*column=*/1};
  return Status::ExecutionError(analysis::RenderDiagnostic(diag, query));
}

// Per-operator plan-quality telemetry, observed right after execution so
// the figures land in the same metrics snapshot the query profile
// captures: every operator's cardinality Q-error into the "plan.qerror"
// histogram (ratio bounds — most estimates land within a small factor),
// and, where both sides exist, the measured-peak / claimed-peak memory
// accuracy into "plan.mem.accuracy". Returns the plan's worst Q-error.
double ObservePlanQuality(const exec::PhysicalOperator& op,
                          telemetry::MetricsRegistry& metrics) {
  double max_qerror = telemetry::QError(
      op.estimated_cardinality(),
      static_cast<double>(op.stats().actual_rows));
  metrics.ObserveWith("plan.qerror", max_qerror,
                      telemetry::MetricsRegistry::RatioBounds());
  if (op.has_memory_bound() && op.memory_bound().peak_bytes > 0 &&
      op.stats().actual_peak_bytes > 0) {
    metrics.ObserveWith(
        "plan.mem.accuracy",
        static_cast<double>(op.stats().actual_peak_bytes) /
            static_cast<double>(op.memory_bound().peak_bytes),
        telemetry::MetricsRegistry::RatioBounds());
  }
  for (const exec::PhysicalOperatorPtr& child : op.children()) {
    const double child_qerror = ObservePlanQuality(*child, metrics);
    if (child_qerror > max_qerror) max_qerror = child_qerror;
  }
  return max_qerror;
}

}  // namespace

CypherEngine::CypherEngine(epgm::LogicalGraph graph,
                           PlannerOptions planner_options)
    : graph_(std::move(graph)),
      indexed_(epgm::IndexedLogicalGraph::Build(graph_)),
      stats_(GraphStatistics::Compute(graph_)),
      planner_options_(planner_options),
      audit_random_(exec::CancellationAuditSeed()) {}

void CypherEngine::Cancel() { cancellation().RequestCancel(); }

common::CancellationToken& CypherEngine::cancellation() {
  return graph_.vertices().context()->cancellation();
}

Result<CypherMatchResult> CypherEngine::Execute(
    const std::string& query, const MorphismSetting& semantics) {
  if (exec::CancellationAuditEnabled() && audit_inject_checkpoint_ == 0) {
    // Audit probe (docs/cancellation.md): run the query once with the
    // token armed to trip at a randomized checkpoint count. If the trip
    // fires, the probe MUST unwind to an error — an injected cancel that
    // the engine swallows means some path ignores its token. Queries
    // that finish before the checkpoint simply never trip. The clean
    // re-run below gives the caller the real result either way.
    audit_inject_checkpoint_ = 1 + audit_random_.NextUint64(512);
    Result<CypherMatchResult> probe = ExecuteInternal(query, semantics);
    audit_inject_checkpoint_ = 0;
    common::CancellationToken& token = cancellation();
    const bool tripped = token.cancelled();
    exec::CancellationAuditStats::Instance().RecordInjection(tripped);
    if (tripped && probe.ok()) {
      std::fprintf(stderr,
                   "[gradoop] cancellation audit FAILED: injected cancel "
                   "(reason=%s, at poll %llu) was swallowed — the query "
                   "completed normally\n",
                   common::CancelReasonName(token.reason()),
                   static_cast<unsigned long long>(token.trip_poll()));
      std::abort();
    }
  }
  return ExecuteInternal(query, semantics);
}

Result<CypherMatchResult> CypherEngine::ExecuteInternal(
    const std::string& query, const MorphismSetting& semantics) {
  dataflow::ExecutionContext& ctx = *graph_.vertices().context();
  telemetry::Telemetry& tel = ctx.telemetry();
  const bool traced = tel.enabled();
  const std::string engine_name =
      planner_options_.engine == PlannerOptions::ExecutionEngine::kBatch
          ? "batch"
          : "row";
  // Arm the cancellation window for this query: fresh token, then the
  // deadline (if any) and the audit's injected checkpoint (if probing).
  // Every kernel loop downstream polls this token (docs/cancellation.md).
  common::CancellationToken& cancel = ctx.cancellation();
  cancel.Reset();
  if (query_deadline_sec_ > 0.0) {
    cancel.SetDeadline(
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(query_deadline_sec_)));
  }
  if (audit_inject_checkpoint_ != 0) {
    cancel.InjectCancelAfter(audit_inject_checkpoint_);
  }
  std::vector<telemetry::PhaseProfile> phases;
  Timer total_timer;
  Timer phase_timer;
  double phase_begin_us = traced ? tel.tracer().NowMicros() : 0.0;
  // Closes the current phase: records its wall time and, when tracing,
  // emits a driver-row "query" span covering it.
  auto end_phase = [&](const char* name) {
    phases.push_back({name, phase_timer.ElapsedSeconds()});
    if (traced) {
      const double now_us = tel.tracer().NowMicros();
      tel.tracer().AddSpan(name, telemetry::kCategoryQuery, phase_begin_us,
                           now_us, /*worker=*/-1);
      phase_begin_us = now_us;
    }
    phase_timer.Restart();
  };
  // Terminal cancel path: counts and logs the cancellation (telemetry-on
  // only, like the success tail), then renders the GQL008 diagnostic.
  // `phase_name` is the engine phase during which the trip was observed.
  auto cancelled = [&](const char* phase_name, const std::string& detail,
                       uint64_t peak_memory_bytes) -> Status {
    if (traced) {
      tel.metrics().AddCounter("query.cancelled", 1);
      tel.metrics().ObserveWith(
          "query.cancel.latency_us", cancel.SecondsSinceTrip() * 1e6,
          telemetry::MetricsRegistry::MicroLatencyBounds());
      telemetry::QueryLogEntry entry;
      entry.query_hash = telemetry::QueryTextHash(query);
      entry.name = "q_" + entry.query_hash.substr(0, 8);
      entry.engine = engine_name;
      entry.total_wall_sec = total_timer.ElapsedSeconds();
      entry.peak_memory_bytes = peak_memory_bytes;
      entry.cancelled_phase = phase_name;
      entry.cancel_reason = common::CancelReasonName(cancel.reason());
      entry.phases = phases;
      // The phase being unwound never ended; record its partial time so
      // the log's phase list is never empty (the validator requires it).
      if (entry.phases.empty() || entry.phases.back().name != phase_name) {
        entry.phases.push_back({phase_name, phase_timer.ElapsedSeconds()});
      }
      ctx.query_log().Append(entry);
    }
    return CancelledStatus(query, cancel, phase_name, detail);
  };

  GRADOOP_ASSIGN_OR_RETURN(cypher::CypherQuery ast,
                           cypher::ParseCypher(query));
  end_phase("parse");
  if (cancel.CancelledOrExpired()) return cancelled("parse", "", 0);
  // Semantic analysis gate: scope/kind/bound errors reject the query with
  // located diagnostics; the surviving AST carries the constant-folded
  // WHERE, and statically unsatisfiable queries skip planning entirely.
  analysis::AnalyzerOptions analyzer_options;
  analyzer_options.statistics = &stats_;
  analyzer_options.semantics = semantics;
  const analysis::AnalysisResult sema =
      analysis::AnalyzeQuery(ast, analyzer_options);
  if (sema.HasErrors()) return Status::PlanError(sema.ErrorSummary());
  ast.where = sema.folded_where;
  GRADOOP_ASSIGN_OR_RETURN(cypher::QueryGraph qg,
                           cypher::QueryGraph::Build(ast));
  end_phase("analyze");
  if (cancel.CancelledOrExpired()) return cancelled("analyze", "", 0);
  if (sema.unsatisfiable || qg.unsatisfiable()) {
    // Statically empty match set (contradictory labels or predicates): no
    // plan is built, compiled or executed.
    CypherMatchResult result;
    result.query_graph = std::move(qg);
    result.embeddings = {
        dfl::Dataset<Embedding>::Empty(graph_.vertices().context()),
        EmbeddingMetaData()};
    result.phases = std::move(phases);
    result.total_wall_sec = total_timer.ElapsedSeconds();
    result.engine = engine_name;
    // Disarm before returning: a deadline left armed would trip polls in
    // unrelated dataflow work after the query (e.g. Match()'s collection
    // build) and silently truncate it.
    cancel.Reset();
    return result;
  }
  GRADOOP_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanQuery(qg, stats_, planner_options_));
  // Invariant gate on the logical plan: structural soundness always,
  // predicate type checking in debug builds. A failure here is a planner
  // bug, not a user error.
  GRADOOP_RETURN_IF_ERROR(analysis::VerifyPlan(qg, plan));
  end_phase("plan");
  if (cancel.CancelledOrExpired()) return cancelled("plan", "", 0);
  // Lower to physical operators: the compiler resolves every column
  // layout, join key and property slot once; the second gate asserts the
  // compiled layouts are mutually consistent before anything runs.
  const int num_workers = graph_.vertices().context()->num_workers();
  exec::PlanCompiler compiler(
      qg, semantics,
      CompileOptionsFrom(planner_options_, num_workers, &stats_));
  GRADOOP_ASSIGN_OR_RETURN(exec::PhysicalOperatorPtr physical,
                           compiler.Compile(plan));
  GRADOOP_RETURN_IF_ERROR(analysis::VerifyCompiledPlan(
      qg, *physical, num_workers, planner_options_.batch_size));
  // Admission control: the static bound gates execution (docs/memory.md).
  // This runs after the verifier, so the bound it trusts was re-derived.
  GRADOOP_RETURN_IF_ERROR(
      CheckMemoryAdmission(query, *physical, max_query_memory_bytes_));
  end_phase("compile");
  if (cancel.CancelledOrExpired()) return cancelled("compile", "", 0);
  ScanCache scan_cache;
  BatchScanCache batch_scan_cache;
  const bool share_scans = planner_options_.share_scan_results;
  exec::ExecEnv env{&indexed_, share_scans ? &scan_cache : nullptr,
                    share_scans ? &batch_scan_cache : nullptr};
  // Per-query accounting window: reset-enable around the execution so the
  // peaks belong to this query alone; the guard disables on every exit
  // path (a failed Open/Execute must not leave a stale enabled accountant
  // charging unrelated dataflow work).
  dfl::MemoryAccountant& accountant =
      graph_.vertices().context()->accountant();
  accountant.Reset();
  if (account_memory_) accountant.Enable();
  struct AccountantGuard {
    dfl::MemoryAccountant* accountant;
    ~AccountantGuard() { accountant->Disable(); }
  } accountant_guard{&accountant};
  GRADOOP_RETURN_IF_ERROR(physical->Open(env));
  // Both engines run the same compiled (and verified) plan. The batch
  // engine flows columnar EmbeddingBatches through every operator and
  // converts back to rows once at the root — outside any operator's
  // accounting frame — so DISTINCT/LIMIT and the result surface stay
  // row-based and byte-identical either way (docs/vectorized.md).
  auto run_root = [&]() -> Result<EmbeddingSet> {
    if (planner_options_.engine != PlannerOptions::ExecutionEngine::kBatch) {
      return physical->Execute(env);
    }
    GRADOOP_ASSIGN_OR_RETURN(BatchSet batches, physical->ExecuteBatch(env));
    return BatchesToRows(batches);
  };
  // Execution unwind: the operator that observed the trip returned an
  // error, which converts to GQL008 only when the token actually tripped
  // (other failures pass through untouched). The injected-cancel audit
  // runs here, while the compiled plan is still alive and the accountant
  // still holds this query's window.
  auto cancelled_execute = [&](const std::string& detail) -> Status {
    if (physical->stats().executed) {
      // The root produced its output before a later boundary observed the
      // trip; release it so the audit sees a drained accountant.
      accountant.Release(physical->stats().output_bytes);
    }
    if (exec::CancellationAuditEnabled()) {
      exec::AuditCancelledQuery(*physical, ctx);
    }
    const uint64_t cancelled_peak = accountant.peak_bytes();
    accountant.Disable();
    return cancelled("execute", detail, cancelled_peak);
  };
  Result<EmbeddingSet> run = run_root();
  if (!run.ok()) {
    if (cancel.cancelled()) return cancelled_execute(run.status().message());
    return run.status();
  }
  EmbeddingSet embeddings = std::move(run).value();
  if (qg.return_distinct()) embeddings = ApplyDistinct(embeddings, qg);
  if (qg.limit() >= 0) embeddings = ApplyLimit(embeddings, qg.limit());
  if (cancel.CancelledOrExpired()) return cancelled_execute("");
  accountant.Disable();
  if (traced) {
    tel.metrics().SetGauge("memory.bytes.peak",
                           static_cast<double>(accountant.peak_bytes()));
    tel.metrics().SetGauge("memory.bytes.current",
                           static_cast<double>(accountant.current_bytes()));
  }
  // Runtime audit (CI): measured per-operator peaks vs the static model.
  // Aborts the process on a violation — see memory_bound.h.
  if (exec::MemoryAuditEnabled()) {
    exec::AuditCompiledPlanMemory(*physical, num_workers);
  }
  end_phase("execute");
  CypherMatchResult result;
  result.query_graph = std::move(qg);
  result.plan = std::move(plan);
  result.physical = std::move(physical);
  result.embeddings = std::move(embeddings);
  result.phases = std::move(phases);
  result.total_wall_sec = total_timer.ElapsedSeconds();
  result.engine = engine_name;
  // Disarm before the observability tail and the caller's follow-up
  // dataflow work (e.g. Match()'s collection build): a deadline left
  // armed would trip their polls and silently truncate results.
  cancel.Reset();
  if (traced) {
    // Observability tail, telemetry-on only: plan-quality metrics first
    // (so they land in the snapshot the profile captures), then the
    // profile itself into the flight recorder and the query log.
    const double max_qerror =
        ObservePlanQuality(*result.physical, tel.metrics());
    tel.metrics().SetGauge("plan.qerror.max", max_qerror);
    for (const telemetry::PhaseProfile& phase : result.phases) {
      tel.metrics().ObserveWith(
          "phase.wall_us." + phase.name, phase.wall_sec * 1e6,
          telemetry::MetricsRegistry::MicroLatencyBounds());
    }
    telemetry::QueryProfile profile = BuildQueryProfile(
        "q_" + telemetry::QueryTextHash(query).substr(0, 8), query, result,
        ctx);
    ctx.query_log().Record(profile);
    ctx.flight_recorder().Record(std::move(profile));
  }
  return result;
}

Result<epgm::GraphCollection> CypherEngine::Match(
    const std::string& query, const MorphismSetting& semantics) {
  GRADOOP_ASSIGN_OR_RETURN(CypherMatchResult result,
                           Execute(query, semantics));
  return BuildMatchCollection(graph_, result.query_graph, result.embeddings);
}

Result<uint64_t> CypherEngine::Count(const std::string& query,
                                     const MorphismSetting& semantics) {
  GRADOOP_ASSIGN_OR_RETURN(CypherMatchResult result,
                           Execute(query, semantics));
  return result.embeddings.data.Count();
}

Result<std::string> CypherEngine::Explain(const std::string& query,
                                          const MorphismSetting& semantics) {
  GRADOOP_ASSIGN_OR_RETURN(cypher::CypherQuery ast,
                           cypher::ParseCypher(query));
  analysis::AnalyzerOptions analyzer_options;
  analyzer_options.statistics = &stats_;
  analyzer_options.semantics = semantics;
  const analysis::AnalysisResult sema =
      analysis::AnalyzeQuery(ast, analyzer_options);
  if (sema.HasErrors()) return Status::PlanError(sema.ErrorSummary());
  ast.where = sema.folded_where;
  GRADOOP_ASSIGN_OR_RETURN(cypher::QueryGraph qg,
                           cypher::QueryGraph::Build(ast));
  if (sema.unsatisfiable || qg.unsatisfiable()) {
    return std::string("EmptyResult (unsatisfiable)\n");
  }
  GRADOOP_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanQuery(qg, stats_, planner_options_));
  GRADOOP_RETURN_IF_ERROR(analysis::VerifyPlan(qg, plan));
  // EXPLAIN shows what would run, so it renders the compiled plan (fused
  // filters, pruned projections and all), verified like a real execution —
  // including the admission gate, so a budgeted engine EXPLAINs the same
  // rejection Execute() would produce.
  const int num_workers = graph_.vertices().context()->num_workers();
  exec::PlanCompiler compiler(
      qg, semantics,
      CompileOptionsFrom(planner_options_, num_workers, &stats_));
  GRADOOP_ASSIGN_OR_RETURN(exec::PhysicalOperatorPtr physical,
                           compiler.Compile(plan));
  GRADOOP_RETURN_IF_ERROR(analysis::VerifyCompiledPlan(
      qg, *physical, num_workers, planner_options_.batch_size));
  GRADOOP_RETURN_IF_ERROR(
      CheckMemoryAdmission(query, *physical, max_query_memory_bytes_));
  // Under the batch engine EXPLAIN additionally renders each operator's
  // batch-layout claim (batch=<n>); row-engine output is unchanged so
  // existing goldens stay byte-stable.
  exec::PhysicalOperator::RenderOptions render;
  render.batch_layout =
      planner_options_.engine == PlannerOptions::ExecutionEngine::kBatch;
  return physical->ToString(render);
}

Result<std::string> CypherEngine::ExplainAnalyze(
    const std::string& query, const MorphismSetting& semantics) {
  GRADOOP_ASSIGN_OR_RETURN(CypherMatchResult result,
                           Execute(query, semantics));
  if (result.physical == nullptr) {
    return std::string("EmptyResult (unsatisfiable)\n");
  }
  return result.physical->ToString(
      {.actuals = true,
       .timing = true,
       .batch_layout = planner_options_.engine ==
                       PlannerOptions::ExecutionEngine::kBatch});
}

Result<EmbeddingSet> ExecutePlan(const PlanNodePtr& plan,
                                 const cypher::QueryGraph& query_graph,
                                 const epgm::IndexedLogicalGraph& graph,
                                 const MorphismSetting& semantics,
                                 ScanCache* scan_cache) {
  // Passes off: callers hand-build logical plans and expect them to run
  // verbatim, with the full per-element projections.
  exec::CompileOptions options;
  options.fuse_filters = false;
  options.prune_properties = false;
  options.share_scans = scan_cache != nullptr;
  exec::PlanCompiler compiler(query_graph, semantics, options);
  GRADOOP_ASSIGN_OR_RETURN(exec::PhysicalOperatorPtr root,
                           compiler.Compile(plan));
  exec::ExecEnv env{&graph, scan_cache};
  GRADOOP_RETURN_IF_ERROR(root->Open(env));
  return root->Execute(env);
}

namespace {

// RETURN DISTINCT: deduplicates embeddings on the projected row — the
// returned bindings/values for explicit items, or every variable binding
// for `RETURN *`.
std::string DistinctKeyOf(const Embedding& e, const EmbeddingMetaData& meta,
                          const cypher::QueryGraph& qg) {
  std::string key;
  auto append_binding = [&](const std::string& var) {
    const int c = meta.IdColumn(var);
    if (c < 0) return;
    if (e.IsPathEntry(c)) {
      for (uint64_t id : e.PathAt(c)) {
        key.append(reinterpret_cast<const char*>(&id), 8);
      }
      key.push_back('\1');
    } else {
      const uint64_t id = e.IdAt(c);
      key.append(reinterpret_cast<const char*>(&id), 8);
    }
    key.push_back('\0');
  };
  if (qg.return_all()) {
    for (const std::string& var : meta.Variables()) append_binding(var);
    return key;
  }
  for (const cypher::ReturnItem& item : qg.return_items()) {
    if (item.IsPropertyAccess()) {
      const int c = meta.PropertyColumn(item.variable, item.property_key);
      if (c >= 0) e.PropertyAt(c).EncodeTo(&key);
      key.push_back('\0');
    } else {
      append_binding(item.variable);
    }
  }
  return key;
}

EmbeddingSet ApplyDistinct(const EmbeddingSet& input,
                           const cypher::QueryGraph& qg) {
  const EmbeddingMetaData meta = input.meta;
  auto data = input.data.Distinct(
      [meta, &qg](const Embedding& e) { return DistinctKeyOf(e, meta, qg); },
      "ReturnDistinct");
  return {std::move(data), input.meta};
}

// LIMIT n: keeps the first n embeddings. Like Flink/Spark, the limit
// gathers to the driver (result sets under a LIMIT are small by intent)
// and redistributes the survivors.
EmbeddingSet ApplyLimit(const EmbeddingSet& input, int64_t limit) {
  std::vector<Embedding> rows = input.data.Collect();
  if (static_cast<int64_t>(rows.size()) > limit) {
    rows.resize(static_cast<size_t>(limit));
  }
  auto data = dfl::Dataset<Embedding>::FromVector(input.data.context(),
                                                  std::move(rows));
  return {std::move(data), input.meta};
}

// Intermediate record when materializing the match collection.
struct MatchedGraph {
  epgm::GraphHead head;
  std::vector<uint64_t> vertex_ids;
  std::vector<uint64_t> edge_ids;

  size_t SerializedSize() const {
    return head.SerializedSize() + 2 * sizeof(uint32_t) +
           8 * (vertex_ids.size() + edge_ids.size());
  }
};

}  // namespace

epgm::GraphCollection BuildMatchCollection(
    const epgm::LogicalGraph& graph, const cypher::QueryGraph& query_graph,
    const EmbeddingSet& embeddings) {
  const EmbeddingMetaData meta = embeddings.meta;

  // Variables whose bindings become head properties.
  std::vector<cypher::ReturnItem> items;
  if (query_graph.return_all()) {
    for (const std::string& var : meta.Variables()) {
      if (var.rfind("  __", 0) == 0) continue;  // anonymous elements
      cypher::ReturnItem item;
      item.variable = var;
      items.push_back(std::move(item));
    }
  } else {
    items = query_graph.return_items();
  }

  // New graph heads get ids disjoint from the data graph's id space:
  // partition-deterministic (partition index in the top bits).
  constexpr uint64_t kMatchIdBase = 1ull << 48;
  auto matched = embeddings.data.MapPartition<MatchedGraph>(
      [meta, items](int partition, const std::vector<Embedding>& in,
                    std::vector<MatchedGraph>* out) {
        out->reserve(in.size());
        uint64_t seq = 0;
        for (const Embedding& e : in) {
          MatchedGraph m;
          m.head.id = kMatchIdBase +
                      (static_cast<uint64_t>(partition) << 32) + seq++;
          m.head.label = "MatchResult";
          for (const cypher::ReturnItem& item : items) {
            const std::string name =
                item.alias.empty()
                    ? (item.IsPropertyAccess()
                           ? item.variable + "." + item.property_key
                           : item.variable)
                    : item.alias;
            if (item.IsPropertyAccess()) {
              const int c =
                  meta.PropertyColumn(item.variable, item.property_key);
              m.head.properties.Set(name, c >= 0
                                              ? e.PropertyAt(c)
                                              : epgm::PropertyValue::Null());
            } else {
              const int c = meta.IdColumn(item.variable);
              if (c < 0) continue;
              if (e.IsPathEntry(c)) {
                m.head.properties.Set(name, epgm::PropertyValue(e.PathAt(c)));
              } else {
                m.head.properties.Set(
                    name,
                    epgm::PropertyValue(static_cast<int64_t>(e.IdAt(c))));
              }
            }
          }
          for (int c : meta.VertexColumns()) m.vertex_ids.push_back(e.IdAt(c));
          for (int c : meta.EdgeColumns()) m.edge_ids.push_back(e.IdAt(c));
          for (int c : meta.PathColumns()) {
            const std::vector<uint64_t> via = e.PathAt(c);
            for (size_t i = 0; i < via.size(); ++i) {
              // Alternating edge/vertex ids, starting with an edge.
              (i % 2 == 0 ? m.edge_ids : m.vertex_ids).push_back(via[i]);
            }
          }
          out->push_back(std::move(m));
        }
      },
      "BuildMatchGraphs");

  auto heads = matched.Map(
      [](const MatchedGraph& m) { return m.head; }, "MatchHeads");

  // Membership pairs (element id -> head id), grouped per element.
  using IdPair = std::pair<uint64_t, uint64_t>;
  auto vertex_pairs = matched.FlatMap<IdPair>(
      [](const MatchedGraph& m, std::vector<IdPair>* out) {
        for (uint64_t id : m.vertex_ids) out->emplace_back(id, m.head.id);
      },
      "VertexMembership");
  auto edge_pairs = matched.FlatMap<IdPair>(
      [](const MatchedGraph& m, std::vector<IdPair>* out) {
        for (uint64_t id : m.edge_ids) out->emplace_back(id, m.head.id);
      },
      "EdgeMembership");

  auto group = [](const IdPair& p) { return p.first; };
  auto init = [](const IdPair& p) { return std::vector<uint64_t>{p.second}; };
  auto fold = [](std::vector<uint64_t> acc, const IdPair& p) {
    acc.push_back(p.second);
    return acc;
  };
  auto vertex_groups =
      vertex_pairs.ReduceByKey(group, init, fold, "GroupVertexMembership");
  auto edge_groups =
      edge_pairs.ReduceByKey(group, init, fold, "GroupEdgeMembership");

  // Attach membership to the matched elements (elements that match no
  // embedding do not appear in the result collection).
  auto vertices = graph.vertices().HashJoin<epgm::Vertex>(
      vertex_groups, [](const epgm::Vertex& v) { return v.id; },
      [](const std::pair<uint64_t, std::vector<uint64_t>>& g) {
        return g.first;
      },
      [](const epgm::Vertex& v,
         const std::pair<uint64_t, std::vector<uint64_t>>& g,
         std::vector<epgm::Vertex>* out) {
        epgm::Vertex copy = v;
        copy.graph_ids.insert(copy.graph_ids.end(), g.second.begin(),
                              g.second.end());
        out->push_back(std::move(copy));
      },
      dfl::JoinStrategy::kRepartition, "AttachVertexMembership");
  auto edges = graph.edges().HashJoin<epgm::Edge>(
      edge_groups, [](const epgm::Edge& e) { return e.id; },
      [](const std::pair<uint64_t, std::vector<uint64_t>>& g) {
        return g.first;
      },
      [](const epgm::Edge& e,
         const std::pair<uint64_t, std::vector<uint64_t>>& g,
         std::vector<epgm::Edge>* out) {
        epgm::Edge copy = e;
        copy.graph_ids.insert(copy.graph_ids.end(), g.second.begin(),
                              g.second.end());
        out->push_back(std::move(copy));
      },
      dfl::JoinStrategy::kRepartition, "AttachEdgeMembership");

  return epgm::GraphCollection(std::move(heads), std::move(vertices),
                               std::move(edges));
}

}  // namespace gradoop::query
