#include "query/cypher_engine.h"

#include <cassert>

#include "analysis/analyzer.h"
#include "analysis/plan_verifier.h"
#include "cypher/parser.h"

namespace gradoop::query {

namespace dfl = ::gradoop::dataflow;

namespace {
EmbeddingSet ApplyDistinct(const EmbeddingSet& input,
                           const cypher::QueryGraph& qg);
EmbeddingSet ApplyLimit(const EmbeddingSet& input, int64_t limit);
}  // namespace

CypherEngine::CypherEngine(epgm::LogicalGraph graph,
                           PlannerOptions planner_options)
    : graph_(std::move(graph)),
      indexed_(epgm::IndexedLogicalGraph::Build(graph_)),
      stats_(GraphStatistics::Compute(graph_)),
      planner_options_(planner_options) {}

Result<CypherMatchResult> CypherEngine::Execute(
    const std::string& query, const MorphismSetting& semantics) {
  GRADOOP_ASSIGN_OR_RETURN(cypher::CypherQuery ast,
                           cypher::ParseCypher(query));
  // Semantic analysis gate: scope/kind/bound errors reject the query with
  // located diagnostics; the surviving AST carries the constant-folded
  // WHERE, and statically unsatisfiable queries skip planning entirely.
  analysis::AnalyzerOptions analyzer_options;
  analyzer_options.statistics = &stats_;
  analyzer_options.semantics = semantics;
  const analysis::AnalysisResult sema =
      analysis::AnalyzeQuery(ast, analyzer_options);
  if (sema.HasErrors()) return Status::PlanError(sema.ErrorSummary());
  ast.where = sema.folded_where;
  GRADOOP_ASSIGN_OR_RETURN(cypher::QueryGraph qg,
                           cypher::QueryGraph::Build(ast));
  if (sema.unsatisfiable || qg.unsatisfiable()) {
    // Statically empty match set (contradictory labels or predicates): no
    // plan is built or executed.
    CypherMatchResult result{std::move(qg), nullptr,
                             {dfl::Dataset<Embedding>::Empty(
                                  graph_.vertices().context()),
                              EmbeddingMetaData()}};
    return result;
  }
  GRADOOP_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanQuery(qg, stats_, planner_options_));
  // Invariant gate before anything runs: cheap structural checks always,
  // full column-layout simulation and predicate type checking in debug
  // builds. A failure here is a planner bug, not a user error.
  GRADOOP_RETURN_IF_ERROR(analysis::VerifyPlan(qg, plan));
  ScanCache scan_cache;
  GRADOOP_ASSIGN_OR_RETURN(
      EmbeddingSet embeddings,
      ExecutePlan(plan, qg, indexed_, semantics,
                  planner_options_.share_scan_results ? &scan_cache
                                                      : nullptr));
  if (qg.return_distinct()) embeddings = ApplyDistinct(embeddings, qg);
  if (qg.limit() >= 0) embeddings = ApplyLimit(embeddings, qg.limit());
  CypherMatchResult result{std::move(qg), std::move(plan),
                           std::move(embeddings)};
  return result;
}

Result<epgm::GraphCollection> CypherEngine::Match(
    const std::string& query, const MorphismSetting& semantics) {
  GRADOOP_ASSIGN_OR_RETURN(CypherMatchResult result,
                           Execute(query, semantics));
  return BuildMatchCollection(graph_, result.query_graph, result.embeddings);
}

Result<uint64_t> CypherEngine::Count(const std::string& query,
                                     const MorphismSetting& semantics) {
  GRADOOP_ASSIGN_OR_RETURN(CypherMatchResult result,
                           Execute(query, semantics));
  return result.embeddings.data.Count();
}

Result<std::string> CypherEngine::Explain(const std::string& query,
                                          const MorphismSetting& semantics) {
  GRADOOP_ASSIGN_OR_RETURN(cypher::CypherQuery ast,
                           cypher::ParseCypher(query));
  analysis::AnalyzerOptions analyzer_options;
  analyzer_options.statistics = &stats_;
  analyzer_options.semantics = semantics;
  const analysis::AnalysisResult sema =
      analysis::AnalyzeQuery(ast, analyzer_options);
  if (sema.HasErrors()) return Status::PlanError(sema.ErrorSummary());
  ast.where = sema.folded_where;
  GRADOOP_ASSIGN_OR_RETURN(cypher::QueryGraph qg,
                           cypher::QueryGraph::Build(ast));
  if (sema.unsatisfiable || qg.unsatisfiable()) {
    return std::string("EmptyResult (unsatisfiable)\n");
  }
  GRADOOP_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanQuery(qg, stats_, planner_options_));
  return plan->ToString(qg);
}

namespace {

// RETURN DISTINCT: deduplicates embeddings on the projected row — the
// returned bindings/values for explicit items, or every variable binding
// for `RETURN *`.
std::string DistinctKeyOf(const Embedding& e, const EmbeddingMetaData& meta,
                          const cypher::QueryGraph& qg) {
  std::string key;
  auto append_binding = [&](const std::string& var) {
    const int c = meta.IdColumn(var);
    if (c < 0) return;
    if (e.IsPathEntry(c)) {
      for (uint64_t id : e.PathAt(c)) {
        key.append(reinterpret_cast<const char*>(&id), 8);
      }
      key.push_back('\1');
    } else {
      const uint64_t id = e.IdAt(c);
      key.append(reinterpret_cast<const char*>(&id), 8);
    }
    key.push_back('\0');
  };
  if (qg.return_all()) {
    for (const std::string& var : meta.Variables()) append_binding(var);
    return key;
  }
  for (const cypher::ReturnItem& item : qg.return_items()) {
    if (item.IsPropertyAccess()) {
      const int c = meta.PropertyColumn(item.variable, item.property_key);
      if (c >= 0) e.PropertyAt(c).EncodeTo(&key);
      key.push_back('\0');
    } else {
      append_binding(item.variable);
    }
  }
  return key;
}

EmbeddingSet ApplyDistinct(const EmbeddingSet& input,
                           const cypher::QueryGraph& qg) {
  const EmbeddingMetaData meta = input.meta;
  auto data = input.data.Distinct(
      [meta, &qg](const Embedding& e) { return DistinctKeyOf(e, meta, qg); },
      "ReturnDistinct");
  return {std::move(data), input.meta};
}

// LIMIT n: keeps the first n embeddings. Like Flink/Spark, the limit
// gathers to the driver (result sets under a LIMIT are small by intent)
// and redistributes the survivors.
EmbeddingSet ApplyLimit(const EmbeddingSet& input, int64_t limit) {
  std::vector<Embedding> rows = input.data.Collect();
  if (static_cast<int64_t>(rows.size()) > limit) {
    rows.resize(static_cast<size_t>(limit));
  }
  auto data = dfl::Dataset<Embedding>::FromVector(input.data.context(),
                                                  std::move(rows));
  return {std::move(data), input.meta};
}

// Selects the scan input for a label alternation from the indexed graph:
// single-label predicates load exactly one per-label dataset (§3.4).
dfl::Dataset<epgm::Vertex> VertexScanInput(
    const epgm::IndexedLogicalGraph& graph,
    const std::vector<std::string>& labels) {
  if (labels.empty()) return graph.AllVertices();
  dfl::Dataset<epgm::Vertex> out = graph.VerticesByLabel(labels.front());
  for (size_t i = 1; i < labels.size(); ++i) {
    out = out.Union(graph.VerticesByLabel(labels[i]));
  }
  return out;
}

dfl::Dataset<epgm::Edge> EdgeScanInput(const epgm::IndexedLogicalGraph& graph,
                                       const std::vector<std::string>& types) {
  if (types.empty()) return graph.AllEdges();
  dfl::Dataset<epgm::Edge> out = graph.EdgesByLabel(types.front());
  for (size_t i = 1; i < types.size(); ++i) {
    out = out.Union(graph.EdgesByLabel(types[i]));
  }
  return out;
}

}  // namespace

namespace {

// Data signature of an edge scan: everything that shapes its rows except
// the variable names.
std::string EdgeScanSignature(const cypher::QueryGraph& query_graph,
                              const cypher::QueryEdge& qe,
                              const MorphismSetting& semantics,
                              bool self_loop) {
  std::string sig;
  for (const std::string& t : qe.types) sig += t + "|";
  sig += self_loop ? ";self;" : ";";
  sig += qe.any_direction ? "any;" : "dir;";
  sig += semantics.vertex == MatchSemantics::kIsomorphism ? "viso;" : "vhom;";
  for (const auto& clause : query_graph.ElementPredicates(qe.variable)) {
    sig += clause.ToString() + ";";
  }
  for (const std::string& key :
       query_graph.NeededProperties(qe.variable)) {
    sig += key + ",";
  }
  return sig;
}

}  // namespace

Result<EmbeddingSet> ExecutePlan(const PlanNodePtr& plan,
                                 const cypher::QueryGraph& query_graph,
                                 const epgm::IndexedLogicalGraph& graph,
                                 const MorphismSetting& semantics,
                                 ScanCache* scan_cache) {
  switch (plan->kind) {
    case PlanNode::Kind::kScanVertices: {
      const cypher::QueryVertex& qv =
          query_graph.vertices()[plan->element_index];
      return SelectAndProjectVertices(
          VertexScanInput(graph, qv.labels), qv,
          query_graph.ElementPredicates(qv.variable),
          query_graph.NeededProperties(qv.variable));
    }
    case PlanNode::Kind::kScanEdges: {
      const cypher::QueryEdge& qe = query_graph.edges()[plan->element_index];
      const std::string& src = query_graph.vertices()[qe.source].variable;
      const std::string& dst = query_graph.vertices()[qe.target].variable;
      const bool self_loop = src == dst;
      // Recurring-subquery reuse: an identical edge scan (same types,
      // direction, predicates, projection — naming aside, but the
      // predicate strings carry the variable name, so only true repeats
      // of the same shape hit) executes once per query.
      if (scan_cache != nullptr) {
        // The predicate strings embed the edge variable; normalize by the
        // scan's data signature only when the edge has no predicates
        // (predicates on differently-named variables cannot coincide).
        const std::string sig =
            EdgeScanSignature(query_graph, qe, semantics, self_loop);
        auto it = scan_cache->find(sig);
        if (it != scan_cache->end()) {
          return EmbeddingSet{
              it->second,
              EdgeScanMetaData(qe, src, dst,
                               query_graph.NeededProperties(qe.variable))};
        }
        EmbeddingSet scanned = SelectAndProjectEdges(
            EdgeScanInput(graph, qe.types), qe, src, dst,
            query_graph.ElementPredicates(qe.variable),
            query_graph.NeededProperties(qe.variable), semantics);
        scan_cache->emplace(sig, scanned.data);
        return scanned;
      }
      return SelectAndProjectEdges(
          EdgeScanInput(graph, qe.types), qe, src, dst,
          query_graph.ElementPredicates(qe.variable),
          query_graph.NeededProperties(qe.variable), semantics);
    }
    case PlanNode::Kind::kJoin: {
      GRADOOP_ASSIGN_OR_RETURN(
          EmbeddingSet left,
          ExecutePlan(plan->left, query_graph, graph, semantics, scan_cache));
      GRADOOP_ASSIGN_OR_RETURN(
          EmbeddingSet right,
          ExecutePlan(plan->right, query_graph, graph, semantics,
                      scan_cache));
      return JoinEmbeddings(left, right, plan->join_variables, semantics,
                            plan->join_strategy);
    }
    case PlanNode::Kind::kValueJoin: {
      GRADOOP_ASSIGN_OR_RETURN(
          EmbeddingSet left,
          ExecutePlan(plan->left, query_graph, graph, semantics, scan_cache));
      GRADOOP_ASSIGN_OR_RETURN(
          EmbeddingSet right,
          ExecutePlan(plan->right, query_graph, graph, semantics,
                      scan_cache));
      std::vector<PropertyRef> left_keys, right_keys;
      for (const auto& [lhs, rhs] : plan->value_join_keys) {
        left_keys.push_back({lhs->variable(), lhs->property_key()});
        right_keys.push_back({rhs->variable(), rhs->property_key()});
      }
      return ValueJoinEmbeddings(left, right, left_keys, right_keys,
                                 semantics, plan->join_strategy);
    }
    case PlanNode::Kind::kExpand: {
      GRADOOP_ASSIGN_OR_RETURN(
          EmbeddingSet input,
          ExecutePlan(plan->left, query_graph, graph, semantics,
                      scan_cache));
      const cypher::QueryEdge& qe = query_graph.edges()[plan->element_index];
      const std::string& src = query_graph.vertices()[qe.source].variable;
      const std::string& dst = query_graph.vertices()[qe.target].variable;
      const std::string& start = plan->expand_reverse ? dst : src;
      const std::string& end = plan->expand_reverse ? src : dst;
      return ExpandEmbeddings(input, EdgeScanInput(graph, qe.types), start,
                              qe.variable, end, qe.lower_bound,
                              qe.upper_bound, plan->expand_reverse,
                              semantics);
    }
    case PlanNode::Kind::kFilter: {
      GRADOOP_ASSIGN_OR_RETURN(
          EmbeddingSet input,
          ExecutePlan(plan->left, query_graph, graph, semantics,
                      scan_cache));
      return SelectEmbeddings(input, plan->clauses);
    }
  }
  return Status::Internal("unknown plan node kind");
}

namespace {

// Intermediate record when materializing the match collection.
struct MatchedGraph {
  epgm::GraphHead head;
  std::vector<uint64_t> vertex_ids;
  std::vector<uint64_t> edge_ids;

  size_t SerializedSize() const {
    return head.SerializedSize() + 2 * sizeof(uint32_t) +
           8 * (vertex_ids.size() + edge_ids.size());
  }
};

}  // namespace

epgm::GraphCollection BuildMatchCollection(
    const epgm::LogicalGraph& graph, const cypher::QueryGraph& query_graph,
    const EmbeddingSet& embeddings) {
  const EmbeddingMetaData meta = embeddings.meta;

  // Variables whose bindings become head properties.
  std::vector<cypher::ReturnItem> items;
  if (query_graph.return_all()) {
    for (const std::string& var : meta.Variables()) {
      if (var.rfind("  __", 0) == 0) continue;  // anonymous elements
      cypher::ReturnItem item;
      item.variable = var;
      items.push_back(std::move(item));
    }
  } else {
    items = query_graph.return_items();
  }

  // New graph heads get ids disjoint from the data graph's id space:
  // partition-deterministic (partition index in the top bits).
  constexpr uint64_t kMatchIdBase = 1ull << 48;
  auto matched = embeddings.data.MapPartition<MatchedGraph>(
      [meta, items](int partition, const std::vector<Embedding>& in,
                    std::vector<MatchedGraph>* out) {
        out->reserve(in.size());
        uint64_t seq = 0;
        for (const Embedding& e : in) {
          MatchedGraph m;
          m.head.id = kMatchIdBase +
                      (static_cast<uint64_t>(partition) << 32) + seq++;
          m.head.label = "MatchResult";
          for (const cypher::ReturnItem& item : items) {
            const std::string name =
                item.alias.empty()
                    ? (item.IsPropertyAccess()
                           ? item.variable + "." + item.property_key
                           : item.variable)
                    : item.alias;
            if (item.IsPropertyAccess()) {
              const int c =
                  meta.PropertyColumn(item.variable, item.property_key);
              m.head.properties.Set(name, c >= 0
                                              ? e.PropertyAt(c)
                                              : epgm::PropertyValue::Null());
            } else {
              const int c = meta.IdColumn(item.variable);
              if (c < 0) continue;
              if (e.IsPathEntry(c)) {
                m.head.properties.Set(name, epgm::PropertyValue(e.PathAt(c)));
              } else {
                m.head.properties.Set(
                    name,
                    epgm::PropertyValue(static_cast<int64_t>(e.IdAt(c))));
              }
            }
          }
          for (int c : meta.VertexColumns()) m.vertex_ids.push_back(e.IdAt(c));
          for (int c : meta.EdgeColumns()) m.edge_ids.push_back(e.IdAt(c));
          for (int c : meta.PathColumns()) {
            const std::vector<uint64_t> via = e.PathAt(c);
            for (size_t i = 0; i < via.size(); ++i) {
              // Alternating edge/vertex ids, starting with an edge.
              (i % 2 == 0 ? m.edge_ids : m.vertex_ids).push_back(via[i]);
            }
          }
          out->push_back(std::move(m));
        }
      },
      "BuildMatchGraphs");

  auto heads = matched.Map(
      [](const MatchedGraph& m) { return m.head; }, "MatchHeads");

  // Membership pairs (element id -> head id), grouped per element.
  using IdPair = std::pair<uint64_t, uint64_t>;
  auto vertex_pairs = matched.FlatMap<IdPair>(
      [](const MatchedGraph& m, std::vector<IdPair>* out) {
        for (uint64_t id : m.vertex_ids) out->emplace_back(id, m.head.id);
      },
      "VertexMembership");
  auto edge_pairs = matched.FlatMap<IdPair>(
      [](const MatchedGraph& m, std::vector<IdPair>* out) {
        for (uint64_t id : m.edge_ids) out->emplace_back(id, m.head.id);
      },
      "EdgeMembership");

  auto group = [](const IdPair& p) { return p.first; };
  auto init = [](const IdPair& p) { return std::vector<uint64_t>{p.second}; };
  auto fold = [](std::vector<uint64_t> acc, const IdPair& p) {
    acc.push_back(p.second);
    return acc;
  };
  auto vertex_groups =
      vertex_pairs.ReduceByKey(group, init, fold, "GroupVertexMembership");
  auto edge_groups =
      edge_pairs.ReduceByKey(group, init, fold, "GroupEdgeMembership");

  // Attach membership to the matched elements (elements that match no
  // embedding do not appear in the result collection).
  auto vertices = graph.vertices().HashJoin<epgm::Vertex>(
      vertex_groups, [](const epgm::Vertex& v) { return v.id; },
      [](const std::pair<uint64_t, std::vector<uint64_t>>& g) {
        return g.first;
      },
      [](const epgm::Vertex& v,
         const std::pair<uint64_t, std::vector<uint64_t>>& g,
         std::vector<epgm::Vertex>* out) {
        epgm::Vertex copy = v;
        copy.graph_ids.insert(copy.graph_ids.end(), g.second.begin(),
                              g.second.end());
        out->push_back(std::move(copy));
      },
      dfl::JoinStrategy::kRepartition, "AttachVertexMembership");
  auto edges = graph.edges().HashJoin<epgm::Edge>(
      edge_groups, [](const epgm::Edge& e) { return e.id; },
      [](const std::pair<uint64_t, std::vector<uint64_t>>& g) {
        return g.first;
      },
      [](const epgm::Edge& e,
         const std::pair<uint64_t, std::vector<uint64_t>>& g,
         std::vector<epgm::Edge>* out) {
        epgm::Edge copy = e;
        copy.graph_ids.insert(copy.graph_ids.end(), g.second.begin(),
                              g.second.end());
        out->push_back(std::move(copy));
      },
      dfl::JoinStrategy::kRepartition, "AttachEdgeMembership");

  return epgm::GraphCollection(std::move(heads), std::move(vertices),
                               std::move(edges));
}

}  // namespace gradoop::query
