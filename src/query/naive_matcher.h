#ifndef GRADOOP_QUERY_NAIVE_MATCHER_H_
#define GRADOOP_QUERY_NAIVE_MATCHER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "cypher/query_graph.h"
#include "epgm/elements.h"
#include "query/match_semantics.h"

namespace gradoop::query {

// One complete match: query variable -> data element id, and variable ->
// via-id list for variable-length paths.
struct NaiveBinding {
  std::map<std::string, uint64_t> elements;
  std::map<std::string, std::vector<uint64_t>> paths;

  bool operator==(const NaiveBinding& other) const {
    return elements == other.elements && paths == other.paths;
  }
  bool operator<(const NaiveBinding& other) const {
    if (elements != other.elements) return elements < other.elements;
    return paths < other.paths;
  }
};

// Single-threaded backtracking matcher over driver-side element vectors.
// Implements the same morphism semantics as the distributed engine and
// serves as the correctness oracle in tests: every engine result on small
// graphs is compared against this enumeration.
class NaiveMatcher {
 public:
  NaiveMatcher(std::vector<epgm::Vertex> vertices,
               std::vector<epgm::Edge> edges);

  // Enumerates all embeddings of `query_graph` under `semantics`.
  std::vector<NaiveBinding> FindMatches(
      const cypher::QueryGraph& query_graph,
      const MorphismSetting& semantics) const;

  uint64_t CountMatches(const cypher::QueryGraph& query_graph,
                        const MorphismSetting& semantics) const;

 private:
  std::vector<epgm::Vertex> vertices_;
  std::vector<epgm::Edge> edges_;
  std::map<uint64_t, const epgm::Vertex*> vertex_by_id_;
  std::map<uint64_t, std::vector<const epgm::Edge*>> out_edges_;
  std::map<uint64_t, std::vector<const epgm::Edge*>> in_edges_;
};

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_NAIVE_MATCHER_H_
