#include "query/query_profile.h"

namespace gradoop::query {

namespace {

// Pre-order plan walk; depth reconstructs the tree shape in the JSON.
void AppendOperators(const exec::PhysicalOperator& op, int depth,
                     std::vector<telemetry::OperatorProfile>* out) {
  const exec::OperatorStats& stats = op.stats();
  telemetry::OperatorProfile profile;
  profile.name = op.name();
  profile.describe = op.Describe();
  profile.depth = depth;
  profile.estimated_rows = op.estimated_cardinality();
  profile.actual_rows = stats.actual_rows;
  profile.qerror = telemetry::QError(op.estimated_cardinality(),
                                     static_cast<double>(stats.actual_rows));
  profile.selectivity = stats.selectivity;
  profile.actual_peak_bytes = stats.actual_peak_bytes;
  profile.claimed_peak_bytes =
      op.has_memory_bound() ? op.memory_bound().peak_bytes : 0;
  profile.self_wall_sec = stats.self_wall_sec;
  profile.total_wall_sec = stats.total_wall_sec;
  profile.network_bytes = stats.network_bytes;
  profile.spilled_bytes = stats.spilled_bytes;
  profile.output_bytes = stats.output_bytes;
  profile.property_bytes = stats.property_bytes;
  out->push_back(std::move(profile));
  for (const exec::PhysicalOperatorPtr& child : op.children()) {
    AppendOperators(*child, depth + 1, out);
  }
}

}  // namespace

telemetry::QueryProfile BuildQueryProfile(
    const std::string& name, const std::string& query,
    const CypherMatchResult& result, const dataflow::ExecutionContext& ctx) {
  telemetry::QueryProfile profile;
  profile.name = name;
  profile.query = query;
  if (result.embeddings.data.valid()) {
    // Partition sizes are read directly; Count() would charge the
    // tracker a stage the query never ran.
    for (int p = 0; p < result.embeddings.data.num_partitions(); ++p) {
      profile.matches += result.embeddings.data.partition(p).size();
    }
  }
  profile.total_wall_sec = result.total_wall_sec;
  profile.simulated_sec = ctx.tracker().SimulatedSeconds();
  profile.network_bytes = ctx.tracker().NetworkBytes();
  profile.spilled_bytes = ctx.tracker().SpilledBytes();
  profile.records = ctx.tracker().TotalRecords();
  profile.num_workers = ctx.num_workers();
  profile.phases = result.phases;
  profile.engine = result.engine;
  if (result.physical != nullptr) {
    AppendOperators(*result.physical, 0, &profile.operators);
    for (const telemetry::OperatorProfile& op : profile.operators) {
      if (op.qerror > profile.max_qerror) profile.max_qerror = op.qerror;
    }
  }
  profile.workers = telemetry::ComputeWorkerBusy(
      ctx.telemetry().tracer().CollectSpans(), ctx.num_workers());
  profile.metrics = ctx.telemetry().metrics().Snapshot();
  return profile;
}

}  // namespace gradoop::query
