#ifndef GRADOOP_QUERY_EMBEDDING_BATCH_H_
#define GRADOOP_QUERY_EMBEDDING_BATCH_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "epgm/property_value.h"
#include "query/embedding.h"

namespace gradoop::query {

// Columnar batch of embeddings (docs/vectorized.md): the vectorized
// counterpart of the row-at-a-time Embedding of §3.3.
//
//   ids[c]        fixed-width u64 column per id entry; PATH columns hold
//                 byte offsets into path_pool
//   path_pool     (path-length, ids...) segments, the same encoding as
//                 Embedding::path_data
//   prop cells    (offset, length) per row x property column into
//                 prop_pool, whose bytes are the PropertyValue encoding
//                 verbatim (never re-encoded — RowAt() reconstructs a
//                 byte-identical Embedding)
//   selection     optional vector of active row indices; filters write it
//                 instead of materializing surviving rows
//
// The column store is shared (shared_ptr) so attaching a selection vector
// — the only thing a filter changes — costs one refcount bump, not a
// column copy. Builders own their store exclusively until the batch is
// handed off; after that all access is read-only, so concurrent readers
// on the host pool need no locks and the batch carries no lock rank.
class EmbeddingBatch {
 public:
  EmbeddingBatch() : cols_(std::make_shared<Columns>()) {}

  // A batch with `column_flags[c]` (Embedding::kIdFlag / kPathFlag) id
  // columns and `property_columns` property columns, matching the
  // operator's compiled BatchLayout claim.
  EmbeddingBatch(std::vector<uint8_t> column_flags, int property_columns)
      : cols_(std::make_shared<Columns>()) {
    cols_->flags = std::move(column_flags);
    cols_->ids.resize(cols_->flags.size());
    cols_->property_columns = property_columns;
  }

  // --- shape -----------------------------------------------------------

  int num_id_columns() const { return static_cast<int>(cols_->flags.size()); }
  int num_property_columns() const { return cols_->property_columns; }
  uint32_t num_rows() const { return cols_->rows; }
  bool IsPathColumn(int column) const {
    return cols_->flags[static_cast<size_t>(column)] == Embedding::kPathFlag;
  }

  // --- cell access -----------------------------------------------------

  uint64_t IdAt(int column, uint32_t row) const {
    assert(!IsPathColumn(column));
    return cols_->ids[static_cast<size_t>(column)][row];
  }
  // Raw payload (identifier, or path-pool offset for PATH columns).
  uint64_t PayloadAt(int column, uint32_t row) const {
    return cols_->ids[static_cast<size_t>(column)][row];
  }
  std::vector<uint64_t> PathAt(int column, uint32_t row) const;
  epgm::PropertyValue PropertyAt(int column, uint32_t row) const;
  // Encoded property bytes (no length prefix), copyable verbatim.
  std::string_view PropertyCellAt(int column, uint32_t row) const {
    const size_t cell =
        static_cast<size_t>(row) * cols_->property_columns + column;
    return std::string_view(cols_->prop_pool)
        .substr(cols_->prop_offsets[cell], cols_->prop_lens[cell]);
  }

  // --- selection vector ------------------------------------------------

  bool has_selection() const { return has_selection_; }
  const std::vector<uint32_t>& selection() const { return selection_; }
  uint32_t ActiveRows() const {
    return has_selection_ ? static_cast<uint32_t>(selection_.size())
                          : cols_->rows;
  }
  uint32_t ActiveRow(uint32_t i) const {
    return has_selection_ ? selection_[i] : i;
  }
  // Same columns (shared), new selection — the filter select-loop output.
  EmbeddingBatch WithSelection(std::vector<uint32_t> selected) const {
    EmbeddingBatch out = *this;
    out.selection_ = std::move(selected);
    out.has_selection_ = true;
    return out;
  }

  // --- building (requires exclusive ownership of the column store) -----

  void PushId(int column, uint64_t id) {
    MutableColumns().ids[static_cast<size_t>(column)].push_back(id);
  }
  void PushPath(int column, const std::vector<uint64_t>& via_ids);
  void PushProperty(const epgm::PropertyValue& value);
  // Appends an already-encoded property value verbatim (no prefix).
  void PushPropertyEncoded(std::string_view encoded);
  // Closes the current row once every column received its cell.
  void CommitRow();

  // Rollback point for speculative appends: a scan pushes the row, then
  // evaluates the fused residual on it and rolls back on failure.
  struct RowMark {
    uint32_t rows = 0;
    size_t path_pool_bytes = 0;
    size_t prop_pool_bytes = 0;
    size_t prop_cells = 0;
  };
  RowMark Mark() const {
    return {cols_->rows, cols_->path_pool.size(), cols_->prop_pool.size(),
            cols_->prop_offsets.size()};
  }
  void Rollback(const RowMark& mark);

  // Appends row `row` of `src` (same column flags from `col_offset` on,
  // property cells in order); the merge path lays a left slice and a right
  // slice side by side before one CommitRow().
  void AppendRowCells(const EmbeddingBatch& src, uint32_t row,
                      int col_offset);
  void AppendRowFrom(const EmbeddingBatch& src, uint32_t row) {
    AppendRowCells(src, row, 0);
    CommitRow();
  }
  // Bulk gather: appends the given rows of `src` (same layout) with
  // column-major inner loops — one pass per id column over the row list,
  // then the property cells. The vectorized counterpart of a
  // row-at-a-time AppendRowFrom loop; the scatter path compacts whole
  // fragments through this.
  void AppendRows(const EmbeddingBatch& src,
                  const std::vector<uint32_t>& rows);

  // One surviving probe match: left row `left_row` of the probe batch
  // merged with row `right_row` of build batch `*right`.
  struct MergePair {
    uint32_t left_row;
    const EmbeddingBatch* right;
    uint32_t right_row;
  };
  // Bulk merge gather for the join probe: appends `count` merged rows
  // from `pairs[offset..)` — left columns at offset 0, right columns at
  // `left_id_columns` — column-major like AppendRows. Only valid when
  // the merged row needs no residual check (pairs are pre-filtered).
  void AppendMergedRows(const EmbeddingBatch& left, int left_id_columns,
                        const std::vector<MergePair>& pairs, size_t offset,
                        size_t count);

  // --- row conversion --------------------------------------------------

  // Appends one row embedding's cells verbatim (ids, path segments and
  // encoded property bytes are copied, never re-encoded).
  void AppendRow(const Embedding& embedding);
  // Reconstructs row `row` as a byte-identical Embedding: id/path entries
  // in column order followed by the property cells in column order — the
  // exact append order of the row kernels.
  Embedding RowAt(uint32_t row) const;

  // --- accounting ------------------------------------------------------

  // Byte size in the MemoryAccountant's currency (record_traits.h):
  // column tags and payloads, both pools, the property cell directory and
  // the selection vector, plus a fixed header.
  size_t SerializedSize() const {
    size_t bytes = 4 * sizeof(uint32_t) + cols_->flags.size();
    for (const auto& column : cols_->ids) bytes += 8 * column.size();
    bytes += cols_->path_pool.size() + cols_->prop_pool.size();
    bytes += cols_->prop_offsets.size() *
             (sizeof(uint64_t) + sizeof(uint32_t));
    bytes += selection_.size() * sizeof(uint32_t);
    return bytes;
  }
  size_t property_pool_bytes() const { return cols_->prop_pool.size(); }

 private:
  struct Columns {
    std::vector<uint8_t> flags;              // per id column
    std::vector<std::vector<uint64_t>> ids;  // one payload vector per column
    int property_columns = 0;
    std::vector<uint64_t> prop_offsets;      // row-major cells into prop_pool
    std::vector<uint32_t> prop_lens;
    std::string path_pool;
    std::string prop_pool;
    uint32_t rows = 0;
  };

  Columns& MutableColumns() {
    assert(cols_.use_count() == 1 && "mutating a shared batch");
    return *cols_;
  }

  std::shared_ptr<Columns> cols_;
  std::vector<uint32_t> selection_;
  bool has_selection_ = false;
};

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_EMBEDDING_BATCH_H_
