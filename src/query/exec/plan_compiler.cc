#include "query/exec/plan_compiler.h"

#include <memory>
#include <utility>

#include "query/graph_statistics.h"

namespace gradoop::query::exec {

namespace {

Status CompileError(const char* op, const std::string& detail) {
  return Status::Internal(std::string("PlanCompiler: ") + op + ": " + detail);
}

}  // namespace

PlanCompiler::PlanCompiler(const cypher::QueryGraph& query_graph,
                           const MorphismSetting& semantics,
                           CompileOptions options)
    : qg_(query_graph), semantics_(semantics), options_(options) {}

std::set<std::string> PlanCompiler::ProjectionFor(
    const std::string& variable) const {
  if (!options_.prune_properties) return qg_.NeededProperties(variable);
  auto it = needed_.find(variable);
  return it == needed_.end() ? std::set<std::string>() : it->second;
}

void PlanCompiler::CollectNeeded(const PlanNodePtr& node) {
  if (node == nullptr) return;
  if (node->kind == PlanNode::Kind::kFilter) {
    for (const cypher::CnfClause& clause : node->clauses) {
      std::set<std::pair<std::string, std::string>> accesses;
      for (const cypher::ExpressionPtr& atom : clause.atoms) {
        atom->CollectPropertyAccesses(&accesses);
      }
      for (const auto& [var, key] : accesses) needed_[var].insert(key);
    }
  }
  if (node->kind == PlanNode::Kind::kValueJoin) {
    for (const auto& [lhs, rhs] : node->value_join_keys) {
      for (const auto& side : {lhs, rhs}) {
        if (side != nullptr &&
            side->kind() == cypher::ExprKind::kPropertyAccess) {
          needed_[side->variable()].insert(side->property_key());
        }
      }
    }
  }
  CollectNeeded(node->left);
  CollectNeeded(node->right);
}

Result<PhysicalOperatorPtr> PlanCompiler::Compile(const PlanNodePtr& plan) {
  needed_.clear();
  if (options_.prune_properties) {
    // The pruned projection: everything a plan operator evaluates on
    // embeddings (cross predicates, value-join keys) plus what the result
    // consumers read (RETURN items; `RETURN *` reads bindings only).
    CollectNeeded(plan);
    if (!qg_.return_all()) {
      for (const cypher::ReturnItem& item : qg_.return_items()) {
        if (item.IsPropertyAccess()) {
          needed_[item.variable].insert(item.property_key);
        }
      }
    }
  }
  return CompileNode(plan, {}, 0.0);
}

Status PlanCompiler::CheckClauses(
    const char* op, const std::vector<cypher::CnfClause>& clauses,
    const EmbeddingMetaData& meta) const {
  for (const cypher::CnfClause& clause : clauses) {
    std::set<std::pair<std::string, std::string>> accesses;
    for (const cypher::ExpressionPtr& atom : clause.atoms) {
      atom->CollectPropertyAccesses(&accesses);
    }
    for (const auto& [var, key] : accesses) {
      if (meta.PropertyColumn(var, key) < 0) {
        return CompileError(op, "property " + var + "." + key +
                                    " is not projected in the subtree");
      }
    }
  }
  return Status::Ok();
}

std::string PlanCompiler::EdgeScanSignature(
    const cypher::QueryEdge& query_edge, bool self_loop,
    const std::set<std::string>& projection,
    const std::vector<cypher::CnfClause>& fused) const {
  // Everything that shapes the scan's rows except the variable names. The
  // predicate strings carry the edge variable, so only true repeats of
  // the same shape hit the cache.
  std::string sig;
  for (const std::string& t : query_edge.types) sig += t + "|";
  sig += self_loop ? ";self;" : ";";
  sig += query_edge.any_direction ? "any;" : "dir;";
  sig += semantics_.vertex == MatchSemantics::kIsomorphism ? "viso;"
                                                           : "vhom;";
  for (const cypher::CnfClause& clause :
       qg_.ElementPredicates(query_edge.variable)) {
    sig += clause.ToString() + ";";
  }
  for (const std::string& key : projection) sig += key + ",";
  for (const cypher::CnfClause& clause : fused) {
    sig += "+" + clause.ToString() + ";";
  }
  return sig;
}

PhysicalOperatorPtr PlanCompiler::Annotate(PhysicalOperatorPtr op) const {
  if (options_.elide_shuffles && op->op_kind() == PhysOpKind::kJoin) {
    auto& join = static_cast<JoinOp&>(*op);
    if (join.strategy() == dataflow::JoinStrategy::kRepartition &&
        !join.join_variables().empty()) {
      auto side_elides = [&](size_t i) {
        const PhysicalOperatorPtr& child = op->children()[i];
        return child != nullptr && child->has_output_partitioning() &&
               ElidesShuffle(child->output_partitioning(),
                             PartitionKeyKind::kIdColumns,
                             join.join_variables());
      };
      join.set_shuffle_elision(side_elides(0), side_elides(1));
    }
  }
  if (options_.elide_shuffles && op->op_kind() == PhysOpKind::kValueJoin) {
    auto& join = static_cast<ValueJoinOp&>(*op);
    if (join.strategy() == dataflow::JoinStrategy::kRepartition) {
      auto side_elides = [&](size_t i, bool right_side) {
        const PhysicalOperatorPtr& child = op->children()[i];
        return child != nullptr && child->has_output_partitioning() &&
               ElidesShuffle(
                   child->output_partitioning(),
                   PartitionKeyKind::kPropertyValues,
                   ValueKeySideTokens(join.key_descriptions(), right_side));
      };
      join.set_shuffle_elision(side_elides(0, false), side_elides(1, true));
    }
  }
  // The claim is stamped after the elision decision: DerivePartitioning
  // reads only the operator kind, keys, strategy and the children's
  // claims, never the elision flags.
  op->set_output_partitioning(DerivePartitioning(*op));
  // Expansion hops join against the full edge dataset, whose size neither
  // the cardinality estimate nor the children's bounds capture — stamp it
  // from the statistics before the memory transfer function prices it.
  if (op->op_kind() == PhysOpKind::kExpand &&
      options_.statistics != nullptr) {
    auto& expand = static_cast<ExpandOp&>(*op);
    expand.set_edge_input_estimate(
        options_.statistics->EdgeCountByLabels(expand.query_edge().types));
  }
  op->set_memory_bound(DeriveMemoryBound(*op, options_.num_workers));
  // Batch-layout claim: the columnar shape ExecuteBatch materializes —
  // re-derived (and rejected on mismatch) by VerifyCompiledPlan.
  op->set_batch_layout(
      DeriveBatchLayout(op->output_meta(), options_.batch_size));
  // Interruptibility claim: the subtree's worst checkpoint interval —
  // re-derived by VerifyCompiledPlan, which also rejects unbounded
  // intervals (a kernel loop with no cancellation poll).
  op->set_interruptibility(DeriveInterruptibility(*op));
  return op;
}

Result<PhysicalOperatorPtr> PlanCompiler::CompileNode(
    const PlanNodePtr& node, std::vector<cypher::CnfClause> residual,
    double residual_estimate) {
  if (node == nullptr) {
    return Status::Internal("PlanCompiler: null plan node");
  }

  // Filter fusion: push the clauses into the input operator's emission
  // loop. The fused operator keeps the filter's (smaller) estimate, which
  // is what its output actually is.
  if (node->kind == PlanNode::Kind::kFilter && options_.fuse_filters) {
    if (node->left == nullptr) {
      return CompileError("SelectEmbeddings", "filter takes exactly one input");
    }
    std::vector<cypher::CnfClause> merged = node->clauses;
    merged.insert(merged.end(), residual.begin(), residual.end());
    const double estimate =
        residual.empty() ? node->estimated_cardinality : residual_estimate;
    return CompileNode(node->left, std::move(merged), estimate);
  }

  // A fused residual replaces this operator's output estimate with the
  // (topmost) filter's.
  auto estimate_of = [&](double own) {
    return residual.empty() ? own : residual_estimate;
  };

  switch (node->kind) {
    case PlanNode::Kind::kScanVertices: {
      const int n = static_cast<int>(qg_.vertices().size());
      if (node->element_index < 0 || node->element_index >= n) {
        return CompileError("ScanVertices", "element_index out of range");
      }
      const cypher::QueryVertex& qv = qg_.vertices()[node->element_index];
      EmbeddingMetaData meta;
      meta.AddIdColumn(qv.variable, EntryType::kVertex);
      for (const std::string& key : ProjectionFor(qv.variable)) {
        meta.AddPropertyColumn(qv.variable, key);
      }
      GRADOOP_RETURN_IF_ERROR(CheckClauses("ScanVertices", residual, meta));
      return Annotate(std::make_shared<VertexScanOp>(
          std::move(meta), estimate_of(node->estimated_cardinality),
          semantics_, std::move(residual), qv,
          qg_.ElementPredicates(qv.variable)));
    }

    case PlanNode::Kind::kScanEdges: {
      const int n = static_cast<int>(qg_.edges().size());
      if (node->element_index < 0 || node->element_index >= n) {
        return CompileError("ScanEdges", "element_index out of range");
      }
      const cypher::QueryEdge& qe = qg_.edges()[node->element_index];
      if (qe.IsVariableLength()) {
        return CompileError("ScanEdges", "variable-length edge `" +
                                             qe.variable +
                                             "` must be expanded");
      }
      const std::string& src = qg_.vertices()[qe.source].variable;
      const std::string& dst = qg_.vertices()[qe.target].variable;
      const bool self_loop = src == dst;
      EmbeddingMetaData meta;
      meta.AddIdColumn(src, EntryType::kVertex);
      meta.AddIdColumn(qe.variable, EntryType::kEdge);
      if (!self_loop) meta.AddIdColumn(dst, EntryType::kVertex);
      const std::set<std::string> projection = ProjectionFor(qe.variable);
      for (const std::string& key : projection) {
        meta.AddPropertyColumn(qe.variable, key);
      }
      GRADOOP_RETURN_IF_ERROR(CheckClauses("ScanEdges", residual, meta));
      std::string signature =
          options_.share_scans
              ? EdgeScanSignature(qe, self_loop, projection, residual)
              : std::string();
      return Annotate(std::make_shared<EdgeScanOp>(
          std::move(meta), estimate_of(node->estimated_cardinality),
          semantics_, std::move(residual), qe,
          qg_.ElementPredicates(qe.variable), self_loop,
          std::move(signature)));
    }

    case PlanNode::Kind::kJoin: {
      if (node->left == nullptr || node->right == nullptr) {
        return CompileError("JoinEmbeddings", "join needs two inputs");
      }
      GRADOOP_ASSIGN_OR_RETURN(PhysicalOperatorPtr left,
                               CompileNode(node->left, {}, 0.0));
      GRADOOP_ASSIGN_OR_RETURN(PhysicalOperatorPtr right,
                               CompileNode(node->right, {}, 0.0));
      std::vector<int> left_columns, right_columns;
      left_columns.reserve(node->join_variables.size());
      right_columns.reserve(node->join_variables.size());
      for (const std::string& var : node->join_variables) {
        const int lc = left->output_meta().IdColumn(var);
        const int rc = right->output_meta().IdColumn(var);
        if (lc < 0 || rc < 0) {
          return CompileError("JoinEmbeddings",
                              "join variable `" + var +
                                  "` lacks an id column on the " +
                                  (lc < 0 ? "left" : "right") + " input");
        }
        left_columns.push_back(lc);
        right_columns.push_back(rc);
      }
      EmbeddingMetaData merged = EmbeddingMetaData::Merge(
          left->output_meta(), right->output_meta());
      GRADOOP_RETURN_IF_ERROR(
          CheckClauses("JoinEmbeddings", residual, merged));
      return Annotate(std::make_shared<JoinOp>(
          std::move(merged), estimate_of(node->estimated_cardinality),
          semantics_, std::move(residual), std::move(left), std::move(right),
          node->join_variables, std::move(left_columns),
          std::move(right_columns), node->join_strategy));
    }

    case PlanNode::Kind::kValueJoin: {
      if (node->left == nullptr || node->right == nullptr) {
        return CompileError("ValueJoinEmbeddings",
                            "value join needs two inputs");
      }
      GRADOOP_ASSIGN_OR_RETURN(PhysicalOperatorPtr left,
                               CompileNode(node->left, {}, 0.0));
      GRADOOP_ASSIGN_OR_RETURN(PhysicalOperatorPtr right,
                               CompileNode(node->right, {}, 0.0));
      std::vector<std::string> key_descriptions;
      std::vector<int> left_keys, right_keys;
      for (const auto& [lhs, rhs] : node->value_join_keys) {
        for (const auto& side : {lhs, rhs}) {
          if (side == nullptr ||
              side->kind() != cypher::ExprKind::kPropertyAccess) {
            return CompileError("ValueJoinEmbeddings",
                                "value-join key is not a property access");
          }
        }
        const int lc = left->output_meta().PropertyColumn(
            lhs->variable(), lhs->property_key());
        if (lc < 0) {
          return CompileError("ValueJoinEmbeddings",
                              "left key " + lhs->ToString() +
                                  " resolves to no projected property "
                                  "column");
        }
        const int rc = right->output_meta().PropertyColumn(
            rhs->variable(), rhs->property_key());
        if (rc < 0) {
          return CompileError("ValueJoinEmbeddings",
                              "right key " + rhs->ToString() +
                                  " resolves to no projected property "
                                  "column");
        }
        left_keys.push_back(lc);
        right_keys.push_back(rc);
        key_descriptions.push_back(lhs->ToString() + "=" + rhs->ToString());
      }
      if (left_keys.empty()) {
        return CompileError("ValueJoinEmbeddings",
                            "value join has no key equalities");
      }
      EmbeddingMetaData merged = EmbeddingMetaData::Merge(
          left->output_meta(), right->output_meta());
      GRADOOP_RETURN_IF_ERROR(
          CheckClauses("ValueJoinEmbeddings", residual, merged));
      return Annotate(std::make_shared<ValueJoinOp>(
          std::move(merged), estimate_of(node->estimated_cardinality),
          semantics_, std::move(residual), std::move(left), std::move(right),
          std::move(key_descriptions), std::move(left_keys),
          std::move(right_keys), node->join_strategy));
    }

    case PlanNode::Kind::kExpand: {
      if (node->left == nullptr) {
        return CompileError("ExpandEmbeddings",
                            "expand takes exactly one input");
      }
      const int n = static_cast<int>(qg_.edges().size());
      if (node->element_index < 0 || node->element_index >= n) {
        return CompileError("ExpandEmbeddings", "element_index out of range");
      }
      const cypher::QueryEdge& qe = qg_.edges()[node->element_index];
      if (!qe.IsVariableLength()) {
        return CompileError("ExpandEmbeddings",
                            "fixed-length edge `" + qe.variable +
                                "` must be scanned");
      }
      GRADOOP_ASSIGN_OR_RETURN(PhysicalOperatorPtr input,
                               CompileNode(node->left, {}, 0.0));
      const std::string& src = qg_.vertices()[qe.source].variable;
      const std::string& dst = qg_.vertices()[qe.target].variable;
      const std::string& start = node->expand_reverse ? dst : src;
      const std::string& end = node->expand_reverse ? src : dst;
      const EmbeddingMetaData& input_meta = input->output_meta();
      const int start_column = input_meta.IdColumn(start);
      if (start_column < 0) {
        return CompileError("ExpandEmbeddings", "expansion start `" + start +
                                                    "` has no id column");
      }
      EmbeddingMetaData meta = input_meta;
      meta.AddIdColumn(qe.variable, EntryType::kPath);
      const int bound_end_column = input_meta.IdColumn(end);
      if (bound_end_column < 0) meta.AddIdColumn(end, EntryType::kVertex);
      GRADOOP_RETURN_IF_ERROR(
          CheckClauses("ExpandEmbeddings", residual, meta));
      return Annotate(std::make_shared<ExpandOp>(
          std::move(meta), estimate_of(node->estimated_cardinality),
          semantics_, std::move(residual), std::move(input), qe,
          start_column, bound_end_column, node->expand_reverse));
    }

    case PlanNode::Kind::kFilter: {
      // Unfused path (CompileOptions::fuse_filters == false).
      if (node->left == nullptr) {
        return CompileError("SelectEmbeddings",
                            "filter takes exactly one input");
      }
      GRADOOP_ASSIGN_OR_RETURN(PhysicalOperatorPtr input,
                               CompileNode(node->left, {}, 0.0));
      EmbeddingMetaData meta = input->output_meta();
      GRADOOP_RETURN_IF_ERROR(
          CheckClauses("SelectEmbeddings", node->clauses, meta));
      return Annotate(std::make_shared<FilterOp>(
          std::move(meta), node->estimated_cardinality, semantics_,
          std::move(input), node->clauses));
    }
  }
  return Status::Internal("PlanCompiler: unknown plan node kind");
}

}  // namespace gradoop::query::exec
