#include "query/exec/interruptibility.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "dataflow/execution_context.h"
#include "query/exec/physical_operator.h"

namespace gradoop::query::exec {

std::string Interruptibility::ToString() const {
  if (!bounded()) return "poll=unbounded";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "poll=%llur/%llub",
                static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(batches));
  return buf;
}

Interruptibility DeriveInterruptibility(const PhysicalOperator& op) {
  // Every compiled kernel routes its per-record work through the
  // dataflow loops, which poll once per record (row-engine row, batch-
  // engine batch) — so each kind's own stride is the shared constant.
  // The switch stays explicit so a new operator kind fails to compile
  // here until someone decides where its kernels poll.
  Interruptibility self;
  switch (op.op_kind()) {
    case PhysOpKind::kVertexScan:
    case PhysOpKind::kEdgeScan:
    case PhysOpKind::kJoin:
    case PhysOpKind::kValueJoin:
    case PhysOpKind::kExpand:
    case PhysOpKind::kFilter:
      self.rows = kKernelCheckpointRows;
      self.batches = kKernelCheckpointBatches;
      break;
  }
  // Worst interval in the subtree wins. A child without a claim proves
  // nothing about its loops, so the subtree is unbounded.
  for (const PhysicalOperatorPtr& child : op.children()) {
    if (child == nullptr || !child->has_interruptibility() ||
        !child->interruptibility().bounded()) {
      return Interruptibility{};  // unbounded
    }
    self.rows = std::max(self.rows, child->interruptibility().rows);
    self.batches = std::max(self.batches, child->interruptibility().batches);
  }
  return self;
}

bool CancellationAuditEnabled() {
  return std::getenv("GRADOOP_AUDIT_CANCELLATION") != nullptr;
}

double CancellationAuditBudgetSec() {
  const char* value = std::getenv("GRADOOP_CANCELLATION_BUDGET");
  if (value == nullptr) return 2.0;
  const double budget = std::atof(value);
  return budget > 0.0 ? budget : 2.0;
}

uint64_t CancellationAuditSeed() {
  const char* value = std::getenv("GRADOOP_AUDIT_CANCELLATION_SEED");
  if (value == nullptr) return 17;
  return static_cast<uint64_t>(std::strtoull(value, nullptr, 10));
}

void AuditCancelledQuery(const PhysicalOperator& root,
                         dataflow::ExecutionContext& ctx) {
  const common::CancellationToken& token = ctx.cancellation();
  uint64_t violations = 0;
  char detail[256];
  detail[0] = '\0';

  if (!token.cancelled()) {
    violations += 1;
    std::snprintf(detail, sizeof(detail),
                  "audited a query whose token never tripped");
  }

  // Checkpoints observed after the trip: each in-flight kernel loop
  // notices the trip at its next poll, and the stages already queued in
  // the current compound kernel each poll once per partition before
  // breaking. The allowance scales with the claimed interval and the
  // execution parallelism; a loop that skips its claimed checkpoints
  // shifts detection to later (coarser) polls and breaches it.
  const Interruptibility claim = root.has_interruptibility()
                                     ? root.interruptibility()
                                     : Interruptibility{1, 1};
  const uint64_t claimed_interval = std::max<uint64_t>(
      1, std::max(claim.rows, claim.batches));
  const uint64_t parallelism = static_cast<uint64_t>(
      ctx.pool().num_threads() + ctx.num_workers() + 8);
  const uint64_t allowance = 8 * parallelism * claimed_interval;
  if (violations == 0 && token.polls_after_trip() > allowance) {
    violations += 1;
    std::snprintf(detail, sizeof(detail),
                  "%llu checkpoints elapsed after the trip, allowance %llu "
                  "(claimed interval %s)",
                  static_cast<unsigned long long>(token.polls_after_trip()),
                  static_cast<unsigned long long>(allowance),
                  claim.ToString().c_str());
  }

  const double latency = token.SecondsSinceTrip();
  const double budget = CancellationAuditBudgetSec();
  if (violations == 0 && latency > budget) {
    violations += 1;
    std::snprintf(detail, sizeof(detail),
                  "unwind took %.3fs after the trip, budget %.3fs — some "
                  "loop ran past the trip without polling",
                  latency, budget);
  }

  if (violations == 0 && (ctx.accountant().current_bytes() != 0 ||
                          ctx.accountant().frame_depth() != 0)) {
    violations += 1;
    std::snprintf(
        detail, sizeof(detail),
        "MemoryAccountant did not drain: %llu bytes across %llu frames",
        static_cast<unsigned long long>(ctx.accountant().current_bytes()),
        static_cast<unsigned long long>(ctx.accountant().frame_depth()));
  }

  if (violations == 0 && ctx.pool().pending_tasks() != 0) {
    violations += 1;
    std::snprintf(detail, sizeof(detail), "%d partition tasks still pending",
                  ctx.pool().pending_tasks());
  }

  CancellationAuditStats::Instance().RecordCheck(violations);
  if (violations != 0) {
    std::fprintf(stderr,
                 "[gradoop] cancellation audit FAILED at %s: %s — the "
                 "interruptibility claims are unsound\n",
                 root.name(), detail);
    std::abort();
  }
}

}  // namespace gradoop::query::exec
