#ifndef GRADOOP_QUERY_EXEC_PARTITIONING_H_
#define GRADOOP_QUERY_EXEC_PARTITIONING_H_

#include <string>
#include <vector>

namespace gradoop::query {
struct PlanNode;
}  // namespace gradoop::query

namespace gradoop::query::exec {

class PhysicalOperator;

// Partitioning-property dataflow analysis over compiled physical plans.
//
// Every operator's output dataset has a physical data layout across the
// simulated workers. The lattice below abstracts it; DerivePartitioning
// is the per-operator transfer function, applied bottom-up by
// PlanCompiler and re-applied independently by VerifyCompiledPlan, so an
// annotation the compiler made up (rather than derived) never survives
// to execution. When a repartition join's input is already
// hash-partitioned on exactly the join key, the shuffle for that side is
// provably a no-op — every record already sits at hash(key) % p — and
// the compiled JoinOp/ValueJoinOp elides it (docs/partitioning.md).

enum class PartitioningKind {
  // No invariant: records are wherever the producing stage left them
  // (round-robin sources, expansion emissions).
  kRandom,
  // Every record sits in partition hash(key bytes) % p for the key
  // described by key_kind/key_tokens.
  kHashPartitioned,
  // Every partition holds a full copy (broadcast build sides never
  // surface as datasets today; the element exists for completeness and
  // never justifies an elision).
  kReplicated,
  // All records share one partition (a cartesian repartition join hashes
  // the empty key, which lands everything on hash("") % p).
  kSingleton,
};

// What the hash key is made of. Id keys concatenate the 8-byte bindings
// of query variables; value keys concatenate encoded property values.
// The two domains produce different key bytes for the same embedding and
// must never satisfy each other's co-partitioning requirements.
enum class PartitionKeyKind {
  kIdColumns,       // tokens are query variable names, in key order
  kPropertyValues,  // tokens are "var.key" accesses, in key order
};

struct PartitioningProperty {
  PartitioningKind kind = PartitioningKind::kRandom;
  PartitionKeyKind key_kind = PartitionKeyKind::kIdColumns;
  // Key sequence, in hash order. Order matters: the key bytes are the
  // concatenation of the per-token bytes, so hash(a,b) != hash(b,a).
  std::vector<std::string> key_tokens;

  static PartitioningProperty Random() { return {}; }
  static PartitioningProperty Replicated() {
    PartitioningProperty p;
    p.kind = PartitioningKind::kReplicated;
    return p;
  }
  static PartitioningProperty Singleton() {
    PartitioningProperty p;
    p.kind = PartitioningKind::kSingleton;
    return p;
  }
  static PartitioningProperty HashOnVariables(
      std::vector<std::string> variables) {
    PartitioningProperty p;
    p.kind = PartitioningKind::kHashPartitioned;
    p.key_kind = PartitionKeyKind::kIdColumns;
    p.key_tokens = std::move(variables);
    return p;
  }
  static PartitioningProperty HashOnValues(
      std::vector<std::string> accesses) {
    PartitioningProperty p;
    p.kind = PartitioningKind::kHashPartitioned;
    p.key_kind = PartitionKeyKind::kPropertyValues;
    p.key_tokens = std::move(accesses);
    return p;
  }

  bool operator==(const PartitioningProperty& other) const = default;

  // "random", "replicated", "singleton", "hash(a,b)" or
  // "hash-values(a.x,b.y)".
  std::string ToString() const;
};

// True iff an input with property `input` makes the shuffle of a
// repartition-join side keyed by (key_kind, key_tokens) a provable
// no-op. Requires an exact key-sequence match in the matching key
// domain; the empty key (cartesian) never elides — a Singleton input
// happens to be aligned with hash(""), but the property does not record
// which partition it occupies, so the conservative answer is no.
bool ElidesShuffle(const PartitioningProperty& input,
                   PartitionKeyKind key_kind,
                   const std::vector<std::string>& key_tokens);

// Splits value-join key descriptions ("a.x=b.y") into the per-side
// access tokens ("a.x" for the left, "b.y" for the right) that form the
// value-key hash sequence of that side.
std::vector<std::string> ValueKeySideTokens(
    const std::vector<std::string>& key_descriptions, bool right_side);

// Transfer function over a compiled operator: the partitioning of its
// output, derived from the operator kind, its join strategy/keys and the
// children's claimed properties (a child without a claim counts as
// Random). Pure — never reads the operator's own claim.
PartitioningProperty DerivePartitioning(const PhysicalOperator& op);

// Same transfer function over a logical plan node, used by the planner
// to break join-order cost ties toward shuffle-free plans before
// anything is compiled.
PartitioningProperty DeriveLogicalPartitioning(const query::PlanNode& node);

}  // namespace gradoop::query::exec

#endif  // GRADOOP_QUERY_EXEC_PARTITIONING_H_
