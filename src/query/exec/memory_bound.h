#ifndef GRADOOP_QUERY_EXEC_MEMORY_BOUND_H_
#define GRADOOP_QUERY_EXEC_MEMORY_BOUND_H_

#include <cstdint>
#include <string>

#include "common/thread_annotations.h"
#include "dataflow/memory_accountant.h"

namespace gradoop::query {
class EmbeddingMetaData;
}  // namespace gradoop::query

namespace gradoop::query::exec {

class PhysicalOperator;

// Static memory-footprint analysis over compiled physical plans
// (docs/memory.md).
//
// Every operator carries a MemoryBound claim: how many resident bytes its
// execution is expected to cost, derived bottom-up by per-operator
// transfer functions exactly like the partitioning properties
// (query/exec/partitioning.h). PlanCompiler stamps the claim;
// VerifyCompiledPlan re-derives it independently and rejects tampered or
// missing claims; CypherEngine rejects plans whose root peak exceeds
// max_query_memory_bytes before anything executes; and with
// GRADOOP_AUDIT_MEMORY set, the measured per-operator peak
// (dataflow/memory_accountant.h) is checked against the model at query
// end, aborting when the transfer functions proved unsound.
//
// All figures are estimates in the planner's cardinality model, not hard
// bounds: byte widths of properties and paths use fixed per-column
// constants and cardinalities are the planner's. The runtime audit closes
// the loop with a slack factor (GRADOOP_MEMORY_SLACK, default 4).

// Model constants (bytes). The embedding row model mirrors
// Embedding::SerializedSize(): a 3-field header plus kEntryWidth per id
// column; variable-length payloads (paths, property values) use the
// generous per-column estimates below, validated against the LDBC example
// queries by the runtime audit in CI.
inline constexpr uint64_t kEmbeddingHeaderBytes = 12;  // 3 x uint32 sizes
inline constexpr uint64_t kEntryWidthBytes = 9;        // flag + 8B payload
inline constexpr uint64_t kPropertyBytesEstimate = 24;
inline constexpr uint64_t kPathBytesEstimate = 48;
// Per-row overhead of a join build table — the same constant
// Dataset::HashJoin charges the accountant, so the model and the
// measurement price tables identically.
inline constexpr uint64_t kJoinTableEntryBytes =
    dataflow::kHashTableEntryBytes;
// Estimated wire size of one epgm::Edge staged by an expansion step
// (id/src/target + label + properties + graph memberships).
inline constexpr uint64_t kEdgeRecordBytesEstimate = 112;

// One operator's memory claim. row_bytes/output_bytes describe the
// operator's own output; state_bytes its transient kernel state (shuffle
// staging, build tables, broadcast replicas); peak_bytes the resident
// peak of the whole subtree rooted here under the lifetime-interval model
// (an input's output lives until the consuming kernel returns, so the
// subtree peak is NOT the sum of all operators' bytes).
struct MemoryBound {
  uint64_t row_bytes = 0;     // estimated serialized bytes per output row
  uint64_t output_bytes = 0;  // row_bytes x estimated cardinality
  uint64_t state_bytes = 0;   // transient kernel state while running
  uint64_t peak_bytes = 0;    // subtree peak (lifetime-interval fold)

  bool operator==(const MemoryBound& other) const = default;

  // "row=21B out=4096B state=0B peak=8192B"
  std::string ToString() const;
};

// Estimated serialized bytes of one embedding row with layout `meta`.
uint64_t EstimateRowBytes(const EmbeddingMetaData& meta);

// The lifetime-interval fold at the heart of the analysis, exposed for
// unit tests. Inputs execute left to right; input i's peak is reached
// while the outputs of inputs 0..i-1 are already resident, and once every
// input has produced, all input outputs + the operator's own transient
// state + its output are resident together:
//
//   peak = max( max_i( sum_{j<i} out_j + peak_i ),
//               sum_i out_i + state + output )
//
// `child_output_bytes`/`child_peak_bytes` are parallel arrays.
uint64_t FoldLifetimePeak(const uint64_t* child_output_bytes,
                          const uint64_t* child_peak_bytes,
                          int num_children, uint64_t state_bytes,
                          uint64_t output_bytes);

// Transfer function: the memory bound of `op`'s subtree, derived from the
// operator kind, layout, strategy, cardinality estimate and the
// children's CLAIMED bounds (a child without a claim counts as all-zero).
// Pure — never reads the operator's own claim. `num_workers` scales the
// broadcast replication term and must match the executing
// ClusterConfig::num_workers (the compiler and verifier are both handed
// the context's value).
MemoryBound DeriveMemoryBound(const PhysicalOperator& op,
                              int num_workers = 4);

// Audit-time variant: re-derives the whole subtree recursively, replacing
// every cardinality estimate with the operator's actual row count when it
// executed (absorbing planner misestimates — the audit checks the model's
// structure, not the estimator) while keeping each operator's CLAIMED
// row_bytes (so a zeroed/tampered claim shrinks the allowance and the
// audit still catches it). Children's claims are not trusted for peaks —
// everything below `op` is re-derived.
MemoryBound DeriveMemoryBoundAtActuals(const PhysicalOperator& op,
                                       int num_workers = 4);

// --- runtime audit ----------------------------------------------------

// Read per call, not cached: tests toggle the variable around individual
// executions with setenv/unsetenv.
bool MemoryAuditEnabled();

// Allowance multiplier over the static model (GRADOOP_MEMORY_SLACK,
// default 4.0): properties and paths are width-estimated, so measured
// bytes legitimately exceed the model by small factors.
double MemoryAuditSlack();

// Walks the executed plan and compares every operator's measured subtree
// peak (OperatorStats::actual_peak_bytes) against
// slack x max(claimed peak, model peak at actual row counts). Aborts the
// process on the first violation — an unsound transfer function must not
// survive CI. Call after Execute() with memory accounting enabled.
void AuditCompiledPlanMemory(const PhysicalOperator& root, int num_workers);

// Process-wide tally of audit activity, so tests can assert the audit
// actually ran (a disabled audit trivially "passes"). Mirrors
// dataflow::PartitioningAuditStats; the lock exists for cross-thread test
// readers — audits themselves run on the driver thread.
class MemoryAuditStats {
 public:
  static MemoryAuditStats& Instance() {
    static MemoryAuditStats stats;
    return stats;
  }

  void RecordCheck(uint64_t operators, uint64_t violations) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    checks_ += 1;
    operators_checked_ += operators;
    violations_ += violations;
  }

  uint64_t checks() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return checks_;
  }
  uint64_t operators_checked() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return operators_checked_;
  }
  uint64_t violations() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return violations_;
  }

  void Reset() EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    checks_ = 0;
    operators_checked_ = 0;
    violations_ = 0;
  }

 private:
  MemoryAuditStats() = default;

  mutable common::Mutex mu_{common::LockRank::kExec, "exec.memory_audit"};
  uint64_t checks_ GUARDED_BY(mu_) = 0;
  uint64_t operators_checked_ GUARDED_BY(mu_) = 0;
  uint64_t violations_ GUARDED_BY(mu_) = 0;
};

}  // namespace gradoop::query::exec

#endif  // GRADOOP_QUERY_EXEC_MEMORY_BOUND_H_
