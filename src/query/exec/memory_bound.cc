#include "query/exec/memory_bound.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "query/exec/physical_operator.h"

namespace gradoop::query::exec {

namespace {

// ceil(estimate) as a row count; estimates are finite and non-negative
// (VerifyCompiledPlan checks), but clamp defensively anyway.
uint64_t RowsFromEstimate(double estimate) {
  if (!(estimate > 0.0)) return 0;
  return static_cast<uint64_t>(std::ceil(estimate));
}

// The row count the audit model prices an operator at: the measured
// cardinality when the operator executed, the estimate otherwise (an
// operator of a compiled-but-unexecuted tree has nothing better).
uint64_t RowsOf(const PhysicalOperator& op, bool use_actuals) {
  if (use_actuals && op.stats().executed) return op.stats().actual_rows;
  return RowsFromEstimate(op.estimated_cardinality());
}

// Per-operator derivation, shared between the compile-time transfer
// function (children's CLAIMED bounds, estimated rows) and the audit
// model (children re-derived recursively, actual rows, claimed row
// widths). The split keeps the two modes provably the same shape.
MemoryBound DeriveNode(const PhysicalOperator& op, int num_workers,
                       bool use_actuals) {
  const uint64_t p = num_workers > 0 ? static_cast<uint64_t>(num_workers) : 1;

  // Children's bounds: claims at compile time, recursive re-derivation at
  // audit time.
  std::vector<MemoryBound> child_bounds;
  std::vector<uint64_t> child_rows;
  child_bounds.reserve(op.children().size());
  child_rows.reserve(op.children().size());
  for (const PhysicalOperatorPtr& child : op.children()) {
    if (child == nullptr) {
      child_bounds.emplace_back();
      child_rows.push_back(0);
      continue;
    }
    if (use_actuals) {
      child_bounds.push_back(DeriveNode(*child, num_workers, true));
    } else if (child->has_memory_bound()) {
      child_bounds.push_back(child->memory_bound());
    } else {
      child_bounds.emplace_back();
    }
    child_rows.push_back(RowsOf(*child, use_actuals));
  }

  MemoryBound b;
  // At audit time the CLAIMED row width is kept even though the row count
  // is measured: a tampered (zeroed) claim must shrink the allowance, and
  // the audit exists to validate exactly this width model.
  b.row_bytes = (use_actuals && op.has_memory_bound())
                    ? op.memory_bound().row_bytes
                    : EstimateRowBytes(op.output_meta());
  b.output_bytes = b.row_bytes * RowsOf(op, use_actuals);

  // Operator-specific transient state.
  switch (op.op_kind()) {
    case PhysOpKind::kVertexScan:
    case PhysOpKind::kEdgeScan:
    case PhysOpKind::kFilter:
      // Scans stream source elements row by row; filters drop in place.
      b.state_bytes = 0;
      break;

    case PhysOpKind::kJoin:
    case PhysOpKind::kValueJoin: {
      dataflow::JoinStrategy strategy;
      if (op.op_kind() == PhysOpKind::kJoin) {
        strategy = static_cast<const JoinOp&>(op).strategy();
      } else {
        strategy = static_cast<const ValueJoinOp&>(op).strategy();
      }
      const uint64_t left_bytes =
          child_bounds.size() > 0 ? child_bounds[0].output_bytes : 0;
      const uint64_t right_bytes =
          child_bounds.size() > 1 ? child_bounds[1].output_bytes : 0;
      const uint64_t right_rows = child_rows.size() > 1 ? child_rows[1] : 0;
      if (strategy == dataflow::JoinStrategy::kBroadcast) {
        // Dataset::HashJoin broadcast: the probe side is copied in place
        // (left_parts = *partitions_), the build side is concatenated once
        // (all_right) and replicated to every worker, and each worker
        // builds a hash table over its full-copy build side.
        b.state_bytes = left_bytes + (p + 1) * right_bytes +
                        p * right_rows * kJoinTableEntryBytes;
      } else {
        // Repartition: both sides are staged into shuffled partitions
        // (elided sides still copy via AdoptPrepartitioned) and the build
        // side gets one table entry per row.
        b.state_bytes =
            left_bytes + right_bytes + right_rows * kJoinTableEntryBytes;
      }
      break;
    }

    case PhysOpKind::kExpand: {
      // Each hop joins the frontier against the full edge dataset: the
      // edge rows are staged and become build-table entries, per hop, and
      // the frontier/emission state rides along. Old hop staging is
      // released before the next hop, so one hop's worth bounds them all.
      const auto& expand = static_cast<const ExpandOp&>(op);
      const uint64_t edge_rows = expand.edge_input_estimate();
      const uint64_t input_bytes =
          child_bounds.empty() ? 0 : child_bounds[0].output_bytes;
      b.state_bytes =
          edge_rows * (kEdgeRecordBytesEstimate + kJoinTableEntryBytes) +
          input_bytes + b.output_bytes;
      break;
    }
  }

  std::vector<uint64_t> child_outputs, child_peaks;
  child_outputs.reserve(child_bounds.size());
  child_peaks.reserve(child_bounds.size());
  for (const MemoryBound& c : child_bounds) {
    child_outputs.push_back(c.output_bytes);
    child_peaks.push_back(c.peak_bytes);
  }
  b.peak_bytes = FoldLifetimePeak(
      child_outputs.data(), child_peaks.data(),
      static_cast<int>(child_bounds.size()), b.state_bytes, b.output_bytes);
  return b;
}

// One operator's audit check; recurses children first so the failure
// message names the deepest offending operator.
void AuditNode(const PhysicalOperator& op, int num_workers, double slack,
               uint64_t* operators_checked) {
  for (const PhysicalOperatorPtr& child : op.children()) {
    if (child != nullptr) {
      AuditNode(*child, num_workers, slack, operators_checked);
    }
  }
  if (!op.stats().executed) return;
  ++*operators_checked;
  const uint64_t claimed =
      op.has_memory_bound() ? op.memory_bound().peak_bytes : 0;
  const MemoryBound at_actuals =
      DeriveMemoryBoundAtActuals(op, num_workers);
  const uint64_t model = std::max(claimed, at_actuals.peak_bytes);
  const double allowance = slack * static_cast<double>(model);
  const uint64_t measured = op.stats().actual_peak_bytes;
  if (static_cast<double>(measured) > allowance) {
    MemoryAuditStats::Instance().RecordCheck(*operators_checked, 1);
    std::fprintf(
        stderr,
        "[gradoop] memory audit FAILED at %s: measured subtree peak %llu "
        "bytes exceeds %.1fx the static model (claimed %llu, at actual "
        "rows %llu) — the memory transfer functions are unsound\n",
        op.name(), static_cast<unsigned long long>(measured), slack,
        static_cast<unsigned long long>(claimed),
        static_cast<unsigned long long>(at_actuals.peak_bytes));
    std::abort();
  }
}

}  // namespace

std::string MemoryBound::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "row=%lluB out=%lluB state=%lluB peak=%lluB",
                static_cast<unsigned long long>(row_bytes),
                static_cast<unsigned long long>(output_bytes),
                static_cast<unsigned long long>(state_bytes),
                static_cast<unsigned long long>(peak_bytes));
  return buf;
}

uint64_t EstimateRowBytes(const EmbeddingMetaData& meta) {
  const uint64_t id_columns = static_cast<uint64_t>(meta.id_column_count());
  const uint64_t path_columns =
      static_cast<uint64_t>(meta.PathColumns().size());
  const uint64_t property_columns =
      static_cast<uint64_t>(meta.property_column_count());
  return kEmbeddingHeaderBytes + kEntryWidthBytes * id_columns +
         kPathBytesEstimate * path_columns +
         kPropertyBytesEstimate * property_columns;
}

uint64_t FoldLifetimePeak(const uint64_t* child_output_bytes,
                          const uint64_t* child_peak_bytes,
                          int num_children, uint64_t state_bytes,
                          uint64_t output_bytes) {
  uint64_t held = 0;
  uint64_t peak = 0;
  for (int i = 0; i < num_children; ++i) {
    peak = std::max(peak, held + child_peak_bytes[i]);
    held += child_output_bytes[i];
  }
  return std::max(peak, held + state_bytes + output_bytes);
}

MemoryBound DeriveMemoryBound(const PhysicalOperator& op, int num_workers) {
  return DeriveNode(op, num_workers, /*use_actuals=*/false);
}

MemoryBound DeriveMemoryBoundAtActuals(const PhysicalOperator& op,
                                       int num_workers) {
  return DeriveNode(op, num_workers, /*use_actuals=*/true);
}

bool MemoryAuditEnabled() {
  return std::getenv("GRADOOP_AUDIT_MEMORY") != nullptr;
}

double MemoryAuditSlack() {
  const char* raw = std::getenv("GRADOOP_MEMORY_SLACK");
  if (raw == nullptr) return 4.0;
  const double parsed = std::atof(raw);
  return parsed > 0.0 ? parsed : 4.0;
}

void AuditCompiledPlanMemory(const PhysicalOperator& root, int num_workers) {
  const double slack = MemoryAuditSlack();
  uint64_t operators_checked = 0;
  AuditNode(root, num_workers, slack, &operators_checked);
  MemoryAuditStats::Instance().RecordCheck(operators_checked, 0);
}

}  // namespace gradoop::query::exec
