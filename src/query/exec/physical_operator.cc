#include "query/exec/physical_operator.h"

#include <cstdio>

#include "common/timer.h"
#include "telemetry/query_profile.h"

namespace gradoop::query::exec {

namespace dfl = ::gradoop::dataflow;

namespace {

std::string CardString(double card) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", card);
  return buf;
}

std::string ClauseList(const std::vector<cypher::CnfClause>& clauses) {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " AND ";
    out += clauses[i].ToString();
  }
  return out;
}

std::string CommaJoined(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ",";
    out += tokens[i];
  }
  return out;
}

// Renders shuffle elision for EXPLAIN: which repartition sides the
// analysis proved co-partitioned, and on what key.
std::string ElisionSuffix(bool left, bool right, const std::string& keys) {
  if (!left && !right) return "";
  const char* side = (left && right) ? "" : (left ? "left " : "right ");
  return ", " + std::string(side) + "shuffle=elided (co-partitioned on " +
         keys + ")";
}

// Selects the scan input for a label alternation from the indexed graph:
// single-label predicates load exactly one per-label dataset (§3.4).
dfl::Dataset<epgm::Vertex> VertexScanInput(
    const epgm::IndexedLogicalGraph& graph,
    const std::vector<std::string>& labels) {
  if (labels.empty()) return graph.AllVertices();
  dfl::Dataset<epgm::Vertex> out = graph.VerticesByLabel(labels.front());
  for (size_t i = 1; i < labels.size(); ++i) {
    out = out.Union(graph.VerticesByLabel(labels[i]));
  }
  return out;
}

dfl::Dataset<epgm::Edge> EdgeScanInput(const epgm::IndexedLogicalGraph& graph,
                                       const std::vector<std::string>& types) {
  if (types.empty()) return graph.AllEdges();
  dfl::Dataset<epgm::Edge> out = graph.EdgesByLabel(types.front());
  for (size_t i = 1; i < types.size(); ++i) {
    out = out.Union(graph.EdgesByLabel(types[i]));
  }
  return out;
}

}  // namespace

Status PhysicalOperator::Open(const ExecEnv& env) {
  if (env.graph == nullptr) {
    return Status::Internal("PhysicalOperator: ExecEnv has no graph");
  }
  stats_ = OperatorStats();
  for (const PhysicalOperatorPtr& child : children_) {
    GRADOOP_RETURN_IF_ERROR(child->Open(env));
  }
  return Status::Ok();
}

Result<EmbeddingSet> PhysicalOperator::Execute(const ExecEnv& env) {
  telemetry::Telemetry& tel = env.graph->context()->telemetry();
  const bool traced = tel.enabled();
  const double span_begin_us = traced ? tel.tracer().NowMicros() : 0.0;
  common::CancellationToken& cancel = env.graph->context()->cancellation();
  // Boundary check before any child runs: a trip observed here skips the
  // whole subtree. CancelledOrExpired reads the clock, so a deadline is
  // noticed at the latest one operator after it passes even if no kernel
  // checkpoint fires in between.
  if (cancel.CancelledOrExpired()) {
    return Status::ExecutionError("query cancelled at " + Describe());
  }
  // Frame per subtree: the frame delta (popped below) is this subtree's
  // own resident peak, the runtime counterpart of MemoryBound::peak_bytes.
  // Execute recursion is driver-thread only, so frames strictly nest.
  dataflow::MemoryAccountant& accountant =
      env.graph->context()->accountant();
  accountant.PushFrame();
  // Error unwind: release what executed children still held and pop this
  // frame, so a cancelled query drains the accountant to zero (the
  // cancellation audit asserts exactly that). Each failing ancestor
  // repeats this, balancing the whole path to the root.
  auto unwind = [&](Status status) {
    if (accountant.enabled()) {
      for (const PhysicalOperatorPtr& child : children_) {
        if (child->stats().executed) {
          accountant.Release(child->stats().output_bytes);
        }
      }
    }
    accountant.PopFrame();
    return status;
  };
  Timer total_timer;
  std::vector<EmbeddingSet> inputs;
  inputs.reserve(children_.size());
  uint64_t input_rows = 0;
  for (const PhysicalOperatorPtr& child : children_) {
    Result<EmbeddingSet> input = child->Execute(env);
    if (!input.ok()) return unwind(input.status());
    input_rows += child->stats().actual_rows;
    inputs.push_back(std::move(input).value());
  }
  // The simulated dataflow is eager: every transformation has completed
  // (and charged the tracker) by the time Run returns, so counter deltas
  // around the call attribute shuffle/spill bytes to this operator.
  const dataflow::CostTracker& tracker = env.graph->context()->tracker();
  const uint64_t network_before = tracker.NetworkBytes();
  const uint64_t spilled_before = tracker.SpilledBytes();
  Timer self_timer;
  Result<EmbeddingSet> run = Run(env, std::move(inputs));
  if (!run.ok()) return unwind(run.status());
  // Post-kernel check: kernels drop out of their loops when the token
  // trips but still return partial batches; rejecting here attributes the
  // cancellation to the operator whose kernel observed it.
  if (cancel.CancelledOrExpired()) {
    return unwind(
        Status::ExecutionError("query cancelled at " + Describe()));
  }
  EmbeddingSet out = std::move(run).value();
  stats_.self_wall_sec = self_timer.ElapsedSeconds();
  stats_.network_bytes = tracker.NetworkBytes() - network_before;
  stats_.spilled_bytes = tracker.SpilledBytes() - spilled_before;
  // Partition sizes are read directly — Count() would charge an extra
  // dataflow stage to the query being measured.
  for (int p = 0; p < out.data.num_partitions(); ++p) {
    // cancellation: stats byte walk over this operator's own output;
    // the boundary check above already rejected a tripped token.
    for (const Embedding& e : out.data.partition(p)) {
      ++stats_.actual_rows;
      stats_.output_bytes += e.SerializedSize();
      stats_.property_bytes += e.prop_data().size();
    }
  }
  // Same selectivity definition as the batch path, so sel= and the
  // plan-quality telemetry read identically under either engine.
  stats_.selectivity =
      input_rows > 0
          ? static_cast<double>(stats_.actual_rows) /
                static_cast<double>(input_rows)
          : 1.0;
  // Lifetime accounting, mirroring the static interval model: the own
  // output becomes resident while every input output still is (the "all
  // held" moment the model's final term prices), then the inputs die with
  // the `inputs` vector when this call returns. The root's output stays
  // charged until the engine resets the accountant.
  if (accountant.enabled()) {
    accountant.Charge(stats_.output_bytes);
    for (const PhysicalOperatorPtr& child : children_) {
      accountant.Release(child->stats().output_bytes);
    }
  }
  stats_.actual_peak_bytes = accountant.PopFrame();
  stats_.executed = true;
  stats_.total_wall_sec = total_timer.ElapsedSeconds();
  if (traced) {
    // The span covers the whole subtree execution, so operator spans nest
    // in the trace exactly like the plan tree (all on the driver row).
    tel.tracer().AddSpan(
        Describe(), telemetry::kCategoryOperator, span_begin_us,
        tel.tracer().NowMicros(), /*worker=*/-1,
        {{"rows", static_cast<double>(stats_.actual_rows)},
         {"estimated_rows", estimated_cardinality_},
         {"self_ms", stats_.self_wall_sec * 1e3}});
    tel.metrics().AddCounter("operator.count", 1);
    tel.metrics().AddCounter("operator.rows", stats_.actual_rows);
  }
  return out;
}

Result<BatchSet> PhysicalOperator::ExecuteBatch(const ExecEnv& env) {
  telemetry::Telemetry& tel = env.graph->context()->telemetry();
  const bool traced = tel.enabled();
  const double span_begin_us = traced ? tel.tracer().NowMicros() : 0.0;
  common::CancellationToken& cancel = env.graph->context()->cancellation();
  // Same boundary choreography as Execute (see there).
  if (cancel.CancelledOrExpired()) {
    return Status::ExecutionError("query cancelled at " + Describe());
  }
  // Identical frame choreography to Execute: the audit compares the same
  // byte currency against the same static bounds in both engines.
  dataflow::MemoryAccountant& accountant =
      env.graph->context()->accountant();
  accountant.PushFrame();
  auto unwind = [&](Status status) {
    if (accountant.enabled()) {
      for (const PhysicalOperatorPtr& child : children_) {
        if (child->stats().executed) {
          accountant.Release(child->stats().output_bytes);
        }
      }
    }
    accountant.PopFrame();
    return status;
  };
  Timer total_timer;
  std::vector<BatchSet> inputs;
  inputs.reserve(children_.size());
  uint64_t input_rows = 0;
  for (const PhysicalOperatorPtr& child : children_) {
    Result<BatchSet> input = child->ExecuteBatch(env);
    if (!input.ok()) return unwind(input.status());
    input_rows += child->stats().actual_rows;
    inputs.push_back(std::move(input).value());
  }
  const dataflow::CostTracker& tracker = env.graph->context()->tracker();
  const uint64_t network_before = tracker.NetworkBytes();
  const uint64_t spilled_before = tracker.SpilledBytes();
  Timer self_timer;
  Result<BatchSet> run = RunBatch(env, std::move(inputs));
  if (!run.ok()) return unwind(run.status());
  if (cancel.CancelledOrExpired()) {
    return unwind(
        Status::ExecutionError("query cancelled at " + Describe()));
  }
  BatchSet out = std::move(run).value();
  stats_.self_wall_sec = self_timer.ElapsedSeconds();
  stats_.network_bytes = tracker.NetworkBytes() - network_before;
  stats_.spilled_bytes = tracker.SpilledBytes() - spilled_before;
  for (int p = 0; p < out.data.num_partitions(); ++p) {
    // cancellation: stats byte walk (see Execute).
    for (const EmbeddingBatch& b : out.data.partition(p)) {
      ++stats_.batches;
      stats_.actual_rows += b.ActiveRows();
      stats_.output_bytes += b.SerializedSize();
      stats_.property_bytes += b.property_pool_bytes();
    }
  }
  stats_.selectivity =
      input_rows > 0
          ? static_cast<double>(stats_.actual_rows) /
                static_cast<double>(input_rows)
          : 1.0;
  if (accountant.enabled()) {
    accountant.Charge(stats_.output_bytes);
    for (const PhysicalOperatorPtr& child : children_) {
      accountant.Release(child->stats().output_bytes);
    }
  }
  stats_.actual_peak_bytes = accountant.PopFrame();
  stats_.executed = true;
  stats_.total_wall_sec = total_timer.ElapsedSeconds();
  if (traced) {
    tel.tracer().AddSpan(
        Describe(), telemetry::kCategoryOperator, span_begin_us,
        tel.tracer().NowMicros(), /*worker=*/-1,
        {{"rows", static_cast<double>(stats_.actual_rows)},
         {"estimated_rows", estimated_cardinality_},
         {"batches", static_cast<double>(stats_.batches)},
         {"self_ms", stats_.self_wall_sec * 1e3}});
    tel.metrics().AddCounter("operator.count", 1);
    tel.metrics().AddCounter("operator.rows", stats_.actual_rows);
    tel.metrics().AddCounter("batch.count", stats_.batches);
    tel.metrics().AddCounter("batch.rows", stats_.actual_rows);
  }
  return out;
}

std::string PhysicalOperator::ToString(const RenderOptions& options,
                                       int indent) const {
  std::string out(2 * static_cast<size_t>(indent), ' ');
  out += Describe();
  if (!fused_clauses_.empty()) {
    out += " +filter(" + ClauseList(fused_clauses_) + ")";
  }
  out += " ~" + CardString(estimated_cardinality_);
  if (has_memory_bound_) {
    out += " mem=" + std::to_string(memory_bound_.peak_bytes) + "B";
    if (options.actuals && stats_.executed) {
      out += "/" + std::to_string(stats_.actual_peak_bytes) + "B";
    }
  }
  if (options.batch_layout && has_batch_layout_) {
    out += " batch=" + std::to_string(batch_layout_.batch_size);
  }
  if (options.actuals && stats_.executed) {
    out += " rows=" + std::to_string(stats_.actual_rows);
    // Plan quality inline: the cardinality Q-error of the estimate two
    // tokens to the left, and the measured selectivity — both engines.
    // batches= stays batch-only (the row engine produces none).
    char buf[48];
    std::snprintf(buf, sizeof(buf), " qerror=%.2f",
                  telemetry::QError(estimated_cardinality_,
                                    static_cast<double>(stats_.actual_rows)));
    out += buf;
    if (stats_.batches > 0) {
      std::snprintf(buf, sizeof(buf), " batches=%llu",
                    static_cast<unsigned long long>(stats_.batches));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), " sel=%.2f", stats_.selectivity);
    out += buf;
  }
  if (options.timing && stats_.executed) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  " self=%.3fms total=%.3fms net=%lluB spill=%lluB",
                  stats_.self_wall_sec * 1e3, stats_.total_wall_sec * 1e3,
                  static_cast<unsigned long long>(stats_.network_bytes),
                  static_cast<unsigned long long>(stats_.spilled_bytes));
    out += buf;
  }
  out += "\n";
  for (const PhysicalOperatorPtr& child : children_) {
    out += child->ToString(options, indent + 1);
  }
  return out;
}

// --- VertexScanOp ------------------------------------------------------

std::string VertexScanOp::Describe() const {
  std::string out = "ScanVertices(" + query_vertex_.variable;
  if (!query_vertex_.labels.empty()) {
    out += ":";
    for (size_t i = 0; i < query_vertex_.labels.size(); ++i) {
      if (i > 0) out += "|";
      out += query_vertex_.labels[i];
    }
  }
  return out + ")";
}

Result<EmbeddingSet> VertexScanOp::Run(const ExecEnv& env,
                                       std::vector<EmbeddingSet> inputs) {
  (void)inputs;
  return SelectAndProjectVertices(
      VertexScanInput(*env.graph, query_vertex_.labels), query_vertex_,
      predicates_, output_meta_, fused_clauses_);
}

Result<BatchSet> VertexScanOp::RunBatch(const ExecEnv& env,
                                        std::vector<BatchSet> inputs) {
  (void)inputs;
  return ScanVerticesBatch(VertexScanInput(*env.graph, query_vertex_.labels),
                           query_vertex_, predicates_, output_meta_,
                           fused_clauses_, RuntimeBatchSize());
}

// --- EdgeScanOp --------------------------------------------------------

std::string EdgeScanOp::Describe() const {
  std::string out = "ScanEdges(" + query_edge_.variable;
  if (!query_edge_.types.empty()) {
    out += ":";
    for (size_t i = 0; i < query_edge_.types.size(); ++i) {
      if (i > 0) out += "|";
      out += query_edge_.types[i];
    }
  }
  return out + ")";
}

Result<EmbeddingSet> EdgeScanOp::Run(const ExecEnv& env,
                                     std::vector<EmbeddingSet> inputs) {
  (void)inputs;
  // Recurring-subquery reuse: an identical edge scan (same types,
  // direction, predicates, projection — the signature excludes variable
  // names, on which the rows do not depend) executes once per query. The
  // cached dataset pairs with this operator's own compiled meta.
  if (env.scan_cache != nullptr && !signature_.empty()) {
    auto it = env.scan_cache->find(signature_);
    if (it != env.scan_cache->end()) {
      return EmbeddingSet{it->second, output_meta_};
    }
  }
  EmbeddingSet scanned = SelectAndProjectEdges(
      EdgeScanInput(*env.graph, query_edge_.types), query_edge_, predicates_,
      semantics_, self_loop_, output_meta_, fused_clauses_);
  if (env.scan_cache != nullptr && !signature_.empty()) {
    env.scan_cache->emplace(signature_, scanned.data);
  }
  return scanned;
}

Result<BatchSet> EdgeScanOp::RunBatch(const ExecEnv& env,
                                      std::vector<BatchSet> inputs) {
  (void)inputs;
  // Same recurring-subquery reuse as the row path, against the columnar
  // cache (the signature already excludes variable names).
  if (env.batch_scan_cache != nullptr && !signature_.empty()) {
    auto it = env.batch_scan_cache->find(signature_);
    if (it != env.batch_scan_cache->end()) {
      return BatchSet{it->second, output_meta_};
    }
  }
  BatchSet scanned = ScanEdgesBatch(
      EdgeScanInput(*env.graph, query_edge_.types), query_edge_, predicates_,
      semantics_, self_loop_, output_meta_, fused_clauses_,
      RuntimeBatchSize());
  if (env.batch_scan_cache != nullptr && !signature_.empty()) {
    env.batch_scan_cache->emplace(signature_, scanned.data);
  }
  return scanned;
}

// --- JoinOp ------------------------------------------------------------

std::string JoinOp::Describe() const {
  std::string out = "JoinEmbeddings(on ";
  if (join_variables_.empty()) {
    out += "<cartesian>";
  } else {
    out += CommaJoined(join_variables_);
  }
  out += strategy_ == dfl::JoinStrategy::kBroadcast ? ", broadcast"
                                                    : ", repartition";
  out += ElisionSuffix(elide_left_shuffle_, elide_right_shuffle_,
                       CommaJoined(join_variables_));
  return out + ")";
}

Result<EmbeddingSet> JoinOp::Run(const ExecEnv& env,
                                 std::vector<EmbeddingSet> inputs) {
  (void)env;
  return JoinEmbeddings(inputs[0], inputs[1], left_columns_, right_columns_,
                        output_meta_, semantics_, strategy_, fused_clauses_,
                        {elide_left_shuffle_, elide_right_shuffle_});
}

Result<BatchSet> JoinOp::RunBatch(const ExecEnv& env,
                                  std::vector<BatchSet> inputs) {
  (void)env;
  return JoinBatches(inputs[0], inputs[1], left_columns_, right_columns_,
                     output_meta_, semantics_, strategy_, fused_clauses_,
                     {elide_left_shuffle_, elide_right_shuffle_},
                     RuntimeBatchSize());
}

// --- ValueJoinOp -------------------------------------------------------

std::string ValueJoinOp::Describe() const {
  std::string out = "ValueJoinEmbeddings(on " + CommaJoined(key_descriptions_);
  // Name the elided side's own key accesses (both sides elided reads best
  // with the full equality descriptions).
  std::string keys;
  if (elide_left_shuffle_ && elide_right_shuffle_) {
    keys = CommaJoined(key_descriptions_);
  } else if (elide_left_shuffle_) {
    keys = CommaJoined(ValueKeySideTokens(key_descriptions_, false));
  } else if (elide_right_shuffle_) {
    keys = CommaJoined(ValueKeySideTokens(key_descriptions_, true));
  }
  out += ElisionSuffix(elide_left_shuffle_, elide_right_shuffle_, keys);
  return out + ")";
}

Result<EmbeddingSet> ValueJoinOp::Run(const ExecEnv& env,
                                      std::vector<EmbeddingSet> inputs) {
  (void)env;
  return ValueJoinEmbeddings(inputs[0], inputs[1], left_key_columns_,
                             right_key_columns_, output_meta_, semantics_,
                             strategy_, fused_clauses_,
                             {elide_left_shuffle_, elide_right_shuffle_});
}

Result<BatchSet> ValueJoinOp::RunBatch(const ExecEnv& env,
                                       std::vector<BatchSet> inputs) {
  (void)env;
  return ValueJoinBatches(inputs[0], inputs[1], left_key_columns_,
                          right_key_columns_, output_meta_, semantics_,
                          strategy_, fused_clauses_,
                          {elide_left_shuffle_, elide_right_shuffle_},
                          RuntimeBatchSize());
}

// --- ExpandOp ----------------------------------------------------------

std::string ExpandOp::Describe() const {
  return "ExpandEmbeddings(" + query_edge_.variable + "*" +
         std::to_string(query_edge_.lower_bound) + ".." +
         std::to_string(query_edge_.upper_bound) +
         (reverse_ ? ", reverse" : "") + ")";
}

Result<EmbeddingSet> ExpandOp::Run(const ExecEnv& env,
                                   std::vector<EmbeddingSet> inputs) {
  return ExpandEmbeddings(inputs[0],
                          EdgeScanInput(*env.graph, query_edge_.types),
                          start_column_, bound_end_column_, output_meta_,
                          query_edge_.lower_bound, query_edge_.upper_bound,
                          reverse_, semantics_, fused_clauses_);
}

Result<BatchSet> ExpandOp::RunBatch(const ExecEnv& env,
                                    std::vector<BatchSet> inputs) {
  return ExpandBatches(inputs[0],
                       EdgeScanInput(*env.graph, query_edge_.types),
                       start_column_, bound_end_column_, output_meta_,
                       query_edge_.lower_bound, query_edge_.upper_bound,
                       reverse_, semantics_, fused_clauses_,
                       RuntimeBatchSize());
}

// --- FilterOp ----------------------------------------------------------

std::string FilterOp::Describe() const {
  return "SelectEmbeddings(" + ClauseList(clauses_) + ")";
}

Result<EmbeddingSet> FilterOp::Run(const ExecEnv& env,
                                   std::vector<EmbeddingSet> inputs) {
  (void)env;
  return SelectEmbeddings(inputs[0], clauses_);
}

Result<BatchSet> FilterOp::RunBatch(const ExecEnv& env,
                                    std::vector<BatchSet> inputs) {
  (void)env;
  return SelectBatches(inputs[0], clauses_);
}

}  // namespace gradoop::query::exec
