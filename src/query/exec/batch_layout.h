#ifndef GRADOOP_QUERY_EXEC_BATCH_LAYOUT_H_
#define GRADOOP_QUERY_EXEC_BATCH_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gradoop::query {
class EmbeddingMetaData;
}  // namespace gradoop::query

namespace gradoop::query::exec {

// Rows per EmbeddingBatch unless the engine/tooling overrides it.
inline constexpr int kDefaultBatchSize = 1024;

// Compile-time claim about the columnar batch layout of one operator's
// output (docs/vectorized.md): how many rows a batch holds at most, which
// id columns carry PATH offsets instead of plain identifiers, and how many
// property columns follow. PlanCompiler stamps it bottom-up next to the
// partitioning and memory claims; the batch kernels size their column
// buffers from it, and VerifyCompiledPlan re-derives it from the compiled
// EmbeddingMetaData alone and rejects any mismatch — a tampered layout
// would make the vectorized kernels read id payloads as path offsets.
struct BatchLayout {
  int batch_size = 0;
  // Per id column: Embedding::kIdFlag or Embedding::kPathFlag. Duplicate
  // columns of shared join variables carry kIdFlag (path bindings are
  // never join keys, so a duplicated column always holds an identifier).
  std::vector<uint8_t> column_flags;
  int property_columns = 0;

  bool operator==(const BatchLayout& other) const = default;

  // "batch=1024 cols=IIP props=2" (I = id column, P = path column).
  std::string ToString() const;
};

// Derives the batch layout of `meta` — the transfer function both the
// compiler (to stamp) and the verifier (to check) call.
BatchLayout DeriveBatchLayout(const EmbeddingMetaData& meta,
                              int batch_size = kDefaultBatchSize);

}  // namespace gradoop::query::exec

#endif  // GRADOOP_QUERY_EXEC_BATCH_LAYOUT_H_
