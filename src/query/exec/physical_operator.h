#ifndef GRADOOP_QUERY_EXEC_PHYSICAL_OPERATOR_H_
#define GRADOOP_QUERY_EXEC_PHYSICAL_OPERATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "cypher/query_graph.h"
#include "dataflow/dataset.h"
#include "epgm/indexed_logical_graph.h"
#include "query/batch_operators.h"
#include "query/embedding_meta_data.h"
#include "query/exec/batch_layout.h"
#include "query/exec/interruptibility.h"
#include "query/exec/memory_bound.h"
#include "query/exec/partitioning.h"
#include "query/match_semantics.h"
#include "query/operators.h"

namespace gradoop::query {

// Cache of edge-scan results within one query execution, keyed by the
// scan's data signature (types, direction, predicates, projection) —
// variable names are excluded since the embedding rows do not depend on
// them. Implements the paper's recurring-subquery reuse
// (PlannerOptions::share_scan_results).
using ScanCache = std::map<std::string, dataflow::Dataset<Embedding>>;

// The batch engine's counterpart, caching columnar edge-scan results
// under the same signatures (the two caches never mix representations).
using BatchScanCache = std::map<std::string, dataflow::Dataset<EmbeddingBatch>>;

namespace exec {

// Runtime statistics one compiled operator records per execution — the
// actual counterpart of the planner's estimates (Fig. 6 reports both).
struct OperatorStats {
  bool executed = false;
  uint64_t actual_rows = 0;     // output cardinality
  // Number of column batches produced — batch-engine execution only;
  // zero under the row engine, which is how the renderer tells the two
  // apart.
  uint64_t batches = 0;
  // Output rows per input row (1.0 on leaves), recorded by BOTH engines
  // so plan-quality telemetry is engine-agnostic.
  double selectivity = 0.0;
  // Wall time of this operator's own kernel (Run + stats collection),
  // excluding the children's Execute calls...
  double self_wall_sec = 0.0;
  // ...versus the cumulative time of the whole subtree rooted here. The
  // two are reported side by side so a parent is never misread as slow
  // when the time was really spent below it.
  double total_wall_sec = 0.0;
  uint64_t network_bytes = 0;   // shuffle bytes charged while it ran
  uint64_t spilled_bytes = 0;   // spill bytes charged while it ran
  uint64_t output_bytes = 0;    // serialized size of the output embeddings
  uint64_t property_bytes = 0;  // property payload share of output_bytes
  // Measured resident peak of this operator's subtree (accountant frame
  // delta; dataflow/memory_accountant.h). 0 when accounting was off. The
  // runtime counterpart of MemoryBound::peak_bytes.
  uint64_t actual_peak_bytes = 0;
};

// Everything an operator needs at run time. Column layouts are NOT here:
// they were resolved at compile time and live inside each operator.
struct ExecEnv {
  const epgm::IndexedLogicalGraph* graph = nullptr;
  ScanCache* scan_cache = nullptr;  // non-null enables edge-scan sharing
  // Batch-engine scan sharing; only consulted by ExecuteBatch.
  BatchScanCache* batch_scan_cache = nullptr;
};

enum class PhysOpKind {
  kVertexScan,
  kEdgeScan,
  kJoin,
  kValueJoin,
  kExpand,
  kFilter,
};

class PhysicalOperator;
using PhysicalOperatorPtr = std::shared_ptr<PhysicalOperator>;

// One compiled operator of a physical plan. Produced by PlanCompiler,
// which resolves the output EmbeddingMetaData, key columns and property
// slots once; Run() only executes the corresponding kernel. Execute()
// additionally drives the children and records OperatorStats, so
// estimated-vs-actual cardinalities can be rendered per operator
// (CypherEngine::ExplainAnalyze).
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  virtual PhysOpKind op_kind() const = 0;
  // Stable operator name matching analysis::PlanKindName.
  virtual const char* name() const = 0;
  // One-line description without cardinalities ("JoinEmbeddings(on a,
  // repartition)").
  virtual std::string Describe() const = 0;

  // Prepares the tree for one execution: validates the environment and
  // clears previous statistics, recursively.
  Status Open(const ExecEnv& env);

  // Executes children, then this operator's kernel, recording statistics.
  Result<EmbeddingSet> Execute(const ExecEnv& env);

  // Columnar execution of the same compiled plan: children and kernel run
  // batch-at-a-time (RunBatch), with identical accounting choreography —
  // frames, charges and counter deltas — so memory audits and admission
  // hold unchanged. Additionally records batches and selectivity.
  Result<BatchSet> ExecuteBatch(const ExecEnv& env);

  const EmbeddingMetaData& output_meta() const { return output_meta_; }
  double estimated_cardinality() const { return estimated_cardinality_; }
  const MorphismSetting& semantics() const { return semantics_; }
  const std::vector<cypher::CnfClause>& fused_clauses() const {
    return fused_clauses_;
  }
  const std::vector<PhysicalOperatorPtr>& children() const {
    return children_;
  }
  const OperatorStats& stats() const { return stats_; }

  // Partitioning-property claim of the output layout, stamped bottom-up
  // by PlanCompiler from DerivePartitioning and independently re-derived
  // by VerifyCompiledPlan. Absent only on operators built outside the
  // compiler (hand-assembled test trees).
  bool has_output_partitioning() const { return has_output_partitioning_; }
  const PartitioningProperty& output_partitioning() const {
    return output_partitioning_;
  }
  void set_output_partitioning(PartitioningProperty p) {
    output_partitioning_ = std::move(p);
    has_output_partitioning_ = true;
  }

  // Memory-footprint claim of the subtree rooted here, stamped bottom-up
  // by PlanCompiler from DeriveMemoryBound and independently re-derived
  // by VerifyCompiledPlan (which, unlike for partitioning, REJECTS a
  // missing claim on compiled plans — admission control depends on it).
  bool has_memory_bound() const { return has_memory_bound_; }
  const MemoryBound& memory_bound() const { return memory_bound_; }
  void set_memory_bound(MemoryBound b) {
    memory_bound_ = b;
    has_memory_bound_ = true;
  }

  // Interruptibility claim of the subtree rooted here, stamped bottom-up
  // by PlanCompiler from DeriveInterruptibility and independently
  // re-derived by VerifyCompiledPlan (mandatory on compiled plans; an
  // unbounded claim — a kernel loop with no cancellation poll — is
  // rejected outright, see docs/cancellation.md).
  bool has_interruptibility() const { return has_interruptibility_; }
  const Interruptibility& interruptibility() const {
    return interruptibility_;
  }
  void set_interruptibility(Interruptibility claim) {
    interruptibility_ = claim;
    has_interruptibility_ = true;
  }

  // Batch-layout claim of the output representation, stamped by
  // PlanCompiler from DeriveBatchLayout and independently re-derived by
  // VerifyCompiledPlan (mandatory on compiled plans, like the memory
  // bound — a tampered layout would make the vectorized kernels read id
  // payloads as path offsets).
  bool has_batch_layout() const { return has_batch_layout_; }
  const BatchLayout& batch_layout() const { return batch_layout_; }
  void set_batch_layout(BatchLayout layout) {
    batch_layout_ = std::move(layout);
    has_batch_layout_ = true;
  }

  struct RenderOptions {
    bool actuals = false;  // append rows=<actual cardinality>
    bool timing = false;   // append wall/net/spill (non-deterministic)
    // Append batch=<n> from the batch-layout claim (EXPLAIN under
    // --engine=batch; row-engine output stays byte-stable without it).
    bool batch_layout = false;
  };
  // Indented operator-tree rendering (EXPLAIN / EXPLAIN ANALYZE output).
  std::string ToString(const RenderOptions& options, int indent = 0) const;
  std::string ToString() const { return ToString(RenderOptions()); }

 protected:
  PhysicalOperator(EmbeddingMetaData output_meta, double estimated_cardinality,
                   MorphismSetting semantics,
                   std::vector<cypher::CnfClause> fused_clauses,
                   std::vector<PhysicalOperatorPtr> children)
      : output_meta_(std::move(output_meta)),
        estimated_cardinality_(estimated_cardinality),
        semantics_(semantics),
        fused_clauses_(std::move(fused_clauses)),
        children_(std::move(children)) {}

  // Kernel invocation; `inputs` holds the children's outputs in order.
  virtual Result<EmbeddingSet> Run(const ExecEnv& env,
                                   std::vector<EmbeddingSet> inputs) = 0;

  // Columnar kernel invocation (the vectorized twin of Run).
  virtual Result<BatchSet> RunBatch(const ExecEnv& env,
                                    std::vector<BatchSet> inputs) = 0;

  // Batch capacity the vectorized kernels build to: the compiled claim's
  // size, or the default on hand-assembled (un-annotated) trees.
  int RuntimeBatchSize() const {
    return has_batch_layout_ && batch_layout_.batch_size > 0
               ? batch_layout_.batch_size
               : kDefaultBatchSize;
  }

  EmbeddingMetaData output_meta_;
  double estimated_cardinality_ = 0.0;
  MorphismSetting semantics_;
  std::vector<cypher::CnfClause> fused_clauses_;
  std::vector<PhysicalOperatorPtr> children_;
  OperatorStats stats_;
  PartitioningProperty output_partitioning_;
  bool has_output_partitioning_ = false;
  MemoryBound memory_bound_;
  bool has_memory_bound_ = false;
  Interruptibility interruptibility_;
  bool has_interruptibility_ = false;
  BatchLayout batch_layout_;
  bool has_batch_layout_ = false;
};

// --- one class per plan kind -----------------------------------------

class VertexScanOp final : public PhysicalOperator {
 public:
  VertexScanOp(EmbeddingMetaData meta, double estimate,
               MorphismSetting semantics,
               std::vector<cypher::CnfClause> fused,
               cypher::QueryVertex query_vertex,
               std::vector<cypher::CnfClause> predicates)
      : PhysicalOperator(std::move(meta), estimate, semantics,
                         std::move(fused), {}),
        query_vertex_(std::move(query_vertex)),
        predicates_(std::move(predicates)) {}

  PhysOpKind op_kind() const override { return PhysOpKind::kVertexScan; }
  const char* name() const override { return "ScanVertices"; }
  std::string Describe() const override;

 protected:
  Result<EmbeddingSet> Run(const ExecEnv& env,
                           std::vector<EmbeddingSet> inputs) override;
  Result<BatchSet> RunBatch(const ExecEnv& env,
                            std::vector<BatchSet> inputs) override;

 private:
  cypher::QueryVertex query_vertex_;
  std::vector<cypher::CnfClause> predicates_;
};

class EdgeScanOp final : public PhysicalOperator {
 public:
  EdgeScanOp(EmbeddingMetaData meta, double estimate,
             MorphismSetting semantics, std::vector<cypher::CnfClause> fused,
             cypher::QueryEdge query_edge,
             std::vector<cypher::CnfClause> predicates, bool self_loop,
             std::string signature)
      : PhysicalOperator(std::move(meta), estimate, semantics,
                         std::move(fused), {}),
        query_edge_(std::move(query_edge)),
        predicates_(std::move(predicates)),
        self_loop_(self_loop),
        signature_(std::move(signature)) {}

  PhysOpKind op_kind() const override { return PhysOpKind::kEdgeScan; }
  const char* name() const override { return "ScanEdges"; }
  std::string Describe() const override;

  bool self_loop() const { return self_loop_; }
  // Data signature for the scan cache; empty when sharing is disabled.
  const std::string& signature() const { return signature_; }

 protected:
  Result<EmbeddingSet> Run(const ExecEnv& env,
                           std::vector<EmbeddingSet> inputs) override;
  Result<BatchSet> RunBatch(const ExecEnv& env,
                            std::vector<BatchSet> inputs) override;

 private:
  cypher::QueryEdge query_edge_;
  std::vector<cypher::CnfClause> predicates_;
  bool self_loop_ = false;
  std::string signature_;
};

class JoinOp final : public PhysicalOperator {
 public:
  JoinOp(EmbeddingMetaData meta, double estimate, MorphismSetting semantics,
         std::vector<cypher::CnfClause> fused, PhysicalOperatorPtr left,
         PhysicalOperatorPtr right, std::vector<std::string> join_variables,
         std::vector<int> left_columns, std::vector<int> right_columns,
         dataflow::JoinStrategy strategy)
      : PhysicalOperator(std::move(meta), estimate, semantics,
                         std::move(fused),
                         {std::move(left), std::move(right)}),
        join_variables_(std::move(join_variables)),
        left_columns_(std::move(left_columns)),
        right_columns_(std::move(right_columns)),
        strategy_(strategy) {}

  PhysOpKind op_kind() const override { return PhysOpKind::kJoin; }
  const char* name() const override { return "JoinEmbeddings"; }
  std::string Describe() const override;

  const std::vector<std::string>& join_variables() const {
    return join_variables_;
  }
  const std::vector<int>& left_columns() const { return left_columns_; }
  const std::vector<int>& right_columns() const { return right_columns_; }
  dataflow::JoinStrategy strategy() const { return strategy_; }

  // Shuffle elision, granted by PlanCompiler when the partitioning
  // analysis proved the side co-partitioned on join_variables_.
  bool elide_left_shuffle() const { return elide_left_shuffle_; }
  bool elide_right_shuffle() const { return elide_right_shuffle_; }
  void set_shuffle_elision(bool left, bool right) {
    elide_left_shuffle_ = left;
    elide_right_shuffle_ = right;
  }

 protected:
  Result<EmbeddingSet> Run(const ExecEnv& env,
                           std::vector<EmbeddingSet> inputs) override;
  Result<BatchSet> RunBatch(const ExecEnv& env,
                            std::vector<BatchSet> inputs) override;

 private:
  std::vector<std::string> join_variables_;
  std::vector<int> left_columns_;
  std::vector<int> right_columns_;
  dataflow::JoinStrategy strategy_;
  bool elide_left_shuffle_ = false;
  bool elide_right_shuffle_ = false;
};

class ValueJoinOp final : public PhysicalOperator {
 public:
  ValueJoinOp(EmbeddingMetaData meta, double estimate,
              MorphismSetting semantics, std::vector<cypher::CnfClause> fused,
              PhysicalOperatorPtr left, PhysicalOperatorPtr right,
              std::vector<std::string> key_descriptions,
              std::vector<int> left_key_columns,
              std::vector<int> right_key_columns,
              dataflow::JoinStrategy strategy)
      : PhysicalOperator(std::move(meta), estimate, semantics,
                         std::move(fused),
                         {std::move(left), std::move(right)}),
        key_descriptions_(std::move(key_descriptions)),
        left_key_columns_(std::move(left_key_columns)),
        right_key_columns_(std::move(right_key_columns)),
        strategy_(strategy) {}

  PhysOpKind op_kind() const override { return PhysOpKind::kValueJoin; }
  const char* name() const override { return "ValueJoinEmbeddings"; }
  std::string Describe() const override;

  const std::vector<int>& left_key_columns() const {
    return left_key_columns_;
  }
  const std::vector<int>& right_key_columns() const {
    return right_key_columns_;
  }
  const std::vector<std::string>& key_descriptions() const {
    return key_descriptions_;
  }
  dataflow::JoinStrategy strategy() const { return strategy_; }

  bool elide_left_shuffle() const { return elide_left_shuffle_; }
  bool elide_right_shuffle() const { return elide_right_shuffle_; }
  void set_shuffle_elision(bool left, bool right) {
    elide_left_shuffle_ = left;
    elide_right_shuffle_ = right;
  }

 protected:
  Result<EmbeddingSet> Run(const ExecEnv& env,
                           std::vector<EmbeddingSet> inputs) override;
  Result<BatchSet> RunBatch(const ExecEnv& env,
                            std::vector<BatchSet> inputs) override;

 private:
  std::vector<std::string> key_descriptions_;  // "a.x=b.y", for rendering
  std::vector<int> left_key_columns_;
  std::vector<int> right_key_columns_;
  dataflow::JoinStrategy strategy_;
  bool elide_left_shuffle_ = false;
  bool elide_right_shuffle_ = false;
};

class ExpandOp final : public PhysicalOperator {
 public:
  ExpandOp(EmbeddingMetaData meta, double estimate, MorphismSetting semantics,
           std::vector<cypher::CnfClause> fused, PhysicalOperatorPtr input,
           cypher::QueryEdge query_edge, int start_column,
           int bound_end_column, bool reverse)
      : PhysicalOperator(std::move(meta), estimate, semantics,
                         std::move(fused), {std::move(input)}),
        query_edge_(std::move(query_edge)),
        start_column_(start_column),
        bound_end_column_(bound_end_column),
        reverse_(reverse) {}

  PhysOpKind op_kind() const override { return PhysOpKind::kExpand; }
  const char* name() const override { return "ExpandEmbeddings"; }
  std::string Describe() const override;

  int start_column() const { return start_column_; }
  int bound_end_column() const { return bound_end_column_; }
  bool reverse() const { return reverse_; }
  const cypher::QueryEdge& query_edge() const { return query_edge_; }

  // Estimated rows of the edge dataset each expansion hop joins against,
  // stamped by PlanCompiler from the graph statistics (0 when compiled
  // without statistics, e.g. the ExecutePlan compat path). Trusted
  // operator data for the memory transfer function, like the cardinality
  // estimate.
  uint64_t edge_input_estimate() const { return edge_input_estimate_; }
  void set_edge_input_estimate(uint64_t rows) { edge_input_estimate_ = rows; }

 protected:
  Result<EmbeddingSet> Run(const ExecEnv& env,
                           std::vector<EmbeddingSet> inputs) override;
  Result<BatchSet> RunBatch(const ExecEnv& env,
                            std::vector<BatchSet> inputs) override;

 private:
  cypher::QueryEdge query_edge_;
  int start_column_ = -1;
  int bound_end_column_ = -1;
  bool reverse_ = false;
  uint64_t edge_input_estimate_ = 0;
};

// Standalone filter stage; only compiled when filter fusion is disabled
// (CompileOptions::fuse_filters == false).
class FilterOp final : public PhysicalOperator {
 public:
  FilterOp(EmbeddingMetaData meta, double estimate, MorphismSetting semantics,
           PhysicalOperatorPtr input, std::vector<cypher::CnfClause> clauses)
      : PhysicalOperator(std::move(meta), estimate, semantics, {},
                         {std::move(input)}),
        clauses_(std::move(clauses)) {}

  PhysOpKind op_kind() const override { return PhysOpKind::kFilter; }
  const char* name() const override { return "SelectEmbeddings"; }
  std::string Describe() const override;

  const std::vector<cypher::CnfClause>& clauses() const { return clauses_; }

 protected:
  Result<EmbeddingSet> Run(const ExecEnv& env,
                           std::vector<EmbeddingSet> inputs) override;
  Result<BatchSet> RunBatch(const ExecEnv& env,
                            std::vector<BatchSet> inputs) override;

 private:
  std::vector<cypher::CnfClause> clauses_;
};

}  // namespace exec
}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_EXEC_PHYSICAL_OPERATOR_H_
