#include "query/exec/batch_layout.h"

#include "query/embedding.h"
#include "query/embedding_meta_data.h"

namespace gradoop::query::exec {

std::string BatchLayout::ToString() const {
  std::string out = "batch=" + std::to_string(batch_size) + " cols=";
  for (const uint8_t flag : column_flags) {
    out += flag == Embedding::kPathFlag ? 'P' : 'I';
  }
  out += " props=" + std::to_string(property_columns);
  return out;
}

BatchLayout DeriveBatchLayout(const EmbeddingMetaData& meta, int batch_size) {
  BatchLayout layout;
  layout.batch_size = batch_size;
  layout.column_flags.assign(
      static_cast<size_t>(meta.id_column_count()), Embedding::kIdFlag);
  // Only columns bound to a path variable hold PATH entries. A merged
  // layout's duplicate column of a shared variable stays kIdFlag: shared
  // variables are join keys, and path bindings cannot be joined on.
  for (const std::string& var : meta.Variables()) {
    if (meta.TypeOf(var) == EntryType::kPath) {
      layout.column_flags[static_cast<size_t>(meta.IdColumn(var))] =
          Embedding::kPathFlag;
    }
  }
  layout.property_columns = meta.property_column_count();
  return layout;
}

}  // namespace gradoop::query::exec
