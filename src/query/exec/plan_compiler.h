#ifndef GRADOOP_QUERY_EXEC_PLAN_COMPILER_H_
#define GRADOOP_QUERY_EXEC_PLAN_COMPILER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "cypher/query_graph.h"
#include "query/exec/physical_operator.h"
#include "query/plan.h"

namespace gradoop::query {
class GraphStatistics;
}  // namespace gradoop::query

namespace gradoop::query::exec {

// Compile-time passes applied while lowering the logical plan.
struct CompileOptions {
  // Fuse kFilter nodes into their input operator: the clauses evaluate
  // inside the child kernel's emission loop (after the merge and morphism
  // check), skipping a dataflow stage per filter.
  bool fuse_filters = true;
  // Project only the properties some downstream consumer reads — cross
  // predicates, value-join keys and RETURN items. Element-centric
  // predicates evaluate on the raw element inside the scan and need no
  // embedding column, so their properties are dropped from the byte-array
  // embeddings (§3.3 exists to keep them small).
  bool prune_properties = true;
  // Compute edge-scan data signatures so EdgeScanOp can reuse identical
  // scans through the ScanCache (PlannerOptions::share_scan_results).
  bool share_scans = false;
  // Grant shuffle elisions from the partitioning analysis: a repartition
  // join side whose input is provably hash-partitioned on the join key
  // skips its shuffle. Partitioning properties are annotated regardless;
  // this only gates acting on them (ablation / A-B testing).
  bool elide_shuffles = true;
  // Worker count the memory analysis prices broadcast replication at;
  // must equal the executing ClusterConfig::num_workers (the engine
  // passes its context's value; the default matches ClusterConfig's).
  int num_workers = 4;
  // Graph statistics for the memory analysis' expand transfer function
  // (how many edge rows each expansion hop stages). Null compiles fine —
  // the estimate is 0 and only the audited/budgeted paths care.
  const GraphStatistics* statistics = nullptr;
  // Rows per column batch the vectorized kernels build to; stamped into
  // every operator's BatchLayout claim (used only when the engine
  // executes the plan with ExecuteBatch, but always verified).
  int batch_size = kDefaultBatchSize;
};

// Lowers a logical PlanNode tree into compiled physical operators,
// resolving every operator's output EmbeddingMetaData, join key columns
// and property slots exactly once. This is the single source of truth for
// column layouts: the kernels in query/operators.h execute against the
// layouts compiled here and never derive their own, and
// analysis::VerifyCompiledPlan asserts the compiled layouts are mutually
// consistent before anything runs.
class PlanCompiler {
 public:
  PlanCompiler(const cypher::QueryGraph& query_graph,
               const MorphismSetting& semantics, CompileOptions options = {});

  // Compiles the tree rooted at `plan`. Fails with Status::Internal when
  // the plan references columns the compiled layouts cannot provide (a
  // planner bug, caught before execution).
  Result<PhysicalOperatorPtr> Compile(const PlanNodePtr& plan);

 private:
  // Properties projected for `variable` under the active pruning mode.
  std::set<std::string> ProjectionFor(const std::string& variable) const;
  void CollectNeeded(const PlanNodePtr& node);

  Result<PhysicalOperatorPtr> CompileNode(
      const PlanNodePtr& node, std::vector<cypher::CnfClause> residual,
      double residual_estimate);

  // Bottom-up analyses: grants shuffle elisions to repartition joins
  // whose input is already hash-partitioned on the join key (when
  // options_.elide_shuffles), then stamps the operator's own
  // output-partitioning claim via DerivePartitioning and its memory claim
  // via DeriveMemoryBound. Called on every compiled operator; children
  // carry their claims already.
  PhysicalOperatorPtr Annotate(PhysicalOperatorPtr op) const;

  // Every property a clause set reads must resolve in `meta`.
  Status CheckClauses(const char* op,
                      const std::vector<cypher::CnfClause>& clauses,
                      const EmbeddingMetaData& meta) const;

  std::string EdgeScanSignature(
      const cypher::QueryEdge& query_edge, bool self_loop,
      const std::set<std::string>& projection,
      const std::vector<cypher::CnfClause>& fused) const;

  const cypher::QueryGraph& qg_;
  MorphismSetting semantics_;
  CompileOptions options_;
  // Pruned projection per variable, collected once per Compile() from the
  // plan's filters and value joins plus the query's RETURN items.
  std::map<std::string, std::set<std::string>> needed_;
};

}  // namespace gradoop::query::exec

#endif  // GRADOOP_QUERY_EXEC_PLAN_COMPILER_H_
