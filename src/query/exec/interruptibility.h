#ifndef GRADOOP_QUERY_EXEC_INTERRUPTIBILITY_H_
#define GRADOOP_QUERY_EXEC_INTERRUPTIBILITY_H_

#include <cstdint>
#include <string>

#include "common/thread_annotations.h"

namespace gradoop::dataflow {
class ExecutionContext;
}  // namespace gradoop::dataflow

namespace gradoop::query::exec {

class PhysicalOperator;

// Static interruptibility analysis over compiled physical plans
// (docs/cancellation.md).
//
// Every operator carries an Interruptibility claim: the maximum number
// of rows (row engine) / batches (batch engine) its subtree processes
// between two cancellation checkpoints — the CheckCancelled() polls the
// kernel loops make against the ExecutionContext's CancellationToken.
// PlanCompiler stamps the claim bottom-up from per-operator transfer
// functions (like memory_bound.h); VerifyCompiledPlan re-derives every
// claim independently, rejecting missing or tampered claims and any
// operator whose checkpoint interval is unbounded (a kernel loop with no
// poll — e.g. an Expand recursion or hash-build loop that never checks).
// The GRADOOP_AUDIT_CANCELLATION runtime audit closes the loop by
// injecting cancellation at randomized checkpoint counts and asserting
// the unwind respects the claimed interval.

// Checkpoint stride constants: the kernel loops poll at exactly these
// strides, and the transfer functions claim the same values — one set of
// constants so the claim and the implementation cannot drift.
//
// All dataset loops (dataflow/dataset.h) poll once per record, so under
// the row engine a record is a row and under the batch engine a record
// is a batch: every compiled kernel checkpoints at least once per row /
// per batch.
inline constexpr uint64_t kKernelCheckpointRows = 1;
inline constexpr uint64_t kKernelCheckpointBatches = 1;

// One operator's interruptibility claim for the subtree rooted here.
// 0 in either field means unbounded — some loop in the subtree has no
// checkpoint — which VerifyCompiledPlan rejects outright.
struct Interruptibility {
  uint64_t rows = 0;     // max rows between polls, row engine
  uint64_t batches = 0;  // max batches between polls, batch engine

  bool operator==(const Interruptibility& other) const = default;

  bool bounded() const { return rows > 0 && batches > 0; }

  // "poll=1r/1b" / "poll=unbounded"
  std::string ToString() const;
};

// Transfer function: the interruptibility of `op`'s subtree, composed
// from the operator kind's own checkpoint stride and the children's
// CLAIMED intervals (worst interval wins; a child without a claim — a
// hand-assembled tree — makes the subtree unbounded, since nothing
// proves its loops poll). Pure — never reads the operator's own claim.
Interruptibility DeriveInterruptibility(const PhysicalOperator& op);

// --- runtime audit ----------------------------------------------------

// Read per call, not cached: tests toggle the variable around individual
// executions with setenv/unsetenv.
bool CancellationAuditEnabled();

// Wall-clock budget between the cancellation trip and the query's
// unwind (GRADOOP_CANCELLATION_BUDGET seconds, default 2.0). A loop that
// honors its claimed checkpoint interval detects the trip within a
// handful of records; an unpolled loop runs to completion and blows the
// budget — which is exactly what the audit exists to catch.
double CancellationAuditBudgetSec();

// Seed for the randomized injection checkpoint counts
// (GRADOOP_AUDIT_CANCELLATION_SEED, default 17). Deterministic so CI
// failures reproduce.
uint64_t CancellationAuditSeed();

// Asserts an unwound (cancelled) query respected the plan's
// interruptibility claims:
//   - checkpoints observed after the trip stay within the allowance
//     implied by the root claim and the execution parallelism (every
//     in-flight loop notices the trip at its next poll),
//   - wall latency from trip to unwind is within the audit budget,
//   - the MemoryAccountant drained back to zero (no leaked frames or
//     charges), and
//   - no partition tasks remain pending on the pool.
// Aborts the process on the first violation. Call after the engine's
// cancel-path cleanup, while the token still holds the trip state.
void AuditCancelledQuery(const PhysicalOperator& root,
                         dataflow::ExecutionContext& ctx);

// Process-wide tally of audit activity, so tests can assert the audit
// actually ran. Mirrors MemoryAuditStats; the lock exists for
// cross-thread test readers — audits themselves run on the driver
// thread.
class CancellationAuditStats {
 public:
  static CancellationAuditStats& Instance() {
    static CancellationAuditStats stats;
    return stats;
  }

  void RecordInjection(bool tripped) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    injections_ += 1;
    if (tripped) trips_ += 1;
  }

  void RecordCheck(uint64_t violations) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    checks_ += 1;
    violations_ += violations;
  }

  uint64_t injections() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return injections_;
  }
  uint64_t trips() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return trips_;
  }
  uint64_t checks() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return checks_;
  }
  uint64_t violations() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return violations_;
  }

  void Reset() EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    injections_ = 0;
    trips_ = 0;
    checks_ = 0;
    violations_ = 0;
  }

 private:
  CancellationAuditStats() = default;

  mutable common::Mutex mu_{common::LockRank::kExec,
                            "exec.cancellation_audit"};
  uint64_t injections_ GUARDED_BY(mu_) = 0;
  uint64_t trips_ GUARDED_BY(mu_) = 0;
  uint64_t checks_ GUARDED_BY(mu_) = 0;
  uint64_t violations_ GUARDED_BY(mu_) = 0;
};

}  // namespace gradoop::query::exec

#endif  // GRADOOP_QUERY_EXEC_INTERRUPTIBILITY_H_
