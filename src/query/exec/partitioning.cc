#include "query/exec/partitioning.h"

#include "query/exec/physical_operator.h"
#include "query/plan.h"

namespace gradoop::query::exec {

std::string PartitioningProperty::ToString() const {
  switch (kind) {
    case PartitioningKind::kRandom:
      return "random";
    case PartitioningKind::kReplicated:
      return "replicated";
    case PartitioningKind::kSingleton:
      return "singleton";
    case PartitioningKind::kHashPartitioned:
      break;
  }
  std::string out = key_kind == PartitionKeyKind::kIdColumns
                        ? "hash("
                        : "hash-values(";
  for (size_t i = 0; i < key_tokens.size(); ++i) {
    if (i > 0) out += ",";
    out += key_tokens[i];
  }
  return out + ")";
}

bool ElidesShuffle(const PartitioningProperty& input,
                   PartitionKeyKind key_kind,
                   const std::vector<std::string>& key_tokens) {
  return !key_tokens.empty() &&
         input.kind == PartitioningKind::kHashPartitioned &&
         input.key_kind == key_kind && input.key_tokens == key_tokens;
}

std::vector<std::string> ValueKeySideTokens(
    const std::vector<std::string>& key_descriptions, bool right_side) {
  // Property keys and variables are identifiers, so the first '=' always
  // separates the two accesses.
  std::vector<std::string> out;
  out.reserve(key_descriptions.size());
  for (const std::string& desc : key_descriptions) {
    const size_t eq = desc.find('=');
    if (eq == std::string::npos) {
      out.push_back(desc);
    } else {
      out.push_back(right_side ? desc.substr(eq + 1) : desc.substr(0, eq));
    }
  }
  return out;
}

namespace {

PartitioningProperty ChildPartitioning(const PhysicalOperator& op, size_t i) {
  const PhysicalOperatorPtr& child = op.children()[i];
  if (child == nullptr || !child->has_output_partitioning()) {
    return PartitioningProperty::Random();
  }
  return child->output_partitioning();
}

}  // namespace

PartitioningProperty DerivePartitioning(const PhysicalOperator& op) {
  switch (op.op_kind()) {
    case PhysOpKind::kVertexScan:
    case PhysOpKind::kEdgeScan:
      // Sources distribute round-robin (Dataset::FromVector); the label
      // indexes preserve that layout. Nothing keyed about it.
      return PartitioningProperty::Random();

    case PhysOpKind::kExpand:
      // The bulk iteration re-routes the frontier through id-keyed joins
      // and unions emissions from every round; the output layout keeps
      // no single-key invariant.
      return PartitioningProperty::Random();

    case PhysOpKind::kFilter:
      // Filters drop records in place.
      return ChildPartitioning(op, 0);

    case PhysOpKind::kJoin: {
      const auto& join = static_cast<const JoinOp&>(op);
      if (join.strategy() == dataflow::JoinStrategy::kBroadcast) {
        // The probe (left) side stays in place and every output row is
        // emitted at its left row's partition.
        return ChildPartitioning(op, 0);
      }
      if (join.join_variables().empty()) {
        // Cartesian repartition join: both sides hash the empty key, so
        // everything collapses onto the single partition hash("") % p.
        return PartitioningProperty::Singleton();
      }
      // Both sides were hashed on the join key and every output row
      // carries it, so the output is hash-partitioned on it.
      return PartitioningProperty::HashOnVariables(join.join_variables());
    }

    case PhysOpKind::kValueJoin: {
      const auto& join = static_cast<const ValueJoinOp&>(op);
      if (join.strategy() == dataflow::JoinStrategy::kBroadcast) {
        return ChildPartitioning(op, 0);
      }
      // Output rows sit at hash(encoded left key values) — and the right
      // key values of a joined row encode identically, so either side's
      // access sequence describes the layout. The left one is canonical.
      return PartitioningProperty::HashOnValues(
          ValueKeySideTokens(join.key_descriptions(), /*right_side=*/false));
    }
  }
  return PartitioningProperty::Random();
}

PartitioningProperty DeriveLogicalPartitioning(const query::PlanNode& node) {
  switch (node.kind) {
    case PlanNode::Kind::kScanVertices:
    case PlanNode::Kind::kScanEdges:
      return PartitioningProperty::Random();

    case PlanNode::Kind::kExpand:
      return PartitioningProperty::Random();

    case PlanNode::Kind::kFilter:
      return node.left == nullptr ? PartitioningProperty::Random()
                                  : DeriveLogicalPartitioning(*node.left);

    case PlanNode::Kind::kJoin: {
      if (node.join_strategy == dataflow::JoinStrategy::kBroadcast) {
        return node.left == nullptr ? PartitioningProperty::Random()
                                    : DeriveLogicalPartitioning(*node.left);
      }
      if (node.join_variables.empty()) {
        return PartitioningProperty::Singleton();
      }
      return PartitioningProperty::HashOnVariables(node.join_variables);
    }

    case PlanNode::Kind::kValueJoin: {
      if (node.join_strategy == dataflow::JoinStrategy::kBroadcast) {
        return node.left == nullptr ? PartitioningProperty::Random()
                                    : DeriveLogicalPartitioning(*node.left);
      }
      std::vector<std::string> tokens;
      tokens.reserve(node.value_join_keys.size());
      for (const auto& [lhs, rhs] : node.value_join_keys) {
        (void)rhs;
        tokens.push_back(lhs == nullptr ? std::string() : lhs->ToString());
      }
      return PartitioningProperty::HashOnValues(std::move(tokens));
    }
  }
  return PartitioningProperty::Random();
}

}  // namespace gradoop::query::exec
