#include "query/naive_matcher.h"

#include <algorithm>
#include <functional>
#include <set>

namespace gradoop::query {

namespace {

using cypher::CnfClause;
using cypher::QueryEdge;
using cypher::QueryGraph;
using cypher::QueryVertex;

}  // namespace

NaiveMatcher::NaiveMatcher(std::vector<epgm::Vertex> vertices,
                           std::vector<epgm::Edge> edges)
    : vertices_(std::move(vertices)), edges_(std::move(edges)) {
  for (const epgm::Vertex& v : vertices_) vertex_by_id_.emplace(v.id, &v);
  for (const epgm::Edge& e : edges_) {
    out_edges_[e.source_id].push_back(&e);
    in_edges_[e.target_id].push_back(&e);
  }
}

std::vector<NaiveBinding> NaiveMatcher::FindMatches(
    const QueryGraph& qg, const MorphismSetting& semantics) const {
  std::vector<NaiveBinding> results;
  if (qg.unsatisfiable()) return results;

  const bool vertex_iso = semantics.vertex == MatchSemantics::kIsomorphism;
  const bool edge_iso = semantics.edge == MatchSemantics::kIsomorphism;

  std::vector<const QueryEdge*> fixed_edges;
  std::vector<const QueryEdge*> var_edges;
  for (const QueryEdge& e : qg.edges()) {
    (e.IsVariableLength() ? var_edges : fixed_edges).push_back(&e);
  }

  // Mutable search state.
  std::vector<uint64_t> vertex_binding(qg.vertices().size(), 0);
  std::map<std::string, const epgm::Edge*> edge_binding;
  std::map<std::string, std::vector<uint64_t>> path_binding;
  std::set<uint64_t> used_edges;  // global edge-isomorphism constraint

  auto element_preds_hold = [&](const std::string& var,
                                const epgm::Properties& props) {
    const auto resolver = [&](const std::string& v,
                              const std::string& key) -> epgm::PropertyValue {
      return v == var ? props.Get(key) : epgm::PropertyValue::Null();
    };
    for (const CnfClause& clause : qg.ElementPredicates(var)) {
      if (!cypher::EvaluateClause(clause, resolver)) return false;
    }
    return true;
  };

  auto full_resolver = [&](const std::string& var,
                           const std::string& key) -> epgm::PropertyValue {
    if (const QueryVertex* qv = qg.FindVertex(var)) {
      auto it = vertex_by_id_.find(vertex_binding[qv->index]);
      return it == vertex_by_id_.end() ? epgm::PropertyValue::Null()
                                       : it->second->properties.Get(key);
    }
    auto it = edge_binding.find(var);
    if (it != edge_binding.end()) return it->second->properties.Get(key);
    return epgm::PropertyValue::Null();
  };

  // Phase 3: assign variable-length paths one by one; record the binding
  // once every element is bound and the cross predicates hold.
  std::function<void(size_t)> assign_paths = [&](size_t path_idx) {
    if (path_idx == var_edges.size()) {
      for (const CnfClause& clause : qg.CrossPredicates()) {
        if (!cypher::EvaluateClause(clause, full_resolver)) return;
      }
      NaiveBinding binding;
      for (const QueryVertex& v : qg.vertices()) {
        binding.elements[v.variable] = vertex_binding[v.index];
      }
      for (const auto& [var, edge] : edge_binding) {
        binding.elements[var] = edge->id;
      }
      binding.paths = path_binding;
      results.push_back(std::move(binding));
      return;
    }
    const QueryEdge& qe = *var_edges[path_idx];
    const uint64_t start = vertex_binding[qe.source];
    const uint64_t goal = vertex_binding[qe.target];

    // DFS mirroring the engine's ExpandEmbeddings hop rules. `via` holds
    // the alternating edge/vertex ids walked so far WITHOUT the current
    // end; `at` is the current end vertex.
    std::vector<uint64_t> via;
    std::function<void(uint64_t, int)> walk = [&](uint64_t at, int len) {
      if (len >= qe.lower_bound && at == goal) {
        path_binding[qe.variable] = via;
        std::vector<uint64_t> added;
        for (size_t i = 0; i < via.size(); i += 2) {
          if (used_edges.insert(via[i]).second) added.push_back(via[i]);
        }
        assign_paths(path_idx + 1);
        for (uint64_t id : added) used_edges.erase(id);
        path_binding.erase(qe.variable);
      }
      if (len == qe.upper_bound) return;
      auto it = out_edges_.find(at);
      if (it == out_edges_.end()) return;
      for (const epgm::Edge* e : it->second) {
        if (!qe.MatchesType(e->label)) continue;
        const uint64_t next = e->target_id;
        if (edge_iso) {
          bool dup = used_edges.contains(e->id);
          for (size_t i = 0; !dup && i < via.size(); i += 2) {
            dup = via[i] == e->id;
          }
          if (dup) continue;
        }
        if (vertex_iso) {
          // Engine hop rules: no self-loop hop, no interior revisit, no
          // return to the start unless it is the (bound) goal.
          if (next == at) continue;
          bool dup = false;
          for (size_t i = 1; !dup && i < via.size(); i += 2) {
            dup = via[i] == next;
          }
          if (dup) continue;
          if (next != goal && next == start) continue;
        }
        if (len > 0) via.push_back(at);  // close the previous hop
        via.push_back(e->id);
        walk(next, len + 1);
        via.pop_back();
        if (len > 0) via.pop_back();
      }
    };
    walk(start, 0);
  };

  // Phase 2: assign fixed-length edges.
  std::function<void(size_t)> assign_edges = [&](size_t edge_pos) {
    if (edge_pos == fixed_edges.size()) {
      assign_paths(0);
      return;
    }
    const QueryEdge& qe = *fixed_edges[edge_pos];
    const uint64_t src = vertex_binding[qe.source];
    const uint64_t dst = vertex_binding[qe.target];
    for (const epgm::Edge& e : edges_) {
      if (!qe.MatchesType(e.label)) continue;
      const bool forward = e.source_id == src && e.target_id == dst;
      const bool backward =
          qe.any_direction && e.source_id == dst && e.target_id == src;
      if (!forward && !backward) continue;
      if (edge_iso && used_edges.contains(e.id)) continue;
      if (!element_preds_hold(qe.variable, e.properties)) continue;
      edge_binding[qe.variable] = &e;
      used_edges.insert(e.id);
      assign_edges(edge_pos + 1);
      used_edges.erase(e.id);
      edge_binding.erase(qe.variable);
    }
  };

  // Phase 1: assign query vertices.
  std::function<void(size_t)> assign_vertices = [&](size_t vertex_pos) {
    if (vertex_pos == qg.vertices().size()) {
      assign_edges(0);
      return;
    }
    const QueryVertex& qv = qg.vertices()[vertex_pos];
    for (const epgm::Vertex& v : vertices_) {
      if (!qv.MatchesLabel(v.label)) continue;
      if (vertex_iso) {
        bool conflict = false;
        for (size_t i = 0; i < vertex_pos && !conflict; ++i) {
          conflict = vertex_binding[i] == v.id;
        }
        if (conflict) continue;
      }
      if (!element_preds_hold(qv.variable, v.properties)) continue;
      vertex_binding[vertex_pos] = v.id;
      assign_vertices(vertex_pos + 1);
    }
  };
  assign_vertices(0);
  return results;
}

uint64_t NaiveMatcher::CountMatches(const QueryGraph& qg,
                                    const MorphismSetting& semantics) const {
  return FindMatches(qg, semantics).size();
}

}  // namespace gradoop::query
