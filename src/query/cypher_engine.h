#ifndef GRADOOP_QUERY_CYPHER_ENGINE_H_
#define GRADOOP_QUERY_CYPHER_ENGINE_H_

#include <string>

#include "common/random.h"
#include "common/result.h"
#include "cypher/query_graph.h"
#include "epgm/indexed_logical_graph.h"
#include "epgm/logical_graph.h"
#include "query/exec/physical_operator.h"
#include "query/graph_statistics.h"
#include "query/match_semantics.h"
#include "query/operators.h"
#include "query/plan.h"
#include "query/planner.h"
#include "telemetry/query_profile.h"

namespace gradoop::common {
class CancellationToken;
}  // namespace gradoop::common

namespace gradoop::query {

// Everything produced by one query execution, for callers that need more
// than the match collection (benchmarks, tests, EXPLAIN).
struct CypherMatchResult {
  cypher::QueryGraph query_graph;
  PlanNodePtr plan;
  // The compiled physical plan the embeddings were produced by. After
  // Execute() each operator carries its runtime statistics; null when the
  // query was statically unsatisfiable and nothing was compiled.
  exec::PhysicalOperatorPtr physical;
  EmbeddingSet embeddings;
  // Wall time per engine phase (parse, analyze, plan, compile, execute)
  // and of the whole call; always recorded (the cost is a handful of
  // clock reads). With telemetry enabled each phase is also a "query"
  // span in the trace.
  std::vector<telemetry::PhaseProfile> phases;
  double total_wall_sec = 0.0;
  // Which execution engine produced the embeddings ("row" | "batch"),
  // echoed into query profiles and the query log.
  std::string engine = "row";
};

// The Cypher pattern-matching operator of the EPGM (§3). Owns the indexed
// graph representation and the pre-computed statistics; each call parses,
// plans and executes one query. Mirrors the Java API
// `g.cypher(query, vertexSemantics, edgeSemantics)`.
//
//   CypherEngine engine(graph);
//   auto matches = engine.Match("MATCH (a:Person)-[:knows]->(b) RETURN *",
//                               MorphismSetting::Neo4j());
class CypherEngine {
 public:
  // Builds the label index (§3.4) and graph statistics (§3.2) once.
  explicit CypherEngine(epgm::LogicalGraph graph,
                        PlannerOptions planner_options = {});

  const epgm::LogicalGraph& graph() const { return graph_; }
  const epgm::IndexedLogicalGraph& indexed_graph() const { return indexed_; }
  const GraphStatistics& statistics() const { return stats_; }
  PlannerOptions& planner_options() { return planner_options_; }

  // Memory admission budget (docs/memory.md): when non-zero, Execute()
  // rejects any plan whose static peak-memory bound exceeds the budget
  // with a located GQL007 diagnostic, before anything runs. 0 = unlimited
  // (the default — all queries admitted, byte-identical behavior).
  void set_max_query_memory_bytes(uint64_t bytes) {
    max_query_memory_bytes_ = bytes;
  }
  uint64_t max_query_memory_bytes() const { return max_query_memory_bytes_; }

  // Per-query memory accounting (dataflow/memory_accountant.h): feeds the
  // mem= actuals in EXPLAIN ANALYZE, the memory.bytes.* telemetry gauges
  // and the GRADOOP_AUDIT_MEMORY runtime audit. On by default; benchmarks
  // turn it off to measure its overhead.
  void set_account_memory(bool on) { account_memory_ = on; }
  bool account_memory() const { return account_memory_; }

  // Wall-clock deadline for each subsequent query, in seconds measured
  // from the start of the Execute() call; 0 disables (the default). A
  // query that outlives its deadline unwinds cooperatively — every kernel
  // loop polls the context's CancellationToken — to a located GQL008
  // "query timed out" diagnostic (docs/cancellation.md).
  void set_query_deadline(double seconds) { query_deadline_sec_ = seconds; }
  double query_deadline_sec() const { return query_deadline_sec_; }

  // Requests cooperative cancellation of the currently running query.
  // Safe to call from any thread — the token is all-atomic; the running
  // query unwinds to a GQL008 "query cancelled" diagnostic at its next
  // checkpoint. A no-op between queries (Execute() re-arms the token).
  void Cancel();

  // The engine's cancellation token, owned by the execution context.
  common::CancellationToken& cancellation();

  // Parses, plans, compiles and executes `query`, returning the
  // embeddings plus the logical and compiled plans. The primary entry
  // point for benchmarks and tests.
  Result<CypherMatchResult> Execute(
      const std::string& query,
      const MorphismSetting& semantics = MorphismSetting::Neo4j());

  // Full EPGM operator (Definition 2.4): each match becomes a new logical
  // graph whose head carries the variable bindings as properties; matched
  // vertices/edges record their membership.
  Result<epgm::GraphCollection> Match(
      const std::string& query,
      const MorphismSetting& semantics = MorphismSetting::Neo4j());

  // Number of matches (the paper's reported workload: find and count).
  Result<uint64_t> Count(
      const std::string& query,
      const MorphismSetting& semantics = MorphismSetting::Neo4j());

  // Renders the compiled physical plan without executing it: one line per
  // operator with its fused predicates and estimated cardinality.
  Result<std::string> Explain(
      const std::string& query,
      const MorphismSetting& semantics = MorphismSetting::Neo4j());

  // Executes the query, then renders the compiled plan annotated with
  // each operator's runtime statistics (actual rows, wall time, shuffle
  // and spill bytes) next to the estimates — the paper's estimated-vs-
  // actual cardinality comparison (Fig. 6) per operator.
  Result<std::string> ExplainAnalyze(
      const std::string& query,
      const MorphismSetting& semantics = MorphismSetting::Neo4j());

 private:
  // The whole pipeline. Execute() wraps it with the injected-cancel audit
  // probe (GRADOOP_AUDIT_CANCELLATION): a first run armed to trip at a
  // randomized checkpoint must surface GQL008, then a clean re-run
  // produces the caller's real result.
  Result<CypherMatchResult> ExecuteInternal(const std::string& query,
                                            const MorphismSetting& semantics);

  epgm::LogicalGraph graph_;
  epgm::IndexedLogicalGraph indexed_;
  GraphStatistics stats_;
  PlannerOptions planner_options_;
  uint64_t max_query_memory_bytes_ = 0;  // 0 = unlimited
  bool account_memory_ = true;
  double query_deadline_sec_ = 0.0;  // 0 = no deadline
  // Injected-cancel audit state: the randomized poll checkpoint the
  // current probe run arms (0 = none) and the deterministic stream the
  // checkpoints are drawn from (seeded in the constructor).
  Random audit_random_;
  uint64_t audit_inject_checkpoint_ = 0;
};

// Compatibility wrapper for tests that construct logical plans manually:
// compiles `plan` with default options (scan sharing iff `scan_cache` is
// non-null) and runs the compiled operators over `graph`. The engine
// itself goes through exec::PlanCompiler directly.
Result<EmbeddingSet> ExecutePlan(const PlanNodePtr& plan,
                                 const cypher::QueryGraph& query_graph,
                                 const epgm::IndexedLogicalGraph& graph,
                                 const MorphismSetting& semantics,
                                 ScanCache* scan_cache = nullptr);

// Materializes a match collection from final embeddings (Definition 2.4).
epgm::GraphCollection BuildMatchCollection(
    const epgm::LogicalGraph& graph, const cypher::QueryGraph& query_graph,
    const EmbeddingSet& embeddings);

}  // namespace gradoop::query

#endif  // GRADOOP_QUERY_CYPHER_ENGINE_H_
