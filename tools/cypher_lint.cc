// Standalone Cypher lint driver: parses each input query, runs the
// semantic analyzer, and renders every diagnostic with source carets.
//
//   cypher_lint query.cypher ...         lint files (one query per file)
//   cypher_lint -q "MATCH (n) RETURN n"  lint an inline query
//   cypher_lint --ldbc                   lint the bundled LDBC queries
//   cypher_lint -                        lint a query read from stdin
//
// Exit status: 0 = no diagnostics or warnings only, 1 = at least one
// error-severity diagnostic or parse failure (warnings too under
// --werror), 2 = usage or I/O error. CI runs this over the example and
// LDBC query corpus and fails on errors.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "cypher/parser.h"
#include "ldbc/queries.h"
#include "query/match_semantics.h"

namespace {

using gradoop::analysis::AnalysisResult;
using gradoop::analysis::AnalyzerOptions;
using gradoop::analysis::Diagnostic;
using gradoop::analysis::Severity;
using gradoop::query::MatchSemantics;

struct LintStats {
  int errors = 0;
  int warnings = 0;
};

int Usage() {
  std::cerr
      << "usage: cypher_lint [options] [file.cypher ...]\n"
         "  -q, --query TEXT        lint TEXT instead of reading files\n"
         "      --ldbc              lint the bundled LDBC benchmark "
         "queries\n"
         "      --vertex-semantics iso|homo   morphism for vertices "
         "(default homo)\n"
         "      --edge-semantics iso|homo     morphism for edges "
         "(default iso)\n"
         "      --werror            treat warnings as errors\n"
         "  -                       read one query from stdin\n";
  return 2;
}

bool ParseSemantics(const std::string& text, MatchSemantics* out) {
  if (text == "iso") {
    *out = MatchSemantics::kIsomorphism;
    return true;
  }
  if (text == "homo") {
    *out = MatchSemantics::kHomomorphism;
    return true;
  }
  return false;
}

void LintOne(const std::string& name, const std::string& query,
             const AnalyzerOptions& options, LintStats* stats) {
  auto parsed = gradoop::cypher::ParseCypher(query);
  if (!parsed.ok()) {
    std::cout << name << ": error: " << parsed.status().message() << "\n";
    ++stats->errors;
    return;
  }
  const AnalysisResult result =
      gradoop::analysis::AnalyzeQuery(parsed.value(), options);
  if (result.diagnostics.empty()) return;
  for (const Diagnostic& d : result.diagnostics) {
    (d.severity == Severity::kError ? stats->errors : stats->warnings) += 1;
  }
  std::cout << name << ":\n"
            << gradoop::analysis::RenderDiagnostics(result.diagnostics,
                                                    query)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  AnalyzerOptions options;  // no graph: the vocabulary pass is skipped
  bool werror = false;
  bool ldbc = false;
  std::vector<std::pair<std::string, std::string>> inputs;  // name, query
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-q" || arg == "--query") {
      const char* text = next();
      if (text == nullptr) return Usage();
      inputs.emplace_back("<query>", text);
    } else if (arg == "--ldbc") {
      ldbc = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--vertex-semantics") {
      const char* text = next();
      if (text == nullptr || !ParseSemantics(text, &options.semantics.vertex))
        return Usage();
    } else if (arg == "--edge-semantics") {
      const char* text = next();
      if (text == nullptr || !ParseSemantics(text, &options.semantics.edge))
        return Usage();
    } else if (arg == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      inputs.emplace_back("<stdin>", buffer.str());
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (ldbc) {
    // The operational queries are parameterized on a name; any value
    // produces the same structure, so lint with a placeholder.
    inputs.emplace_back("ldbc/Q1", gradoop::ldbc::Query1("x"));
    inputs.emplace_back("ldbc/Q2", gradoop::ldbc::Query2("x"));
    inputs.emplace_back("ldbc/Q3", gradoop::ldbc::Query3("x"));
    inputs.emplace_back("ldbc/Q4", gradoop::ldbc::Query4());
    inputs.emplace_back("ldbc/Q5", gradoop::ldbc::Query5());
    inputs.emplace_back("ldbc/Q6", gradoop::ldbc::Query6());
  }
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cypher_lint: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    inputs.emplace_back(path, buffer.str());
  }
  if (inputs.empty()) return Usage();

  LintStats stats;
  for (const auto& [name, query] : inputs) {
    LintOne(name, query, options, &stats);
  }
  std::cout << inputs.size() << " quer" << (inputs.size() == 1 ? "y" : "ies")
            << " checked: " << stats.errors << " error(s), "
            << stats.warnings << " warning(s)\n";
  if (stats.errors > 0) return 1;
  if (werror && stats.warnings > 0) return 1;
  return 0;
}
