// Standalone EXPLAIN / EXPLAIN ANALYZE driver: compiles each input
// query against a generated LDBC graph and prints the compiled physical
// operator tree with estimated cardinalities; with --analyze the plan is
// also executed and actual per-operator cardinalities plus wall-clock /
// shuffle figures are appended (the paper's Fig. 6 comparison).
//
//   cypher_explain query.cypher ...            explain files
//   cypher_explain -q "MATCH (n) RETURN n"     explain an inline query
//   cypher_explain --ldbc                      explain the LDBC queries
//   cypher_explain --analyze --ldbc            ...and execute them
//   cypher_explain --sf 0.1 --ldbc             generator scale factor
//
// Exit status: 0 = all queries compiled (and ran, under --analyze),
// 1 = at least one query failed to compile or execute, 2 = usage or
// I/O error. Per-query errors go to stderr; CI runs the compile-only
// mode over examples/queries/ with stdout discarded and additionally
// asserts the non-zero exit on a known-bad query.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"

namespace {

int Usage() {
  std::cerr
      << "usage: cypher_explain [options] [file.cypher ...]\n"
         "  -q, --query TEXT   explain TEXT instead of reading files\n"
         "      --ldbc         explain the bundled LDBC benchmark queries\n"
         "      --analyze      execute the plan and report actual\n"
         "                     cardinalities and timings per operator\n"
         "      --sf FACTOR    LDBC generator scale factor (default 0.05)\n"
         "      --no-fuse      disable filter fusion\n"
         "      --no-prune     disable property pruning\n"
         "      --no-broadcast disable broadcast joins (every join\n"
         "                     repartitions; shows shuffle elisions the\n"
         "                     partitioning analysis proves)\n"
         "      --no-elide     disable shuffle elision (ablation)\n"
         "      --engine row|batch\n"
         "                     execution engine: row-at-a-time kernels\n"
         "                     (default) or columnar batches\n"
         "                     (docs/vectorized.md); batch plans render\n"
         "                     batch=<n> per operator\n"
         "      --batch-size N rows per column batch (default 1024)\n"
         "      --max-memory BYTES\n"
         "                     reject plans whose static peak-memory\n"
         "                     bound exceeds BYTES (GQL007 admission,\n"
         "                     docs/memory.md); 0 = unlimited\n"
         "  -                  read one query from stdin\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool analyze = false;
  bool ldbc = false;
  double scale_factor = 0.05;
  unsigned long long max_memory_bytes = 0;
  gradoop::query::PlannerOptions planner_options;
  std::vector<std::pair<std::string, std::string>> inputs;  // name, query
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-q" || arg == "--query") {
      const char* text = next();
      if (text == nullptr) return Usage();
      inputs.emplace_back("<query>", text);
    } else if (arg == "--ldbc") {
      ldbc = true;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--no-fuse") {
      planner_options.fuse_filters = false;
    } else if (arg == "--no-prune") {
      planner_options.prune_properties = false;
    } else if (arg == "--no-broadcast") {
      planner_options.allow_broadcast = false;
    } else if (arg == "--no-elide") {
      planner_options.elide_shuffles = false;
    } else if (arg == "--engine") {
      const char* text = next();
      if (text == nullptr) return Usage();
      const std::string engine = text;
      if (engine == "row") {
        planner_options.engine =
            gradoop::query::PlannerOptions::ExecutionEngine::kRow;
      } else if (engine == "batch") {
        planner_options.engine =
            gradoop::query::PlannerOptions::ExecutionEngine::kBatch;
      } else {
        std::cerr << "cypher_explain: unknown engine '" << engine
                  << "' (expected row or batch)\n";
        return Usage();
      }
    } else if (arg == "--batch-size") {
      const char* text = next();
      if (text == nullptr) return Usage();
      try {
        planner_options.batch_size = std::stoi(text);
      } catch (...) {
        return Usage();
      }
      if (planner_options.batch_size <= 0) {
        std::cerr << "cypher_explain: --batch-size must be positive\n";
        return Usage();
      }
    } else if (arg == "--max-memory") {
      const char* text = next();
      if (text == nullptr) return Usage();
      try {
        max_memory_bytes = std::stoull(text);
      } catch (...) {
        return Usage();
      }
    } else if (arg == "--sf") {
      const char* text = next();
      if (text == nullptr) return Usage();
      try {
        scale_factor = std::stod(text);
      } catch (...) {
        return Usage();
      }
      if (scale_factor <= 0.0) return Usage();
    } else if (arg == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      inputs.emplace_back("<stdin>", buffer.str());
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (ldbc) {
    inputs.emplace_back("ldbc/Q1", gradoop::ldbc::Query1("Alice"));
    inputs.emplace_back("ldbc/Q2", gradoop::ldbc::Query2("Alice"));
    inputs.emplace_back("ldbc/Q3", gradoop::ldbc::Query3("Alice"));
    inputs.emplace_back("ldbc/Q4", gradoop::ldbc::Query4());
    inputs.emplace_back("ldbc/Q5", gradoop::ldbc::Query5());
    inputs.emplace_back("ldbc/Q6", gradoop::ldbc::Query6());
  }
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cypher_explain: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    inputs.emplace_back(path, buffer.str());
  }
  if (inputs.empty()) return Usage();

  gradoop::ldbc::LdbcConfig cfg;
  cfg.scale_factor = scale_factor;
  gradoop::query::CypherEngine engine(
      gradoop::ldbc::LdbcGenerator(cfg).Generate(
          gradoop::dataflow::MakeContext()),
      planner_options);
  engine.set_max_query_memory_bytes(max_memory_bytes);

  int failures = 0;
  for (const auto& [name, query] : inputs) {
    auto rendered =
        analyze ? engine.ExplainAnalyze(query) : engine.Explain(query);
    if (!rendered.ok()) {
      // stderr, not stdout: CI redirects stdout to /dev/null and must
      // still see what failed (the non-zero exit alone names nothing).
      std::cerr << name << ": error: " << rendered.status().message()
                << "\n";
      ++failures;
      continue;
    }
    std::cout << name << ":\n" << rendered.value() << "\n";
  }
  std::cout << inputs.size() << " quer" << (inputs.size() == 1 ? "y" : "ies")
            << " explained: " << failures << " failure(s)\n";
  return failures > 0 ? 1 : 0;
}
