// Query profiler: runs each input query over a generated LDBC graph
// with engine telemetry enabled and writes two artifacts per query next
// to a one-screen text summary:
//
//   TRACE_<name>.json    Chrome trace-event JSON (load in Perfetto or
//                        chrome://tracing) — engine phases and operators
//                        on the driver row, per-partition tasks on one
//                        row per simulated worker, so skew shows up as
//                        ragged same-stage span lengths.
//   PROFILE_<name>.json  structured QueryProfile: per-phase wall times,
//                        per-operator estimated-vs-actual rows and
//                        self/total wall, per-worker busy time, shuffle
//                        and spill bytes, metric counters + histograms.
//
//   cypher_profile --ldbc                  profile the six LDBC queries
//   cypher_profile --ldbc-q 1              one LDBC query (1..6)
//   cypher_profile -q "MATCH ..." q.cypher inline text and files
//   cypher_profile --sf 0.1 --workers 8 --out /tmp/profiles --ldbc
//
// Both artifacts are schema-validated before this tool exits; an
// invalid export is a failure, not a warning.
//
// Exit status: 0 = all queries profiled and both artifacts validated,
// 1 = at least one query failed to run or an artifact failed
// validation, 2 = usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/query_profile.h"
#include "telemetry/trace_export.h"
#include "telemetry/validate.h"

namespace {

int Usage() {
  std::cerr
      << "usage: cypher_profile [options] [file.cypher ...]\n"
         "  -q, --query TEXT   profile TEXT instead of reading files\n"
         "      --ldbc         profile the bundled LDBC benchmark queries\n"
         "      --ldbc-q N     profile LDBC query N (1..6)\n"
         "      --sf FACTOR    LDBC generator scale factor (default 0.05)\n"
         "      --workers N    simulated cluster size (default 4)\n"
         "      --engine row|batch\n"
         "                     execution engine (docs/vectorized.md);\n"
         "                     batch profiles carry per-operator batch\n"
         "                     counts and selectivities\n"
         "      --batch-size N rows per column batch (default 1024)\n"
         "      --out DIR      artifact directory (default .)\n"
         "      --flight-recorder PATH\n"
         "                     export the context's flight recorder (all\n"
         "                     profiled queries) as one JSON file\n"
         "      --query-log PATH\n"
         "                     append the structured JSONL query log to\n"
         "                     PATH (one record per executed query)\n"
         "      --slow-ms N    flag log entries slower than N ms\n";
  return 2;
}

// Artifact-name component: path separators would splinter the output
// file ("ldbc/Q1" -> "ldbc_Q1").
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '/', '_');
  return out;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

std::pair<std::string, std::string> LdbcQuery(int n) {
  switch (n) {
    case 1: return {"ldbc/Q1", gradoop::ldbc::Query1("Alice")};
    case 2: return {"ldbc/Q2", gradoop::ldbc::Query2("Alice")};
    case 3: return {"ldbc/Q3", gradoop::ldbc::Query3("Alice")};
    case 4: return {"ldbc/Q4", gradoop::ldbc::Query4()};
    case 5: return {"ldbc/Q5", gradoop::ldbc::Query5()};
    default: return {"ldbc/Q6", gradoop::ldbc::Query6()};
  }
}

void PrintSummary(const gradoop::telemetry::QueryProfile& profile) {
  std::printf("%s: %llu matches, wall %.1f ms, simulated %.3f s\n",
              profile.name.c_str(),
              static_cast<unsigned long long>(profile.matches),
              profile.total_wall_sec * 1e3, profile.simulated_sec);
  std::printf("  phases:");
  for (const auto& phase : profile.phases) {
    std::printf(" %s=%.1fms", phase.name.c_str(), phase.wall_sec * 1e3);
  }
  std::printf("\n");

  // Top operators by self time — where the execution itself went.
  std::vector<const gradoop::telemetry::OperatorProfile*> by_self;
  by_self.reserve(profile.operators.size());
  for (const auto& op : profile.operators) by_self.push_back(&op);
  std::stable_sort(by_self.begin(), by_self.end(),
                   [](const auto* a, const auto* b) {
                     return a->self_wall_sec > b->self_wall_sec;
                   });
  const size_t top = std::min<size_t>(by_self.size(), 3);
  for (size_t i = 0; i < top; ++i) {
    const auto& op = *by_self[i];
    std::printf("  top[%zu] %s self=%.3fms rows=%llu (est %.0f)\n", i,
                op.describe.c_str(), op.self_wall_sec * 1e3,
                static_cast<unsigned long long>(op.actual_rows),
                op.estimated_rows);
  }

  std::printf("  workers:");
  for (const auto& w : profile.workers) {
    std::printf(" [%d]=%.2fms/%llu", w.worker, w.busy_sec * 1e3,
                static_cast<unsigned long long>(w.tasks));
  }
  std::printf(" imbalance=%.2f\n", profile.WorkerImbalanceRatio());
  std::printf("  shuffle=%lluB spill=%lluB records=%llu\n",
              static_cast<unsigned long long>(profile.network_bytes),
              static_cast<unsigned long long>(profile.spilled_bytes),
              static_cast<unsigned long long>(profile.records));
}

}  // namespace

int main(int argc, char** argv) {
  double scale_factor = 0.05;
  int workers = 0;  // 0 = ClusterConfig default
  gradoop::query::PlannerOptions planner_options;
  std::string out_dir = ".";
  std::string flight_recorder_path;
  std::string query_log_path;
  double slow_ms = 0.0;
  std::vector<std::pair<std::string, std::string>> inputs;  // name, query
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-q" || arg == "--query") {
      const char* text = next();
      if (text == nullptr) return Usage();
      inputs.emplace_back("query" + std::to_string(inputs.size()), text);
    } else if (arg == "--ldbc") {
      for (int n = 1; n <= 6; ++n) inputs.push_back(LdbcQuery(n));
    } else if (arg == "--ldbc-q") {
      const char* text = next();
      if (text == nullptr) return Usage();
      int n = 0;
      try {
        n = std::stoi(text);
      } catch (...) {
        return Usage();
      }
      if (n < 1 || n > 6) return Usage();
      inputs.push_back(LdbcQuery(n));
    } else if (arg == "--sf") {
      const char* text = next();
      if (text == nullptr) return Usage();
      try {
        scale_factor = std::stod(text);
      } catch (...) {
        return Usage();
      }
      if (scale_factor <= 0.0) return Usage();
    } else if (arg == "--workers") {
      const char* text = next();
      if (text == nullptr) return Usage();
      try {
        workers = std::stoi(text);
      } catch (...) {
        return Usage();
      }
      if (workers <= 0) return Usage();
    } else if (arg == "--engine") {
      const char* text = next();
      if (text == nullptr) return Usage();
      const std::string engine = text;
      if (engine == "row") {
        planner_options.engine =
            gradoop::query::PlannerOptions::ExecutionEngine::kRow;
      } else if (engine == "batch") {
        planner_options.engine =
            gradoop::query::PlannerOptions::ExecutionEngine::kBatch;
      } else {
        std::cerr << "cypher_profile: unknown engine '" << engine
                  << "' (expected row or batch)\n";
        return Usage();
      }
    } else if (arg == "--batch-size") {
      const char* text = next();
      if (text == nullptr) return Usage();
      try {
        planner_options.batch_size = std::stoi(text);
      } catch (...) {
        return Usage();
      }
      if (planner_options.batch_size <= 0) {
        std::cerr << "cypher_profile: --batch-size must be positive\n";
        return Usage();
      }
    } else if (arg == "--out") {
      const char* text = next();
      if (text == nullptr) return Usage();
      out_dir = text;
    } else if (arg == "--flight-recorder") {
      const char* text = next();
      if (text == nullptr) return Usage();
      flight_recorder_path = text;
    } else if (arg == "--query-log") {
      const char* text = next();
      if (text == nullptr) return Usage();
      query_log_path = text;
    } else if (arg == "--slow-ms") {
      const char* text = next();
      if (text == nullptr) return Usage();
      try {
        slow_ms = std::stod(text);
      } catch (...) {
        return Usage();
      }
      if (slow_ms < 0.0) return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cypher_profile: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    inputs.emplace_back(path, buffer.str());
  }
  if (inputs.empty()) return Usage();

  gradoop::dataflow::ClusterConfig cluster;
  if (workers > 0) cluster.num_workers = workers;
  gradoop::dataflow::ExecutionContextPtr ctx =
      gradoop::dataflow::MakeContext(cluster);

  gradoop::ldbc::LdbcConfig cfg;
  cfg.scale_factor = scale_factor;
  gradoop::query::CypherEngine engine(
      gradoop::ldbc::LdbcGenerator(cfg).Generate(ctx), planner_options);

  // Enabled only now: graph generation and index construction stay out
  // of every query's trace.
  ctx->EnableTelemetry();
  // With telemetry on the engine records every execution into the
  // context's flight recorder and query log; the knobs below only
  // configure the sinks and the slow-query threshold.
  ctx->query_log().set_slow_threshold_sec(slow_ms / 1e3);
  if (!query_log_path.empty()) {
    const gradoop::Status sink =
        ctx->query_log().SetPath(query_log_path);
    if (!sink.ok()) {
      std::cerr << "cypher_profile: " << sink.message() << "\n";
      return 2;
    }
  }

  int failures = 0;
  for (const auto& [name, query] : inputs) {
    // Each query gets a clean tracker and telemetry state, so artifacts
    // describe exactly one execution.
    ctx->tracker().Reset();
    ctx->telemetry().ResetData();

    auto result = engine.Execute(query);
    if (!result.ok()) {
      std::cerr << name << ": error: " << result.status().message() << "\n";
      ++failures;
      continue;
    }

    const gradoop::telemetry::QueryProfile profile =
        gradoop::query::BuildQueryProfile(SanitizeName(name), query,
                                          result.value(), *ctx);
    const std::string trace_json = gradoop::telemetry::ToChromeTraceJson(
        ctx->telemetry().tracer().CollectSpans());
    const std::string profile_json = profile.ToJson();

    // The tool validates its own output: an export Perfetto would reject
    // fails the run.
    std::string error;
    if (!gradoop::telemetry::ValidateChromeTrace(trace_json, &error)) {
      std::cerr << name << ": invalid trace: " << error << "\n";
      ++failures;
      continue;
    }
    if (!gradoop::telemetry::ValidateQueryProfile(profile_json, &error)) {
      std::cerr << name << ": invalid profile: " << error << "\n";
      ++failures;
      continue;
    }

    const std::string trace_path =
        out_dir + "/TRACE_" + profile.name + ".json";
    const std::string profile_path =
        out_dir + "/PROFILE_" + profile.name + ".json";
    if (!WriteFile(trace_path, trace_json) ||
        !WriteFile(profile_path, profile_json)) {
      std::cerr << name << ": cannot write artifacts under '" << out_dir
                << "'\n";
      return 2;
    }

    PrintSummary(profile);
    std::printf("  -> %s\n  -> %s\n", trace_path.c_str(),
                profile_path.c_str());
  }
  // Export-and-validate the run-wide artifacts: the flight recorder's
  // retained history and the query log's JSONL records — same contract
  // as the per-query exports, an invalid artifact fails the run.
  std::string error;
  if (!flight_recorder_path.empty()) {
    const std::string recorder_json = ctx->flight_recorder().ExportJson();
    if (!gradoop::telemetry::ValidateFlightRecorderExport(recorder_json,
                                                          &error)) {
      std::cerr << "flight recorder export invalid: " << error << "\n";
      ++failures;
    } else if (!WriteFile(flight_recorder_path, recorder_json)) {
      std::cerr << "cannot write '" << flight_recorder_path << "'\n";
      return 2;
    } else {
      std::printf("  -> %s (%zu queries, %llu bytes retained)\n",
                  flight_recorder_path.c_str(), ctx->flight_recorder().size(),
                  static_cast<unsigned long long>(
                      ctx->flight_recorder().retained_bytes()));
    }
  }
  for (const std::string& line : ctx->query_log().Lines()) {
    if (!gradoop::telemetry::ValidateQueryLogLine(line, &error)) {
      std::cerr << "query log line invalid: " << error << "\n";
      ++failures;
      break;
    }
  }
  std::printf("%zu quer%s profiled: %d failure(s)\n", inputs.size(),
              inputs.size() == 1 ? "y" : "ies", failures);
  return failures > 0 ? 1 : 0;
}
