// Concurrency lint: static checks that keep the engine's threading
// discipline uniform (docs/concurrency.md). Walks C++ sources and
// rejects:
//
//   CC001  raw std::mutex family outside common/thread_annotations.h
//          (engine code must use the annotated, ranked common::Mutex)
//   CC002  raw std::lock_guard/unique_lock/scoped_lock/shared_lock
//          (use common::MutexLock so -Wthread-safety sees the scope)
//   CC003  std::condition_variable (std::condition_variable_any is the
//          one that waits on an annotated Mutex, and stays allowed)
//   CC004  std::atomic member without an adjacent ordering-discipline
//          comment (same line or the 3 lines above must say which
//          memory order the site relies on, and why)
//   CC005  thread .detach() — detached threads outlive every shutdown
//          protocol; join or pool them
//   CC006  NO_THREAD_SAFETY_ANALYSIS without an adjacent
//          "justification:" comment (±2 lines)
//   CC007  kernel loop (a for/while under src/query or src/dataflow whose
//          header names a dataset/batch stream: src, lsrc, rsrc,
//          partition, frontier, ...) with no CheckCancelled /
//          CancelledOrExpired poll in its body and no
//          "// cancellation: <why bounded>" comment nearby
//          (docs/cancellation.md)
//   CC008  blocking .wait( without a deadline (wait_for/wait_until) or a
//          "// cancellation:" justification — an unbounded wait can never
//          observe a cancelled token
//
// Matching runs on comment- and string-stripped text (a comment that
// merely mentions std::mutex is fine); the adjacency rules CC004/CC006
// inspect the stripped-out comment text. common/thread_annotations.h is
// exempt wholesale — it is the one place allowed to touch the raw
// primitives it wraps.
//
//   concurrency_lint                      lint ./src
//   concurrency_lint --root DIR [path..]  lint DIR/path... (files or dirs)
//
// Exit status mirrors cypher_lint: 0 = clean, 1 = at least one
// violation, 2 = usage or I/O error. ci/check.sh's `concurrency` stage
// runs this over src/ and pins that each seeded fixture under
// tests/concurrency_lint_fixtures still fails.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// One source file split into parallel per-line streams: executable text
// with comments/strings blanked, and the comment text alone.
struct StrippedFile {
  std::vector<std::string> code;      // literals/comments replaced by spaces
  std::vector<std::string> comments;  // comment text, per line
};

// Minimal C++ lexer state machine: tracks line/block comments, string,
// char and (delimiter-matched) raw-string literals well enough that a
// token inside any of them never reaches the rule matchers.
StrippedFile Strip(const std::string& text) {
  StrippedFile out;
  std::string code;
  std::string comment;
  enum State { kCode, kLine, kBlock, kString, kChar, kRaw } state = kCode;
  std::string raw_end;  // )delim" that terminates the active raw string
  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      // Line comments end here; every other state carries across lines.
      if (state == kLine) state = kCode;
      out.code.push_back(code);
      out.comments.push_back(comment);
      code.clear();
      comment.clear();
      continue;
    }
    switch (state) {
      case kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = kLine;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = kBlock;
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string: scan the delimiter.
          size_t r = i;
          bool raw = r >= 1 && text[r - 1] == 'R' &&
                     (r < 2 || (!std::isalnum(static_cast<unsigned char>(
                                    text[r - 2])) &&
                                text[r - 2] != '_'));
          if (raw) {
            std::string delim;
            size_t j = i + 1;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              delim.push_back(text[j++]);
            }
            if (j < n && text[j] == '(') {
              raw_end = ")" + delim + "\"";
              state = kRaw;
              code.push_back(' ');
              i = j;
              break;
            }
          }
          state = kString;
          code.push_back(' ');
        } else if (c == '\'') {
          state = kChar;
          code.push_back(' ');
        } else {
          code.push_back(c);
        }
        break;
      case kLine:
        comment.push_back(c);
        break;
      case kBlock:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = kCode;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case kString:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '"') {
          state = kCode;
        }
        break;
      case kChar:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '\'') {
          state = kCode;
        }
        break;
      case kRaw:
        if (c == raw_end[0] && text.compare(i, raw_end.size(), raw_end) == 0) {
          i += raw_end.size() - 1;
          state = kCode;
        }
        break;
    }
  }
  if (!code.empty() || !comment.empty()) {
    out.code.push_back(code);
    out.comments.push_back(comment);
  }
  return out;
}

// True when `text` contains `token` ending at a non-identifier boundary
// (so "std::condition_variable" does not fire on ..._any).
bool ContainsToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const size_t end = pos + token.size();
    const char next = end < text.size() ? text[end] : '\0';
    if (!(std::isalnum(static_cast<unsigned char>(next)) || next == '_')) {
      return true;
    }
    pos = end;
  }
  return false;
}

// Like ContainsToken, but requires an identifier boundary on BOTH sides,
// so "lsrc" does not match token "src" and "num_partitions" does not
// match token "partition".
bool ContainsWholeToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const char prev = pos > 0 ? text[pos - 1] : '\0';
    const size_t end = pos + token.size();
    const char next = end < text.size() ? text[end] : '\0';
    const auto ident = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (!ident(prev) && !ident(next)) return true;
    pos = end;
  }
  return false;
}

bool CommentMentionsOrdering(const std::string& comment) {
  static const char* kKeywords[] = {"order",   "relaxed",  "acquire",
                                    "release", "seq_cst",  "monotonic"};
  std::string lower = comment;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  for (const char* k : kKeywords) {
    if (lower.find(k) != std::string::npos) return true;
  }
  return false;
}

struct Violation {
  std::string file;
  size_t line;  // 1-based
  const char* code;
  std::string message;
};

// --- cancellation safety (CC007/CC008, docs/cancellation.md) ----------

// CC007 only applies where kernel loops live — the query and dataflow
// layers (plus the lint's own seeded fixtures). Everything else (epgm
// loaders, tools, telemetry) runs outside a query's cancellation window.
bool InCancellationScope(const fs::path& path) {
  const std::string p = path.generic_string();
  return p.find("/query/") != std::string::npos ||
         p.find("/dataflow/") != std::string::npos ||
         p.find("concurrency_lint_fixtures") != std::string::npos;
}

// Identifiers that name a dataset/batch stream when they appear in a loop
// header: such a loop iterates driver-scale records, so its body must
// poll the CancellationToken — or carry a "// cancellation: <why this
// loop is bounded>" justification within 3 lines above or inside it.
const char* kStreamTokens[] = {
    "src",           "lsrc",     "rsrc",        "partitions_",
    "partition",     "frontier", "upper_bound", "left_batches",
    "right_batches", "emitted",
};

struct TextPos {
  size_t line;  // 0-based index into StrippedFile streams
  size_t col;
};

// Scans the balanced "(...)" whose '(' is at `at`, appending its text to
// *text and leaving *end just past the ')'. False when no balanced group
// closes within `max_lines` (preprocessor soup — skip the candidate).
bool ScanBalanced(const StrippedFile& s, TextPos at, char open, char close,
                  size_t max_lines, std::string* text, TextPos* end) {
  int depth = 0;
  for (size_t line = at.line; line < s.code.size(); ++line) {
    if (line - at.line > max_lines) return false;
    const std::string& code = s.code[line];
    for (size_t col = line == at.line ? at.col : 0; col < code.size();
         ++col) {
      const char c = code[col];
      if (c == open) {
        ++depth;
      } else if (c == close) {
        if (--depth == 0) {
          *end = {line, col + 1};
          return true;
        }
      } else if (depth > 0) {
        text->push_back(c);
      }
    }
    text->push_back('\n');
  }
  return false;
}

// The loop body after a header ending at `at`: a braced block, or a
// single statement up to ';'. Appends the body text and records the last
// body line (for the justification-comment window).
void ScanLoopBody(const StrippedFile& s, TextPos at, std::string* text,
                  size_t* last_line) {
  *last_line = at.line;
  // Find the first non-space character after the header.
  for (size_t line = at.line; line < s.code.size(); ++line) {
    const std::string& code = s.code[line];
    for (size_t col = line == at.line ? at.col : 0; col < code.size();
         ++col) {
      const char c = code[col];
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (c == '{') {
        TextPos end;
        if (ScanBalanced(s, {line, col}, '{', '}', 2000, text, &end)) {
          *last_line = end.line;
        }
        return;
      }
      // Unbraced body: one statement, through the first ';'.
      for (size_t l2 = line; l2 < s.code.size() && l2 < line + 20; ++l2) {
        const std::string& c2 = s.code[l2];
        const size_t start = l2 == line ? col : 0;
        const size_t semi = c2.find(';', start);
        text->append(c2, start,
                     semi == std::string::npos ? std::string::npos
                                               : semi + 1 - start);
        text->push_back('\n');
        if (semi != std::string::npos) {
          *last_line = l2;
          return;
        }
      }
      *last_line = line;
      return;
    }
  }
}

// True when a "// cancellation: ..." justification appears within
// `above` lines above `first` or on any line in [first, last].
bool HasCancellationJustification(const StrippedFile& s, size_t first,
                                  size_t last, size_t above) {
  const size_t lo = first > above ? first - above : 0;
  const size_t hi = std::min(last, s.comments.size() - 1);
  for (size_t i = lo; i <= hi; ++i) {
    if (s.comments[i].find("cancellation:") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void LintCancellationLoops(const fs::path& path, const StrippedFile& s,
                           std::vector<Violation>* out) {
  if (!InCancellationScope(path)) return;
  static const char* kKeywords[] = {"for", "while"};
  for (size_t i = 0; i < s.code.size(); ++i) {
    const std::string& code = s.code[i];
    for (const char* keyword : kKeywords) {
      const size_t klen = std::string(keyword).size();
      size_t pos = 0;
      while ((pos = code.find(keyword, pos)) != std::string::npos) {
        const char prev = pos > 0 ? code[pos - 1] : '\0';
        const char next =
            pos + klen < code.size() ? code[pos + klen] : '\0';
        const auto ident = [](char c) {
          return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
        };
        if (ident(prev) || ident(next)) {
          pos += klen;
          continue;
        }
        // Find the header's '('.
        size_t paren = pos + klen;
        while (paren < code.size() &&
               std::isspace(static_cast<unsigned char>(code[paren]))) {
          ++paren;
        }
        if (paren >= code.size() || code[paren] != '(') {
          pos += klen;
          continue;
        }
        std::string header;
        TextPos header_end;
        if (!ScanBalanced(s, {i, paren}, '(', ')', 10, &header,
                          &header_end)) {
          pos += klen;
          continue;
        }
        bool streams = false;
        for (const char* token : kStreamTokens) {
          if (ContainsWholeToken(header, token)) {
            streams = true;
            break;
          }
        }
        if (streams) {
          std::string body;
          size_t body_last = header_end.line;
          ScanLoopBody(s, header_end, &body, &body_last);
          const bool polls = ContainsToken(body, "CheckCancelled") ||
                             ContainsToken(body, "CancelledOrExpired");
          if (!polls &&
              !HasCancellationJustification(s, i, body_last, 3)) {
            out->push_back(
                {path.string(), i + 1, "CC007",
                 "loop over a dataset/batch stream with no CheckCancelled/"
                 "CancelledOrExpired poll; poll the token or justify with "
                 "\"// cancellation: <why bounded>\" (docs/"
                 "cancellation.md)"});
          }
        }
        pos = header_end.line == i ? header_end.col : code.size();
      }
    }
  }
}

void LintFile(const fs::path& path, std::vector<Violation>* out) {
  if (path.filename() == "thread_annotations.h") return;  // the wrapper
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const StrippedFile stripped = Strip(buffer.str());

  static const std::pair<const char*, const char*> kRawMutex[] = {
      {"std::mutex", "raw std::mutex"},
      {"std::timed_mutex", "raw std::timed_mutex"},
      {"std::recursive_mutex", "raw std::recursive_mutex"},
      {"std::recursive_timed_mutex", "raw std::recursive_timed_mutex"},
      {"std::shared_mutex", "raw std::shared_mutex"},
      {"std::shared_timed_mutex", "raw std::shared_timed_mutex"},
  };
  static const std::pair<const char*, const char*> kRawLock[] = {
      {"std::lock_guard", "raw std::lock_guard"},
      {"std::unique_lock", "raw std::unique_lock"},
      {"std::scoped_lock", "raw std::scoped_lock"},
      {"std::shared_lock", "raw std::shared_lock"},
  };

  for (size_t i = 0; i < stripped.code.size(); ++i) {
    const std::string& code = stripped.code[i];
    const size_t line = i + 1;
    for (const auto& [token, what] : kRawMutex) {
      if (ContainsToken(code, token)) {
        out->push_back({path.string(), line, "CC001",
                        std::string(what) +
                            "; use common::Mutex with a LockRank "
                            "(common/thread_annotations.h)"});
      }
    }
    for (const auto& [token, what] : kRawLock) {
      if (ContainsToken(code, token)) {
        out->push_back({path.string(), line, "CC002",
                        std::string(what) +
                            "; use common::MutexLock so the scope is "
                            "visible to -Wthread-safety"});
      }
    }
    if (ContainsToken(code, "std::condition_variable")) {
      out->push_back({path.string(), line, "CC003",
                      "std::condition_variable cannot wait on an annotated "
                      "Mutex; use std::condition_variable_any"});
    }
    if (ContainsToken(code, "std::atomic") ||
        ContainsToken(code, "std::atomic_flag")) {
      bool documented = false;
      for (size_t back = 0; back <= 3 && back <= i; ++back) {
        if (CommentMentionsOrdering(stripped.comments[i - back])) {
          documented = true;
          break;
        }
      }
      if (!documented) {
        out->push_back({path.string(), line, "CC004",
                        "std::atomic without an adjacent ordering-discipline "
                        "comment (state the memory order relied on, and "
                        "why, within the 3 lines above)"});
      }
    }
    {
      size_t pos = code.find(".detach");
      while (pos != std::string::npos) {
        size_t j = pos + std::string(".detach").size();
        while (j < code.size() && std::isspace(static_cast<unsigned char>(
                                      code[j]))) {
          ++j;
        }
        if (j < code.size() && code[j] == '(') {
          out->push_back({path.string(), line, "CC005",
                          "thread .detach(): detached threads escape every "
                          "shutdown protocol; join or use the ThreadPool"});
          break;
        }
        pos = code.find(".detach", pos + 1);
      }
    }
    if (ContainsToken(code, "NO_THREAD_SAFETY_ANALYSIS")) {
      bool justified = false;
      for (size_t d = 0; d <= 2; ++d) {
        if (i >= d &&
            stripped.comments[i - d].find("justification:") !=
                std::string::npos) {
          justified = true;
          break;
        }
        if (i + d < stripped.comments.size() &&
            stripped.comments[i + d].find("justification:") !=
                std::string::npos) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        out->push_back({path.string(), line, "CC006",
                        "NO_THREAD_SAFETY_ANALYSIS without a nearby "
                        "\"// justification: ...\" comment (±2 lines)"});
      }
    }
    // CC008: a deadline-less .wait( can sleep forever and never observe a
    // cancelled token; use wait_for/wait_until in a loop (thread_pool.cc
    // is the pattern) or justify why the wait is externally bounded.
    if (code.find(".wait(") != std::string::npos &&
        !HasCancellationJustification(stripped, i, i, 3)) {
      out->push_back({path.string(), line, "CC008",
                      "blocking .wait( without a deadline; use a bounded "
                      "wait_for/wait_until loop or justify with "
                      "\"// cancellation: ...\" (docs/cancellation.md)"});
    }
  }
  LintCancellationLoops(path, stripped, out);
}

bool IsCppSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

int Usage() {
  std::cerr << "usage: concurrency_lint [--root DIR] [path ...]\n"
               "  lints C++ sources (default path: src) for raw\n"
               "  concurrency primitives; see docs/concurrency.md\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths.push_back("src");

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (const auto& entry :
           fs::recursive_directory_iterator(full, ec)) {
        if (entry.is_regular_file() && IsCppSource(entry.path())) {
          files.push_back(entry.path());
        }
      }
      if (ec) {
        std::cerr << "concurrency_lint: cannot walk '" << full.string()
                  << "': " << ec.message() << "\n";
        return 2;
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      std::cerr << "concurrency_lint: no such file or directory: '"
                << full.string() << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  for (const fs::path& file : files) LintFile(file, &violations);
  for (const Violation& v : violations) {
    std::cout << v.file << ":" << v.line << ": " << v.code << ": "
              << v.message << "\n";
  }
  std::cout << files.size() << " file(s) checked: " << violations.size()
            << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}
