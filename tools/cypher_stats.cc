// cypher_stats: aggregate the engine's observability artifacts and gate
// bench regressions.
//
//   cypher_stats [--worst N] [--strict] FILE...
//       Ingest any mix of flight-recorder exports, PROFILE_*.json query
//       profiles and BENCH_*.json reports, and print the aggregate
//       report: per-phase and per-operator latency percentiles
//       (p50/p95/p99), the plan-quality (Q-error) summary, the worst
//       misestimates with their plan lines, and a row-vs-batch engine
//       comparison from bench records. Files that are valid JSON but
//       match no known artifact schema are skipped with a warning;
//       under --strict they fail the run instead.
//
//   cypher_stats --baseline BASE.json CURRENT.json [--tolerance T]
//       Diff two BENCH_*.json artifacts. Matches must be identical;
//       simulated_sec and shuffle_bytes may drift up to T (relative,
//       default 0.10). Exits 1 past tolerance — the CI perf/plan-quality
//       regression gate (ci/check.sh observability).
//
// Exit codes: 0 success, 1 baseline regressions, 2 usage/parse errors
// (including unknown-schema files under --strict).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/stats_report.h"

namespace {

using gradoop::telemetry::BaselineDiffOptions;
using gradoop::telemetry::DiffBenchBaseline;
using gradoop::telemetry::IngestStatsArtifact;
using gradoop::telemetry::RenderStatsReport;
using gradoop::telemetry::StatsInput;

int Usage() {
  std::fprintf(
      stderr,
      "usage: cypher_stats [--worst N] [--strict] FILE...\n"
      "       cypher_stats --baseline BASE.json CURRENT.json"
      " [--tolerance T]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

enum class Ingest { kOk, kError, kUnknownSchema };

Ingest IngestFile(const std::string& path, StatsInput* input) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "cypher_stats: cannot read '%s'\n", path.c_str());
    return Ingest::kError;
  }
  std::string error;
  bool unknown_schema = false;
  if (!IngestStatsArtifact(text, input, &error, &unknown_schema)) {
    if (unknown_schema) {
      std::fprintf(stderr,
                   "cypher_stats: warning: skipping '%s': %s\n",
                   path.c_str(), error.c_str());
      return Ingest::kUnknownSchema;
    }
    std::fprintf(stderr, "cypher_stats: %s: %s\n", path.c_str(),
                 error.c_str());
    return Ingest::kError;
  }
  return Ingest::kOk;
}

}  // namespace

int main(int argc, char** argv) {
  bool baseline_mode = false;
  bool strict = false;
  double tolerance = 0.10;
  size_t worst = 5;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--baseline") == 0) {
      baseline_mode = true;
    } else if (std::strcmp(arg, "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(arg, "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--worst") == 0 && i + 1 < argc) {
      worst = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (baseline_mode) {
    if (files.size() != 2) return Usage();
    StatsInput baseline;
    StatsInput current;
    // Both sides of a baseline diff must be real bench artifacts; an
    // unknown schema here is a hard error, not a skippable input.
    if (IngestFile(files[0], &baseline) != Ingest::kOk ||
        IngestFile(files[1], &current) != Ingest::kOk) {
      return 2;
    }
    if (baseline.bench_records.empty()) {
      std::fprintf(stderr, "cypher_stats: '%s' has no bench records\n",
                   files[0].c_str());
      return 2;
    }
    BaselineDiffOptions options;
    options.tolerance = tolerance;
    std::string report;
    const int regressions =
        DiffBenchBaseline(baseline, current, options, &report);
    std::fputs(report.c_str(), stdout);
    return regressions == 0 ? 0 : 1;
  }

  if (files.empty()) return Usage();
  StatsInput input;
  size_t skipped = 0;
  for (const std::string& file : files) {
    switch (IngestFile(file, &input)) {
      case Ingest::kOk:
        break;
      case Ingest::kError:
        return 2;
      case Ingest::kUnknownSchema:
        ++skipped;
        break;
    }
  }
  if (skipped > 0 && strict) {
    std::fprintf(stderr,
                 "cypher_stats: --strict: %zu file(s) matched no known "
                 "artifact schema\n",
                 skipped);
    return 2;
  }
  std::fputs(RenderStatsReport(input, worst).c_str(), stdout);
  return 0;
}
