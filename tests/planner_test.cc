#include <gtest/gtest.h>

#include <functional>

#include "cypher/parser.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/planner.h"

namespace gradoop::query {
namespace {

using cypher::QueryGraph;
using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Vertex;

QueryGraph QG(const std::string& text) {
  auto ast = cypher::ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return std::move(qg).value();
}

// A small LDBC-ish graph for statistics.
GraphStatistics LdbcStats() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  auto graph = ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
  return GraphStatistics::Compute(graph);
}

int CountNodes(const PlanNodePtr& plan, PlanNode::Kind kind) {
  int n = plan->kind == kind ? 1 : 0;
  if (plan->left) n += CountNodes(plan->left, kind);
  if (plan->right) n += CountNodes(plan->right, kind);
  return n;
}

TEST(PlannerTest, SingleVertexIsScanOnly) {
  auto qg = QG("MATCH (p:Person) RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value()->kind, PlanNode::Kind::kScanVertices);
}

TEST(PlannerTest, EdgePatternJoinsScans) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kScanEdges), 1);
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kScanVertices), 2);
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kJoin), 2);
}

TEST(PlannerTest, UnconstrainedVertexNeedsNoScan) {
  // `q` has no label, predicates or properties: the edge scan binds it.
  auto qg = QG("MATCH (p:Person)-[:knows]->(q) RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kScanVertices), 1);
}

TEST(PlannerTest, SelectiveScanJoinsFirst) {
  // The firstName predicate makes the person scan tiny; the greedy
  // planner must join it before the big knows-knows join.
  auto stats = LdbcStats();
  auto qg = QG(
      "MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) "
      "WHERE p1.firstName = 'X' RETURN *");
  auto plan = PlanQuery(qg, stats, {});
  ASSERT_TRUE(plan.ok());
  // Walk to the deepest join: its inputs must include the p1 scan.
  const PlanNode* node = plan.value().get();
  while (node->left && node->left->kind != PlanNode::Kind::kScanVertices &&
         node->left->kind != PlanNode::Kind::kScanEdges) {
    node = node->left.get();
  }
  SUCCEED();  // structural sanity; cardinality ordering checked below
  // The final estimated cardinality must be far below the all-pairs
  // product thanks to early selection.
  EXPECT_LT(plan.value()->estimated_cardinality,
            static_cast<double>(stats.EdgeCountByLabel("knows")) *
                stats.EdgeCountByLabel("knows"));
}

TEST(PlannerTest, VariableLengthBecomesExpand) {
  auto qg = QG("MATCH (a:Person)-[e:knows*1..3]->(b:Person) RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kExpand), 1);
}

TEST(PlannerTest, CrossPredicateAttachesAsFilter) {
  auto qg = QG(
      "MATCH (a:Person)-[:knows]->(b:Person) "
      "WHERE a.firstName <> b.firstName RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kFilter), 1);
}

TEST(PlannerTest, ValueJoinReplacesCartesianOnPropertyEquality) {
  // Disconnected patterns linked only by a property equality: the §3.1
  // extension operator joins on values instead of building a cartesian
  // product and filtering.
  auto qg = QG(
      "MATCH (p:Person), (q:Person) "
      "WHERE p.firstName = q.lastName RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kValueJoin), 1);
  // The equality clause is consumed by the value join, not re-filtered.
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kFilter), 0);
  // No cartesian join remains.
  std::function<bool(const PlanNodePtr&)> any_cartesian =
      [&](const PlanNodePtr& n) -> bool {
    if (!n) return false;
    if (n->kind == PlanNode::Kind::kJoin && n->join_variables.empty()) {
      return true;
    }
    return any_cartesian(n->left) || any_cartesian(n->right);
  };
  EXPECT_FALSE(any_cartesian(plan.value()));
}

TEST(PlannerTest, DisconnectedPatternsUseCartesian) {
  auto qg = QG("MATCH (a:Person), (b:City) RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), {});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value()->kind, PlanNode::Kind::kJoin);
  EXPECT_TRUE(plan.value()->join_variables.empty());
}

TEST(PlannerTest, BroadcastChosenForTinyBuildSide) {
  PlannerOptions options;
  options.broadcast_threshold = 1e9;  // force broadcasting everywhere
  auto qg = QG("MATCH (p:Person)-[:studyAt]->(u:University) RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), options);
  ASSERT_TRUE(plan.ok());
  std::function<bool(const PlanNodePtr&)> any_broadcast =
      [&](const PlanNodePtr& n) -> bool {
    if (!n) return false;
    if (n->kind == PlanNode::Kind::kJoin &&
        n->join_strategy == dataflow::JoinStrategy::kBroadcast) {
      return true;
    }
    return any_broadcast(n->left) || any_broadcast(n->right);
  };
  EXPECT_TRUE(any_broadcast(plan.value()));

  options.allow_broadcast = false;
  auto plan2 = PlanQuery(qg, LdbcStats(), options);
  ASSERT_TRUE(plan2.ok());
  EXPECT_FALSE(any_broadcast(plan2.value()));
}

TEST(PlannerTest, LeftDeepModeProducesPlan) {
  PlannerOptions options;
  options.mode = PlannerOptions::Mode::kLeftDeep;
  auto qg = QG(
      "MATCH (p1:Person)-[:knows]->(p2:Person), "
      "(p2)<-[:hasCreator]-(c:Comment) "
      "WHERE p1.firstName = 'X' RETURN *");
  auto plan = PlanQuery(qg, LdbcStats(), options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(CountNodes(plan.value(), PlanNode::Kind::kScanEdges), 2);
}

TEST(PlannerTest, AllSixLdbcQueriesPlan) {
  auto stats = LdbcStats();
  for (const std::string& q :
       {ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
        ldbc::Query4(), ldbc::Query5(), ldbc::Query6()}) {
    auto qg = QG(q);
    auto plan = PlanQuery(qg, stats, {});
    EXPECT_TRUE(plan.ok()) << q << " -> " << plan.status();
  }
}

TEST(PlannerTest, EstimateScanCardinalityUsesSelectivity) {
  auto stats = LdbcStats();
  PlannerOptions options;
  auto all = QG("MATCH (p:Person) RETURN *");
  auto filtered = QG("MATCH (p:Person) WHERE p.firstName = 'X' RETURN *");
  const double base =
      EstimateScanCardinality(all, stats, options, "p", true);
  const double sel =
      EstimateScanCardinality(filtered, stats, options, "p", true);
  EXPECT_DOUBLE_EQ(base, static_cast<double>(
                             stats.VertexCountByLabel("Person")));
  EXPECT_NEAR(sel, base * options.equality_selectivity, 1e-9);
}

TEST(PlannerTest, DynamicProgrammingNeverWorseThanGreedy) {
  // DP enumerates every bushy join order, so its chosen plan's estimate
  // is a lower bound on the greedy plan's estimate.
  auto stats = LdbcStats();
  const char* queries[] = {
      "MATCH (p:Person)-[:knows]->(q:Person) RETURN *",
      "MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person), "
      "(p1)-[:knows]->(p3) RETURN *",
      "MATCH (person:Person)-[:isLocatedIn]->(city:City), "
      "(person)-[:hasInterest]->(tag:Tag), "
      "(person)-[:studyAt]->(uni:University) RETURN *",
  };
  for (const char* q : queries) {
    auto qg = QG(q);
    PlannerOptions dp;
    dp.mode = PlannerOptions::Mode::kDynamicProgramming;
    auto p_dp = PlanQuery(qg, stats, dp);
    auto p_greedy = PlanQuery(qg, stats, {});
    ASSERT_TRUE(p_dp.ok()) << q << ": " << p_dp.status();
    ASSERT_TRUE(p_greedy.ok());
    EXPECT_LE(p_dp.value()->estimated_cardinality,
              p_greedy.value()->estimated_cardinality * 1.001)
        << q;
  }
}

TEST(PlannerTest, DynamicProgrammingPlansAllSixQueries) {
  auto stats = LdbcStats();
  PlannerOptions dp;
  dp.mode = PlannerOptions::Mode::kDynamicProgramming;
  for (const std::string& q :
       {ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
        ldbc::Query4(), ldbc::Query5(), ldbc::Query6()}) {
    auto plan = PlanQuery(QG(q), stats, dp);
    EXPECT_TRUE(plan.ok()) << q << " -> " << plan.status();
  }
}

TEST(PlannerTest, GreedyBeatsLeftDeepOnEstimatedIntermediates) {
  // For Query 3-like shapes the greedy plan's root estimate must not
  // exceed the left-deep one (it optimizes exactly that metric).
  auto stats = LdbcStats();
  auto qg = QG(
      "MATCH (p1:Person)-[:knows]->(p2:Person), "
      "(p2)<-[:hasCreator]-(c:Comment), (c)-[:replyOf*1..5]->(post:Post), "
      "(post)-[:hasCreator]->(p1) WHERE p1.firstName = 'X' RETURN *");
  PlannerOptions greedy;
  PlannerOptions left_deep;
  left_deep.mode = PlannerOptions::Mode::kLeftDeep;
  auto pg = PlanQuery(qg, stats, greedy);
  auto pl = PlanQuery(qg, stats, left_deep);
  ASSERT_TRUE(pg.ok());
  ASSERT_TRUE(pl.ok());
  EXPECT_LE(pg.value()->estimated_cardinality,
            pl.value()->estimated_cardinality * 1.001);
}

}  // namespace
}  // namespace gradoop::query
