// Semantic analyzer behavior tests: constant folding under ternary
// logic, the unsatisfiability short-circuit through the engine (no plan
// is built, the result is empty), and oracle parity — a statically
// pruned query returns exactly what the naive matcher finds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "cypher/expression.h"
#include "cypher/parser.h"
#include "cypher/query_graph.h"
#include "epgm/logical_graph.h"
#include "query/cypher_engine.h"
#include "query/naive_matcher.h"

namespace gradoop::analysis {
namespace {

using cypher::ExprKind;
using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Properties;
using epgm::Vertex;
using query::CypherEngine;
using query::MorphismSetting;

AnalysisResult Analyze(const std::string& query,
                       const AnalyzerOptions& options = {}) {
  auto ast = cypher::ParseCypher(query);
  EXPECT_TRUE(ast.ok()) << ast.status();
  if (!ast.ok()) return {};
  return AnalyzeQuery(ast.value(), options);
}

// --- Constant folding. ---

TEST(ConstantFolding, TrueWhereFoldsAway) {
  auto r = Analyze("MATCH (a) WHERE true RETURN a.x");
  EXPECT_FALSE(r.HasErrors());
  EXPECT_EQ(r.folded_where, nullptr);
  EXPECT_FALSE(r.unsatisfiable);
}

TEST(ConstantFolding, TrueConjunctDropsOut) {
  auto r = Analyze("MATCH (a) WHERE a.x = 1 AND 1 < 2 RETURN a.x");
  ASSERT_NE(r.folded_where, nullptr);
  // Only the dynamic comparison survives.
  EXPECT_EQ(r.folded_where->kind(), ExprKind::kComparison);
  EXPECT_FALSE(r.unsatisfiable);
}

TEST(ConstantFolding, FalseConjunctKillsTheWhere) {
  auto r = Analyze("MATCH (a) WHERE a.x = 1 AND 2 < 1 RETURN a.x");
  ASSERT_NE(r.folded_where, nullptr);
  ASSERT_EQ(r.folded_where->kind(), ExprKind::kLiteral);
  ASSERT_TRUE(r.folded_where->literal().is_bool());
  EXPECT_FALSE(r.folded_where->literal().bool_value());
  EXPECT_TRUE(r.unsatisfiable);
}

TEST(ConstantFolding, FalseDisjunctDropsOut) {
  auto r = Analyze("MATCH (a) WHERE 2 < 1 OR a.x > 0 RETURN a.x");
  ASSERT_NE(r.folded_where, nullptr);
  EXPECT_EQ(r.folded_where->kind(), ExprKind::kComparison);
  EXPECT_FALSE(r.unsatisfiable);
}

TEST(ConstantFolding, XorAgainstTrueBecomesNegation) {
  auto r = Analyze("MATCH (a) WHERE a.x = 1 XOR 1 = 1 RETURN a.x");
  ASSERT_NE(r.folded_where, nullptr);
  EXPECT_EQ(r.folded_where->kind(), ExprKind::kNot);
  EXPECT_FALSE(r.unsatisfiable);
}

TEST(ConstantFolding, NullComparisonCollapsesToFalse) {
  // `a.x = NULL` is NULL under ternary logic; a top-level NULL WHERE
  // matches nothing, exactly like FALSE.
  auto r = Analyze("MATCH (a) WHERE a.x = NULL RETURN a.x");
  ASSERT_NE(r.folded_where, nullptr);
  ASSERT_EQ(r.folded_where->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(r.unsatisfiable);
}

TEST(ConstantFolding, NullDoesNotDominateAnd) {
  // AND(NULL, D) must NOT fold to NULL: if D is FALSE the AND is FALSE,
  // and a NOT above it would then be TRUE. The conjunct is kept.
  auto r = Analyze(
      "MATCH (a) WHERE NOT (a.x = NULL AND a.x < 0) RETURN a.x");
  EXPECT_FALSE(r.HasErrors());
  ASSERT_NE(r.folded_where, nullptr);
  EXPECT_FALSE(r.unsatisfiable);
}

TEST(ConstantFolding, DynamicWhereIsUntouched) {
  auto r = Analyze("MATCH (a)-[e]->(b) WHERE a.x = b.x RETURN *");
  ASSERT_NE(r.folded_where, nullptr);
  EXPECT_EQ(r.folded_where->kind(), ExprKind::kComparison);
  EXPECT_TRUE(r.diagnostics.empty());
}

// --- Engine integration: errors and the unsat short-circuit. ---

LogicalGraph SmallGraph(dataflow::ExecutionContextPtr ctx) {
  std::vector<Vertex> vertices;
  vertices.emplace_back(1, "Person", Properties{{"x", int64_t{1}}});
  vertices.emplace_back(2, "Person", Properties{{"x", int64_t{2}}});
  vertices.emplace_back(3, "Tag", Properties{{"x", int64_t{1}}});
  std::vector<Edge> edges;
  edges.emplace_back(10, "knows", 1, 2);
  edges.emplace_back(11, "likes", 2, 3);
  edges.emplace_back(12, "knows", 2, 1);
  return LogicalGraph::FromVectors(std::move(ctx), GraphHead(100, "G"),
                                   std::move(vertices), std::move(edges));
}

class AnalyzerEngineTest : public ::testing::Test {
 protected:
  AnalyzerEngineTest()
      : ctx_(dataflow::MakeContext()), engine_(SmallGraph(ctx_)) {}

  // Executes an expected-unsatisfiable query and asserts the static
  // short-circuit: success, no plan, empty embedding set.
  void ExpectUnsatShortCircuit(const std::string& query) {
    auto result = engine_.Execute(query);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result.value().plan, nullptr) << query;
    EXPECT_TRUE(result.value().embeddings.data.Collect().empty()) << query;
  }

  dataflow::ExecutionContextPtr ctx_;
  CypherEngine engine_;
};

TEST_F(AnalyzerEngineTest, SemanticErrorsBecomeLocatedPlanErrors) {
  auto result = engine_.Execute("MATCH (a) WHERE b.x = 1 RETURN a.x");
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("GQL001"), std::string::npos) << message;
  EXPECT_NE(message.find("1:17"), std::string::npos) << message;
}

TEST_F(AnalyzerEngineTest, SatisfiableQueriesStillPlan) {
  auto result = engine_.Execute("MATCH (a:Person)-[e:knows]->(b) RETURN *");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result.value().plan, nullptr);
  EXPECT_FALSE(result.value().embeddings.data.Collect().empty());
}

TEST_F(AnalyzerEngineTest, LabelContradictionShortCircuits) {
  ExpectUnsatShortCircuit("MATCH (a:Person), (a:Tag) RETURN a.x");
}

TEST_F(AnalyzerEngineTest, PropertyContradictionShortCircuits) {
  ExpectUnsatShortCircuit(
      "MATCH (a)-[e]->(b) WHERE a.x > 5 AND a.x < 3 RETURN *");
}

TEST_F(AnalyzerEngineTest, ConstantFalseWhereShortCircuits) {
  ExpectUnsatShortCircuit("MATCH (a) WHERE 1 = 2 RETURN a.x");
}

TEST_F(AnalyzerEngineTest, ConstantTrueWhereExecutesAsUnfiltered) {
  auto filtered = engine_.Count("MATCH (a:Person) WHERE 1 = 1 RETURN *");
  auto bare = engine_.Count("MATCH (a:Person) RETURN *");
  ASSERT_TRUE(filtered.ok()) << filtered.status();
  ASSERT_TRUE(bare.ok()) << bare.status();
  EXPECT_EQ(filtered.value(), bare.value());
}

TEST_F(AnalyzerEngineTest, ExplainReportsUnsatisfiable) {
  auto plan = engine_.Explain("MATCH (a:Person), (a:Tag) RETURN a.x");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan.value().find("unsatisfiable"), std::string::npos)
      << plan.value();
}

// Oracle parity: the short-circuited empty result agrees with the naive
// matcher run on an independently built query graph (no analyzer in the
// loop), for both morphism settings.
TEST_F(AnalyzerEngineTest, UnsatShortCircuitAgreesWithOracle) {
  const std::string queries[] = {
      "MATCH (a:Person), (a:Tag) RETURN a.x",
      "MATCH (a)-[e]->(b) WHERE a.x > 5 AND a.x < 3 RETURN *",
      "MATCH (a) WHERE false RETURN a.x",
  };
  std::vector<Vertex> vertices;
  std::vector<Edge> edges;
  {
    LogicalGraph g = SmallGraph(ctx_);
    vertices = g.vertices().Collect();
    edges = g.edges().Collect();
  }
  query::NaiveMatcher oracle(vertices, edges);
  for (const std::string& q : queries) {
    for (const MorphismSetting& semantics :
         {MorphismSetting::Neo4j(), MorphismSetting::FullIsomorphism()}) {
      auto result = engine_.Execute(q, semantics);
      ASSERT_TRUE(result.ok()) << q << ": " << result.status();
      EXPECT_EQ(result.value().plan, nullptr) << q;
      EXPECT_TRUE(result.value().embeddings.data.Collect().empty()) << q;

      auto ast = cypher::ParseCypher(q);
      ASSERT_TRUE(ast.ok()) << ast.status();
      auto qg = cypher::QueryGraph::Build(ast.value());
      ASSERT_TRUE(qg.ok()) << qg.status();
      EXPECT_TRUE(oracle.FindMatches(qg.value(), semantics).empty()) << q;
    }
  }
}

}  // namespace
}  // namespace gradoop::analysis
