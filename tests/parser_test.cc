#include <gtest/gtest.h>

#include "cypher/parser.h"

namespace gradoop::cypher {
namespace {

CypherQuery MustParse(const std::string& text) {
  auto q = ParseCypher(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status();
  return q.ok() ? std::move(q).value() : CypherQuery{};
}

TEST(ParserTest, MinimalQuery) {
  CypherQuery q = MustParse("MATCH (n) RETURN *");
  ASSERT_EQ(q.paths.size(), 1u);
  EXPECT_EQ(q.paths[0].start.variable, "n");
  EXPECT_TRUE(q.paths[0].start.labels.empty());
  EXPECT_TRUE(q.return_all);
  EXPECT_EQ(q.where, nullptr);
}

TEST(ParserTest, LabeledNode) {
  CypherQuery q = MustParse("MATCH (p:Person) RETURN *");
  EXPECT_EQ(q.paths[0].start.labels, (std::vector<std::string>{"Person"}));
}

TEST(ParserTest, LabelAlternation) {
  CypherQuery q = MustParse("MATCH (m:Comment|Post) RETURN *");
  EXPECT_EQ(q.paths[0].start.labels,
            (std::vector<std::string>{"Comment", "Post"}));
}

TEST(ParserTest, AnonymousNodeGetsFreshVariable) {
  CypherQuery q = MustParse("MATCH (:Person)-[:knows]->() RETURN *");
  EXPECT_FALSE(q.paths[0].start.variable.empty());
  EXPECT_FALSE(q.paths[0].steps[0].second.variable.empty());
  EXPECT_NE(q.paths[0].start.variable, q.paths[0].steps[0].second.variable);
}

TEST(ParserTest, OutgoingRelationship) {
  CypherQuery q = MustParse("MATCH (a)-[e:knows]->(b) RETURN *");
  ASSERT_EQ(q.paths[0].steps.size(), 1u);
  const RelationshipPattern& rel = q.paths[0].steps[0].first;
  EXPECT_EQ(rel.variable, "e");
  EXPECT_EQ(rel.types, (std::vector<std::string>{"knows"}));
  EXPECT_EQ(rel.direction, PatternDirection::kOutgoing);
  EXPECT_FALSE(rel.IsVariableLength());
}

TEST(ParserTest, IncomingRelationship) {
  CypherQuery q = MustParse("MATCH (p)<-[:hasCreator]-(m) RETURN *");
  EXPECT_EQ(q.paths[0].steps[0].first.direction, PatternDirection::kIncoming);
}

TEST(ParserTest, UndirectedRelationship) {
  CypherQuery q = MustParse("MATCH (a)-[e:knows]-(b) RETURN *");
  EXPECT_EQ(q.paths[0].steps[0].first.direction,
            PatternDirection::kUndirected);
}

TEST(ParserTest, BareArrowWithoutBrackets) {
  CypherQuery q = MustParse("MATCH (a)-->(b) RETURN *");
  const RelationshipPattern& rel = q.paths[0].steps[0].first;
  EXPECT_EQ(rel.direction, PatternDirection::kOutgoing);
  EXPECT_TRUE(rel.types.empty());
}

TEST(ParserTest, VariableLengthBounds) {
  CypherQuery q = MustParse("MATCH (a)-[e:knows*1..3]->(b) RETURN *");
  const RelationshipPattern& rel = q.paths[0].steps[0].first;
  EXPECT_TRUE(rel.IsVariableLength());
  EXPECT_EQ(rel.lower_bound, 1);
  EXPECT_EQ(rel.upper_bound, 3);
}

TEST(ParserTest, VariableLengthZeroLower) {
  CypherQuery q = MustParse("MATCH (a)-[:replyOf*0..10]->(b) RETURN *");
  EXPECT_EQ(q.paths[0].steps[0].first.lower_bound, 0);
  EXPECT_EQ(q.paths[0].steps[0].first.upper_bound, 10);
}

TEST(ParserTest, VariableLengthExact) {
  CypherQuery q = MustParse("MATCH (a)-[e*2]->(b) RETURN *");
  EXPECT_EQ(q.paths[0].steps[0].first.lower_bound, 2);
  EXPECT_EQ(q.paths[0].steps[0].first.upper_bound, 2);
}

TEST(ParserTest, VariableLengthUnbounded) {
  CypherQuery q = MustParse("MATCH (a)-[e*]->(b) RETURN *");
  EXPECT_EQ(q.paths[0].steps[0].first.lower_bound, 1);
  EXPECT_EQ(q.paths[0].steps[0].first.upper_bound,
            RelationshipPattern::kDefaultUpperBound);
}

TEST(ParserTest, PropertyMapOnNode) {
  CypherQuery q = MustParse("MATCH (p:Person {name: 'Alice', yob: 1984}) RETURN *");
  const NodePattern& node = q.paths[0].start;
  ASSERT_EQ(node.properties.size(), 2u);
  EXPECT_EQ(node.properties[0].first, "name");
  EXPECT_EQ(node.properties[0].second, epgm::PropertyValue("Alice"));
  EXPECT_EQ(node.properties[1].second, epgm::PropertyValue(int64_t{1984}));
}

TEST(ParserTest, PropertyMapOnRelationship) {
  CypherQuery q =
      MustParse("MATCH (a)-[e:studyAt {classYear: 2015}]->(b) RETURN *");
  ASSERT_EQ(q.paths[0].steps[0].first.properties.size(), 1u);
}

TEST(ParserTest, MultiplePaths) {
  CypherQuery q = MustParse(
      "MATCH (p1:Person)-[:knows]->(p2), (p2)<-[:hasCreator]-(c:Comment) "
      "RETURN *");
  EXPECT_EQ(q.paths.size(), 2u);
}

TEST(ParserTest, LongChain) {
  CypherQuery q =
      MustParse("MATCH (a)-[:x]->(b)<-[:y]-(c)-[:z]->(d) RETURN *");
  EXPECT_EQ(q.paths[0].steps.size(), 3u);
}

TEST(ParserTest, WhereComparisons) {
  CypherQuery q = MustParse(
      "MATCH (a)-[s]->(b) WHERE a.gender <> b.gender AND s.classYear > 2014 "
      "AND b.name = 'Uni Leipzig' RETURN *");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind(), ExprKind::kAnd);
}

TEST(ParserTest, WherePrecedenceOrOverAnd) {
  // AND binds tighter than OR.
  CypherQuery q =
      MustParse("MATCH (a) WHERE a.x = 1 OR a.y = 2 AND a.z = 3 RETURN *");
  ASSERT_EQ(q.where->kind(), ExprKind::kOr);
  EXPECT_EQ(q.where->right()->kind(), ExprKind::kAnd);
}

TEST(ParserTest, WhereNotAndParens) {
  CypherQuery q = MustParse(
      "MATCH (a) WHERE NOT (a.x = 1 OR a.y = 2) RETURN *");
  EXPECT_EQ(q.where->kind(), ExprKind::kNot);
  EXPECT_EQ(q.where->left()->kind(), ExprKind::kOr);
}

TEST(ParserTest, WhereXor) {
  CypherQuery q = MustParse("MATCH (a) WHERE a.x = 1 XOR a.y = 2 RETURN *");
  EXPECT_EQ(q.where->kind(), ExprKind::kXor);
}

TEST(ParserTest, WhereLiteralKinds) {
  CypherQuery q = MustParse(
      "MATCH (a) WHERE a.b = true AND a.c = -5 AND a.d = 2.5 RETURN *");
  ASSERT_NE(q.where, nullptr);
}

TEST(ParserTest, ReturnItems) {
  CypherQuery q = MustParse(
      "MATCH (p:Person) RETURN p.name, p.gender AS g, p");
  EXPECT_FALSE(q.return_all);
  ASSERT_EQ(q.return_items.size(), 3u);
  EXPECT_EQ(q.return_items[0].variable, "p");
  EXPECT_EQ(q.return_items[0].property_key, "name");
  EXPECT_EQ(q.return_items[1].alias, "g");
  EXPECT_FALSE(q.return_items[2].IsPropertyAccess());
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  CypherQuery q = MustParse("match (n) where n.x = 1 return *");
  EXPECT_EQ(q.paths.size(), 1u);
  EXPECT_NE(q.where, nullptr);
}

TEST(ParserTest, PaperExampleParses) {
  CypherQuery q = MustParse(
      "MATCH (p1:Person)-[s:studyAt]->(u:University), "
      "(p2:Person)-[:studyAt]->(u), "
      "(p1)-[e:knows*1..3]->(p2) "
      "WHERE p1.gender <> p2.gender "
      "AND u.name = 'Uni Leipzig' "
      "AND s.classYear > 2014 "
      "RETURN *");
  EXPECT_EQ(q.paths.size(), 3u);
  EXPECT_TRUE(q.paths[2].steps[0].first.IsVariableLength());
}

// --- error cases ---------------------------------------------------------

TEST(ParserErrorTest, MissingMatch) {
  EXPECT_FALSE(ParseCypher("RETURN *").ok());
}

TEST(ParserErrorTest, MissingReturn) {
  EXPECT_FALSE(ParseCypher("MATCH (n)").ok());
}

TEST(ParserErrorTest, UnclosedNode) {
  EXPECT_FALSE(ParseCypher("MATCH (n RETURN *").ok());
}

TEST(ParserErrorTest, UnclosedRelationship) {
  EXPECT_FALSE(ParseCypher("MATCH (a)-[e->(b) RETURN *").ok());
}

TEST(ParserErrorTest, DoubleArrow) {
  EXPECT_FALSE(ParseCypher("MATCH (a)<-[e]->(b) RETURN *").ok());
}

TEST(ParserTest, BadBoundsParseButArePreserved) {
  // Bound sanity (lower <= upper) is a semantic check: the parser accepts
  // the pattern and the analyzer reports GQL010 with the bounds' span.
  auto q = ParseCypher("MATCH (a)-[e*3..1]->(b) RETURN *");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& rel = q.value().paths[0].steps[0].first;
  EXPECT_EQ(rel.lower_bound, 3);
  EXPECT_EQ(rel.upper_bound, 1);
  EXPECT_TRUE(rel.bounds_span.IsKnown());
}

TEST(ParserErrorTest, TrailingGarbage) {
  EXPECT_FALSE(ParseCypher("MATCH (n) RETURN * garbage").ok());
}

TEST(ParserTest, BareVariableParsesAsElementReference) {
  // `a = b` parses into a comparison over bare element references; the
  // analyzer folds it (isomorphism) or rejects it (homomorphism). It
  // never reaches execution.
  auto q = ParseCypher("MATCH (a)-[e]->(b) WHERE a = b RETURN *");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& where = q.value().where;
  ASSERT_NE(where, nullptr);
  ASSERT_EQ(where->kind(), ExprKind::kComparison);
  EXPECT_EQ(where->left()->kind(), ExprKind::kVariable);
  EXPECT_EQ(where->left()->variable(), "a");
  EXPECT_EQ(where->right()->kind(), ExprKind::kVariable);
  EXPECT_EQ(where->right()->variable(), "b");
}

TEST(ParserErrorTest, ReservedWordIsNotAValue) {
  EXPECT_FALSE(ParseCypher("MATCH (a) WHERE RETURN = 1 RETURN *").ok());
}

TEST(ParserErrorTest, EmptyPropertyKey) {
  EXPECT_FALSE(ParseCypher("MATCH (a {: 1}) RETURN *").ok());
}

TEST(ParserErrorTest, ErrorMentionsLineColumnAndToken) {
  auto r = ParseCypher("MATCH (n RETURN *");
  ASSERT_FALSE(r.ok());
  // `RETURN` (the unexpected token) starts at line 1, column 10.
  EXPECT_NE(r.status().message().find("1:10"), std::string::npos);
  EXPECT_NE(r.status().message().find("'RETURN'"), std::string::npos);
}

TEST(ParserErrorTest, ErrorOnLaterLineLocatesIt) {
  auto r = ParseCypher("MATCH (n)\nWHERE n.x = RETURN *");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:13"), std::string::npos);
}

}  // namespace
}  // namespace gradoop::cypher
