// Golden tests for EXPLAIN / EXPLAIN ANALYZE: pins the compiled operator
// trees and the actual per-operator cardinalities for the six LDBC
// queries at scale factor 0.05 (generator seed 42, so fully
// deterministic). When a planner or compiler change legitimately alters
// a tree, re-capture with:
//
//   GRADOOP_PRINT_GOLDEN=1 ./explain_analyze_test
//
// and paste the printed blocks below.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"

namespace gradoop::query {
namespace {

struct GoldenCase {
  const char* label;
  std::string query;
  std::string golden;  // ToString with actuals, without timing
};

epgm::LogicalGraph LdbcGraph() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
}

// Deterministic EXPLAIN ANALYZE rendering: actual cardinalities on,
// wall-clock/shuffle figures off.
std::string AnalyzeDeterministic(CypherEngine& engine, const std::string& q) {
  auto result = engine.Execute(q);
  EXPECT_TRUE(result.ok()) << q << " -> " << result.status();
  if (!result.ok() || result.value().physical == nullptr) return "";
  exec::PhysicalOperator::RenderOptions options;
  options.actuals = true;
  options.timing = false;
  return result.value().physical->ToString(options);
}

std::vector<GoldenCase>& Cases();

TEST(ExplainAnalyzeTest, GoldenTreesForSixLdbcQueries) {
  CypherEngine engine(LdbcGraph());
  const bool print = std::getenv("GRADOOP_PRINT_GOLDEN") != nullptr;
  for (GoldenCase& c : Cases()) {
    const std::string actual = AnalyzeDeterministic(engine, c.query);
    if (print) {
      printf("--- %s ---\n%s", c.label, actual.c_str());
      continue;
    }
    EXPECT_EQ(actual, c.golden) << c.label;
  }
}

TEST(ExplainAnalyzeTest, ExplainMatchesAnalyzeTreeShape) {
  // EXPLAIN (no execution) renders the same operators in the same order
  // as EXPLAIN ANALYZE; only the rows= annotations differ.
  CypherEngine engine(LdbcGraph());
  for (GoldenCase& c : Cases()) {
    auto explain = engine.Explain(c.query);
    ASSERT_TRUE(explain.ok()) << c.label << " -> " << explain.status();
    // Remove the execution-only annotations (" rows=", " qerror=",
    // " sel=") and the "/<actual>B" halves of the mem= annotations to
    // recover the EXPLAIN rendering.
    std::string stripped = AnalyzeDeterministic(engine, c.query);
    const std::string& expected = explain.value();
    for (const char* key : {" rows=", " qerror=", " sel="}) {
      const size_t key_len = std::strlen(key);
      size_t pos;
      while ((pos = stripped.find(key)) != std::string::npos) {
        size_t end = pos + key_len;
        while (end < stripped.size() && stripped[end] != ' ' &&
               stripped[end] != '\n') {
          ++end;
        }
        stripped.erase(pos, end - pos);
      }
    }
    size_t mem = 0;
    while ((mem = stripped.find("mem=", mem)) != std::string::npos) {
      size_t end = mem + 4;
      while (end < stripped.size() && stripped[end] != ' ' &&
             stripped[end] != '\n') {
        ++end;
      }
      const size_t slash = stripped.find('/', mem);
      if (slash != std::string::npos && slash < end) {
        stripped.erase(slash, end - slash);
      }
      mem += 4;
    }
    EXPECT_EQ(stripped, expected) << c.label;
  }
}

TEST(ExplainAnalyzeTest, ExplainAnalyzeReportsEstimatesAndActuals) {
  CypherEngine engine(LdbcGraph());
  auto rendered = engine.ExplainAnalyze(ldbc::Query1("Alice"));
  ASSERT_TRUE(rendered.ok()) << rendered.status();
  // Estimated (~) and actual (rows=) cardinalities per operator, plus
  // the timing annotations only ANALYZE carries.
  EXPECT_NE(rendered.value().find("~"), std::string::npos);
  EXPECT_NE(rendered.value().find("rows="), std::string::npos);
  EXPECT_NE(rendered.value().find("qerror="), std::string::npos);
  EXPECT_NE(rendered.value().find("sel="), std::string::npos);
  EXPECT_NE(rendered.value().find("self="), std::string::npos);
  EXPECT_NE(rendered.value().find("total="), std::string::npos);
}

TEST(ExplainAnalyzeTest, UnsatisfiableQueryShortCircuits) {
  CypherEngine engine(LdbcGraph());
  auto rendered = engine.ExplainAnalyze(
      "MATCH (p:Person) WHERE p.firstName = 'x' AND p.firstName = 'y' "
      "RETURN *");
  ASSERT_TRUE(rendered.ok()) << rendered.status();
  EXPECT_NE(rendered.value().find("EmptyResult"), std::string::npos);
}

std::vector<GoldenCase>& Cases() {
  static std::vector<GoldenCase> cases = {
      {"ldbc_q1", ldbc::Query1("Alice"),
       R"(JoinEmbeddings(on message, broadcast) ~35 mem=119315B/95251B rows=35 qerror=1.00 sel=0.05
  ScanVertices(message:Comment|Post) ~700 mem=48300B/36680B rows=700 qerror=1.00 sel=1.00
  JoinEmbeddings(on person, broadcast) ~35 mem=58190B/58571B rows=35 qerror=1.00 sel=0.05
    ScanEdges(  __e0:hasCreator) ~700 mem=27300B/27300B rows=700 qerror=1.00 sel=1.00
    ScanVertices(person:Person) ~5 mem=105B/231B rows=11 qerror=2.20 sel=1.00
)"},
      {"ldbc_q2", ldbc::Query2("Alice"),
       R"(JoinEmbeddings(on post, broadcast) ~385 mem=420450B/169062B rows=35 qerror=11.00 sel=0.10
  ExpandEmbeddings(  __e1*0..10) ~385 mem=209420B/95251B rows=68 qerror=5.66 sel=1.94
    JoinEmbeddings(on message, broadcast) ~35 mem=119315B/95251B rows=35 qerror=1.00 sel=0.05
      ScanVertices(message:Comment|Post) ~700 mem=48300B/36680B rows=700 qerror=1.00 sel=1.00
      JoinEmbeddings(on person, broadcast) ~35 mem=58190B/58571B rows=35 qerror=1.00 sel=0.05
        ScanEdges(  __e0:hasCreator) ~700 mem=27300B/27300B rows=700 qerror=1.00 sel=1.00
        ScanVertices(person:Person) ~5 mem=105B/231B rows=11 qerror=2.20 sel=1.00
  ScanVertices(post:Post) ~300 mem=20700B/15190B rows=300 qerror=1.00 sel=1.00
)"},
      {"ldbc_q3", ldbc::Query3("Alice"),
       R"(JoinEmbeddings(on post, broadcast) ~23 mem=395516B/558292B rows=15 qerror=1.54 sel=0.05
  ScanVertices(post:Post) ~300 mem=13500B/11290B rows=300 qerror=1.00 sel=1.00
  ExpandEmbeddings(  __e2*1..10) ~23 mem=382016B/547002B rows=23 qerror=1.00 sel=0.02
    JoinEmbeddings(on p1, broadcast) ~691 mem=341466B/547002B rows=1178 qerror=1.71 sel=1.04
      ScanEdges(  __e3:hasCreator) ~700 mem=27300B/27300B rows=700 qerror=1.00 sel=1.00
      JoinEmbeddings(on comment, broadcast) ~99 mem=167775B/519702B rows=428 qerror=4.34 sel=0.46
        ScanVertices(comment:Comment) ~400 mem=8400B/8400B rows=400 qerror=1.00 sel=1.00
        JoinEmbeddings(on p2, broadcast) ~99 mem=90030B/105602B rows=522 qerror=5.29 sel=0.71
          ScanEdges(  __e1:hasCreator) ~700 mem=27300B/27300B rows=700 qerror=1.00 sel=1.00
          JoinEmbeddings(on p2, broadcast) ~14 mem=33686B/34798B rows=39 qerror=2.77 sel=0.28
            ScanVertices(p2:Person) ~100 mem=6900B/4922B rows=100 qerror=1.00 sel=1.00
            JoinEmbeddings(on p1, broadcast) ~14 mem=26786B/27557B rows=39 qerror=2.77 sel=0.13
              ScanEdges(  __e0:knows) ~282 mem=10998B/10998B rows=282 qerror=1.00 sel=1.00
              ScanVertices(p1:Person) ~5 mem=345B/549B rows=11 qerror=2.20 sel=1.00
)"},
      {"ldbc_q4", ldbc::Query4(),
       R"(JoinEmbeddings(on tag, broadcast) ~199 mem=224800B/116814B rows=156 qerror=1.28 sel=0.61
  JoinEmbeddings(on person, broadcast) ~199 mem=166564B/82120B rows=156 qerror=1.28 sel=0.31
    ScanEdges(  __e1:hasInterest) ~463 mem=18057B/18057B rows=463 qerror=1.00 sel=1.00
    JoinEmbeddings(on uni, broadcast) ~43 mem=75220B/50110B rows=36 qerror=1.19 sel=0.64
      JoinEmbeddings(on person, broadcast) ~43 mem=75220B/50110B rows=36 qerror=1.19 sel=0.30
        ScanEdges(  __e2:studyAt) ~79 mem=3081B/3081B rows=79 qerror=1.00 sel=1.00
        JoinEmbeddings(on city, broadcast) ~43 mem=63883B/42474B rows=43 qerror=1.00 sel=0.46
          ScanVertices(city:City) ~50 mem=2250B/1841B rows=50 qerror=1.00 sel=1.00
          JoinEmbeddings(on person, broadcast) ~43 mem=58798B/40633B rows=43 qerror=1.00 sel=0.30
            ScanEdges(  __e0:isLocatedIn) ~100 mem=3900B/3900B rows=100 qerror=1.00 sel=1.00
            JoinEmbeddings(on forum, broadcast) ~43 mem=38998B/29237B rows=43 qerror=1.00 sel=0.90
              JoinEmbeddings(on person, broadcast) ~43 mem=38998B/29237B rows=43 qerror=1.00 sel=0.30
                ScanVertices(person:Person) ~100 mem=6900B/4922B rows=100 qerror=1.00 sel=1.00
                ScanEdges(  __e3:hasMember|hasModerator) ~43 mem=1677B/1677B rows=43 qerror=1.00 sel=1.00
              ScanVertices(forum:Forum) ~5 mem=225B/185B rows=5 qerror=1.00 sel=1.00
      ScanVertices(uni:University) ~20 mem=900B/716B rows=20 qerror=1.00 sel=1.00
  ScanVertices(tag:Tag) ~100 mem=4500B/3780B rows=100 qerror=1.00 sel=1.00
)"},
      {"ldbc_q5", ldbc::Query5(),
       R"(JoinEmbeddings(on p1,p3, broadcast) ~22 mem=527256B/430400B rows=164 qerror=7.31 sel=0.14
  JoinEmbeddings(on p2, broadcast) ~795 mem=432048B/223700B rows=886 qerror=1.11 sel=1.57
    JoinEmbeddings(on p1, broadcast) ~282 mem=116068B/72206B rows=282 qerror=1.00 sel=0.74
      ScanEdges(  __e0:knows) ~282 mem=10998B/10998B rows=282 qerror=1.00 sel=1.00
      ScanVertices(p1:Person) ~100 mem=6900B/4922B rows=100 qerror=1.00 sel=1.00
    JoinEmbeddings(on p2, broadcast) ~282 mem=116068B/72206B rows=282 qerror=1.00 sel=0.74
      ScanEdges(  __e1:knows) ~282 mem=10998B/10998B rows=282 qerror=1.00 sel=1.00
      ScanVertices(p2:Person) ~100 mem=6900B/4922B rows=100 qerror=1.00 sel=1.00
  JoinEmbeddings(on p3, broadcast) ~282 mem=116068B/72206B rows=282 qerror=1.00 sel=0.74
    ScanEdges(  __e2:knows) ~282 mem=10998B/10998B rows=282 qerror=1.00 sel=1.00
    ScanVertices(p3:Person) ~100 mem=6900B/4922B rows=100 qerror=1.00 sel=1.00
)"},
      {"ldbc_q6", ldbc::Query6(),
       R"(JoinEmbeddings(on p2, broadcast) ~280 mem=640240B/543972B rows=1354 qerror=4.84 sel=1.79
  JoinEmbeddings(on t2, broadcast) ~463 mem=122050B/80614B rows=463 qerror=1.00 sel=0.82
    ScanEdges(  __e3:hasInterest) ~463 mem=18057B/18057B rows=463 qerror=1.00 sel=1.00
    ScanVertices(t2:Tag) ~100 mem=4500B/3780B rows=100 qerror=1.00 sel=1.00
  JoinEmbeddings(on p1,t1, broadcast) ~60 mem=606904B/513962B rows=293 qerror=4.85 sel=0.17
    JoinEmbeddings(on p2, broadcast) ~1306 mem=458358B/229216B rows=1261 qerror=1.04 sel=1.69
      ScanEdges(  __e2:hasInterest) ~463 mem=18057B/18057B rows=463 qerror=1.00 sel=1.00
      JoinEmbeddings(on p2, broadcast) ~282 mem=121954B/79388B rows=282 qerror=1.00 sel=0.74
        JoinEmbeddings(on p1, broadcast) ~282 mem=116068B/72206B rows=282 qerror=1.00 sel=0.74
          ScanEdges(  __e0:knows) ~282 mem=10998B/10998B rows=282 qerror=1.00 sel=1.00
          ScanVertices(p1:Person) ~100 mem=6900B/4922B rows=100 qerror=1.00 sel=1.00
        ScanVertices(p2:Person) ~100 mem=2100B/2100B rows=100 qerror=1.00 sel=1.00
    JoinEmbeddings(on t1, broadcast) ~463 mem=96538B/72214B rows=463 qerror=1.00 sel=0.82
      ScanEdges(  __e1:hasInterest) ~463 mem=18057B/18057B rows=463 qerror=1.00 sel=1.00
      ScanVertices(t1:Tag) ~100 mem=2100B/2100B rows=100 qerror=1.00 sel=1.00
)"},
  };
  return cases;
}

}  // namespace
}  // namespace gradoop::query
