// Golden tests for EXPLAIN / EXPLAIN ANALYZE: pins the compiled operator
// trees and the actual per-operator cardinalities for the six LDBC
// queries at scale factor 0.05 (generator seed 42, so fully
// deterministic). When a planner or compiler change legitimately alters
// a tree, re-capture with:
//
//   GRADOOP_PRINT_GOLDEN=1 ./explain_analyze_test
//
// and paste the printed blocks below.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"

namespace gradoop::query {
namespace {

struct GoldenCase {
  const char* label;
  std::string query;
  std::string golden;  // ToString with actuals, without timing
};

epgm::LogicalGraph LdbcGraph() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
}

// Deterministic EXPLAIN ANALYZE rendering: actual cardinalities on,
// wall-clock/shuffle figures off.
std::string AnalyzeDeterministic(CypherEngine& engine, const std::string& q) {
  auto result = engine.Execute(q);
  EXPECT_TRUE(result.ok()) << q << " -> " << result.status();
  if (!result.ok() || result.value().physical == nullptr) return "";
  exec::PhysicalOperator::RenderOptions options;
  options.actuals = true;
  options.timing = false;
  return result.value().physical->ToString(options);
}

std::vector<GoldenCase>& Cases();

TEST(ExplainAnalyzeTest, GoldenTreesForSixLdbcQueries) {
  CypherEngine engine(LdbcGraph());
  const bool print = std::getenv("GRADOOP_PRINT_GOLDEN") != nullptr;
  for (GoldenCase& c : Cases()) {
    const std::string actual = AnalyzeDeterministic(engine, c.query);
    if (print) {
      printf("--- %s ---\n%s", c.label, actual.c_str());
      continue;
    }
    EXPECT_EQ(actual, c.golden) << c.label;
  }
}

TEST(ExplainAnalyzeTest, ExplainMatchesAnalyzeTreeShape) {
  // EXPLAIN (no execution) renders the same operators in the same order
  // as EXPLAIN ANALYZE; only the rows= annotations differ.
  CypherEngine engine(LdbcGraph());
  for (GoldenCase& c : Cases()) {
    auto explain = engine.Explain(c.query);
    ASSERT_TRUE(explain.ok()) << c.label << " -> " << explain.status();
    // Remove " rows=<n>" annotations to recover the EXPLAIN rendering.
    std::string stripped = AnalyzeDeterministic(engine, c.query);
    const std::string& expected = explain.value();
    size_t pos;
    while ((pos = stripped.find(" rows=")) != std::string::npos) {
      size_t end = pos + 6;
      while (end < stripped.size() && stripped[end] != ' ' &&
             stripped[end] != '\n') {
        ++end;
      }
      stripped.erase(pos, end - pos);
    }
    EXPECT_EQ(stripped, expected) << c.label;
  }
}

TEST(ExplainAnalyzeTest, ExplainAnalyzeReportsEstimatesAndActuals) {
  CypherEngine engine(LdbcGraph());
  auto rendered = engine.ExplainAnalyze(ldbc::Query1("Alice"));
  ASSERT_TRUE(rendered.ok()) << rendered.status();
  // Estimated (~) and actual (rows=) cardinalities per operator, plus
  // the timing annotations only ANALYZE carries.
  EXPECT_NE(rendered.value().find("~"), std::string::npos);
  EXPECT_NE(rendered.value().find("rows="), std::string::npos);
  EXPECT_NE(rendered.value().find("self="), std::string::npos);
  EXPECT_NE(rendered.value().find("total="), std::string::npos);
}

TEST(ExplainAnalyzeTest, UnsatisfiableQueryShortCircuits) {
  CypherEngine engine(LdbcGraph());
  auto rendered = engine.ExplainAnalyze(
      "MATCH (p:Person) WHERE p.firstName = 'x' AND p.firstName = 'y' "
      "RETURN *");
  ASSERT_TRUE(rendered.ok()) << rendered.status();
  EXPECT_NE(rendered.value().find("EmptyResult"), std::string::npos);
}

std::vector<GoldenCase>& Cases() {
  static std::vector<GoldenCase> cases = {
      {"ldbc_q1", ldbc::Query1("Alice"),
       R"(JoinEmbeddings(on message, broadcast) ~35 rows=35
  ScanVertices(message:Comment|Post) ~700 rows=700
  JoinEmbeddings(on person, broadcast) ~35 rows=35
    ScanEdges(  __e0:hasCreator) ~700 rows=700
    ScanVertices(person:Person) ~5 rows=11
)"},
      {"ldbc_q2", ldbc::Query2("Alice"),
       R"(JoinEmbeddings(on post, broadcast) ~385 rows=35
  ExpandEmbeddings(  __e1*0..10) ~385 rows=68
    JoinEmbeddings(on message, broadcast) ~35 rows=35
      ScanVertices(message:Comment|Post) ~700 rows=700
      JoinEmbeddings(on person, broadcast) ~35 rows=35
        ScanEdges(  __e0:hasCreator) ~700 rows=700
        ScanVertices(person:Person) ~5 rows=11
  ScanVertices(post:Post) ~300 rows=300
)"},
      {"ldbc_q3", ldbc::Query3("Alice"),
       R"(JoinEmbeddings(on post, broadcast) ~23 rows=15
  ScanVertices(post:Post) ~300 rows=300
  ExpandEmbeddings(  __e2*1..10) ~23 rows=23
    JoinEmbeddings(on p1, broadcast) ~691 rows=1178
      ScanEdges(  __e3:hasCreator) ~700 rows=700
      JoinEmbeddings(on comment, broadcast) ~99 rows=428
        ScanVertices(comment:Comment) ~400 rows=400
        JoinEmbeddings(on p2, broadcast) ~99 rows=522
          ScanEdges(  __e1:hasCreator) ~700 rows=700
          JoinEmbeddings(on p2, broadcast) ~14 rows=39
            ScanVertices(p2:Person) ~100 rows=100
            JoinEmbeddings(on p1, broadcast) ~14 rows=39
              ScanEdges(  __e0:knows) ~282 rows=282
              ScanVertices(p1:Person) ~5 rows=11
)"},
      {"ldbc_q4", ldbc::Query4(),
       R"(JoinEmbeddings(on tag, broadcast) ~199 rows=156
  JoinEmbeddings(on person, broadcast) ~199 rows=156
    ScanEdges(  __e1:hasInterest) ~463 rows=463
    JoinEmbeddings(on uni, broadcast) ~43 rows=36
      JoinEmbeddings(on person, broadcast) ~43 rows=36
        ScanEdges(  __e2:studyAt) ~79 rows=79
        JoinEmbeddings(on city, broadcast) ~43 rows=43
          ScanVertices(city:City) ~50 rows=50
          JoinEmbeddings(on person, broadcast) ~43 rows=43
            ScanEdges(  __e0:isLocatedIn) ~100 rows=100
            JoinEmbeddings(on forum, broadcast) ~43 rows=43
              JoinEmbeddings(on person, broadcast) ~43 rows=43
                ScanVertices(person:Person) ~100 rows=100
                ScanEdges(  __e3:hasMember|hasModerator) ~43 rows=43
              ScanVertices(forum:Forum) ~5 rows=5
      ScanVertices(uni:University) ~20 rows=20
  ScanVertices(tag:Tag) ~100 rows=100
)"},
      {"ldbc_q5", ldbc::Query5(),
       R"(JoinEmbeddings(on p1,p3, broadcast) ~22 rows=164
  JoinEmbeddings(on p2, broadcast) ~795 rows=886
    JoinEmbeddings(on p1, broadcast) ~282 rows=282
      ScanEdges(  __e0:knows) ~282 rows=282
      ScanVertices(p1:Person) ~100 rows=100
    JoinEmbeddings(on p2, broadcast) ~282 rows=282
      ScanEdges(  __e1:knows) ~282 rows=282
      ScanVertices(p2:Person) ~100 rows=100
  JoinEmbeddings(on p3, broadcast) ~282 rows=282
    ScanEdges(  __e2:knows) ~282 rows=282
    ScanVertices(p3:Person) ~100 rows=100
)"},
      {"ldbc_q6", ldbc::Query6(),
       R"(JoinEmbeddings(on p2, broadcast) ~280 rows=1354
  JoinEmbeddings(on t2, broadcast) ~463 rows=463
    ScanEdges(  __e3:hasInterest) ~463 rows=463
    ScanVertices(t2:Tag) ~100 rows=100
  JoinEmbeddings(on p1,t1, broadcast) ~60 rows=293
    JoinEmbeddings(on p2, broadcast) ~1306 rows=1261
      ScanEdges(  __e2:hasInterest) ~463 rows=463
      JoinEmbeddings(on p2, broadcast) ~282 rows=282
        JoinEmbeddings(on p1, broadcast) ~282 rows=282
          ScanEdges(  __e0:knows) ~282 rows=282
          ScanVertices(p1:Person) ~100 rows=100
        ScanVertices(p2:Person) ~100 rows=100
    JoinEmbeddings(on t1, broadcast) ~463 rows=463
      ScanEdges(  __e1:hasInterest) ~463 rows=463
      ScanVertices(t1:Tag) ~100 rows=100
)"},
  };
  return cases;
}

}  // namespace
}  // namespace gradoop::query
