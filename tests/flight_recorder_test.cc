// Observability-layer tests: Q-error unit behavior, flight-recorder
// retention (byte budget, capacity, newest-kept) and export validity,
// query-log JSONL shape and slow-query flagging, validator rejection of
// malformed artifacts, concurrent recording from parallel threads, and
// the cypher_stats aggregation/baseline-diff layer over the six LDBC
// queries.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/planner.h"
#include "query/query_profile.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/query_log.h"
#include "telemetry/stats_report.h"
#include "telemetry/validate.h"

namespace gradoop {
namespace {

using query::CypherEngine;
using telemetry::BaselineDiffOptions;
using telemetry::BenchRecord;
using telemetry::FlightRecorder;
using telemetry::QueryLog;
using telemetry::QueryLogEntry;
using telemetry::QueryProfile;
using telemetry::StatsInput;

epgm::LogicalGraph LdbcGraph(dataflow::ExecutionContextPtr ctx) {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(std::move(ctx));
}

// A synthetic profile whose retained size is easy to steer: the query
// string dominates ApproxProfileBytes.
QueryProfile PaddedProfile(const std::string& name, size_t pad_bytes) {
  QueryProfile profile;
  profile.name = name;
  profile.query = std::string(pad_bytes, 'q');
  profile.phases.push_back({"execute", 0.001});
  return profile;
}

// --- Q-error units -----------------------------------------------------

TEST(QErrorTest, ExactEstimateIsOne) {
  EXPECT_DOUBLE_EQ(telemetry::QError(35.0, 35.0), 1.0);
  EXPECT_DOUBLE_EQ(telemetry::QError(1.0, 1.0), 1.0);
}

TEST(QErrorTest, SymmetricOverAndUnderestimate) {
  EXPECT_DOUBLE_EQ(telemetry::QError(10.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(telemetry::QError(100.0, 10.0), 10.0);
}

TEST(QErrorTest, ZeroSafeOnBothSides) {
  // Zero actual rows (an empty operator) and zero/fractional estimates
  // both clamp to 1, so the ratio stays finite and >= 1.
  EXPECT_DOUBLE_EQ(telemetry::QError(50.0, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(telemetry::QError(0.0, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(telemetry::QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(telemetry::QError(0.25, 0.5), 1.0);
}

// --- flight recorder retention ----------------------------------------

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  FlightRecorder recorder;
  recorder.Record(PaddedProfile("q_a", 16));
  recorder.Record(PaddedProfile("q_b", 16));
  ASSERT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const std::vector<QueryProfile> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "q_a");
  EXPECT_EQ(snapshot[1].name, "q_b");
  EXPECT_GT(recorder.retained_bytes(), 0u);
}

TEST(FlightRecorderTest, EvictsOldestUnderByteBudget) {
  FlightRecorder recorder;
  // Each padded profile costs ~sizeof(QueryProfile) + 4 KiB; a budget of
  // three profiles' worth must evict oldest-first as more arrive.
  const uint64_t one = telemetry::ApproxProfileBytes(PaddedProfile("q", 4096));
  recorder.set_byte_budget(3 * one + one / 2);
  for (int i = 0; i < 8; ++i) {
    recorder.Record(PaddedProfile("q_" + std::to_string(i), 4096));
  }
  EXPECT_LE(recorder.retained_bytes(), recorder.byte_budget());
  EXPECT_GT(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.size() + recorder.dropped(), 8u);
  // The survivors are the newest, still oldest-first.
  const std::vector<QueryProfile> snapshot = recorder.Snapshot();
  ASSERT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot.back().name, "q_7");
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  }
}

TEST(FlightRecorderTest, NewestEntryIsNeverEvicted) {
  FlightRecorder recorder;
  recorder.set_byte_budget(1);  // below any single profile's size
  recorder.Record(PaddedProfile("q_small", 64));
  recorder.Record(PaddedProfile("q_big", 1 << 16));
  // The big profile alone blows the budget but must survive; only the
  // older entry is evicted.
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.Snapshot()[0].name, "q_big");
  EXPECT_EQ(recorder.dropped(), 1u);
}

TEST(FlightRecorderTest, CapacityBoundsEntryCount) {
  FlightRecorder recorder;
  recorder.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(PaddedProfile("q_" + std::to_string(i), 16));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_EQ(recorder.Snapshot().back().name, "q_9");
}

TEST(FlightRecorderTest, ClearResetsEverything) {
  FlightRecorder recorder;
  recorder.set_capacity(1);
  recorder.Record(PaddedProfile("q_a", 16));
  recorder.Record(PaddedProfile("q_b", 16));
  EXPECT_EQ(recorder.dropped(), 1u);
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.retained_bytes(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderTest, ConcurrentRecordingIsConsistent) {
  FlightRecorder recorder;
  recorder.set_capacity(64);
  QueryLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryProfile profile =
            PaddedProfile("q_" + std::to_string(t), 128 + i);
        log.Record(profile);
        recorder.Record(std::move(profile));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every record landed exactly once: retained + evicted covers all.
  EXPECT_EQ(recorder.size() + recorder.dropped(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_LE(recorder.size(), 64u);
  EXPECT_LE(log.size(), QueryLog::kMaxRetainedLines);
  std::string error;
  for (const std::string& line : log.Lines()) {
    EXPECT_TRUE(telemetry::ValidateQueryLogLine(line, &error)) << error;
  }
}

// --- query log ---------------------------------------------------------

TEST(QueryLogTest, HashIsDeterministicSixteenHex) {
  const std::string hash = telemetry::QueryTextHash("MATCH (n) RETURN n");
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(hash, telemetry::QueryTextHash("MATCH (n) RETURN n"));
  EXPECT_NE(hash, telemetry::QueryTextHash("MATCH (m) RETURN m"));
}

TEST(QueryLogTest, LinesValidateAndSlowFlagFollowsThreshold) {
  QueryProfile profile = PaddedProfile("q_slow", 8);
  profile.total_wall_sec = 0.250;
  profile.max_qerror = 2.5;
  QueryLog log;
  log.Record(profile);  // default threshold 0: never slow
  log.set_slow_threshold_sec(0.100);
  log.Record(profile);  // 250ms >= 100ms: slow
  log.set_slow_threshold_sec(1.0);
  log.Record(profile);  // under threshold again
  const std::vector<std::string> lines = log.Lines();
  ASSERT_EQ(lines.size(), 3u);
  std::string error;
  for (const std::string& line : lines) {
    EXPECT_TRUE(telemetry::ValidateQueryLogLine(line, &error)) << error;
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"slow\": false"), std::string::npos);
  EXPECT_NE(lines[1].find("\"slow\": true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"slow\": false"), std::string::npos);
}

TEST(QueryLogTest, SinkFileReceivesLines) {
  const std::string path = ::testing::TempDir() + "query_log_test.jsonl";
  std::remove(path.c_str());
  QueryLog log;
  ASSERT_TRUE(log.SetPath(path).ok());
  log.Record(PaddedProfile("q_a", 8));
  log.Record(PaddedProfile("q_b", 8));
  ASSERT_TRUE(log.SetPath("").ok());  // close the sink
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t count = 0;
  std::string error;
  while (std::getline(in, line)) {
    EXPECT_TRUE(telemetry::ValidateQueryLogLine(line, &error)) << error;
    ++count;
  }
  EXPECT_EQ(count, 2u);
  std::remove(path.c_str());
}

// --- validators reject malformed artifacts -----------------------------

TEST(ValidateTest, RejectsMalformedFlightRecorderExports) {
  std::string error;
  EXPECT_FALSE(telemetry::ValidateFlightRecorderExport("not json", &error));
  EXPECT_FALSE(telemetry::ValidateFlightRecorderExport("[]", &error));
  // Wrong schema version.
  EXPECT_FALSE(telemetry::ValidateFlightRecorderExport(
      R"({"schema_version": 2, "byte_budget": 1, "retained_bytes": 0,)"
      R"( "dropped": 0, "queries": []})",
      &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  // Missing queries array.
  EXPECT_FALSE(telemetry::ValidateFlightRecorderExport(
      R"({"schema_version": 1, "byte_budget": 1, "retained_bytes": 0,)"
      R"( "dropped": 0})",
      &error));
  // A queries element that is not a valid profile.
  EXPECT_FALSE(telemetry::ValidateFlightRecorderExport(
      R"({"schema_version": 1, "byte_budget": 1, "retained_bytes": 0,)"
      R"( "dropped": 0, "queries": [{"name": "q"}]})",
      &error));
  EXPECT_NE(error.find("queries[0]"), std::string::npos);
}

TEST(ValidateTest, RejectsMalformedQueryLogLines) {
  // A valid line to mutate from.
  QueryProfile profile = PaddedProfile("q_ok", 8);
  const std::string good =
      telemetry::QueryLogLine(telemetry::MakeQueryLogEntry(profile, 0.0));
  std::string error;
  ASSERT_TRUE(telemetry::ValidateQueryLogLine(good, &error)) << error;

  EXPECT_FALSE(telemetry::ValidateQueryLogLine("{}", &error));
  EXPECT_FALSE(telemetry::ValidateQueryLogLine("not json", &error));

  // Malformed hash: wrong length / uppercase.
  std::string bad = good;
  const size_t hash_pos = bad.find("\"query_hash\": \"");
  ASSERT_NE(hash_pos, std::string::npos);
  bad.replace(hash_pos + 15, 16, "XYZ");
  EXPECT_FALSE(telemetry::ValidateQueryLogLine(bad, &error));
  EXPECT_NE(error.find("query_hash"), std::string::npos);

  // Unknown engine.
  bad = good;
  const size_t engine_pos = bad.find("\"engine\": \"row\"");
  ASSERT_NE(engine_pos, std::string::npos);
  bad.replace(engine_pos, 15, "\"engine\": \"gpu\"");
  EXPECT_FALSE(telemetry::ValidateQueryLogLine(bad, &error));
  EXPECT_NE(error.find("engine"), std::string::npos);

  // Empty phases.
  bad = good;
  const size_t phases_pos = bad.find("\"phases\": [");
  ASSERT_NE(phases_pos, std::string::npos);
  bad = bad.substr(0, phases_pos) + "\"phases\": []}";
  EXPECT_FALSE(telemetry::ValidateQueryLogLine(bad, &error));
  EXPECT_NE(error.find("phases"), std::string::npos);
}

// --- engine integration ------------------------------------------------

TEST(FlightRecorderEngineTest, RecordsBothEnginesAndExportValidates) {
  auto ctx = dataflow::MakeContext();
  CypherEngine engine(LdbcGraph(ctx));
  ctx->EnableTelemetry();

  ctx->tracker().Reset();
  ctx->telemetry().ResetData();
  auto row = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(row.ok()) << row.status();

  engine.planner_options().engine = query::PlannerOptions::ExecutionEngine::kBatch;
  ctx->tracker().Reset();
  ctx->telemetry().ResetData();
  auto batch = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(batch.ok()) << batch.status();
  ctx->DisableTelemetry();

  ASSERT_EQ(ctx->flight_recorder().size(), 2u);
  const std::vector<QueryProfile> snapshot = ctx->flight_recorder().Snapshot();
  EXPECT_EQ(snapshot[0].engine, "row");
  EXPECT_EQ(snapshot[1].engine, "batch");
  EXPECT_EQ(snapshot[0].matches, snapshot[1].matches);
  for (const QueryProfile& profile : snapshot) {
    EXPECT_GE(profile.max_qerror, 1.0);
    ASSERT_FALSE(profile.operators.empty());
    for (const telemetry::OperatorProfile& op : profile.operators) {
      EXPECT_GE(op.qerror, 1.0) << op.describe;
    }
    // Plan-quality metrics landed in the profile's own snapshot.
    EXPECT_TRUE(profile.metrics.histograms.count("plan.qerror") > 0);
    EXPECT_TRUE(profile.metrics.gauges.count("plan.qerror.max") > 0);
  }

  std::string error;
  EXPECT_TRUE(telemetry::ValidateFlightRecorderExport(
      ctx->flight_recorder().ExportJson(), &error))
      << error;
  ASSERT_EQ(ctx->query_log().size(), 2u);
  for (const std::string& line : ctx->query_log().Lines()) {
    EXPECT_TRUE(telemetry::ValidateQueryLogLine(line, &error)) << error;
  }
  EXPECT_NE(ctx->query_log().Lines()[1].find("\"engine\": \"batch\""),
            std::string::npos);
}

TEST(FlightRecorderEngineTest, DisabledTelemetryRecordsNothing) {
  auto ctx = dataflow::MakeContext();
  CypherEngine engine(LdbcGraph(ctx));
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx->flight_recorder().size(), 0u);
  EXPECT_EQ(ctx->query_log().size(), 0u);
}

// --- stats report / baseline diff --------------------------------------

TEST(StatsReportTest, PercentileNearestRank) {
  const std::vector<double> values = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(telemetry::Percentile(values, 50), 30.0);
  EXPECT_DOUBLE_EQ(telemetry::Percentile(values, 95), 50.0);
  EXPECT_DOUBLE_EQ(telemetry::Percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(telemetry::Percentile(values, 100), 50.0);
  EXPECT_DOUBLE_EQ(telemetry::Percentile({}, 50), 0.0);
}

TEST(StatsReportTest, ReportOverSixLdbcQueriesFromRecorderExport) {
  auto ctx = dataflow::MakeContext();
  CypherEngine engine(LdbcGraph(ctx));
  ctx->EnableTelemetry();
  const std::string queries[] = {ldbc::Query1("Alice"),
                                 ldbc::Query2("Alice"),
                                 ldbc::Query3("Alice"),
                                 ldbc::Query4(),
                                 ldbc::Query5(),
                                 ldbc::Query6()};
  for (const std::string& query : queries) {
    ctx->tracker().Reset();
    ctx->telemetry().ResetData();
    auto result = engine.Execute(query);
    ASSERT_TRUE(result.ok()) << query << " -> " << result.status();
  }
  ctx->DisableTelemetry();
  ASSERT_EQ(ctx->flight_recorder().size(), 6u);

  StatsInput input;
  std::string error;
  ASSERT_TRUE(telemetry::IngestStatsArtifact(
      ctx->flight_recorder().ExportJson(), &input, &error))
      << error;
  ASSERT_EQ(input.profiles.size(), 6u);

  const std::string report = telemetry::RenderStatsReport(input, 3);
  EXPECT_NE(report.find("profiles: 6 (row 6, batch 0)"), std::string::npos)
      << report;
  EXPECT_NE(report.find("phase latency [ms]"), std::string::npos);
  EXPECT_NE(report.find("  execute"), std::string::npos);
  EXPECT_NE(report.find("operator self time [ms]"), std::string::npos);
  EXPECT_NE(report.find("operator Q-error"), std::string::npos);
  EXPECT_NE(report.find("worst misestimates"), std::string::npos);
  EXPECT_NE(report.find("qerror="), std::string::npos);
  // --worst 3 caps the misestimate list.
  size_t count = 0, pos = 0;
  while ((pos = report.find("\n  qerror=", pos)) != std::string::npos) {
    ++count;
    pos += 10;
  }
  EXPECT_EQ(count, 3u);
}

BenchRecord MakeBenchRecord(const std::string& mode, const std::string& query,
                            uint64_t matches, double wall_ms,
                            double simulated_sec, uint64_t shuffle_bytes) {
  BenchRecord record;
  record.bench = "ldbc_queries";
  record.params = {{"mode", mode}, {"query", query}, {"sf", "1.00"}};
  record.matches = matches;
  record.wall_ms = wall_ms;
  record.simulated_sec = simulated_sec;
  record.shuffle_bytes = shuffle_bytes;
  return record;
}

TEST(StatsReportTest, RowVsBatchPairingFromBenchRecords) {
  StatsInput input;
  input.bench_records.push_back(
      MakeBenchRecord("default", "Q1", 35, 10.0, 0.5, 1000));
  input.bench_records.push_back(
      MakeBenchRecord("batch", "Q1", 35, 2.0, 0.5, 1000));
  const std::string report = telemetry::RenderStatsReport(input);
  EXPECT_NE(report.find("row vs batch (bench modes)"), std::string::npos);
  EXPECT_NE(report.find("speedup  5.00x"), std::string::npos) << report;
  EXPECT_EQ(report.find("MATCHES DIFFER"), std::string::npos);
}

TEST(StatsReportTest, BaselineDiffGatesRegressions) {
  StatsInput baseline;
  baseline.bench_records.push_back(
      MakeBenchRecord("default", "Q1", 35, 10.0, 0.5, 1000));
  baseline.bench_records.push_back(
      MakeBenchRecord("default", "Q2", 68, 12.0, 0.6, 2000));

  // Identical run: gate passes even with wall-clock noise.
  StatsInput same = baseline;
  same.bench_records[0].wall_ms = 99.0;  // noise, never gates
  std::string report;
  EXPECT_EQ(telemetry::DiffBenchBaseline(baseline, same, {}, &report), 0);
  EXPECT_NE(report.find("baseline diff OK (2 records compared)"),
            std::string::npos)
      << report;

  // Match-count drift is always a failure.
  StatsInput wrong_matches = baseline;
  wrong_matches.bench_records[0].matches = 36;
  report.clear();
  EXPECT_EQ(
      telemetry::DiffBenchBaseline(baseline, wrong_matches, {}, &report), 1);
  EXPECT_NE(report.find("must be identical"), std::string::npos);

  // simulated_sec past tolerance fails; within tolerance passes.
  StatsInput slower = baseline;
  slower.bench_records[1].simulated_sec = 0.6 * 1.25;  // +25% > 10%
  report.clear();
  EXPECT_EQ(telemetry::DiffBenchBaseline(baseline, slower, {}, &report), 1);
  EXPECT_NE(report.find("simulated_sec"), std::string::npos);
  BaselineDiffOptions loose;
  loose.tolerance = 0.50;
  report.clear();
  EXPECT_EQ(telemetry::DiffBenchBaseline(baseline, slower, loose, &report),
            0);

  // Improvements never fail, but suggest refreshing the baseline.
  StatsInput faster = baseline;
  faster.bench_records[0].shuffle_bytes = 100;  // -90%
  report.clear();
  EXPECT_EQ(telemetry::DiffBenchBaseline(baseline, faster, {}, &report), 0);
  EXPECT_NE(report.find("consider refreshing the baseline"),
            std::string::npos);

  // A record missing from the current run is a regression.
  StatsInput missing;
  missing.bench_records.push_back(baseline.bench_records[0]);
  report.clear();
  EXPECT_EQ(telemetry::DiffBenchBaseline(baseline, missing, {}, &report), 1);
  EXPECT_NE(report.find("record missing from current run"),
            std::string::npos);
}

}  // namespace
}  // namespace gradoop
