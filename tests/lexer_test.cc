#include <gtest/gtest.h>

#include "cypher/lexer.h"

namespace gradoop::cypher {
namespace {

std::vector<TokenKind> Kinds(const std::string& text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens.value()) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInput) {
  EXPECT_EQ(Kinds(""), (std::vector<TokenKind>{TokenKind::kEof}));
  EXPECT_EQ(Kinds("   \t\n"), (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, Identifiers) {
  auto tokens = Tokenize("MATCH p1 _x classYear");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 5u);
  EXPECT_EQ(tokens.value()[0].text, "MATCH");
  EXPECT_EQ(tokens.value()[1].text, "p1");
  EXPECT_EQ(tokens.value()[2].text, "_x");
  EXPECT_EQ(tokens.value()[3].text, "classYear");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = Tokenize("2014 3.14");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens.value()[0].int_value, 2014);
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens.value()[1].float_value, 3.14);
}

TEST(LexerTest, RangeIsNotAFloat) {
  // `1..3` must lex as integer, dotdot, integer (variable-length bounds).
  EXPECT_EQ(Kinds("1..3"),
            (std::vector<TokenKind>{TokenKind::kInteger, TokenKind::kDotDot,
                                    TokenKind::kInteger, TokenKind::kEof}));
}

TEST(LexerTest, StringsBothQuotes) {
  auto tokens = Tokenize("'Uni Leipzig' \"Bob\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens.value()[0].text, "Uni Leipzig");
  EXPECT_EQ(tokens.value()[1].text, "Bob");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize(R"('a\'b\n\t\\')");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "a'b\n\t\\");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, PatternPunctuation) {
  EXPECT_EQ(
      Kinds("(p1:Person)-[s:studyAt]->(u)"),
      (std::vector<TokenKind>{
          TokenKind::kLeftParen, TokenKind::kIdentifier, TokenKind::kColon,
          TokenKind::kIdentifier, TokenKind::kRightParen, TokenKind::kDash,
          TokenKind::kLeftBracket, TokenKind::kIdentifier, TokenKind::kColon,
          TokenKind::kIdentifier, TokenKind::kRightBracket, TokenKind::kDash,
          TokenKind::kGt, TokenKind::kLeftParen, TokenKind::kIdentifier,
          TokenKind::kRightParen, TokenKind::kEof}));
}

TEST(LexerTest, IncomingArrow) {
  EXPECT_EQ(Kinds("<-["),
            (std::vector<TokenKind>{TokenKind::kLt, TokenKind::kDash,
                                    TokenKind::kLeftBracket, TokenKind::kEof}));
}

TEST(LexerTest, ComparisonOperators) {
  EXPECT_EQ(Kinds("= <> < <= > >="),
            (std::vector<TokenKind>{TokenKind::kEq, TokenKind::kNeq,
                                    TokenKind::kLt, TokenKind::kLte,
                                    TokenKind::kGt, TokenKind::kGte,
                                    TokenKind::kEof}));
}

TEST(LexerTest, VariableLengthSyntax) {
  EXPECT_EQ(Kinds("*1..3"),
            (std::vector<TokenKind>{TokenKind::kStar, TokenKind::kInteger,
                                    TokenKind::kDotDot, TokenKind::kInteger,
                                    TokenKind::kEof}));
}

TEST(LexerTest, AlternationPipe) {
  EXPECT_EQ(Kinds("Comment|Post"),
            (std::vector<TokenKind>{TokenKind::kIdentifier, TokenKind::kPipe,
                                    TokenKind::kIdentifier, TokenKind::kEof}));
}

TEST(LexerTest, LineComments) {
  EXPECT_EQ(Kinds("MATCH // this is ignored\n RETURN"),
            (std::vector<TokenKind>{TokenKind::kIdentifier,
                                    TokenKind::kIdentifier, TokenKind::kEof}));
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("MATCH ~ RETURN").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

TEST(LexerTest, SpansPointIntoInput) {
  auto tokens = Tokenize("ab cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].span.offset, 0u);
  EXPECT_EQ(tokens.value()[0].span.length, 2u);
  EXPECT_EQ(tokens.value()[1].span.offset, 3u);
  EXPECT_EQ(tokens.value()[1].offset(), 3u);
}

TEST(LexerTest, SpansCarryLineAndColumn) {
  auto tokens = Tokenize("MATCH (n)\n  WHERE n.x = 'a\nb'\nRETURN n");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = tokens.value();
  // MATCH at 1:1, ( at 1:7, WHERE at 2:3.
  EXPECT_EQ(ts[0].span.line, 1);
  EXPECT_EQ(ts[0].span.column, 1);
  EXPECT_EQ(ts[1].span.line, 1);
  EXPECT_EQ(ts[1].span.column, 7);
  EXPECT_EQ(ts[4].span.line, 2);
  EXPECT_EQ(ts[4].span.column, 3);
  // The multi-line string literal keeps its opening quote's location, and
  // the newline inside it advances subsequent tokens to line 3.
  const auto& ret = ts[ts.size() - 3];  // RETURN
  EXPECT_EQ(ret.text, "RETURN");
  EXPECT_EQ(ret.span.line, 4);
  EXPECT_EQ(ret.span.column, 1);
}

TEST(LexerTest, ErrorsCarryLineAndColumn) {
  auto r = Tokenize("MATCH\n (a) ~");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:6"), std::string::npos);
  auto s = Tokenize("MATCH (a { x: 'oops ]");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("unterminated"), std::string::npos);
  EXPECT_NE(s.status().message().find("1:15"), std::string::npos);
}

}  // namespace
}  // namespace gradoop::cypher
