// Tests for the RETURN-clause modifiers DISTINCT and LIMIT.
#include <gtest/gtest.h>

#include "epgm/logical_graph.h"
#include "query/cypher_engine.h"

namespace gradoop::query {
namespace {

using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Properties;
using epgm::PropertyValue;
using epgm::Vertex;

LogicalGraph FanGraph(dataflow::ExecutionContextPtr ctx) {
  // Two Alices and one Bob, each liking the same two tags.
  std::vector<Vertex> vertices = {
      Vertex(1, "Person", {{"name", "Alice"}}),
      Vertex(2, "Person", {{"name", "Alice"}}),
      Vertex(3, "Person", {{"name", "Bob"}}),
      Vertex(10, "Tag", {{"name", "music"}}),
      Vertex(11, "Tag", {{"name", "sports"}}),
  };
  std::vector<Edge> edges = {
      Edge(100, "likes", 1, 10), Edge(101, "likes", 1, 11),
      Edge(102, "likes", 2, 10), Edge(103, "likes", 2, 11),
      Edge(104, "likes", 3, 10), Edge(105, "likes", 3, 11),
  };
  return LogicalGraph::FromVectors(std::move(ctx), GraphHead(0, "G"),
                                   std::move(vertices), std::move(edges));
}

class ReturnClauseTest : public ::testing::Test {
 protected:
  ReturnClauseTest() : engine_(FanGraph(dataflow::MakeContext())) {}
  CypherEngine engine_;
};

TEST_F(ReturnClauseTest, DistinctOnPropertyProjection) {
  // 6 (person, tag) pairs but only 2 distinct person names x 2 tags = 4
  // distinct (p.name, t.name) rows... and RETURN DISTINCT p.name alone
  // gives 2 rows.
  auto all = engine_.Count(
      "MATCH (p:Person)-[:likes]->(t:Tag) RETURN p.name");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), 6u);

  auto distinct_pairs = engine_.Count(
      "MATCH (p:Person)-[:likes]->(t:Tag) RETURN DISTINCT p.name, t.name");
  ASSERT_TRUE(distinct_pairs.ok()) << distinct_pairs.status();
  EXPECT_EQ(distinct_pairs.value(), 4u);

  auto distinct_names = engine_.Count(
      "MATCH (p:Person)-[:likes]->(t:Tag) RETURN DISTINCT p.name");
  ASSERT_TRUE(distinct_names.ok());
  EXPECT_EQ(distinct_names.value(), 2u);
}

TEST_F(ReturnClauseTest, DistinctOnBindings) {
  // DISTINCT over a variable binding deduplicates by element id: the same
  // person appears once regardless of how many tags they like.
  auto r = engine_.Count(
      "MATCH (p:Person)-[:likes]->(t:Tag) RETURN DISTINCT p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 3u);
}

TEST_F(ReturnClauseTest, DistinctStarKeepsAllBindings) {
  // RETURN DISTINCT * deduplicates whole embeddings; all 6 differ by the
  // edge binding.
  auto r = engine_.Count(
      "MATCH (p:Person)-[e:likes]->(t:Tag) RETURN DISTINCT *");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 6u);
}

TEST_F(ReturnClauseTest, LimitTruncates) {
  auto r = engine_.Count(
      "MATCH (p:Person)-[:likes]->(t:Tag) RETURN p.name LIMIT 4");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value(), 4u);

  auto zero = engine_.Count(
      "MATCH (p:Person)-[:likes]->(t:Tag) RETURN p.name LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value(), 0u);

  auto large = engine_.Count(
      "MATCH (p:Person)-[:likes]->(t:Tag) RETURN p.name LIMIT 100");
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large.value(), 6u);  // limit beyond the result set is a no-op
}

TEST_F(ReturnClauseTest, DistinctWithLimitComposes) {
  auto r = engine_.Count(
      "MATCH (p:Person)-[:likes]->(t:Tag) "
      "RETURN DISTINCT p.name, t.name LIMIT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 3u);  // distinct first (4 rows), then limit
}

TEST_F(ReturnClauseTest, DistinctCollectionHasOneGraphPerRow) {
  auto matches = engine_.Match(
      "MATCH (p:Person)-[:likes]->(t:Tag) RETURN DISTINCT p.name");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().NumGraphs(), 2u);
}

TEST_F(ReturnClauseTest, LimitParseErrors) {
  EXPECT_FALSE(engine_.Count("MATCH (p) RETURN p LIMIT").ok());
  EXPECT_FALSE(engine_.Count("MATCH (p) RETURN p LIMIT x").ok());
}

}  // namespace
}  // namespace gradoop::query
