#include <gtest/gtest.h>

#include "query/graph_statistics.h"

namespace gradoop::query {
namespace {

using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Vertex;

LogicalGraph StatsGraph(dataflow::ExecutionContextPtr ctx) {
  std::vector<Vertex> vertices = {
      Vertex(1, "Person"), Vertex(2, "Person"), Vertex(3, "Person"),
      Vertex(4, "City"),
  };
  std::vector<Edge> edges = {
      Edge(10, "knows", 1, 2),  Edge(11, "knows", 1, 3),
      Edge(12, "knows", 2, 3),  Edge(13, "livesIn", 1, 4),
      Edge(14, "livesIn", 2, 4),
  };
  return LogicalGraph::FromVectors(std::move(ctx), GraphHead(0, "G"),
                                   std::move(vertices), std::move(edges));
}

TEST(StatisticsTest, TotalCounts) {
  auto stats = GraphStatistics::Compute(StatsGraph(dataflow::MakeContext()));
  EXPECT_EQ(stats.vertex_count(), 4u);
  EXPECT_EQ(stats.edge_count(), 5u);
}

TEST(StatisticsTest, LabelDistributions) {
  auto stats = GraphStatistics::Compute(StatsGraph(dataflow::MakeContext()));
  EXPECT_EQ(stats.VertexCountByLabel("Person"), 3u);
  EXPECT_EQ(stats.VertexCountByLabel("City"), 1u);
  EXPECT_EQ(stats.VertexCountByLabel("Ghost"), 0u);
  EXPECT_EQ(stats.EdgeCountByLabel("knows"), 3u);
  EXPECT_EQ(stats.EdgeCountByLabel("livesIn"), 2u);
}

TEST(StatisticsTest, LabelAlternationSums) {
  auto stats = GraphStatistics::Compute(StatsGraph(dataflow::MakeContext()));
  EXPECT_EQ(stats.VertexCountByLabels({"Person", "City"}), 4u);
  EXPECT_EQ(stats.VertexCountByLabels({}), 4u);  // empty = all
  EXPECT_EQ(stats.EdgeCountByLabels({"knows", "livesIn"}), 5u);
}

TEST(StatisticsTest, DistinctSourceTarget) {
  auto stats = GraphStatistics::Compute(StatsGraph(dataflow::MakeContext()));
  // Sources overall: {1,2} for knows, {1,2} for livesIn -> {1,2}.
  EXPECT_EQ(stats.distinct_source_count(), 2u);
  // Targets overall: {2,3,4}.
  EXPECT_EQ(stats.distinct_target_count(), 3u);
  EXPECT_EQ(stats.DistinctSourceByLabel("knows"), 2u);
  EXPECT_EQ(stats.DistinctTargetByLabel("knows"), 2u);  // {2,3}
  EXPECT_EQ(stats.DistinctSourceByLabel("livesIn"), 2u);
  EXPECT_EQ(stats.DistinctTargetByLabel("livesIn"), 1u);  // {4}
  EXPECT_EQ(stats.DistinctTargetByLabels({"knows", "livesIn"}), 3u);
}

TEST(StatisticsTest, EmptyGraph) {
  auto g = LogicalGraph::FromVectors(dataflow::MakeContext(),
                                     GraphHead(0, "E"), {}, {});
  auto stats = GraphStatistics::Compute(g);
  EXPECT_EQ(stats.vertex_count(), 0u);
  EXPECT_EQ(stats.edge_count(), 0u);
  EXPECT_EQ(stats.VertexCountByLabels({}), 0u);
}

TEST(StatisticsTest, FileRoundTrip) {
  auto stats = GraphStatistics::Compute(StatsGraph(dataflow::MakeContext()));
  const std::string path = "/tmp/gradoop_stats_test.csv";
  ASSERT_TRUE(stats.WriteToFile(path).ok());
  auto loaded = GraphStatistics::ReadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().vertex_count(), stats.vertex_count());
  EXPECT_EQ(loaded.value().edge_count(), stats.edge_count());
  EXPECT_EQ(loaded.value().VertexCountByLabel("Person"),
            stats.VertexCountByLabel("Person"));
  EXPECT_EQ(loaded.value().DistinctTargetByLabel("livesIn"),
            stats.DistinctTargetByLabel("livesIn"));
  EXPECT_EQ(loaded.value().distinct_source_count(),
            stats.distinct_source_count());
  std::remove(path.c_str());
}

TEST(StatisticsTest, ReadMissingFileFails) {
  EXPECT_FALSE(
      GraphStatistics::ReadFromFile("/tmp/no_such_stats_file").ok());
}

TEST(StatisticsTest, ToStringListsLabels) {
  auto stats = GraphStatistics::Compute(StatsGraph(dataflow::MakeContext()));
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("Person=3"), std::string::npos);
  EXPECT_NE(s.find("knows=3"), std::string::npos);
}

}  // namespace
}  // namespace gradoop::query
