// Telemetry surface tests: metrics registry aggregation (including
// concurrent writers), span collection and worker-busy math, Chrome
// trace / QueryProfile export validity, the disabled-by-default
// contract (no spans, no metrics), and the acceptance pin that the
// profile's per-operator actual rows match EXPLAIN ANALYZE's rows=
// figures byte for byte for the same run.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/query_profile.h"
#include "telemetry/json.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/trace_export.h"
#include "telemetry/tracer.h"
#include "telemetry/validate.h"

namespace gradoop {
namespace {

using query::CypherEngine;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::SpanRecord;
using telemetry::Tracer;

// --- metrics registry --------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry metrics;
  metrics.AddCounter("rows", 10);
  metrics.AddCounter("rows", 5);
  metrics.SetGauge("memory", 2.5);
  metrics.SetGauge("memory", 3.5);  // last writer wins
  metrics.Observe("latency", 2.0);
  metrics.Observe("latency", 100.0);

  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("rows"), 15u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("memory"), 3.5);
  const auto& hist = snap.histograms.at("latency");
  EXPECT_EQ(hist.count, 2u);
  EXPECT_DOUBLE_EQ(hist.sum, 102.0);
  EXPECT_DOUBLE_EQ(hist.min, 2.0);
  EXPECT_DOUBLE_EQ(hist.max, 100.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 51.0);
  uint64_t bucket_total = 0;
  for (uint64_t c : hist.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, hist.count);

  metrics.Reset();
  EXPECT_TRUE(metrics.Snapshot().counters.empty());
  EXPECT_TRUE(metrics.Snapshot().histograms.empty());
}

TEST(MetricsRegistryTest, ConcurrentCountersSumExactly) {
  MetricsRegistry metrics;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kIncrements; ++i) {
        metrics.AddCounter("hits", 1);
        metrics.Observe("value", 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters.at("hits"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snap.histograms.at("value").count,
            static_cast<uint64_t>(kThreads) * kIncrements);
}

// --- tracer ------------------------------------------------------------

TEST(TracerTest, SpansSortedAndWorkerBusyAggregates) {
  Tracer tracer;
  // Out-of-order insertion; CollectSpans sorts by begin time.
  tracer.AddSpan("b", telemetry::kCategoryTask, 200.0, 500.0, /*worker=*/1);
  tracer.AddSpan("a", telemetry::kCategoryTask, 100.0, 200.0, /*worker=*/0);
  tracer.AddSpan("phase", telemetry::kCategoryQuery, 0.0, 600.0,
                 /*worker=*/-1);
  const std::vector<SpanRecord> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "phase");
  EXPECT_EQ(spans[1].name, "a");
  EXPECT_EQ(spans[2].name, "b");

  const auto busy = telemetry::ComputeWorkerBusy(spans, 4);
  ASSERT_EQ(busy.size(), 4u);
  EXPECT_DOUBLE_EQ(busy[0].busy_sec, 100e-6);
  EXPECT_DOUBLE_EQ(busy[1].busy_sec, 300e-6);
  EXPECT_EQ(busy[0].tasks, 1u);
  EXPECT_EQ(busy[2].tasks, 0u);
  // max 300us over mean 100us across the 4 workers.
  EXPECT_NEAR(telemetry::WorkerImbalance(busy), 3.0, 1e-9);

  tracer.Clear();
  EXPECT_EQ(tracer.NumSpans(), 0u);
}

TEST(TracerTest, ChromeExportValidatesAndNamesWorkerRows) {
  Tracer tracer;
  tracer.AddSpan("task", telemetry::kCategoryTask, 10.0, 20.0, /*worker=*/2,
                 {{"rows", 35.0}});
  tracer.AddSpan("parse", telemetry::kCategoryQuery, 0.0, 5.0, /*worker=*/-1);
  const std::string json = telemetry::ToChromeTraceJson(tracer.CollectSpans());
  std::string error;
  EXPECT_TRUE(telemetry::ValidateChromeTrace(json, &error)) << error;
  // Task spans land on the 1000+worker row; metadata names it.
  EXPECT_NE(json.find("\"tid\": 1002"), std::string::npos);
  EXPECT_NE(json.find("worker 2"), std::string::npos);
  EXPECT_NE(json.find("driver"), std::string::npos);
}

// --- json parser -------------------------------------------------------

TEST(JsonTest, ParsesDocumentsAndKeepsRawNumbers) {
  auto parsed = telemetry::json::Parse(
      "{\"a\": [1, 2.5, -3], \"b\": {\"c\": \"x\\n\"}, \"d\": true, "
      "\"e\": null}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& root = parsed.value();
  ASSERT_TRUE(root->is_object());
  const auto& a = root->Get("a");
  ASSERT_TRUE(a != nullptr && a->is_array());
  EXPECT_EQ(a->AsArray()[0]->raw(), "1");  // byte-exact source spelling
  EXPECT_EQ(a->AsArray()[1]->raw(), "2.5");
  EXPECT_DOUBLE_EQ(a->AsArray()[2]->AsDouble(), -3.0);
  EXPECT_EQ(root->Get("b")->Get("c")->AsString(), "x\n");
  EXPECT_TRUE(root->Get("d")->AsBool());
  EXPECT_TRUE(root->Get("e")->is_null());
  EXPECT_EQ(root->Get("missing"), nullptr);

  EXPECT_FALSE(telemetry::json::Parse("{\"a\": }").ok());
  EXPECT_FALSE(telemetry::json::Parse("[1, 2] trailing").ok());
  EXPECT_FALSE(telemetry::json::Parse("").ok());
}

// --- engine integration ------------------------------------------------

epgm::LogicalGraph LdbcGraph(const dataflow::ExecutionContextPtr& ctx) {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(ctx);
}

TEST(TelemetryEngineTest, DisabledByDefaultRecordsNothing) {
  auto ctx = dataflow::MakeContext();
  CypherEngine engine(LdbcGraph(ctx));
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ctx->telemetry().tracer().NumSpans(), 0u);
  EXPECT_TRUE(ctx->telemetry().metrics().Snapshot().counters.empty());
  // Phase wall times are recorded regardless (they are plain clock
  // reads, not telemetry).
  EXPECT_EQ(result.value().phases.size(), 5u);
}

TEST(TelemetryEngineTest, EnabledRecordsAllThreeSpanLayers) {
  auto ctx = dataflow::MakeContext();
  CypherEngine engine(LdbcGraph(ctx));
  ctx->EnableTelemetry();
  ctx->telemetry().ResetData();
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  ctx->DisableTelemetry();

  bool saw_query = false, saw_operator = false, saw_task = false,
       saw_stage = false;
  for (const SpanRecord& span : ctx->telemetry().tracer().CollectSpans()) {
    const std::string category = span.category;
    saw_query |= category == telemetry::kCategoryQuery;
    saw_operator |= category == telemetry::kCategoryOperator;
    saw_task |= category == telemetry::kCategoryTask;
    saw_stage |= category == telemetry::kCategoryStage;
    EXPECT_GE(span.end_us, span.begin_us) << span.name;
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_operator);
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_stage);

  const MetricsSnapshot snap = ctx->telemetry().metrics().Snapshot();
  EXPECT_GT(snap.counters.at("task.count"), 0u);
  EXPECT_GT(snap.counters.at("stage.count"), 0u);
  EXPECT_GT(snap.counters.at("operator.count"), 0u);
  EXPECT_TRUE(snap.histograms.count("task.wall_us") > 0);
  EXPECT_TRUE(snap.histograms.count("stage.partition_records") > 0);
}

TEST(TelemetryEngineTest, ProfileRowsMatchExplainAnalyzeByteForByte) {
  auto ctx = dataflow::MakeContext();
  CypherEngine engine(LdbcGraph(ctx));
  ctx->EnableTelemetry();
  ctx->tracker().Reset();
  ctx->telemetry().ResetData();
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result.value().physical, nullptr);
  const query::exec::PhysicalOperator::RenderOptions options{
      /*actuals=*/true, /*timing=*/false};
  const std::string analyze = result.value().physical->ToString(options);
  const telemetry::QueryProfile profile = query::BuildQueryProfile(
      "ldbc_Q1", ldbc::Query1("Alice"), result.value(), *ctx);
  ctx->DisableTelemetry();

  // rows= figures of the rendered tree, in pre-order — the same order
  // BuildQueryProfile walks the plan.
  std::vector<std::string> rendered_rows;
  size_t pos = 0;
  while ((pos = analyze.find(" rows=", pos)) != std::string::npos) {
    pos += 6;
    size_t end = pos;
    while (end < analyze.size() && analyze[end] != ' ' &&
           analyze[end] != '\n') {
      ++end;
    }
    rendered_rows.push_back(analyze.substr(pos, end - pos));
  }
  ASSERT_EQ(rendered_rows.size(), profile.operators.size());

  // The JSON must carry the identical digits: parse it and compare the
  // raw number spelling of every actual_rows against the rendering.
  auto parsed = telemetry::json::Parse(profile.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& operators = parsed.value()->Get("operators");
  ASSERT_TRUE(operators != nullptr && operators->is_array());
  ASSERT_EQ(operators->AsArray().size(), rendered_rows.size());
  for (size_t i = 0; i < rendered_rows.size(); ++i) {
    const auto& rows = operators->AsArray()[i]->Get("actual_rows");
    ASSERT_TRUE(rows != nullptr && rows->is_number());
    EXPECT_EQ(rows->raw(), rendered_rows[i]) << "operator " << i;
  }
}

TEST(TelemetryEngineTest, ArtifactsValidateAndSelfNotAboveTotal) {
  auto ctx = dataflow::MakeContext();
  CypherEngine engine(LdbcGraph(ctx));
  ctx->EnableTelemetry();
  ctx->tracker().Reset();
  ctx->telemetry().ResetData();
  auto result = engine.Execute(ldbc::Query2("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  const telemetry::QueryProfile profile = query::BuildQueryProfile(
      "ldbc_Q2", ldbc::Query2("Alice"), result.value(), *ctx);
  const std::string trace_json =
      telemetry::ToChromeTraceJson(ctx->telemetry().tracer().CollectSpans());
  ctx->DisableTelemetry();

  std::string error;
  EXPECT_TRUE(telemetry::ValidateChromeTrace(trace_json, &error)) << error;
  EXPECT_TRUE(telemetry::ValidateQueryProfile(profile.ToJson(), &error))
      << error;

  ASSERT_FALSE(profile.operators.empty());
  for (const auto& op : profile.operators) {
    EXPECT_LE(op.self_wall_sec, op.total_wall_sec + 1e-9) << op.describe;
  }
  // The root's total spans the whole execution, so it dominates every
  // operator's self time.
  for (const auto& op : profile.operators) {
    EXPECT_LE(op.self_wall_sec, profile.operators.front().total_wall_sec +
                                    1e-9)
        << op.describe;
  }
  ASSERT_EQ(profile.workers.size(), 4u);
  EXPECT_GE(profile.WorkerImbalanceRatio(), 1.0);
  EXPECT_EQ(profile.phases.size(), 5u);
}

}  // namespace
}  // namespace gradoop
