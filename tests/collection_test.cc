// Tests for the EPGM operator contract (Definition 2.4): CypherMatch
// returns a graph collection whose heads carry the variable bindings and
// whose elements record their membership in the match graphs.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "epgm/csv_io.h"
#include "epgm/operators.h"
#include "query/cypher_engine.h"

namespace gradoop::query {
namespace {

using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Properties;
using epgm::PropertyValue;
using epgm::Vertex;

LogicalGraph TriangleGraph(dataflow::ExecutionContextPtr ctx) {
  std::vector<Vertex> vertices = {
      Vertex(1, "Person", {{"name", "Alice"}}),
      Vertex(2, "Person", {{"name", "Bob"}}),
      Vertex(3, "Person", {{"name", "Carol"}}),
  };
  std::vector<Edge> edges = {
      Edge(10, "knows", 1, 2),
      Edge(11, "knows", 2, 3),
      Edge(12, "knows", 1, 3),
  };
  return LogicalGraph::FromVectors(std::move(ctx), GraphHead(0, "G"),
                                   std::move(vertices), std::move(edges));
}

TEST(MatchCollectionTest, OneGraphPerEmbedding) {
  CypherEngine engine(TriangleGraph(dataflow::MakeContext()));
  auto matches = engine.Match(
      "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a.name, b.name");
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches.value().NumGraphs(), 3u);
}

TEST(MatchCollectionTest, HeadsCarryBindings) {
  CypherEngine engine(TriangleGraph(dataflow::MakeContext()));
  auto matches = engine.Match(
      "MATCH (a:Person)-[e:knows]->(b:Person) "
      "WHERE a.name = 'Alice' RETURN a.name, b.name");
  ASSERT_TRUE(matches.ok());
  auto heads = matches.value().heads().Collect();
  ASSERT_EQ(heads.size(), 2u);
  std::set<std::string> b_names;
  for (const GraphHead& h : heads) {
    EXPECT_EQ(h.label, "MatchResult");
    EXPECT_EQ(h.properties.Get("a.name"), PropertyValue("Alice"));
    b_names.insert(h.properties.Get("b.name").string_value());
  }
  EXPECT_EQ(b_names, (std::set<std::string>{"Bob", "Carol"}));
}

TEST(MatchCollectionTest, ReturnStarStoresElementIds) {
  CypherEngine engine(TriangleGraph(dataflow::MakeContext()));
  auto matches = engine.Match(
      "MATCH (a:Person)-[e:knows]->(b:Person) "
      "WHERE a.name = 'Alice' RETURN *");
  ASSERT_TRUE(matches.ok());
  auto heads = matches.value().heads().Collect();
  ASSERT_EQ(heads.size(), 2u);
  for (const GraphHead& h : heads) {
    EXPECT_EQ(h.properties.Get("a"), PropertyValue(int64_t{1}));
    EXPECT_FALSE(h.properties.Get("e").is_null());
    EXPECT_FALSE(h.properties.Get("b").is_null());
  }
}

TEST(MatchCollectionTest, ElementsRecordMembership) {
  CypherEngine engine(TriangleGraph(dataflow::MakeContext()));
  auto matches = engine.Match(
      "MATCH (a:Person)-[e:knows]->(b:Person) "
      "WHERE a.name = 'Alice' RETURN *");
  ASSERT_TRUE(matches.ok());
  std::set<uint64_t> head_ids;
  for (const GraphHead& h : matches.value().heads().Collect()) {
    head_ids.insert(h.id);
  }
  auto vertices = matches.value().vertices().Collect();
  // Matched vertices: 1 (twice), 2, 3 — deduplicated with merged
  // membership.
  ASSERT_EQ(vertices.size(), 3u);
  for (const Vertex& v : vertices) {
    bool in_match = false;
    for (uint64_t g : v.graph_ids) in_match |= head_ids.contains(g);
    EXPECT_TRUE(in_match) << "vertex " << v.id;
  }
  // Vertex 1 (Alice) participates in both matches.
  for (const Vertex& v : vertices) {
    if (v.id == 1) {
      int n = 0;
      for (uint64_t g : v.graph_ids) n += head_ids.contains(g) ? 1 : 0;
      EXPECT_EQ(n, 2);
    }
  }
  auto edges = matches.value().edges().Collect();
  ASSERT_EQ(edges.size(), 2u);  // edges 10 and 12
}

TEST(MatchCollectionTest, UnmatchedElementsExcluded) {
  CypherEngine engine(TriangleGraph(dataflow::MakeContext()));
  auto matches = engine.Match(
      "MATCH (a:Person {name: 'Bob'})-[e:knows]->(b:Person) RETURN *");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().NumGraphs(), 1u);
  auto vertices = matches.value().vertices().Collect();
  std::set<uint64_t> ids;
  for (const Vertex& v : vertices) ids.insert(v.id);
  EXPECT_EQ(ids, (std::set<uint64_t>{2, 3}));  // Alice not in any match
}

TEST(MatchCollectionTest, PathMembershipIncludesInteriorElements) {
  // A 3-chain matched by a variable-length path: interior vertex and both
  // edges must join the match graph.
  auto ctx = dataflow::MakeContext();
  auto g = LogicalGraph::FromVectors(
      ctx, GraphHead(0, "G"),
      {Vertex(1, "P", {{"name", "a"}}), Vertex(2, "P"), Vertex(3, "P")},
      {Edge(10, "knows", 1, 2), Edge(11, "knows", 2, 3)});
  CypherEngine engine(g);
  auto matches = engine.Match(
      "MATCH (a:P {name: 'a'})-[e:knows*2..2]->(b:P) RETURN *");
  ASSERT_TRUE(matches.ok()) << matches.status();
  ASSERT_EQ(matches.value().NumGraphs(), 1u);
  std::set<uint64_t> vertex_ids, edge_ids;
  for (const Vertex& v : matches.value().vertices().Collect()) {
    vertex_ids.insert(v.id);
  }
  for (const Edge& e : matches.value().edges().Collect()) {
    edge_ids.insert(e.id);
  }
  EXPECT_EQ(vertex_ids, (std::set<uint64_t>{1, 2, 3}));
  EXPECT_EQ(edge_ids, (std::set<uint64_t>{10, 11}));
  // The path binding is stored as an id list on the head.
  auto heads = matches.value().heads().Collect();
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0].properties.Get("e"),
            PropertyValue(std::vector<uint64_t>{10, 2, 11}));
}

TEST(MatchCollectionTest, CollectionComposesWithEpgmOperators) {
  // Definition 2.4 + §2.1: pattern-matching output feeds other EPGM
  // operators. Select match graphs by a head property.
  CypherEngine engine(TriangleGraph(dataflow::MakeContext()));
  auto matches = engine.Match(
      "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a.name, b.name");
  ASSERT_TRUE(matches.ok());
  auto selected = epgm::Select(matches.value(), [](const GraphHead& h) {
    return h.properties.Get("a.name") == PropertyValue("Alice");
  });
  EXPECT_EQ(selected.NumGraphs(), 2u);
}

TEST(MatchCollectionTest, CollectionRoundTripsThroughCsv) {
  CypherEngine engine(TriangleGraph(dataflow::MakeContext()));
  auto matches = engine.Match(
      "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a.name");
  ASSERT_TRUE(matches.ok());
  const std::string dir = "/tmp/gradoop_collection_csv";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(epgm::WriteCsv(matches.value(), dir).ok());
  auto loaded =
      epgm::ReadCsvGraphCollection(dataflow::MakeContext(), dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().NumGraphs(), 3u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gradoop::query
