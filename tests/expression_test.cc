#include <gtest/gtest.h>

#include "cypher/expression.h"

namespace gradoop::cypher {
namespace {

using epgm::PropertyValue;

// Resolver backed by a flat (var, key) -> value table.
ValueResolver TableResolver(
    std::map<std::pair<std::string, std::string>, PropertyValue> table) {
  return [table = std::move(table)](const std::string& var,
                                    const std::string& key) {
    auto it = table.find({var, key});
    return it == table.end() ? PropertyValue::Null() : it->second;
  };
}

ExpressionPtr Cmp(ComparisonOp op, const std::string& var,
                  const std::string& key, PropertyValue lit) {
  return Expression::Comparison(op, Expression::PropertyAccess(var, key),
                                Expression::Literal(std::move(lit)));
}

TEST(ExpressionTest, ComparisonOperators) {
  const auto resolver =
      TableResolver({{{"a", "x"}, PropertyValue(int64_t{5})}});
  EXPECT_TRUE(EvaluatePredicate(*Cmp(ComparisonOp::kEq, "a", "x", 5), resolver));
  EXPECT_FALSE(EvaluatePredicate(*Cmp(ComparisonOp::kEq, "a", "x", 6), resolver));
  EXPECT_TRUE(EvaluatePredicate(*Cmp(ComparisonOp::kNeq, "a", "x", 6), resolver));
  EXPECT_TRUE(EvaluatePredicate(*Cmp(ComparisonOp::kLt, "a", "x", 6), resolver));
  EXPECT_TRUE(EvaluatePredicate(*Cmp(ComparisonOp::kLte, "a", "x", 5), resolver));
  EXPECT_TRUE(EvaluatePredicate(*Cmp(ComparisonOp::kGt, "a", "x", 4), resolver));
  EXPECT_TRUE(EvaluatePredicate(*Cmp(ComparisonOp::kGte, "a", "x", 5), resolver));
  EXPECT_FALSE(EvaluatePredicate(*Cmp(ComparisonOp::kGt, "a", "x", 5), resolver));
}

TEST(ExpressionTest, StringComparison) {
  const auto resolver = TableResolver({{{"u", "name"}, PropertyValue("Uni Leipzig")}});
  EXPECT_TRUE(EvaluatePredicate(
      *Cmp(ComparisonOp::kEq, "u", "name", "Uni Leipzig"), resolver));
  EXPECT_TRUE(EvaluatePredicate(
      *Cmp(ComparisonOp::kLt, "u", "name", "Zeppelin"), resolver));
}

TEST(ExpressionTest, PropertyToPropertyComparison) {
  const auto resolver = TableResolver({
      {{"p1", "gender"}, PropertyValue("female")},
      {{"p2", "gender"}, PropertyValue("male")},
  });
  auto e = Expression::Comparison(ComparisonOp::kNeq,
                                  Expression::PropertyAccess("p1", "gender"),
                                  Expression::PropertyAccess("p2", "gender"));
  EXPECT_TRUE(EvaluatePredicate(*e, resolver));
}

TEST(ExpressionTest, MissingPropertyIsNullAndFiltersOut) {
  const auto resolver = TableResolver({});
  EXPECT_FALSE(EvaluatePredicate(*Cmp(ComparisonOp::kEq, "a", "x", 1), resolver));
  // NOT(NULL) is still NULL: the row is filtered, not admitted.
  auto e = Expression::Not(Cmp(ComparisonOp::kEq, "a", "x", 1));
  EXPECT_FALSE(EvaluatePredicate(*e, resolver));
  EXPECT_EQ(EvaluateTernary(*e, resolver), std::nullopt);
}

TEST(ExpressionTest, TernaryAndOr) {
  const auto resolver =
      TableResolver({{{"a", "x"}, PropertyValue(int64_t{1})}});
  auto t = Cmp(ComparisonOp::kEq, "a", "x", 1);       // true
  auto f = Cmp(ComparisonOp::kEq, "a", "x", 2);       // false
  auto n = Cmp(ComparisonOp::kEq, "a", "missing", 1);  // null

  EXPECT_EQ(EvaluateTernary(*Expression::And(t, n), resolver), std::nullopt);
  EXPECT_EQ(EvaluateTernary(*Expression::And(f, n), resolver),
            std::optional<bool>(false));  // false AND null = false
  EXPECT_EQ(EvaluateTernary(*Expression::Or(t, n), resolver),
            std::optional<bool>(true));  // true OR null = true
  EXPECT_EQ(EvaluateTernary(*Expression::Or(f, n), resolver), std::nullopt);
  EXPECT_EQ(EvaluateTernary(*Expression::Xor(t, n), resolver), std::nullopt);
  EXPECT_EQ(EvaluateTernary(*Expression::Xor(t, f), resolver),
            std::optional<bool>(true));
}

TEST(ExpressionTest, IncomparableTypesYieldNull) {
  const auto resolver = TableResolver({{{"a", "x"}, PropertyValue("str")}});
  EXPECT_EQ(EvaluateTernary(*Cmp(ComparisonOp::kLt, "a", "x", 5), resolver),
            std::nullopt);
  // Equality across types is defined (false), not null.
  EXPECT_EQ(EvaluateTernary(*Cmp(ComparisonOp::kEq, "a", "x", 5), resolver),
            std::optional<bool>(false));
}

TEST(ExpressionTest, CollectPropertyAccessesAndVariables) {
  auto e = Expression::And(
      Cmp(ComparisonOp::kEq, "a", "x", 1),
      Expression::Comparison(ComparisonOp::kNeq,
                             Expression::PropertyAccess("b", "y"),
                             Expression::PropertyAccess("a", "z")));
  std::set<std::pair<std::string, std::string>> accesses;
  e->CollectPropertyAccesses(&accesses);
  EXPECT_EQ(accesses.size(), 3u);
  std::set<std::string> vars;
  e->CollectVariables(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"a", "b"}));
}

TEST(ExpressionTest, ToStringRoundsTrip) {
  auto e = Expression::And(Cmp(ComparisonOp::kGt, "s", "classYear", 2014),
                           Cmp(ComparisonOp::kEq, "u", "name", "X"));
  EXPECT_EQ(e->ToString(), "(s.classYear > 2014 AND u.name = 'X')");
}

// --- CNF -------------------------------------------------------------------

TEST(CnfTest, SingleComparisonIsOneClause) {
  Cnf cnf = ToCnf(Cmp(ComparisonOp::kEq, "a", "x", 1));
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].atoms.size(), 1u);
}

TEST(CnfTest, AndSplitsClauses) {
  Cnf cnf = ToCnf(Expression::And(Cmp(ComparisonOp::kEq, "a", "x", 1),
                                  Cmp(ComparisonOp::kEq, "b", "y", 2)));
  EXPECT_EQ(cnf.clauses.size(), 2u);
}

TEST(CnfTest, OrStaysOneClause) {
  Cnf cnf = ToCnf(Expression::Or(Cmp(ComparisonOp::kEq, "a", "x", 1),
                                 Cmp(ComparisonOp::kEq, "a", "x", 2)));
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].atoms.size(), 2u);
}

TEST(CnfTest, OrOverAndDistributes) {
  // (a AND b) OR c  ==  (a OR c) AND (b OR c)
  Cnf cnf = ToCnf(Expression::Or(
      Expression::And(Cmp(ComparisonOp::kEq, "a", "x", 1),
                      Cmp(ComparisonOp::kEq, "b", "y", 2)),
      Cmp(ComparisonOp::kEq, "c", "z", 3)));
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0].atoms.size(), 2u);
  EXPECT_EQ(cnf.clauses[1].atoms.size(), 2u);
}

TEST(CnfTest, NotPushesIntoComparison) {
  Cnf cnf = ToCnf(Expression::Not(Cmp(ComparisonOp::kLt, "a", "x", 5)));
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].atoms[0]->comparison_op(), ComparisonOp::kGte);
}

TEST(CnfTest, DeMorgan) {
  // NOT (a OR b) == NOT a AND NOT b
  Cnf cnf = ToCnf(Expression::Not(
      Expression::Or(Cmp(ComparisonOp::kEq, "a", "x", 1),
                     Cmp(ComparisonOp::kEq, "b", "y", 2))));
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0].atoms[0]->comparison_op(), ComparisonOp::kNeq);
}

TEST(CnfTest, XorExpands) {
  Cnf cnf = ToCnf(Expression::Xor(Cmp(ComparisonOp::kEq, "a", "x", 1),
                                  Cmp(ComparisonOp::kEq, "b", "y", 2)));
  EXPECT_EQ(cnf.clauses.size(), 2u);
}

TEST(CnfTest, NullExpressionIsEmpty) {
  EXPECT_TRUE(ToCnf(nullptr).clauses.empty());
}

TEST(CnfTest, CnfPreservesSemantics) {
  // Randomized check: CNF evaluation == direct ternary evaluation
  // (collapsed to bool) across all 3^3 input combinations.
  const PropertyValue vals[] = {PropertyValue(int64_t{1}),
                                PropertyValue(int64_t{0}), PropertyValue()};
  auto expr = Expression::Or(
      Expression::And(Cmp(ComparisonOp::kEq, "a", "x", 1),
                      Expression::Not(Cmp(ComparisonOp::kEq, "b", "y", 1))),
      Expression::Xor(Cmp(ComparisonOp::kEq, "c", "z", 1),
                      Cmp(ComparisonOp::kEq, "a", "x", 1)));
  Cnf cnf = ToCnf(expr);
  for (const auto& va : vals) {
    for (const auto& vb : vals) {
      for (const auto& vc : vals) {
        const auto resolver = TableResolver(
            {{{"a", "x"}, va}, {{"b", "y"}, vb}, {{"c", "z"}, vc}});
        bool cnf_result = true;
        for (const CnfClause& clause : cnf.clauses) {
          cnf_result = cnf_result && EvaluateClause(clause, resolver);
        }
        EXPECT_EQ(cnf_result, EvaluatePredicate(*expr, resolver))
            << "inputs: " << va.ToString() << "," << vb.ToString() << ","
            << vc.ToString();
      }
    }
  }
}

TEST(CnfTest, ClauseVariables) {
  Cnf cnf = ToCnf(Expression::Or(Cmp(ComparisonOp::kEq, "a", "x", 1),
                                 Cmp(ComparisonOp::kEq, "b", "y", 2)));
  EXPECT_EQ(cnf.clauses[0].Variables(), (std::set<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace gradoop::cypher
