// Tests for recurring-subquery scan sharing (the paper's future-work
// item): identical edge scans inside one query execute once.
#include <gtest/gtest.h>

#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"

namespace gradoop::query {
namespace {

epgm::LogicalGraph SmallLdbc() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
}

struct Measured {
  uint64_t matches;
  uint64_t records;
  int stages;
};

Measured RunQuery(CypherEngine* engine, const std::string& query) {
  auto& tracker = engine->graph().context()->tracker();
  tracker.Reset();
  auto count = engine->Count(query);
  EXPECT_TRUE(count.ok()) << count.status();
  return {count.ok() ? count.value() : 0, tracker.TotalRecords(),
          tracker.NumStages()};
}

TEST(ScanSharingTest, SameResultsFewerRecordsOnTriangle) {
  auto graph = SmallLdbc();
  PlannerOptions sharing;
  sharing.share_scan_results = true;
  CypherEngine plain(graph);
  CypherEngine shared(graph, sharing);
  // Q5 scans :knows three times; sharing executes the scan once.
  const Measured a = RunQuery(&plain, ldbc::Query5());
  const Measured b = RunQuery(&shared, ldbc::Query5());
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_LT(b.records, a.records);
  EXPECT_LT(b.stages, a.stages);
}

TEST(ScanSharingTest, SameResultsOnRecommendation) {
  auto graph = SmallLdbc();
  PlannerOptions sharing;
  sharing.share_scan_results = true;
  CypherEngine plain(graph);
  CypherEngine shared(graph, sharing);
  // Q6 scans :hasInterest three times.
  const Measured a = RunQuery(&plain, ldbc::Query6());
  const Measured b = RunQuery(&shared, ldbc::Query6());
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_LT(b.records, a.records);
}

TEST(ScanSharingTest, AllSixQueriesUnchanged) {
  auto graph = SmallLdbc();
  PlannerOptions sharing;
  sharing.share_scan_results = true;
  CypherEngine plain(graph);
  CypherEngine shared(graph, sharing);
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  const auto elements = ldbc::LdbcGenerator(cfg).GenerateElements();
  const std::string name =
      ldbc::PickFirstName(elements, ldbc::Selectivity::kLow);
  for (const std::string& q :
       {ldbc::Query1(name), ldbc::Query2(name), ldbc::Query3(name),
        ldbc::Query4(), ldbc::Query5(), ldbc::Query6()}) {
    EXPECT_EQ(RunQuery(&plain, q).matches, RunQuery(&shared, q).matches) << q;
  }
}

TEST(ScanSharingTest, DifferentPredicatesDoNotShare) {
  // Two studyAt scans with different classYear predicates must stay
  // separate (their signatures differ).
  auto graph = SmallLdbc();
  PlannerOptions sharing;
  sharing.share_scan_results = true;
  CypherEngine plain(graph);
  CypherEngine shared(graph, sharing);
  const std::string query =
      "MATCH (a:Person)-[s1:studyAt]->(u:University), "
      "(b:Person)-[s2:studyAt]->(u) "
      "WHERE s1.classYear > 2010 AND s2.classYear > 2015 RETURN *";
  EXPECT_EQ(RunQuery(&plain, query).matches, RunQuery(&shared, query).matches);
}

}  // namespace
}  // namespace gradoop::query
