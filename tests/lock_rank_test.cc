// Lock-rank checker (common/lock_rank.h): the engine-wide lock order is
// telemetry < dataflow < exec < engine with strictly-downward
// acquisition, and a checked build must abort — with the held-lock
// stack printed — on the first inversion. The checker-core tests drive
// RankCheckAcquire/Release directly (compiled in every build, so the
// death test runs in the plain tier-1 tree too); the Mutex-level tests
// exercise the real hooks, which exist only when
// GRADOOP_LOCK_RANK_CHECKS is on (Debug / GRADOOP_FORCE_LOCK_RANK).

#include <gtest/gtest.h>

#include <thread>

#include "common/thread_annotations.h"
#include "dataflow/cost_model.h"
#include "dataflow/thread_pool.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/tracer.h"

namespace gradoop::common {
namespace {

TEST(LockRankTest, DownwardAcquisitionIsAllowed) {
  int engine_tag = 0, exec_tag = 0, dataflow_tag = 0, telemetry_tag = 0;
  RankCheckAcquire(LockRank::kEngine, "t.engine", &engine_tag);
  RankCheckAcquire(LockRank::kExec, "t.exec", &exec_tag);
  RankCheckAcquire(LockRank::kDataflow, "t.dataflow", &dataflow_tag);
  RankCheckAcquire(LockRank::kTelemetry, "t.telemetry", &telemetry_tag);
  EXPECT_EQ(RankedLocksHeld(), 4u);
  RankCheckRelease(LockRank::kTelemetry, &telemetry_tag);
  RankCheckRelease(LockRank::kDataflow, &dataflow_tag);
  RankCheckRelease(LockRank::kExec, &exec_tag);
  RankCheckRelease(LockRank::kEngine, &engine_tag);
  EXPECT_EQ(RankedLocksHeld(), 0u);
}

TEST(LockRankTest, ReacquireAfterFullReleaseIsAllowed) {
  int a = 0, b = 0;
  // telemetry → release → dataflow is legal: ranks constrain only locks
  // held simultaneously, not a thread's acquisition history.
  RankCheckAcquire(LockRank::kTelemetry, "t.first", &a);
  RankCheckRelease(LockRank::kTelemetry, &a);
  RankCheckAcquire(LockRank::kDataflow, "t.second", &b);
  RankCheckRelease(LockRank::kDataflow, &b);
  EXPECT_EQ(RankedLocksHeld(), 0u);
}

TEST(LockRankTest, OutOfOrderReleaseIsHandled) {
  int hi = 0, lo = 0;
  RankCheckAcquire(LockRank::kExec, "t.hi", &hi);
  RankCheckAcquire(LockRank::kDataflow, "t.lo", &lo);
  // Releasing the outer lock first must not confuse the stack: the
  // remaining inner lock still forbids re-acquiring at or above kDataflow.
  RankCheckRelease(LockRank::kExec, &hi);
  EXPECT_EQ(RankedLocksHeld(), 1u);
  RankCheckAcquire(LockRank::kTelemetry, "t.leaf", &hi);
  EXPECT_EQ(RankedLocksHeld(), 2u);
  RankCheckRelease(LockRank::kTelemetry, &hi);
  RankCheckRelease(LockRank::kDataflow, &lo);
  EXPECT_EQ(RankedLocksHeld(), 0u);
}

TEST(LockRankTest, UnrankedIsExemptAndUntracked) {
  int scratch = 0, leaf = 0;
  RankCheckAcquire(LockRank::kUnranked, "t.scratch", &scratch);
  EXPECT_EQ(RankedLocksHeld(), 0u);
  RankCheckAcquire(LockRank::kTelemetry, "t.leaf", &leaf);
  // Holding a leaf lock does not forbid an unranked acquisition either.
  RankCheckAcquire(LockRank::kUnranked, "t.scratch2", &scratch);
  RankCheckRelease(LockRank::kUnranked, &scratch);
  RankCheckRelease(LockRank::kTelemetry, &leaf);
  EXPECT_EQ(RankedLocksHeld(), 0u);
}

TEST(LockRankTest, HeldStackIsPerThread) {
  int mine = 0;
  RankCheckAcquire(LockRank::kDataflow, "t.mine", &mine);
  std::thread other([] {
    // A fresh thread holds nothing, so even an engine-rank acquisition
    // is legal there while this thread sits on a dataflow lock.
    int theirs = 0;
    EXPECT_EQ(RankedLocksHeld(), 0u);
    RankCheckAcquire(LockRank::kEngine, "t.theirs", &theirs);
    EXPECT_EQ(RankedLocksHeld(), 1u);
    RankCheckRelease(LockRank::kEngine, &theirs);
  });
  other.join();
  EXPECT_EQ(RankedLocksHeld(), 1u);
  RankCheckRelease(LockRank::kDataflow, &mine);
}

TEST(LockRankDeathTest, UpwardAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // telemetry held, then dataflow wanted — the exact inversion the
  // morsel scheduler must never introduce: a leaf waiting on its caller.
  EXPECT_DEATH(
      {
        int leaf = 0;
        int upper = 0;
        RankCheckAcquire(LockRank::kTelemetry, "t.leaf", &leaf);
        RankCheckAcquire(LockRank::kDataflow, "t.upper", &upper);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two dataflow-layer locks held together would allow an A/B–B/A cycle
  // inside the layer, so strict descent rejects rank ties too.
  EXPECT_DEATH(
      {
        int a = 0;
        int b = 0;
        RankCheckAcquire(LockRank::kDataflow, "t.a", &a);
        RankCheckAcquire(LockRank::kDataflow, "t.b", &b);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, AbortMessagePrintsHeldStack) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Both sides of the inversion must be identifiable from the abort:
  // the acquisition and every held lock, by name and rank.
  EXPECT_DEATH(
      {
        int a = 0;
        int b = 0;
        int c = 0;
        RankCheckAcquire(LockRank::kExec, "t.outer", &a);
        RankCheckAcquire(LockRank::kTelemetry, "t.inner", &b);
        RankCheckAcquire(LockRank::kEngine, "t.offender", &c);
      },
      "acquiring \"t.offender\" \\(rank engine\\)(.|\n)*"
      "#0 \"t.outer\" \\(rank exec\\)(.|\n)*"
      "#1 \"t.inner\" \\(rank telemetry\\)");
}

// --- Mutex-level integration: the hooks inside common::Mutex ---

TEST(LockRankMutexTest, EngineLockOrderIsCheckedOrCompiledOut) {
  Mutex upper(LockRank::kDataflow, "test.upper");
  Mutex leaf(LockRank::kTelemetry, "test.leaf");
  {
    MutexLock hold_upper(upper);
    MutexLock hold_leaf(leaf);  // downward: always fine
    if (LockRankCheckingEnabled()) {
      EXPECT_EQ(RankedLocksHeld(), 2u);
    } else {
      // Release builds compile the hooks out of lock/unlock entirely —
      // the bench pins the cost side of this same contract.
      EXPECT_EQ(RankedLocksHeld(), 0u);
    }
  }
  EXPECT_EQ(RankedLocksHeld(), 0u);
}

#if GRADOOP_LOCK_RANK_CHECKS
TEST(LockRankMutexDeathTest, InvertedMutexAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex leaf(LockRank::kTelemetry, "test.leaf");
        Mutex upper(LockRank::kDataflow, "test.upper");
        MutexLock hold_leaf(leaf);
        MutexLock hold_upper(upper);  // seeded rank inversion
      },
      "lock-rank violation");
}
#endif

// The real engine singletons must compose without tripping the checker:
// record telemetry and dataflow state in the nesting production code
// uses (pool task → cost/audit charge → metrics/span append).
TEST(LockRankMutexTest, EngineComponentsComposeCleanly) {
  dataflow::ThreadPool pool(4);
  dataflow::CostTracker tracker;
  telemetry::MetricsRegistry metrics;
  telemetry::Tracer tracer;
  pool.RunAndWait(16, [&](int i) {
    dataflow::StageCost cost;
    cost.label = "rank-compose";
    cost.compute_sec = 0.001;
    tracker.AddStage(cost);
    metrics.AddCounter("rank.compose", 1);
    tracer.AddSpan("rank-compose", telemetry::kCategoryTask,
                   static_cast<double>(i), static_cast<double>(i) + 1.0, i);
  });
  EXPECT_EQ(tracker.NumStages(), 16);
  EXPECT_EQ(tracer.NumSpans(), 16u);
  EXPECT_EQ(RankedLocksHeld(), 0u);
}

}  // namespace
}  // namespace gradoop::common
