#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"

namespace gradoop::ldbc {
namespace {

LdbcConfig SmallConfig() {
  LdbcConfig cfg;
  cfg.scale_factor = 0.05;  // ~100 persons: fast tests
  return cfg;
}

TEST(LdbcGeneratorTest, Deterministic) {
  LdbcGenerator gen(SmallConfig());
  auto a = gen.GenerateElements();
  auto b = gen.GenerateElements();
  ASSERT_EQ(a.vertices.size(), b.vertices.size());
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.vertices.size(); ++i) {
    EXPECT_EQ(a.vertices[i].id, b.vertices[i].id);
    EXPECT_EQ(a.vertices[i].label, b.vertices[i].label);
    EXPECT_EQ(a.vertices[i].properties, b.vertices[i].properties);
  }
}

TEST(LdbcGeneratorTest, CoversAllLabels) {
  auto elements = LdbcGenerator(SmallConfig()).GenerateElements();
  std::set<std::string> vertex_labels, edge_labels;
  for (const auto& v : elements.vertices) vertex_labels.insert(v.label);
  for (const auto& e : elements.edges) edge_labels.insert(e.label);
  EXPECT_EQ(vertex_labels,
            (std::set<std::string>{"Person", "City", "University", "Tag",
                                   "Forum", "Post", "Comment"}));
  EXPECT_EQ(edge_labels,
            (std::set<std::string>{"knows", "hasCreator", "replyOf",
                                   "isLocatedIn", "hasInterest", "studyAt",
                                   "hasMember", "hasModerator"}));
}

TEST(LdbcGeneratorTest, UniqueIds) {
  auto elements = LdbcGenerator(SmallConfig()).GenerateElements();
  std::set<uint64_t> ids;
  for (const auto& v : elements.vertices) {
    EXPECT_TRUE(ids.insert(v.id).second);
  }
  for (const auto& e : elements.edges) {
    EXPECT_TRUE(ids.insert(e.id).second);
  }
}

TEST(LdbcGeneratorTest, EdgeEndpointsRespectSchema) {
  auto elements = LdbcGenerator(SmallConfig()).GenerateElements();
  std::map<uint64_t, std::string> label_of;
  for (const auto& v : elements.vertices) label_of[v.id] = v.label;
  const std::map<std::string, std::pair<std::set<std::string>,
                                        std::set<std::string>>>
      schema = {
          {"knows", {{"Person"}, {"Person"}}},
          {"hasCreator", {{"Post", "Comment"}, {"Person"}}},
          {"replyOf", {{"Comment"}, {"Post", "Comment"}}},
          {"isLocatedIn", {{"Person"}, {"City"}}},
          {"hasInterest", {{"Person"}, {"Tag"}}},
          {"studyAt", {{"Person"}, {"University"}}},
          {"hasMember", {{"Forum"}, {"Person"}}},
          {"hasModerator", {{"Forum"}, {"Person"}}},
      };
  for (const auto& e : elements.edges) {
    const auto& [src_labels, dst_labels] = schema.at(e.label);
    EXPECT_TRUE(src_labels.contains(label_of.at(e.source_id)))
        << e.label << " source is " << label_of.at(e.source_id);
    EXPECT_TRUE(dst_labels.contains(label_of.at(e.target_id)))
        << e.label << " target is " << label_of.at(e.target_id);
  }
}

TEST(LdbcGeneratorTest, ReplyTreesAreAcyclic) {
  auto elements = LdbcGenerator(SmallConfig()).GenerateElements();
  // replyOf from a comment always points to a post or an earlier comment
  // (smaller creation index = smaller id within comments).
  std::map<uint64_t, std::string> label_of;
  for (const auto& v : elements.vertices) label_of[v.id] = v.label;
  for (const auto& e : elements.edges) {
    if (e.label != "replyOf") continue;
    if (label_of.at(e.target_id) == "Comment") {
      EXPECT_LT(e.target_id, e.source_id);
    }
  }
}

TEST(LdbcGeneratorTest, ScaleFactorScalesCounts) {
  LdbcConfig small = SmallConfig();
  LdbcConfig large = SmallConfig();
  large.scale_factor = 0.1;
  auto a = LdbcGenerator(small).GenerateElements();
  auto b = LdbcGenerator(large).GenerateElements();
  EXPECT_GT(b.vertices.size(), 1.5 * a.vertices.size());
  EXPECT_GT(b.edges.size(), 1.5 * a.edges.size());
}

TEST(LdbcGeneratorTest, FirstNamesAreZipfSkewed) {
  auto elements = LdbcGenerator(SmallConfig()).GenerateElements();
  std::map<std::string, int> freq;
  int persons = 0;
  for (const auto& v : elements.vertices) {
    if (v.label != "Person") continue;
    ++persons;
    freq[v.properties.Get("firstName").string_value()]++;
  }
  int max_freq = 0;
  for (const auto& [name, count] : freq) max_freq = std::max(max_freq, count);
  // The most common name covers a large share; the dictionary is wide.
  EXPECT_GT(max_freq, persons / 20);
  EXPECT_GT(freq.size(), 5u);
}

TEST(LdbcGeneratorTest, SelectivityOrdering) {
  auto elements = LdbcGenerator(SmallConfig()).GenerateElements();
  std::map<std::string, int> freq;
  for (const auto& v : elements.vertices) {
    if (v.label != "Person") continue;
    freq[v.properties.Get("firstName").string_value()]++;
  }
  const int high = freq.at(PickFirstName(elements, Selectivity::kHigh));
  const int medium = freq.at(PickFirstName(elements, Selectivity::kMedium));
  const int low = freq.at(PickFirstName(elements, Selectivity::kLow));
  EXPECT_LE(high, medium);
  EXPECT_LE(medium, low);
  EXPECT_LT(high, low);
}

TEST(LdbcGeneratorTest, KnowsDegreesAreSkewed) {
  auto elements = LdbcGenerator(SmallConfig()).GenerateElements();
  std::map<uint64_t, int> out_degree;
  for (const auto& e : elements.edges) {
    if (e.label == "knows") out_degree[e.source_id]++;
  }
  int max_deg = 0, total = 0;
  for (const auto& [id, d] : out_degree) {
    max_deg = std::max(max_deg, d);
    total += d;
  }
  const double avg = static_cast<double>(total) / out_degree.size();
  EXPECT_GT(max_deg, 4 * avg);  // heavy tail
}

TEST(LdbcQueriesTest, AllSixQueriesRunOnGeneratedData) {
  auto graph = LdbcGenerator(SmallConfig()).Generate(dataflow::MakeContext());
  query::CypherEngine engine(graph);
  auto elements = LdbcGenerator(SmallConfig()).GenerateElements();
  const std::string name = PickFirstName(elements, Selectivity::kLow);
  const std::string queries[] = {Query1(name), Query2(name), Query3(name),
                                 Query4(),     Query5(),     Query6()};
  uint64_t counts[6];
  for (int i = 0; i < 6; ++i) {
    auto count = engine.Count(queries[i]);
    ASSERT_TRUE(count.ok()) << "Q" << (i + 1) << ": " << count.status();
    counts[i] = count.value();
  }
  // Structural sanity: Q1 selects messages of low-selectivity persons
  // (non-empty); Q2 extends Q1 with reply paths, Q5/Q6 are analytical
  // and much larger than zero on a social graph.
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[1], 0u);
  EXPECT_GT(counts[4], 0u);
  EXPECT_GT(counts[5], 0u);
}

TEST(LdbcQueriesTest, SelectivityControlsCardinality) {
  auto gen = LdbcGenerator(SmallConfig());
  auto graph = gen.Generate(dataflow::MakeContext());
  query::CypherEngine engine(graph);
  auto elements = gen.GenerateElements();
  uint64_t counts[3];
  const Selectivity levels[] = {Selectivity::kHigh, Selectivity::kMedium,
                                Selectivity::kLow};
  for (int i = 0; i < 3; ++i) {
    auto count = engine.Count(Query1(PickFirstName(elements, levels[i])));
    ASSERT_TRUE(count.ok());
    counts[i] = count.value();
  }
  EXPECT_LE(counts[0], counts[1]);
  EXPECT_LE(counts[1], counts[2]);
  EXPECT_LT(counts[0], counts[2]);
}

}  // namespace
}  // namespace gradoop::ldbc
