// Concurrency stress for CostTracker: many host threads charge stages,
// bytes and records simultaneously (as pool-executed dataset
// transformations do) and the aggregated totals must equal the exact
// sum of everything charged. The common::Mutex annotations make the
// locking discipline checkable by Clang's thread-safety analysis, and
// the TSan build tree of ci/check.sh runs this test under the race
// detector.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "dataflow/cost_model.h"
#include "dataflow/thread_pool.h"

namespace gradoop::dataflow {
namespace {

TEST(CostTrackerStressTest, ConcurrentChargesSumExactly) {
  CostTracker tracker;
  constexpr int kThreads = 8;
  constexpr int kCharges = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker, t] {
      for (int i = 0; i < kCharges; ++i) {
        StageCost cost;
        cost.label = "stress";
        cost.compute_sec = 0.001;
        cost.network_sec = 0.002;
        cost.latency_sec = 0.0005;
        tracker.AddStage(cost);
        tracker.AddNetworkBytes(static_cast<uint64_t>(t) + 1);
        tracker.AddSpilledBytes(2);
        tracker.AddRecords(3);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  constexpr uint64_t kTotalCharges =
      static_cast<uint64_t>(kThreads) * kCharges;
  EXPECT_EQ(tracker.NumStages(), static_cast<int>(kTotalCharges));
  EXPECT_EQ(tracker.Stages().size(), kTotalCharges);
  // Per-stage seconds are identical, so the double sum is exact enough
  // for a tight tolerance.
  EXPECT_NEAR(tracker.SimulatedSeconds(), kTotalCharges * 0.0035,
              kTotalCharges * 1e-12);
  // Sum over threads t of kCharges * (t + 1).
  uint64_t expected_network = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_network += static_cast<uint64_t>(kCharges) * (t + 1);
  }
  EXPECT_EQ(tracker.NetworkBytes(), expected_network);
  EXPECT_EQ(tracker.SpilledBytes(), 2 * kTotalCharges);
  EXPECT_EQ(tracker.TotalRecords(), 3 * kTotalCharges);

  tracker.Reset();
  EXPECT_EQ(tracker.NumStages(), 0);
  EXPECT_EQ(tracker.NetworkBytes(), 0u);
  EXPECT_DOUBLE_EQ(tracker.SimulatedSeconds(), 0.0);
}

TEST(CostTrackerStressTest, PoolTasksChargingWhileDriverReads) {
  // Readers aggregate while pool tasks charge — the shape Dataset
  // transformations produce. The assertions only need the final totals,
  // but the interleaved reads must be race-free (TSan tree).
  CostTracker tracker;
  ThreadPool pool(4);
  constexpr int kBatches = 50;
  constexpr int kTasksPerBatch = 16;
  for (int b = 0; b < kBatches; ++b) {
    pool.RunAndWait(kTasksPerBatch, [&tracker](int i) {
      StageCost cost;
      cost.label = "batch";
      cost.compute_sec = 0.0001 * (i + 1);
      tracker.AddStage(cost);
      tracker.AddRecords(1);
    });
    // Interleaved aggregate reads; values only ever grow.
    EXPECT_GE(tracker.TotalRecords(),
              static_cast<uint64_t>(b + 1) * kTasksPerBatch);
  }
  EXPECT_EQ(tracker.TotalRecords(),
            static_cast<uint64_t>(kBatches) * kTasksPerBatch);
  EXPECT_EQ(tracker.NumStages(), kBatches * kTasksPerBatch);
}

}  // namespace
}  // namespace gradoop::dataflow
